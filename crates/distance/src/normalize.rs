//! Z-normalization kernels.
//!
//! Kept dependency-free on purpose: the distance crate is usable on its own
//! (e.g. by the baselines) without pulling in the time-series container.

/// Mean and population standard deviation in one pass.
///
/// Accumulates `Σx` and `Σx²` in input order with single accumulators —
/// deliberately not lane-split, because reassociating the sums would
/// change the rounding and break the repo's bit-identity discipline.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mut s = 0.0;
    let mut sq = 0.0;
    for &v in xs {
        s += v;
        sq += v * v;
    }
    let mu = s / n;
    ((mu), ((sq / n - mu * mu).max(0.0)).sqrt())
}

/// Z-normalizes `xs` in place given precomputed statistics.
///
/// With `sigma == 0` (constant input) the output is all-zero, matching the
/// UCR Suite convention so that two constant sequences are identical after
/// normalization.
///
/// Branch-free per element (one fused scale-and-shift pass rustc
/// auto-vectorizes); this is the kernel behind the scratch-buffer
/// normalization path — hot callers copy the candidate into a
/// [`KernelScratch`](crate::scratch::KernelScratch) buffer and normalize
/// in place instead of calling the allocating [`z_normalized`].
#[inline]
pub fn z_normalize(xs: &mut [f64], mu: f64, sigma: f64) {
    if sigma == 0.0 {
        xs.iter_mut().for_each(|v| *v = 0.0);
    } else {
        let inv = 1.0 / sigma;
        xs.iter_mut().for_each(|v| *v = (*v - mu) * inv);
    }
}

/// Returns the z-normalized copy of `xs` (statistics computed internally).
///
/// A thin convenience that allocates the copy per call — fine for
/// per-query preparation and tests, wrong for per-candidate paths. In-repo
/// per-candidate callers go through [`z_normalize`] with a scratch buffer;
/// per-query callers that already hold `(µ, σ)` clone and call
/// [`z_normalize`] directly to skip the duplicate statistics pass.
pub fn z_normalized(xs: &[f64]) -> Vec<f64> {
    let (mu, sigma) = mean_std(xs);
    let mut out = xs.to_vec();
    z_normalize(&mut out, mu, sigma);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_matches_formula() {
        let (mu, sigma) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((mu - 5.0).abs() < 1e-12);
        assert!((sigma - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert!(z_normalized(&[]).is_empty());
    }

    #[test]
    fn constant_normalizes_to_zero() {
        assert_eq!(z_normalized(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn normalized_stats() {
        let out = z_normalized(&[1.0, -2.0, 7.5, 0.25, 3.0]);
        let (mu, sigma) = mean_std(&out);
        assert!(mu.abs() < 1e-12);
        assert!((sigma - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shift_and_scale_invariance() {
        let xs = [1.0, 5.0, 2.0, 8.0, -3.0];
        let shifted: Vec<f64> = xs.iter().map(|v| v * 3.5 - 100.0).collect();
        let a = z_normalized(&xs);
        let b = z_normalized(&shifted);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
