//! The shared lower-bound cascade used by every DTW verification site.
//!
//! Candidate verification — whether a candidate came out of the KV-index
//! (phase 2 of Algorithm 1) or out of a sequential UCR-Suite scan — always
//! runs the same gauntlet in front of the full distance kernel:
//!
//! ```text
//! LB_Kim-FL  →  LB_Keogh (early-abandoning)  →  banded DTW (early-abandoning)
//!   O(1)            O(m)                          O(m·(2ρ+1))
//! ```
//!
//! Each stage is *admissible* (it never exceeds the true squared DTW
//! distance, so pruning never loses a match) and strictly more expensive
//! than the previous one. [`LbCascade`] packages the query, its Keogh
//! envelope and the band radius so call sites stop re-implementing the
//! chain, and [`CascadeStats`] records where each candidate died — the
//! per-stage pruning numbers the bench reporter publishes.
//!
//! On stage ordering: `LB_Kim-FL` uses the *exact* first/last point costs
//! (every banded warping path must pay them), while `LB_Keogh` measures
//! against the envelope, which is wider at the endpoints for `ρ ≥ 1`. The
//! stages are therefore ordered by *cost*, not by containment; for `ρ = 0`
//! the containment chain `LB_Kim-FL ≤ LB_Keogh ≤ DTW²` is exact (the
//! property tests pin both facts down).
//!
//! For top-k and threshold queries the effective threshold tightens as
//! results accumulate; [`BestSoFar`] threads that shrinking bound through
//! the cascade so later candidates abandon earlier.
//!
//! # Adaptive stage demotion
//!
//! A lower bound only pays for itself while it prunes: on a workload where
//! (say) LB_Kim-FL rejects nothing, every candidate still pays its O(1) —
//! or LB_Keogh's O(m) — toll before reaching the kernel. When built with
//! an [`AdaptivePolicy`], a cascade measures each stage's observed pruning
//! rate over a sliding window of candidates and **demotes** (skips) a
//! stage whose rate falls below the policy's floor. Demotion is bounded:
//! after `probation` skipped candidates the stage is re-enabled and must
//! re-earn its keep over a fresh window, so a workload shift re-activates
//! it. Skipping an *admissible* bound can only let more candidates
//! through to the exact DTW kernel — returned distances are bit-identical
//! with the adaptive machinery on or off; only cost and
//! [`CascadeStats`] change (the property suite pins this down). The state
//! is shared across clones via relaxed atomics: workers race on window
//! boundaries, which at worst blurs a window edge, never correctness.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

use crate::dtw::dtw_banded_early_abandon_scratch;
use crate::envelope::keogh_envelope;
use crate::lower_bounds::{lb_keogh_sq_early_abandon, lb_kim_fl_sq};
use crate::scratch::KernelScratch;

/// Where candidates died along the cascade, plus how many survived to the
/// full kernel. The constraint counter is incremented by callers that run
/// an O(1) cNSM constraint pre-stage in front of the cascade.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Candidates rejected by the cNSM constraints before the cascade.
    pub pruned_constraint: u64,
    /// Candidates rejected by LB_Kim-FL.
    pub pruned_lb_kim: u64,
    /// Candidates rejected by LB_Keogh.
    pub pruned_lb_keogh: u64,
    /// Candidates that reached the full distance kernel.
    pub full_distance_computations: u64,
    /// Candidates whose LB_Kim-FL stage was skipped by adaptive demotion.
    pub adaptive_skipped_lb_kim: u64,
    /// Candidates whose LB_Keogh stage was skipped by adaptive demotion.
    pub adaptive_skipped_lb_keogh: u64,
    /// Wall time spent inside LB_Kim-FL, nanoseconds. Zero unless the
    /// cascade runs timed ([`LbCascade::set_timed`]).
    pub lb_kim_nanos: u64,
    /// Wall time spent inside LB_Keogh, nanoseconds (timed cascades only).
    pub lb_keogh_nanos: u64,
    /// Wall time spent inside the exact kernel, nanoseconds (timed
    /// cascades only).
    pub dtw_nanos: u64,
}

impl CascadeStats {
    /// Accumulates `other` into `self` (worker-pool merging).
    pub fn merge(&mut self, other: &CascadeStats) {
        self.pruned_constraint += other.pruned_constraint;
        self.pruned_lb_kim += other.pruned_lb_kim;
        self.pruned_lb_keogh += other.pruned_lb_keogh;
        self.full_distance_computations += other.full_distance_computations;
        self.adaptive_skipped_lb_kim += other.adaptive_skipped_lb_kim;
        self.adaptive_skipped_lb_keogh += other.adaptive_skipped_lb_keogh;
        self.lb_kim_nanos += other.lb_kim_nanos;
        self.lb_keogh_nanos += other.lb_keogh_nanos;
        self.dtw_nanos += other.dtw_nanos;
    }

    /// Total candidates pruned before the full kernel.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_constraint + self.pruned_lb_kim + self.pruned_lb_keogh
    }
}

/// Tuning knobs of adaptive cascade stage demotion. See the module docs
/// for the state machine; `Default` is a conservative setting (5% floor
/// over 256-candidate windows, 2048-candidate probation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptivePolicy {
    /// Candidates measured per decision window (clamped to ≥ 1 in use).
    pub window: u32,
    /// A stage whose pruning rate over a completed window falls below
    /// this fraction is demoted.
    pub min_prune_rate: f64,
    /// Candidates a demoted stage skips before re-probation re-enables it.
    pub probation: u32,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self { window: 256, min_prune_rate: 0.05, probation: 2048 }
    }
}

/// One stage's demotion gate: measuring (`skip_left == 0`, counting seen /
/// pruned toward the current window) or demoted (`skip_left > 0`,
/// draining toward re-probation). All counters are relaxed atomics — the
/// gate is shared across worker threads through the cascade's `Arc`.
#[derive(Debug, Default)]
struct StageGate {
    seen: AtomicU64,
    pruned: AtomicU64,
    skip_left: AtomicU64,
}

impl StageGate {
    /// Consumes one skip token if the stage is demoted. The token that
    /// reaches zero ends the probation: the next candidate runs the stage
    /// again on a fresh window.
    fn try_skip(&self) -> bool {
        self.skip_left.fetch_update(Relaxed, Relaxed, |v| v.checked_sub(1)).is_ok()
    }

    /// Records one measured stage outcome; on a window boundary decides
    /// whether to demote.
    fn record(&self, pruned: bool, policy: &AdaptivePolicy) {
        if pruned {
            self.pruned.fetch_add(1, Relaxed);
        }
        let seen = self.seen.fetch_add(1, Relaxed) + 1;
        let window = u64::from(policy.window.max(1));
        if seen >= window {
            // Close the window. Racing workers may split one window into
            // slightly uneven pieces; the decision stays rate-based.
            let pruned_w = self.pruned.swap(0, Relaxed);
            self.seen.store(0, Relaxed);
            if (pruned_w as f64) < policy.min_prune_rate * (seen as f64) {
                self.skip_left.store(u64::from(policy.probation), Relaxed);
            }
        }
    }
}

/// Shared adaptive state of one cascade instance (and all its clones).
#[derive(Debug)]
struct AdaptiveState {
    policy: AdaptivePolicy,
    kim: StageGate,
    keogh: StageGate,
}

/// A query prepared for cascaded DTW verification: the query itself, its
/// Keogh envelope and the Sakoe–Chiba band radius.
///
/// Both the batched executor / KV-matcher (normalized or raw domain) and
/// the UCR-Suite baseline verify through this one type.
///
/// Clones share the adaptive demotion state (when enabled): the executor's
/// workers verify through `&self`, so one instance's pruning-rate windows
/// aggregate observations from every thread.
#[derive(Clone, Debug)]
pub struct LbCascade {
    query: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    rho: usize,
    adaptive: Option<Arc<AdaptiveState>>,
    /// When set, each stage's wall time is accumulated into the
    /// `*_nanos` fields of [`CascadeStats`] (one branch per stage when
    /// off). Timing never changes verdicts or distances.
    timed: bool,
}

impl LbCascade {
    /// Prepares the cascade: computes the Keogh envelope of `query` for
    /// band radius `rho`. Adaptive demotion is off (the fixed stage
    /// order); see [`LbCascade::set_adaptive`].
    pub fn new(query: Vec<f64>, rho: usize) -> Self {
        let (lower, upper) = keogh_envelope(&query, rho);
        Self { query, lower, upper, rho, adaptive: None, timed: false }
    }

    /// Enables or disables per-stage wall-time accounting (the EXPLAIN
    /// path). Off by default; when off, the only overhead is one branch
    /// per stage.
    pub fn set_timed(&mut self, timed: bool) {
        self.timed = timed;
    }

    /// Whether per-stage wall-time accounting is on.
    pub fn timed(&self) -> bool {
        self.timed
    }

    /// Enables (`Some`) or disables (`None`) adaptive stage demotion,
    /// resetting any accumulated gate state.
    pub fn set_adaptive(&mut self, policy: Option<AdaptivePolicy>) {
        self.adaptive = policy.map(|policy| {
            Arc::new(AdaptiveState {
                policy,
                kim: StageGate::default(),
                keogh: StageGate::default(),
            })
        });
    }

    /// Whether adaptive stage demotion is enabled.
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// The query sequence.
    pub fn query(&self) -> &[f64] {
        &self.query
    }

    /// Lower Keogh envelope `L`.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper Keogh envelope `U`.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// The band radius ρ.
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// Stage 1 alone: returns `true` (and counts the prune) when LB_Kim-FL
    /// already exceeds `threshold_sq`. Callers that interleave their own
    /// cheap stages (e.g. FAST's PAA bound) run this first and finish with
    /// [`LbCascade::verify_skip_kim`]. Always runs the stage — adaptive
    /// demotion applies only inside [`LbCascade::verify`], where the
    /// cascade owns the stage order.
    #[inline]
    pub fn prune_kim(&self, s: &[f64], threshold_sq: f64, stats: &mut CascadeStats) -> bool {
        if lb_kim_fl_sq(s, &self.query) > threshold_sq {
            stats.pruned_lb_kim += 1;
            true
        } else {
            false
        }
    }

    /// The full cascade: LB_Kim-FL → LB_Keogh → banded DTW, all against the
    /// squared threshold. Returns `Some(dtw²)` iff the candidate qualifies.
    #[inline]
    pub fn verify(
        &self,
        s: &[f64],
        threshold_sq: f64,
        scratch: &mut KernelScratch,
        stats: &mut CascadeStats,
    ) -> Option<f64> {
        let t = self.timed.then(Instant::now);
        let kim_pruned = if let Some(ad) = &self.adaptive {
            if ad.kim.try_skip() {
                stats.adaptive_skipped_lb_kim += 1;
                false
            } else {
                let pruned = lb_kim_fl_sq(s, &self.query) > threshold_sq;
                ad.kim.record(pruned, &ad.policy);
                if pruned {
                    stats.pruned_lb_kim += 1;
                }
                pruned
            }
        } else {
            self.prune_kim(s, threshold_sq, stats)
        };
        if let Some(t) = t {
            stats.lb_kim_nanos += t.elapsed().as_nanos() as u64;
        }
        if kim_pruned {
            return None;
        }
        self.verify_skip_kim(s, threshold_sq, scratch, stats)
    }

    /// Stages 2–3 only (LB_Keogh → banded DTW), for callers that already
    /// ran an equivalent of stage 1.
    #[inline]
    pub fn verify_skip_kim(
        &self,
        s: &[f64],
        threshold_sq: f64,
        scratch: &mut KernelScratch,
        stats: &mut CascadeStats,
    ) -> Option<f64> {
        let run_keogh = match &self.adaptive {
            Some(ad) if ad.keogh.try_skip() => {
                stats.adaptive_skipped_lb_keogh += 1;
                false
            }
            _ => true,
        };
        if run_keogh {
            let t = self.timed.then(Instant::now);
            let pruned =
                lb_keogh_sq_early_abandon(s, &self.lower, &self.upper, threshold_sq).is_none();
            if let Some(ad) = &self.adaptive {
                ad.keogh.record(pruned, &ad.policy);
            }
            if let Some(t) = t {
                stats.lb_keogh_nanos += t.elapsed().as_nanos() as u64;
            }
            if pruned {
                stats.pruned_lb_keogh += 1;
                return None;
            }
        }
        stats.full_distance_computations += 1;
        let t = self.timed.then(Instant::now);
        let out = dtw_banded_early_abandon_scratch(s, &self.query, self.rho, threshold_sq, scratch);
        if let Some(t) = t {
            stats.dtw_nanos += t.elapsed().as_nanos() as u64;
        }
        out
    }

    /// Top-k verification: runs the cascade against `best.threshold_sq()`
    /// (which shrinks as results accumulate) and offers any qualifying
    /// distance to `best`. Returns `Some(dtw²)` iff the candidate entered
    /// the current top-k.
    #[inline]
    pub fn verify_topk(
        &self,
        s: &[f64],
        best: &mut BestSoFar,
        scratch: &mut KernelScratch,
        stats: &mut CascadeStats,
    ) -> Option<f64> {
        let d_sq = self.verify(s, best.threshold_sq(), scratch, stats)?;
        best.offer(d_sq).then_some(d_sq)
    }
}

/// Best-so-far threshold threading for top-k (and plain threshold)
/// queries.
///
/// Holds the `k` smallest squared distances seen so far, never exceeding
/// `ceiling_sq` (the ε² of a threshold query, or `f64::INFINITY` for pure
/// top-k). [`BestSoFar::threshold_sq`] is the effective cascade threshold:
/// the ceiling until `k` results exist, then the current k-th best — so
/// every later candidate is verified against the tightest provable bound.
#[derive(Clone, Debug)]
pub struct BestSoFar {
    k: usize,
    ceiling_sq: f64,
    /// Max-heap (by `total_cmp`) of the kept squared distances, |heap| ≤ k.
    heap: std::collections::BinaryHeap<TotalF64>,
}

/// `f64` ordered by `total_cmp` so it can live in a heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl BestSoFar {
    /// A tracker keeping the `k` best squared distances at or below
    /// `ceiling_sq`.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize, ceiling_sq: f64) -> Self {
        assert!(k > 0, "top-k with k = 0");
        Self { k, ceiling_sq, heap: std::collections::BinaryHeap::new() }
    }

    /// The current effective squared threshold.
    pub fn threshold_sq(&self) -> f64 {
        if self.heap.len() < self.k {
            self.ceiling_sq
        } else {
            let worst = self.heap.peek().expect("k > 0 and heap full").0;
            worst.min(self.ceiling_sq)
        }
    }

    /// Offers a squared distance; keeps it iff it beats the current
    /// threshold, evicting the worst kept entry when full. Returns whether
    /// the entry was kept.
    pub fn offer(&mut self, d_sq: f64) -> bool {
        if d_sq > self.threshold_sq() {
            return false;
        }
        self.heap.push(TotalF64(d_sq));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
        true
    }

    /// Number of results currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing qualified yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The kept squared distances, ascending.
    pub fn kept_sq(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.heap.iter().map(|t| t.0).collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw_banded;
    use crate::lower_bounds::lb_keogh_sq;

    fn pseudo(n: usize, a: u64, b: u64) -> Vec<f64> {
        (0..n).map(|i| (((i as u64 * a + b) % 97) as f64) * 0.21 - 10.0).collect()
    }

    #[test]
    fn verify_matches_exact_dtw() {
        let mut scratch = KernelScratch::new();
        for seed in 0..6u64 {
            let q = pseudo(64, 17 + seed, 3);
            let s = pseudo(64, 31 + seed, 7);
            for rho in [0usize, 3, 9] {
                let cascade = LbCascade::new(q.clone(), rho);
                let exact = dtw_banded(&s, &q, rho);
                let mut stats = CascadeStats::default();
                // Loose threshold: must accept with the exact value.
                let got = cascade.verify(&s, exact * exact + 1e-9, &mut scratch, &mut stats);
                assert!(got.is_some(), "rho={rho} seed={seed}");
                assert!((got.unwrap().sqrt() - exact).abs() < 1e-9);
                // Tight threshold: must prune at some stage.
                let mut stats = CascadeStats::default();
                if exact > 0.0 {
                    let out = cascade.verify(&s, exact * exact * 0.5, &mut scratch, &mut stats);
                    assert!(out.is_none());
                    assert!(stats.pruned_total() + stats.full_distance_computations >= 1);
                }
            }
        }
    }

    #[test]
    fn skip_kim_equals_full_when_kim_passes() {
        let q = pseudo(48, 13, 5);
        let s = pseudo(48, 19, 11);
        let cascade = LbCascade::new(q.clone(), 4);
        let thr = 1e9;
        let mut scratch = KernelScratch::new();
        let mut a = CascadeStats::default();
        let mut b = CascadeStats::default();
        assert!(!cascade.prune_kim(&s, thr, &mut a));
        assert_eq!(
            cascade.verify(&s, thr, &mut scratch, &mut a),
            cascade.verify_skip_kim(&s, thr, &mut scratch, &mut b)
        );
    }

    #[test]
    fn stats_attribute_each_stage() {
        let q = vec![0.0; 32];
        let cascade = LbCascade::new(q, 2);
        let mut scratch = KernelScratch::new();
        // Endpoint spike → killed by LB_Kim-FL.
        let mut s = vec![0.0; 32];
        s[0] = 100.0;
        let mut stats = CascadeStats::default();
        assert!(cascade.verify(&s, 1.0, &mut scratch, &mut stats).is_none());
        assert_eq!(stats.pruned_lb_kim, 1);
        // Mid-sequence spike (outside any warped endpoint) → LB_Keogh.
        let mut s = vec![0.0; 32];
        s[16] = 100.0;
        let mut stats = CascadeStats::default();
        assert!(cascade.verify(&s, 1.0, &mut scratch, &mut stats).is_none());
        assert_eq!(stats.pruned_lb_keogh, 1);
        assert_eq!(stats.pruned_lb_kim, 0);
        // Identical sequence → survives to the kernel and qualifies.
        let s = vec![0.0; 32];
        let mut stats = CascadeStats::default();
        assert_eq!(cascade.verify(&s, 1.0, &mut scratch, &mut stats), Some(0.0));
        assert_eq!(stats.full_distance_computations, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CascadeStats {
            pruned_constraint: 1,
            pruned_lb_kim: 2,
            pruned_lb_keogh: 3,
            full_distance_computations: 4,
            adaptive_skipped_lb_kim: 5,
            adaptive_skipped_lb_keogh: 6,
            lb_kim_nanos: 7,
            lb_keogh_nanos: 8,
            dtw_nanos: 9,
        };
        a.merge(&a.clone());
        assert_eq!(a.pruned_total(), 12);
        assert_eq!(a.full_distance_computations, 8);
        assert_eq!(a.adaptive_skipped_lb_kim, 10);
        assert_eq!(a.adaptive_skipped_lb_keogh, 12);
        assert_eq!(a.lb_kim_nanos, 14);
        assert_eq!(a.lb_keogh_nanos, 16);
        assert_eq!(a.dtw_nanos, 18);
    }

    #[test]
    fn timed_cascade_is_result_identical_and_fills_stage_nanos() {
        let q = pseudo(48, 13, 5);
        let plain = LbCascade::new(q.clone(), 4);
        let mut timed = LbCascade::new(q.clone(), 4);
        timed.set_timed(true);
        assert!(timed.timed());
        let mut scratch = KernelScratch::new();
        let mut kernel_hits = 0u64;
        for seed in 0..12u64 {
            let s = pseudo(48, 19 + seed, 11);
            for thr in [1e9, 500.0, 50.0] {
                let mut tp = CascadeStats::default();
                let mut pp = CascadeStats::default();
                let t = timed.verify(&s, thr, &mut scratch, &mut tp);
                let p = plain.verify(&s, thr, &mut scratch, &mut pp);
                assert_eq!(t.map(f64::to_bits), p.map(f64::to_bits));
                // Untimed cascades never touch the nanos fields.
                assert_eq!(pp.lb_kim_nanos + pp.lb_keogh_nanos + pp.dtw_nanos, 0);
                // Timing never changes the counter accounting.
                assert_eq!(
                    (tp.pruned_lb_kim, tp.pruned_lb_keogh),
                    (pp.pruned_lb_kim, pp.pruned_lb_keogh)
                );
                kernel_hits += tp.full_distance_computations;
                if tp.full_distance_computations > 0 {
                    // Kim always ran; every stage that ran was clocked (a
                    // fast stage may legitimately round to 0 ns, so only
                    // the invariant "untimed stays zero" is strict).
                    let _ = tp.lb_kim_nanos;
                }
            }
        }
        assert!(kernel_hits > 0, "workload never reached the kernel");
    }

    #[test]
    fn keogh_prune_is_sound_against_kernel() {
        // Whenever the cascade prunes at Keogh, the true DTW must exceed
        // the threshold (spot check; the property tests sweep this).
        let mut scratch = KernelScratch::new();
        for seed in 0..8u64 {
            let q = pseudo(40, 23 + seed, 9);
            let s = pseudo(40, 29 + seed, 1);
            let cascade = LbCascade::new(q.clone(), 3);
            let (l, u) = keogh_envelope(&q, 3);
            let keogh = lb_keogh_sq(&s, &l, &u);
            if keogh > 0.0 {
                let thr = keogh * 0.9;
                let mut stats = CascadeStats::default();
                if cascade.verify(&s, thr, &mut scratch, &mut stats).is_none() {
                    let exact = dtw_banded(&s, &q, 3);
                    assert!(exact * exact > thr - 1e-9);
                }
            }
        }
    }

    #[test]
    fn adaptive_demotes_useless_stage_and_reprobates() {
        // A cascade whose query equals every candidate: no stage ever
        // prunes, so both gates demote after one window, skip for exactly
        // `probation` candidates, then measure a fresh window.
        let q = pseudo(32, 7, 1);
        let mut cascade = LbCascade::new(q.clone(), 2);
        let policy = AdaptivePolicy { window: 8, min_prune_rate: 0.05, probation: 16 };
        cascade.set_adaptive(Some(policy));
        assert!(cascade.adaptive_enabled());
        let mut scratch = KernelScratch::new();
        let mut stats = CascadeStats::default();
        // Window 1: measured (no skips yet), zero prunes → demote.
        for _ in 0..8 {
            assert!(cascade.verify(&q, 1e9, &mut scratch, &mut stats).is_some());
        }
        assert_eq!(stats.adaptive_skipped_lb_kim, 0);
        assert_eq!(stats.adaptive_skipped_lb_keogh, 0);
        // Probation: the next 16 candidates skip both stages.
        for _ in 0..16 {
            assert!(cascade.verify(&q, 1e9, &mut scratch, &mut stats).is_some());
        }
        assert_eq!(stats.adaptive_skipped_lb_kim, 16);
        assert_eq!(stats.adaptive_skipped_lb_keogh, 16);
        // Re-probation: stages measure again (no further skips until the
        // next window closes).
        for _ in 0..7 {
            assert!(cascade.verify(&q, 1e9, &mut scratch, &mut stats).is_some());
        }
        assert_eq!(stats.adaptive_skipped_lb_kim, 16);
        assert_eq!(stats.adaptive_skipped_lb_keogh, 16);
        assert_eq!(stats.full_distance_computations, 8 + 16 + 7);
    }

    #[test]
    fn adaptive_keeps_pruning_stage_active() {
        // Every candidate dies at LB_Kim-FL: a 100% pruning rate never
        // demotes, so no skips accumulate.
        let q = vec![0.0; 32];
        let mut cascade = LbCascade::new(q, 2);
        cascade.set_adaptive(Some(AdaptivePolicy {
            window: 4,
            min_prune_rate: 0.05,
            probation: 32,
        }));
        let mut s = vec![0.0; 32];
        s[0] = 100.0;
        let mut scratch = KernelScratch::new();
        let mut stats = CascadeStats::default();
        for _ in 0..32 {
            assert!(cascade.verify(&s, 1.0, &mut scratch, &mut stats).is_none());
        }
        assert_eq!(stats.pruned_lb_kim, 32);
        assert_eq!(stats.adaptive_skipped_lb_kim, 0);
    }

    #[test]
    fn adaptive_distances_bit_identical_to_plain() {
        // Skipping admissible bounds can only route more candidates to the
        // exact kernel — every returned distance must match the plain
        // cascade bit for bit.
        let q = pseudo(48, 13, 5);
        let plain = LbCascade::new(q.clone(), 4);
        let mut adaptive = LbCascade::new(q.clone(), 4);
        adaptive.set_adaptive(Some(AdaptivePolicy {
            window: 4,
            min_prune_rate: 0.9, // absurd floor: demote as often as possible
            probation: 8,
        }));
        let mut scratch = KernelScratch::new();
        for seed in 0..40u64 {
            let s = pseudo(48, 19 + seed, 11);
            for thr in [1e9, 500.0, 50.0] {
                let mut ap = CascadeStats::default();
                let mut pp = CascadeStats::default();
                let a = adaptive.verify(&s, thr, &mut scratch, &mut ap);
                let p = plain.verify(&s, thr, &mut scratch, &mut pp);
                match (a, p) {
                    (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    (None, None) => {}
                    // A skipped bound may push the decision down to the
                    // kernel, but the accept/reject verdict is identical
                    // because every stage is admissible.
                    (a, p) => panic!("adaptive {a:?} vs plain {p:?} (seed={seed}, thr={thr})"),
                }
            }
        }
    }

    #[test]
    fn clones_share_adaptive_state() {
        let q = pseudo(32, 7, 1);
        let mut cascade = LbCascade::new(q.clone(), 2);
        cascade.set_adaptive(Some(AdaptivePolicy {
            window: 8,
            min_prune_rate: 0.05,
            probation: 16,
        }));
        let clone = cascade.clone();
        let mut scratch = KernelScratch::new();
        let mut stats = CascadeStats::default();
        // Drive the shared gates to demotion through the original...
        for _ in 0..8 {
            cascade.verify(&q, 1e9, &mut scratch, &mut stats).unwrap();
        }
        // ...and observe the skip through the clone.
        let mut stats = CascadeStats::default();
        clone.verify(&q, 1e9, &mut scratch, &mut stats).unwrap();
        assert_eq!(stats.adaptive_skipped_lb_kim, 1);
        assert_eq!(stats.adaptive_skipped_lb_keogh, 1);
    }

    #[test]
    fn best_so_far_tightens_threshold() {
        let mut best = BestSoFar::new(2, 100.0);
        assert_eq!(best.threshold_sq(), 100.0);
        assert!(best.offer(50.0));
        assert_eq!(best.threshold_sq(), 100.0, "ceiling until k results exist");
        assert!(best.offer(10.0));
        assert_eq!(best.threshold_sq(), 50.0, "k-th best once full");
        assert!(!best.offer(70.0), "worse than the k-th best is rejected");
        assert!(best.offer(5.0));
        assert_eq!(best.kept_sq(), vec![5.0, 10.0]);
        assert_eq!(best.threshold_sq(), 10.0);
        assert_eq!(best.len(), 2);
    }

    #[test]
    fn best_so_far_respects_ceiling() {
        let mut best = BestSoFar::new(8, 4.0);
        assert!(!best.offer(4.1), "above the ε² ceiling even when not full");
        assert!(best.offer(4.0));
        assert!(!best.is_empty());
    }

    #[test]
    fn verify_topk_keeps_k_best() {
        let q = pseudo(32, 11, 3);
        let cascade = LbCascade::new(q.clone(), 2);
        // Candidates at increasing distance from q.
        let candidates: Vec<Vec<f64>> =
            (0..6).map(|j| q.iter().map(|v| v + j as f64 * 0.5).collect::<Vec<f64>>()).collect();
        let mut best = BestSoFar::new(3, f64::INFINITY);
        let mut scratch = KernelScratch::new();
        let mut stats = CascadeStats::default();
        let mut accepted = 0;
        for c in &candidates {
            if cascade.verify_topk(c, &mut best, &mut scratch, &mut stats).is_some() {
                accepted += 1;
            }
        }
        assert!(accepted >= 3);
        let kept = best.kept_sq();
        assert_eq!(kept.len(), 3);
        // The kept set is exactly the three nearest candidates.
        let mut all: Vec<f64> = candidates.iter().map(|c| dtw_banded(c, &q, 2).powi(2)).collect();
        all.sort_by(f64::total_cmp);
        for (a, b) in kept.iter().zip(&all[..3]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_rejected() {
        BestSoFar::new(0, 1.0);
    }
}
