//! Lp-norm distances — the "more distance measures" of the paper's future
//! work (§X), backed by Yi & Faloutsos' arbitrary-Lp-norm indexing result
//! (the corollary cited as \[11\] generalizes beyond L2).
//!
//! # Threshold conventions
//!
//! Early-abandoning kernels for a finite exponent `p` accumulate and
//! compare in the **p-th-power domain** (mirroring the squared-domain
//! convention of the ED kernels): pass `ε^p`, get `Σ|s_i − q_i|^p` back.
//! Chebyshev (`L∞`) kernels work directly in the distance domain.
//!
//! # No scratch variants
//!
//! Every kernel in this module is a single streaming pass holding one
//! scalar accumulator — none allocates, so there is nothing for a
//! [`KernelScratch`](crate::scratch::KernelScratch) to reuse. The
//! kernels' cost is dominated by `powi`/`powf` per element, not by
//! memory traffic, which is also why they are left un-chunked.

/// The exponent of an Lp norm: finite `p ≥ 1`, or `∞` (Chebyshev).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LpExponent {
    /// Finite `p ≥ 1`. `Finite(2)` is Euclidean, `Finite(1)` Manhattan.
    Finite(u32),
    /// The Chebyshev / maximum norm.
    Infinity,
}

impl LpExponent {
    /// `w^(1/p)` — the per-window slack denominator of the Lp analogue of
    /// Lemma 1 (power-mean inequality: `Σ|a_i|^p ≥ w·|mean(a)|^p`, so the
    /// window-mean deviation is bounded by `ε / w^(1/p)`; for `L∞` the
    /// mean deviation is bounded by `ε` itself).
    #[inline]
    pub fn root_w(&self, w: usize) -> f64 {
        match self {
            LpExponent::Finite(p) => (w as f64).powf(1.0 / *p as f64),
            LpExponent::Infinity => 1.0,
        }
    }

    /// Maps a distance threshold into the kernel's accumulation domain
    /// (`ε^p` for finite `p`, `ε` for `∞`).
    #[inline]
    pub fn pow(&self, epsilon: f64) -> f64 {
        match self {
            LpExponent::Finite(p) => epsilon.powi(*p as i32),
            LpExponent::Infinity => epsilon,
        }
    }

    /// Maps an accumulated value back to the distance domain.
    #[inline]
    pub fn root(&self, accumulated: f64) -> f64 {
        match self {
            LpExponent::Finite(1) => accumulated,
            LpExponent::Finite(2) => accumulated.sqrt(),
            LpExponent::Finite(p) => accumulated.powf(1.0 / *p as f64),
            LpExponent::Infinity => accumulated,
        }
    }
}

#[inline]
fn term(diff: f64, p: u32) -> f64 {
    match p {
        1 => diff.abs(),
        2 => diff * diff,
        _ => diff.abs().powi(p as i32),
    }
}

/// `Σ|s_i − q_i|^p` (the accumulated form), or the max for `L∞`.
pub fn lp_pow(s: &[f64], q: &[f64], exp: LpExponent) -> f64 {
    debug_assert_eq!(s.len(), q.len());
    match exp {
        LpExponent::Finite(p) => s.iter().zip(q).map(|(a, b)| term(a - b, p)).sum(),
        LpExponent::Infinity => s.iter().zip(q).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max),
    }
}

/// The Lp distance `(Σ|s_i − q_i|^p)^(1/p)` (max for `L∞`).
pub fn lp_distance(s: &[f64], q: &[f64], exp: LpExponent) -> f64 {
    exp.root(lp_pow(s, q, exp))
}

/// Early-abandoning accumulated Lp: returns `Some(accumulated)` iff it
/// stays `≤ bound_pow` (which must be in the accumulation domain).
pub fn lp_pow_early_abandon(s: &[f64], q: &[f64], exp: LpExponent, bound_pow: f64) -> Option<f64> {
    debug_assert_eq!(s.len(), q.len());
    match exp {
        LpExponent::Finite(p) => {
            let mut acc = 0.0;
            for (a, b) in s.iter().zip(q) {
                acc += term(a - b, p);
                if acc > bound_pow {
                    return None;
                }
            }
            Some(acc)
        }
        LpExponent::Infinity => {
            let mut acc = 0.0f64;
            for (a, b) in s.iter().zip(q) {
                let d = (a - b).abs();
                if d > bound_pow {
                    return None;
                }
                acc = acc.max(d);
            }
            Some(acc)
        }
    }
}

/// Early-abandoning accumulated Lp between the *z-normalized* `s` (with
/// statistics `mu_s`, `sigma_s`) and an already-normalized query — the
/// cNSM-Lp verification kernel.
pub fn lp_norm_pow_early_abandon(
    s: &[f64],
    q_norm: &[f64],
    mu_s: f64,
    sigma_s: f64,
    exp: LpExponent,
    bound_pow: f64,
) -> Option<f64> {
    debug_assert_eq!(s.len(), q_norm.len());
    debug_assert!(sigma_s > 0.0);
    let inv = 1.0 / sigma_s;
    match exp {
        LpExponent::Finite(p) => {
            let mut acc = 0.0;
            for (a, b) in s.iter().zip(q_norm) {
                acc += term((a - mu_s) * inv - b, p);
                if acc > bound_pow {
                    return None;
                }
            }
            Some(acc)
        }
        LpExponent::Infinity => {
            let mut acc = 0.0f64;
            for (a, b) in s.iter().zip(q_norm) {
                let d = ((a - mu_s) * inv - b).abs();
                if d > bound_pow {
                    return None;
                }
                acc = acc.max(d);
            }
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ed::ed_sq;
    use crate::normalize::{mean_std, z_normalized};

    const S: [f64; 4] = [1.0, -2.0, 0.5, 3.0];
    const Q: [f64; 4] = [0.0, 1.0, 0.5, -1.0];

    #[test]
    fn p1_is_manhattan() {
        let exp = LpExponent::Finite(1);
        let want = 1.0 + 3.0 + 0.0 + 4.0;
        assert_eq!(lp_pow(&S, &Q, exp), want);
        assert_eq!(lp_distance(&S, &Q, exp), want);
    }

    #[test]
    fn p2_matches_euclidean() {
        let exp = LpExponent::Finite(2);
        assert!((lp_pow(&S, &Q, exp) - ed_sq(&S, &Q)).abs() < 1e-12);
        assert!((lp_distance(&S, &Q, exp) - ed_sq(&S, &Q).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn p3_accumulates_cubes() {
        let exp = LpExponent::Finite(3);
        let want = 1.0 + 27.0 + 0.0 + 64.0;
        assert!((lp_pow(&S, &Q, exp) - want).abs() < 1e-12);
        assert!((lp_distance(&S, &Q, exp) - want.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn infinity_is_chebyshev() {
        let exp = LpExponent::Infinity;
        assert_eq!(lp_pow(&S, &Q, exp), 4.0);
        assert_eq!(lp_distance(&S, &Q, exp), 4.0);
    }

    #[test]
    fn early_abandon_agrees_with_full() {
        for exp in [
            LpExponent::Finite(1),
            LpExponent::Finite(2),
            LpExponent::Finite(4),
            LpExponent::Infinity,
        ] {
            let full = lp_pow(&S, &Q, exp);
            assert_eq!(lp_pow_early_abandon(&S, &Q, exp, full), Some(full), "{exp:?}");
            assert_eq!(lp_pow_early_abandon(&S, &Q, exp, full * 2.0), Some(full));
            assert_eq!(lp_pow_early_abandon(&S, &Q, exp, full * 0.99), None);
        }
    }

    #[test]
    fn normalized_kernel_matches_explicit_normalization() {
        let s: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin() * 2.0 + 5.0).collect();
        let q: Vec<f64> = (0..32).map(|i| (i as f64 * 0.31).cos()).collect();
        let (mu_s, sigma_s) = mean_std(&s);
        let s_norm = z_normalized(&s);
        let q_norm = z_normalized(&q);
        for exp in [LpExponent::Finite(1), LpExponent::Finite(3), LpExponent::Infinity] {
            let want = lp_pow(&s_norm, &q_norm, exp);
            let got = lp_norm_pow_early_abandon(&s, &q_norm, mu_s, sigma_s, exp, want + 1e-9)
                .expect("bound equals value");
            assert!((got - want).abs() < 1e-9, "{exp:?}: {got} vs {want}");
            assert!(
                lp_norm_pow_early_abandon(&s, &q_norm, mu_s, sigma_s, exp, want * 0.9).is_none()
            );
        }
    }

    #[test]
    fn root_w_and_pow_round_trip() {
        assert!((LpExponent::Finite(2).root_w(25) - 5.0).abs() < 1e-12);
        assert!((LpExponent::Finite(1).root_w(25) - 25.0).abs() < 1e-12);
        assert_eq!(LpExponent::Infinity.root_w(25), 1.0);
        for exp in [LpExponent::Finite(1), LpExponent::Finite(3), LpExponent::Infinity] {
            let eps = 2.5;
            assert!((exp.root(exp.pow(eps)) - eps).abs() < 1e-12, "{exp:?}");
        }
    }

    #[test]
    fn lp_norms_are_monotone_in_p_on_unit_scale() {
        // For |diffs| ≤ 1 the Lp distance decreases as p grows; L∞ is the
        // limit. (Standard norm-ordering sanity check.)
        let a = [0.9, -0.5, 0.3, 0.0, 0.7];
        let b = [0.0; 5];
        let d1 = lp_distance(&a, &b, LpExponent::Finite(1));
        let d2 = lp_distance(&a, &b, LpExponent::Finite(2));
        let d4 = lp_distance(&a, &b, LpExponent::Finite(4));
        let dinf = lp_distance(&a, &b, LpExponent::Infinity);
        assert!(d1 >= d2 && d2 >= d4 && d4 >= dinf);
        assert_eq!(dinf, 0.9);
    }
}
