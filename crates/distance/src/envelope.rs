//! Keogh query envelopes.
//!
//! For a query `Q` and band radius `ρ`, the envelope is the pair of series
//! `lᵢ = min_{|r| ≤ ρ} q_{i+r}` and `uᵢ = max_{|r| ≤ ρ} q_{i+r}` (§III-C).
//! Computed with a monotonic deque (Lemire's streaming min/max), O(m)
//! regardless of ρ.

use std::collections::VecDeque;

/// Computes the lower and upper envelope `(L, U)` of `q` for band radius
/// `rho`. Indices near the boundary clamp the window to the series.
///
/// Allocates the output pair (and the deque queues) per call; the
/// allocation-free path is
/// [`KernelScratch::envelope`](crate::scratch::KernelScratch::envelope),
/// which reuses scratch-owned buffers for all four.
pub fn keogh_envelope(q: &[f64], rho: usize) -> (Vec<f64>, Vec<f64>) {
    let m = q.len();
    let mut lower = vec![0.0; m];
    let mut upper = vec![0.0; m];
    let mut min_dq: VecDeque<usize> = VecDeque::new();
    let mut max_dq: VecDeque<usize> = VecDeque::new();
    envelope_core(q, rho, &mut lower, &mut upper, &mut min_dq, &mut max_dq);
    (lower, upper)
}

/// The monotonic-deque envelope pass over caller-provided buffers.
/// `lower`/`upper` must be exactly `q.len()` long; the deques must be
/// empty (their capacity is reused, which is the whole point).
pub(crate) fn envelope_core(
    q: &[f64],
    rho: usize,
    lower: &mut [f64],
    upper: &mut [f64],
    min_dq: &mut VecDeque<usize>,
    max_dq: &mut VecDeque<usize>,
) {
    let m = q.len();
    debug_assert_eq!(lower.len(), m);
    debug_assert_eq!(upper.len(), m);
    debug_assert!(min_dq.is_empty() && max_dq.is_empty());
    if m == 0 {
        return;
    }
    // Window for index i is [i-rho, i+rho] ∩ [0, m-1].
    // `t` walks the right edge; when the right edge reaches i+rho the
    // window for i is complete.
    let mut t = 0usize;
    for i in 0..m {
        let right = (i + rho).min(m - 1);
        while t <= right {
            while let Some(&b) = min_dq.back() {
                if q[b] >= q[t] {
                    min_dq.pop_back();
                } else {
                    break;
                }
            }
            min_dq.push_back(t);
            while let Some(&b) = max_dq.back() {
                if q[b] <= q[t] {
                    max_dq.pop_back();
                } else {
                    break;
                }
            }
            max_dq.push_back(t);
            t += 1;
        }
        let left = i.saturating_sub(rho);
        while let Some(&f) = min_dq.front() {
            if f < left {
                min_dq.pop_front();
            } else {
                break;
            }
        }
        while let Some(&f) = max_dq.front() {
            if f < left {
                max_dq.pop_front();
            } else {
                break;
            }
        }
        lower[i] = q[*min_dq.front().expect("window non-empty")];
        upper[i] = q[*max_dq.front().expect("window non-empty")];
    }
}

/// Naive O(m·ρ) reference envelope for validation.
pub fn keogh_envelope_reference(q: &[f64], rho: usize) -> (Vec<f64>, Vec<f64>) {
    let m = q.len();
    let mut lower = vec![0.0; m];
    let mut upper = vec![0.0; m];
    for i in 0..m {
        let lo = i.saturating_sub(rho);
        let hi = (i + rho).min(m.saturating_sub(1));
        let win = &q[lo..=hi];
        lower[i] = win.iter().cloned().fold(f64::INFINITY, f64::min);
        upper[i] = win.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    }
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_zero_is_identity() {
        let q = [3.0, 1.0, 4.0, 1.0, 5.0];
        let (l, u) = keogh_envelope(&q, 0);
        assert_eq!(l, q.to_vec());
        assert_eq!(u, q.to_vec());
    }

    #[test]
    fn empty_query() {
        let (l, u) = keogh_envelope(&[], 3);
        assert!(l.is_empty() && u.is_empty());
    }

    #[test]
    fn envelope_matches_reference() {
        let q: Vec<f64> = (0..97).map(|i| (((i * 37) % 23) as f64) * 0.7 - 8.0).collect();
        for rho in [0usize, 1, 2, 5, 11, 48, 96, 200] {
            let (lf, uf) = keogh_envelope(&q, rho);
            let (lr, ur) = keogh_envelope_reference(&q, rho);
            assert_eq!(lf, lr, "lower mismatch rho={rho}");
            assert_eq!(uf, ur, "upper mismatch rho={rho}");
        }
    }

    #[test]
    fn envelope_brackets_query() {
        let q: Vec<f64> = (0..50).map(|i| (i as f64 * 0.31).sin() * 4.0).collect();
        let (l, u) = keogh_envelope(&q, 5);
        for i in 0..q.len() {
            assert!(l[i] <= q[i] && q[i] <= u[i]);
        }
    }

    #[test]
    fn huge_rho_is_global_min_max() {
        let q = [3.0, -1.0, 4.0, 1.5];
        let (l, u) = keogh_envelope(&q, 100);
        assert!(l.iter().all(|&v| v == -1.0));
        assert!(u.iter().all(|&v| v == 4.0));
    }
}
