//! Reusable kernel scratch memory.
//!
//! [`KernelScratch`] owns every buffer the verification kernels need —
//! DTW DP rows, Keogh envelope outputs (plus the monotonic-deque index
//! queues behind them) and the z-normalization buffer — so a warm worker
//! verifies candidates with **zero heap allocations**. One instance is
//! owned per executor worker thread and threaded by `&mut` through
//! `LbCascade::verify` → `PreparedQuery::verify_within` →
//! `verify_interval`; it is never shared across threads.
//!
//! # Invariants
//!
//! * Buffers only ever **grow**: once a buffer's capacity covers the
//!   largest `(m, ρ)` seen, no kernel call allocates again. Each growth
//!   is counted in [`KernelScratch::alloc_events`], which is how the
//!   zero-allocation tests (and the bench report's `alloc_events_warm`
//!   field) prove the steady state is allocation-free.
//! * Contents are *undefined between calls*: every kernel fully
//!   initializes the region it reads. Callers must never assume a
//!   buffer retains values from a previous candidate.
//! * The z-norm buffer is handed out by value ([`KernelScratch::take_norm`])
//!   and returned ([`KernelScratch::restore_norm`]) so a caller can hold
//!   the normalized candidate *and* keep lending the DP rows to the
//!   cascade without aliasing the borrow. Dropping the taken buffer
//!   instead of restoring it is safe but forfeits its capacity (the next
//!   take re-grows and counts an allocation event).

use std::collections::VecDeque;

/// Per-worker scratch memory for the distance kernels. See the module
/// docs for the ownership and growth invariants.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    /// DTW DP row for the previous matrix row (band-relative layout).
    prev: Vec<f64>,
    /// DTW DP row for the current matrix row.
    curr: Vec<f64>,
    /// Candidate z-normalization buffer (cNSM verification).
    norm: Vec<f64>,
    /// Lower Keogh envelope output.
    lower: Vec<f64>,
    /// Upper Keogh envelope output.
    upper: Vec<f64>,
    /// Monotonic-deque index queue for the sliding minimum.
    min_dq: VecDeque<usize>,
    /// Monotonic-deque index queue for the sliding maximum.
    max_dq: VecDeque<usize>,
    /// Number of buffer growths since construction.
    alloc_events: u64,
}

impl KernelScratch {
    /// An empty scratch; the first kernel calls grow it to fit.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown for queries up to length `m` at band radius
    /// `rho`, so even the first verification performs no allocation.
    pub fn with_query_capacity(m: usize, rho: usize) -> Self {
        let mut s = Self::default();
        if m > 0 {
            let band = rho.min(m - 1);
            let _ = s.dp_rows(2 * band + 3);
            s.grow(Grow::Norm, m);
            s.grow(Grow::Lower, m);
            s.grow(Grow::Upper, m);
            Self::grow_deque(&mut s.min_dq, m, &mut s.alloc_events);
            Self::grow_deque(&mut s.max_dq, m, &mut s.alloc_events);
        }
        s.alloc_events = 0;
        s
    }

    /// How many times any buffer grew since construction. Stable across
    /// calls ⇔ the kernels ran allocation-free.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// The two DTW DP rows, each exactly `len` long. Contents are
    /// arbitrary — the DTW core initializes every cell it reads.
    pub(crate) fn dp_rows(&mut self, len: usize) -> (&mut [f64], &mut [f64]) {
        self.grow(Grow::Prev, len);
        self.grow(Grow::Curr, len);
        (&mut self.prev[..len], &mut self.curr[..len])
    }

    /// Takes the z-norm buffer out of the scratch, loaded with a copy of
    /// `src`. Pair with [`KernelScratch::restore_norm`] so the capacity
    /// survives to the next candidate.
    pub fn take_norm(&mut self, src: &[f64]) -> Vec<f64> {
        self.grow(Grow::Norm, src.len());
        let mut buf = std::mem::take(&mut self.norm);
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    /// Returns a buffer obtained from [`KernelScratch::take_norm`].
    pub fn restore_norm(&mut self, buf: Vec<f64>) {
        self.norm = buf;
    }

    /// The Keogh envelope of `q` at band radius `rho`, computed into the
    /// scratch-owned `(lower, upper)` buffers — the allocation-free
    /// counterpart of [`keogh_envelope`](crate::envelope::keogh_envelope).
    pub fn envelope(&mut self, q: &[f64], rho: usize) -> (&[f64], &[f64]) {
        let m = q.len();
        self.grow(Grow::Lower, m);
        self.grow(Grow::Upper, m);
        Self::grow_deque(&mut self.min_dq, m, &mut self.alloc_events);
        Self::grow_deque(&mut self.max_dq, m, &mut self.alloc_events);
        self.min_dq.clear();
        self.max_dq.clear();
        crate::envelope::envelope_core(
            q,
            rho,
            &mut self.lower[..m],
            &mut self.upper[..m],
            &mut self.min_dq,
            &mut self.max_dq,
        );
        (&self.lower[..m], &self.upper[..m])
    }

    fn grow(&mut self, which: Grow, len: usize) {
        let buf = match which {
            Grow::Prev => &mut self.prev,
            Grow::Curr => &mut self.curr,
            Grow::Norm => &mut self.norm,
            Grow::Lower => &mut self.lower,
            Grow::Upper => &mut self.upper,
        };
        if buf.capacity() < len {
            self.alloc_events += 1;
            buf.reserve(len - buf.len());
        }
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
    }

    fn grow_deque(dq: &mut VecDeque<usize>, len: usize, events: &mut u64) {
        if dq.capacity() < len {
            *events += 1;
            dq.reserve(len - dq.len());
        }
    }
}

#[derive(Clone, Copy)]
enum Grow {
    Prev,
    Curr,
    Norm,
    Lower,
    Upper,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::keogh_envelope;

    #[test]
    fn dp_rows_grow_once() {
        let mut s = KernelScratch::new();
        let _ = s.dp_rows(16);
        let after_first = s.alloc_events();
        assert!(after_first >= 1, "cold rows must count their growth");
        for _ in 0..10 {
            let (p, c) = s.dp_rows(16);
            assert_eq!(p.len(), 16);
            assert_eq!(c.len(), 16);
        }
        let _ = s.dp_rows(8); // shrinking reuses the larger buffer
        assert_eq!(s.alloc_events(), after_first, "warm rows must not grow");
        let _ = s.dp_rows(64);
        assert!(s.alloc_events() > after_first, "larger request grows again");
    }

    #[test]
    fn with_query_capacity_is_pre_grown() {
        let mut s = KernelScratch::with_query_capacity(128, 8);
        assert_eq!(s.alloc_events(), 0, "pre-growth is not an event");
        let _ = s.dp_rows(2 * 8 + 3);
        let q: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let _ = s.envelope(&q, 8);
        let buf = s.take_norm(&q);
        s.restore_norm(buf);
        assert_eq!(s.alloc_events(), 0, "pre-grown scratch never allocates");
    }

    #[test]
    fn take_restore_norm_round_trips_capacity() {
        let mut s = KernelScratch::new();
        let src = [1.0, 2.0, 3.0];
        let buf = s.take_norm(&src);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        let events = s.alloc_events();
        s.restore_norm(buf);
        for _ in 0..5 {
            let buf = s.take_norm(&src);
            s.restore_norm(buf);
        }
        assert_eq!(s.alloc_events(), events, "warm norm buffer must not grow");
    }

    #[test]
    fn scratch_envelope_matches_allocating_envelope() {
        let q: Vec<f64> = (0..97).map(|i| (((i * 37) % 23) as f64) * 0.7 - 8.0).collect();
        let mut s = KernelScratch::new();
        for rho in [0usize, 1, 5, 48, 200] {
            let (le, ue) = keogh_envelope(&q, rho);
            let (ls, us) = s.envelope(&q, rho);
            assert_eq!(ls, &le[..], "lower mismatch rho={rho}");
            assert_eq!(us, &ue[..], "upper mismatch rho={rho}");
        }
        let warm = s.alloc_events();
        let _ = s.envelope(&q, 3);
        assert_eq!(s.alloc_events(), warm, "warm envelope must not allocate");
    }

    #[test]
    fn empty_envelope() {
        let mut s = KernelScratch::new();
        let (l, u) = s.envelope(&[], 4);
        assert!(l.is_empty() && u.is_empty());
    }
}
