//! Generalized DTW (GDTW) — band-constrained DTW over an arbitrary
//! point-to-point cost, after Neamtu et al. (ICDE 2018, the paper's
//! reference \[21\]) and the "more distance measures" future work of §X.
//!
//! The warping recurrence is cost-agnostic: only the per-cell term
//! `point(a_i, b_j)` changes. Accumulated costs are returned in the raw
//! (un-rooted) domain; callers that want a metric-style value apply the
//! appropriate root themselves (e.g. `sqrt` for squared-ED points).

use crate::dtw::banded_core;
use crate::scratch::KernelScratch;

/// Banded DTW with a caller-supplied point cost; returns the accumulated
/// cost along the optimal path.
///
/// `point` must be non-negative for early abandoning in
/// [`gdtw_banded_early_abandon`] to be sound; this unbounded entry point
/// only requires it to be finite.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
pub fn gdtw_banded<F>(a: &[f64], b: &[f64], rho: usize, point: F) -> f64
where
    F: Fn(f64, f64) -> f64,
{
    gdtw_banded_early_abandon(a, b, rho, f64::INFINITY, point)
        .expect("unbounded GDTW cannot abandon")
}

/// Early-abandoning banded GDTW: `Some(cost)` iff the accumulated cost is
/// `≤ threshold`; abandons once every cell of a row exceeds it (sound
/// because non-negative point costs make paths monotone).
///
/// Allocates its DP rows per call; hot paths use
/// [`gdtw_banded_early_abandon_scratch`] with a per-worker
/// [`KernelScratch`].
pub fn gdtw_banded_early_abandon<F>(
    a: &[f64],
    b: &[f64],
    rho: usize,
    threshold: f64,
    point: F,
) -> Option<f64>
where
    F: Fn(f64, f64) -> f64,
{
    gdtw_banded_early_abandon_scratch(a, b, rho, threshold, &mut KernelScratch::new(), point)
}

/// [`gdtw_banded_early_abandon`] over reusable scratch rows — the same
/// branch-peeled DP core as the classic DTW kernel, just with the point
/// cost abstracted.
pub fn gdtw_banded_early_abandon_scratch<F>(
    a: &[f64],
    b: &[f64],
    rho: usize,
    threshold: f64,
    scratch: &mut KernelScratch,
    point: F,
) -> Option<f64>
where
    F: Fn(f64, f64) -> f64,
{
    assert_eq!(a.len(), b.len(), "GDTW over unequal lengths");
    let m = a.len();
    if m == 0 {
        return (0.0 <= threshold).then_some(0.0);
    }
    let band = rho.min(m - 1);
    let width = 2 * band + 1;
    let (prev, curr) = scratch.dp_rows(width + 2);
    banded_core(a, b, band, threshold, prev, curr, point)
}

/// L1 (Manhattan) point cost.
#[inline]
pub fn point_l1(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

/// Squared-Euclidean point cost (the classic DTW term).
#[inline]
pub fn point_l2_sq(a: f64, b: f64) -> f64 {
    let d = a - b;
    d * d
}

/// Binary (edit-style) point cost: 0 within `tol`, 1 otherwise — the ERP/
/// EDR-flavoured cost GDTW subsumes.
#[inline]
pub fn point_binary(tol: f64) -> impl Fn(f64, f64) -> f64 {
    move |a, b| if (a - b).abs() <= tol { 0.0 } else { 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw_banded;

    fn series_a() -> Vec<f64> {
        (0..40).map(|i| (i as f64 * 0.31).sin() * 2.0).collect()
    }
    fn series_b() -> Vec<f64> {
        (0..40).map(|i| (i as f64 * 0.29).cos() * 2.0).collect()
    }

    #[test]
    fn l2_sq_point_cost_reproduces_classic_dtw() {
        let (a, b) = (series_a(), series_b());
        for rho in [0usize, 1, 4, 10] {
            let classic = dtw_banded(&a, &b, rho);
            let generic = gdtw_banded(&a, &b, rho, point_l2_sq).sqrt();
            assert!(
                (classic - generic).abs() < 1e-9,
                "rho={rho}: classic {classic} vs generic {generic}"
            );
        }
    }

    #[test]
    fn l1_dtw_on_known_example() {
        // a = (0, 2, 0), b = (0, 0, 2): with ρ ≥ 1 the optimal path
        // ((1,1)·(1,2)·(2,3)·(3,3)) aligns the 2s for free but must still
        // pay |a_3 − b_3| = 2 at the mandatory end-point alignment.
        let a = [0.0, 2.0, 0.0];
        let b = [0.0, 0.0, 2.0];
        assert_eq!(gdtw_banded(&a, &b, 1, point_l1), 2.0);
        // ρ = 0 forces the diagonal: |2−0| + |0−2| = 4.
        assert_eq!(gdtw_banded(&a, &b, 0, point_l1), 4.0);
    }

    #[test]
    fn binary_cost_counts_mismatches() {
        let a = [1.0, 5.0, 1.0, 1.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        // Diagonal only: exactly one point differs beyond tol.
        assert_eq!(gdtw_banded(&a, &b, 0, point_binary(0.5)), 1.0);
        assert_eq!(gdtw_banded(&a, &a, 0, point_binary(0.0)), 0.0);
    }

    #[test]
    fn early_abandon_consistency() {
        let (a, b) = (series_a(), series_b());
        let exact = gdtw_banded(&a, &b, 5, point_l1);
        assert_eq!(gdtw_banded_early_abandon(&a, &b, 5, exact + 1e-9, point_l1), Some(exact));
        assert!(gdtw_banded_early_abandon(&a, &b, 5, exact * 0.99, point_l1).is_none());
    }

    #[test]
    fn wider_band_never_increases_cost() {
        let (a, b) = (series_a(), series_b());
        let mut last = f64::INFINITY;
        for rho in 0..8 {
            let c = gdtw_banded(&a, &b, rho, point_l1);
            assert!(c <= last + 1e-12);
            last = c;
        }
    }

    #[test]
    fn empty_inputs_cost_zero() {
        assert_eq!(gdtw_banded(&[], &[], 3, point_l1), 0.0);
    }

    #[test]
    fn scratch_variant_matches_and_stays_allocation_free() {
        let (a, b) = (series_a(), series_b());
        let mut scratch = KernelScratch::new();
        let _ = gdtw_banded_early_abandon_scratch(&a, &b, 5, f64::INFINITY, &mut scratch, point_l1);
        let warm = scratch.alloc_events();
        for rho in [0usize, 2, 5] {
            let plain = gdtw_banded_early_abandon(&a, &b, rho, f64::INFINITY, point_l1);
            let scr = gdtw_banded_early_abandon_scratch(
                &a,
                &b,
                rho,
                f64::INFINITY,
                &mut scratch,
                point_l1,
            );
            assert_eq!(plain.map(f64::to_bits), scr.map(f64::to_bits), "rho={rho}");
        }
        assert_eq!(scratch.alloc_events(), warm, "warm GDTW must be allocation-free");
    }
}
