//! Sakoe–Chiba band-constrained Dynamic Time Warping.
//!
//! Definition (§II-A): squared point costs accumulated along the optimal
//! warping path, alignment pairs restricted to `|i − j| ≤ ρ`; the distance
//! is the square root of the cumulative cost. `ρ = 0` degenerates to ED.

use crate::scratch::KernelScratch;

/// Banded DTW distance between equal-length sequences.
///
/// Runs in O(m·(2ρ+1)) time and O(m) space. Returns `f64::INFINITY` only
/// when both inputs are non-empty but no path exists (cannot happen for
/// equal lengths and ρ ≥ 0) — for empty inputs it returns 0.
pub fn dtw_banded(a: &[f64], b: &[f64], rho: usize) -> f64 {
    dtw_banded_early_abandon(a, b, rho, f64::INFINITY).expect("unbounded DTW cannot abandon").sqrt()
}

/// Early-abandoning banded DTW on **squared** threshold.
///
/// Returns `Some(cost²)` iff the squared DTW cost is `≤ threshold_sq`;
/// abandons (returns `None`) as soon as every cell of the current row
/// exceeds the threshold, since costs are non-decreasing along any path.
///
/// Allocates its DP rows per call; hot paths use
/// [`dtw_banded_early_abandon_scratch`] with a per-worker
/// [`KernelScratch`].
///
/// # Panics
/// Panics if `a.len() != b.len()` (the subsequence-matching setting always
/// compares equal lengths).
pub fn dtw_banded_early_abandon(
    a: &[f64],
    b: &[f64],
    rho: usize,
    threshold_sq: f64,
) -> Option<f64> {
    dtw_banded_early_abandon_scratch(a, b, rho, threshold_sq, &mut KernelScratch::new())
}

/// [`dtw_banded_early_abandon`] over reusable scratch rows: the
/// allocation-free hot path. Bit-identical to the scalar kernel (the
/// property suite compares `to_bits`).
pub fn dtw_banded_early_abandon_scratch(
    a: &[f64],
    b: &[f64],
    rho: usize,
    threshold_sq: f64,
    scratch: &mut KernelScratch,
) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "DTW over unequal lengths");
    let m = a.len();
    if m == 0 {
        return (0.0 <= threshold_sq).then_some(0.0);
    }
    let band = rho.min(m - 1);
    let width = 2 * band + 1;
    let (prev, curr) = scratch.dp_rows(width + 2);
    banded_core(a, b, band, threshold_sq, prev, curr, |x, y| {
        let d = x - y;
        d * d
    })
}

/// The branch-peeled banded DP core shared by DTW and GDTW.
///
/// Layout: `row[k]` holds the cost of column `j = i - band + k`, so the
/// window is stationary in `k` while it slides in `j`. Neighbours of cell
/// `(i, j)` at index `k`: up `(i-1, j)` → `prev[k+1]`, diagonal
/// `(i-1, j-1)` → `prev[k]`, left `(i, j-1)` → `curr[k-1]`.
///
/// The hot loop carries no boundary branches: row 0 is peeled entirely
/// (only the left neighbour exists, so the row is a running prefix sum),
/// and each later row peels only its first band cell, whose missing
/// neighbours are covered by the ∞ padding — every cell a row does *not*
/// write was reset to ∞, so `prev[k0]` reads ∞ exactly when the diagonal
/// neighbour is out of band. The interior runs over pre-sliced windows of
/// `prev`/`curr`/`b` (bounds checks hoisted), with the left neighbour
/// carried in a register.
///
/// Preconditions: `m ≥ 1`, `band ≤ m - 1`, both rows exactly
/// `2·band + 3` long (one ∞ pad past each band edge). Row contents may
/// be arbitrary on entry.
#[inline(always)]
pub(crate) fn banded_core<F: Fn(f64, f64) -> f64>(
    a: &[f64],
    b: &[f64],
    band: usize,
    threshold: f64,
    prev: &mut [f64],
    curr: &mut [f64],
    point: F,
) -> Option<f64> {
    let m = a.len();
    let width = 2 * band + 1;
    debug_assert!(m >= 1 && band < m);
    debug_assert_eq!(prev.len(), width + 2);
    debug_assert_eq!(curr.len(), width + 2);
    let inf = f64::INFINITY;
    let (mut prev, mut curr) = (prev, curr);

    // Row 0 peeled: cell (0, 0) costs point(a₀, b₀); every later cell of
    // the row only has a left neighbour, so the row is a prefix sum.
    curr.fill(inf);
    let a0 = a[0];
    let mut running = point(a0, b[0]);
    debug_assert!(running >= 0.0, "negative point cost breaks early abandoning");
    curr[band] = running;
    let mut row_min = inf.min(running);
    for (k, &bv) in (band + 1..).zip(&b[1..=band]) {
        let d = point(a0, bv);
        debug_assert!(d >= 0.0, "negative point cost breaks early abandoning");
        running += d;
        curr[k] = running;
        row_min = row_min.min(running);
    }
    if row_min > threshold {
        return None;
    }
    std::mem::swap(&mut prev, &mut curr);

    for (i, &ai) in a.iter().enumerate().skip(1) {
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band).min(m - 1);
        let k0 = j_lo + band - i;
        curr.fill(inf);
        // First band cell peeled: it never has a left neighbour, and
        // `prev[k0]` is ∞ exactly when the diagonal is out of band, so one
        // expression covers both the j_lo == 0 and j_lo > 0 cases.
        let d = point(ai, b[j_lo]);
        debug_assert!(d >= 0.0, "negative point cost breaks early abandoning");
        let mut left = prev[k0 + 1].min(prev[k0]) + d;
        curr[k0] = left;
        let mut row_min = inf.min(left);
        // Interior: branch-free over pre-sliced windows.
        let len = j_hi - j_lo;
        let up = &prev[k0 + 2..k0 + 2 + len];
        let diag = &prev[k0 + 1..k0 + 1 + len];
        let bs = &b[j_lo + 1..j_lo + 1 + len];
        let out = &mut curr[k0 + 1..k0 + 1 + len];
        for t in 0..len {
            let d = point(ai, bs[t]);
            debug_assert!(d >= 0.0, "negative point cost breaks early abandoning");
            let cost = up[t].min(diag[t]).min(left) + d;
            out[t] = cost;
            row_min = row_min.min(cost);
            left = cost;
        }
        if row_min > threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let total = prev[band];
    (total <= threshold).then_some(total)
}

/// The pre-optimization scalar kernel: per-cell boundary branches inside
/// the band loop, DP rows allocated per call. Retained as the
/// bit-identity oracle for [`dtw_banded_early_abandon_scratch`] and as
/// the bench reporter's old-vs-new baseline.
#[allow(clippy::needless_range_loop)] // band-relative indexing reads clearer with explicit i/j
pub fn dtw_banded_early_abandon_scalar(
    a: &[f64],
    b: &[f64],
    rho: usize,
    threshold_sq: f64,
) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "DTW over unequal lengths");
    let m = a.len();
    if m == 0 {
        return (0.0 <= threshold_sq).then_some(0.0);
    }
    let band = rho.min(m - 1);
    let width = 2 * band + 1;
    // prev[k] holds cost for column j = i-1 - band + k of the previous row.
    let inf = f64::INFINITY;
    let mut prev = vec![inf; width + 2];
    let mut curr = vec![inf; width + 2];

    for i in 0..m {
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band).min(m - 1);
        let mut row_min = inf;
        curr.iter_mut().for_each(|c| *c = inf);
        for j in j_lo..=j_hi {
            // Index within the band-relative buffer: k = j - (i - band).
            let k = j + band - i; // in [0, width)
            let d = a[i] - b[j];
            let d = d * d;
            let best_prev = if i == 0 && j == 0 {
                0.0
            } else {
                // Neighbours: (i-1, j) → prev[k+1]; (i-1, j-1) → prev[k];
                // (i, j-1) → curr[k-1]. Band-relative because the window
                // shifts right by one each row.
                let up = if i > 0 && k + 1 < width + 1 { prev[k + 1] } else { inf };
                let diag = if i > 0 && j > 0 { prev[k] } else { inf };
                let left = if j > 0 && k > 0 { curr[k - 1] } else { inf };
                up.min(diag).min(left)
            };
            let cost = best_prev + d;
            curr[k] = cost;
            if cost < row_min {
                row_min = cost;
            }
        }
        if row_min > threshold_sq {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let final_k = (m - 1) + band - (m - 1); // = band
    let total = prev[final_k];
    (total <= threshold_sq).then_some(total)
}

/// Reference quadratic implementation (full matrix, no band buffer tricks)
/// — used by tests and available for validation.
#[allow(clippy::needless_range_loop)]
pub fn dtw_banded_reference(a: &[f64], b: &[f64], rho: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    let m = a.len();
    if m == 0 {
        return 0.0;
    }
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; m + 1]; m + 1];
    dp[0][0] = 0.0;
    for i in 1..=m {
        for j in 1..=m {
            if i.abs_diff(j) > rho {
                continue;
            }
            let d = a[i - 1] - b[j - 1];
            let d = d * d;
            let best = dp[i - 1][j - 1].min(dp[i - 1][j]).min(dp[i][j - 1]);
            if best < inf {
                dp[i][j] = best + d;
            }
        }
    }
    dp[m][m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ed::ed;

    #[test]
    fn zero_band_equals_ed() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [0.5, 2.0, 2.5, 7.0];
        assert!((dtw_banded(&a, &b, 0) - ed(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn identical_series_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw_banded(&a, &a, 2), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw_banded(&[], &[], 3), 0.0);
    }

    #[test]
    fn warping_reduces_distance_of_shifted_series() {
        // b is a one-step shifted copy of a; DTW with band ≥ 1 should align
        // them nearly perfectly while ED cannot.
        let a: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        let b: Vec<f64> = (0..50).map(|i| (((i + 1) as f64) * 0.3).sin()).collect();
        let d_ed = ed(&a, &b);
        let d_dtw = dtw_banded(&a, &b, 3);
        assert!(d_dtw < d_ed * 0.5, "dtw {d_dtw} vs ed {d_ed}");
    }

    #[test]
    fn banded_matches_reference() {
        // Pseudo-random but deterministic inputs.
        let a: Vec<f64> = (0..40).map(|i| (((i * 73) % 31) as f64) * 0.37 - 4.0).collect();
        let b: Vec<f64> = (0..40).map(|i| (((i * 41) % 29) as f64) * 0.53 - 5.0).collect();
        for rho in [0usize, 1, 2, 5, 12, 39, 100] {
            let fast = dtw_banded(&a, &b, rho);
            let slow = dtw_banded_reference(&a, &b, rho);
            assert!((fast - slow).abs() < 1e-9, "rho={rho}: fast {fast} vs reference {slow}");
        }
    }

    #[test]
    fn wider_band_never_increases_distance() {
        let a: Vec<f64> = (0..30).map(|i| ((i * 7 % 13) as f64).cos() * 3.0).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i * 5 % 11) as f64).sin() * 3.0).collect();
        let mut last = f64::INFINITY;
        for rho in 0..10 {
            let d = dtw_banded(&a, &b, rho);
            assert!(d <= last + 1e-12, "rho={rho} increased distance");
            last = d;
        }
    }

    #[test]
    fn early_abandon_consistency() {
        let a: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).sin() * 2.0).collect();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.9).cos() * 2.0).collect();
        let exact = dtw_banded(&a, &b, 4);
        let sq = exact * exact;
        assert!(dtw_banded_early_abandon(&a, &b, 4, sq + 1e-9).is_some());
        assert!(dtw_banded_early_abandon(&a, &b, 4, sq * 0.99 - 1e-9).is_none());
    }

    #[test]
    fn scratch_kernel_bit_identical_to_scalar() {
        let a: Vec<f64> = (0..60).map(|i| (((i * 73) % 31) as f64) * 0.37 - 4.0).collect();
        let b: Vec<f64> = (0..60).map(|i| (((i * 41) % 29) as f64) * 0.53 - 5.0).collect();
        let mut scratch = KernelScratch::new();
        for rho in [0usize, 1, 2, 5, 12, 59, 100] {
            for thr in [0.0, 1.0, 50.0, 1e4, f64::INFINITY] {
                let fast = dtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch);
                let slow = dtw_banded_early_abandon_scalar(&a, &b, rho, thr);
                assert_eq!(
                    fast.map(f64::to_bits),
                    slow.map(f64::to_bits),
                    "rho={rho} thr={thr}: {fast:?} vs {slow:?}"
                );
            }
        }
    }

    #[test]
    fn warm_scratch_never_allocates() {
        let a: Vec<f64> = (0..48).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..48).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut scratch = KernelScratch::new();
        let _ = dtw_banded_early_abandon_scratch(&a, &b, 6, f64::INFINITY, &mut scratch);
        let warm = scratch.alloc_events();
        for rho in [0usize, 3, 6] {
            for _ in 0..20 {
                let _ = dtw_banded_early_abandon_scratch(&a, &b, rho, 1e6, &mut scratch);
            }
        }
        assert_eq!(scratch.alloc_events(), warm, "warm DTW must be allocation-free");
    }

    #[test]
    fn band_larger_than_series_is_clamped() {
        let a = [1.0, 2.0];
        let b = [2.0, 1.0];
        let d1 = dtw_banded(&a, &b, 1);
        let d_huge = dtw_banded(&a, &b, 1_000_000);
        assert!((d1 - d_huge).abs() < 1e-12);
    }
}
