//! Euclidean distance kernels.

/// Squared Euclidean distance between equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release the shorter
/// length governs (zip semantics) — callers are expected to pass
/// equal-length slices.
#[inline]
pub fn ed_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "ED over unequal lengths");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance `ED(S, Q) = sqrt(Σ (sᵢ − qᵢ)²)`.
#[inline]
pub fn ed(a: &[f64], b: &[f64]) -> f64 {
    ed_sq(a, b).sqrt()
}

/// Chunk width of the early-abandoning accumulation passes: the threshold
/// is checked once per `LANES` elements instead of once per element. The
/// verdict and any returned value are unchanged because the accumulator is
/// non-decreasing — exceeding the threshold mid-chunk implies exceeding it
/// at the chunk boundary too.
const LANES: usize = 8;

/// Early-abandoning squared ED: returns `Some(d²)` iff `d² ≤ threshold_sq`,
/// abandoning the accumulation as soon as it exceeds the threshold.
///
/// Chunked accumulation (one threshold check per `LANES` elements);
/// bit-identical to [`ed_early_abandon_scalar`].
#[inline]
pub fn ed_early_abandon(a: &[f64], b: &[f64], threshold_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for (x, y) in ca.iter().zip(cb) {
            let d = x - y;
            acc += d * d;
        }
        if acc > threshold_sq {
            return None;
        }
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        let d = x - y;
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// The pre-optimization per-element-check ED kernel, retained as the
/// bit-identity oracle and the bench reporter's old-vs-new baseline.
#[inline]
pub fn ed_early_abandon_scalar(a: &[f64], b: &[f64], threshold_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// Early-abandoning squared ED between the *z-normalized* `s` and an
/// already-normalized query `q_norm`, normalizing `s` on the fly from the
/// provided statistics (the UCR Suite trick: no materialized Ŝ).
///
/// With `sigma_s == 0`, `s` normalizes to all-zeros.
///
/// Chunked accumulation (one threshold check per `LANES` elements);
/// bit-identical to [`ed_norm_early_abandon_scalar`].
#[inline]
pub fn ed_norm_early_abandon(
    s: &[f64],
    q_norm: &[f64],
    mu_s: f64,
    sigma_s: f64,
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(s.len(), q_norm.len());
    let mut acc = 0.0;
    if sigma_s == 0.0 {
        let mut qc = q_norm.chunks_exact(LANES);
        for cq in &mut qc {
            for &q in cq {
                acc += q * q;
            }
            if acc > threshold_sq {
                return None;
            }
        }
        for &q in qc.remainder() {
            acc += q * q;
            if acc > threshold_sq {
                return None;
            }
        }
        return Some(acc);
    }
    let inv = 1.0 / sigma_s;
    let mut sc = s.chunks_exact(LANES);
    let mut qc = q_norm.chunks_exact(LANES);
    for (cs, cq) in (&mut sc).zip(&mut qc) {
        for (x, q) in cs.iter().zip(cq) {
            let d = (x - mu_s) * inv - q;
            acc += d * d;
        }
        if acc > threshold_sq {
            return None;
        }
    }
    for (x, q) in sc.remainder().iter().zip(qc.remainder()) {
        let d = (x - mu_s) * inv - q;
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// The pre-optimization per-element-check normalize-on-the-fly ED kernel,
/// retained as the bit-identity oracle and the bench reporter's old-vs-new
/// baseline.
#[inline]
pub fn ed_norm_early_abandon_scalar(
    s: &[f64],
    q_norm: &[f64],
    mu_s: f64,
    sigma_s: f64,
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(s.len(), q_norm.len());
    let mut acc = 0.0;
    if sigma_s == 0.0 {
        for &q in q_norm {
            acc += q * q;
            if acc > threshold_sq {
                return None;
            }
        }
        return Some(acc);
    }
    let inv = 1.0 / sigma_s;
    for (x, q) in s.iter().zip(q_norm.iter()) {
        let d = (x - mu_s) * inv - q;
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// Early-abandoning normalized ED that visits coordinates in a caller-chosen
/// `order` (UCR Suite reorders by `|q̂ᵢ|` descending so large contributions
/// are accumulated first, abandoning sooner).
///
/// Deliberately *not* chunked: the gather-indexed access already defeats
/// contiguous loads, and the reorder exists to abandon as early as
/// possible — batching its threshold checks would trade away exactly the
/// early exits it buys.
#[inline]
pub fn ed_norm_early_abandon_ordered(
    s: &[f64],
    q_norm: &[f64],
    order: &[usize],
    mu_s: f64,
    sigma_s: f64,
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(s.len(), q_norm.len());
    debug_assert_eq!(s.len(), order.len());
    let mut acc = 0.0;
    if sigma_s == 0.0 {
        for &q in q_norm {
            acc += q * q;
            if acc > threshold_sq {
                return None;
            }
        }
        return Some(acc);
    }
    let inv = 1.0 / sigma_s;
    for &i in order {
        let d = (s[i] - mu_s) * inv - q_norm[i];
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// Descending-magnitude coordinate order of a normalized query — the
/// abandonment-friendly order used by `ed_norm_early_abandon_ordered`.
pub fn abandon_order(q_norm: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..q_norm.len()).collect();
    order.sort_by(|&a, &b| {
        q_norm[b].abs().partial_cmp(&q_norm[a].abs()).expect("normalized query contains NaN")
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{mean_std, z_normalized};

    #[test]
    fn ed_known_value() {
        assert_eq!(ed(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(ed_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(ed(&[], &[]), 0.0);
    }

    #[test]
    fn early_abandon_agrees_when_within() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.5, 1.0, 3.25, 5.0];
        let exact = ed_sq(&a, &b);
        assert_eq!(ed_early_abandon(&a, &b, exact), Some(exact));
        assert_eq!(ed_early_abandon(&a, &b, exact + 1e-9), Some(exact));
        assert_eq!(ed_early_abandon(&a, &b, exact - 1e-9), None);
    }

    #[test]
    fn norm_early_abandon_matches_materialized() {
        let s = [5.0, 9.0, 1.0, 4.0, 7.0];
        let q = [0.0, 2.0, -1.0, 0.5, 1.0];
        let q_norm = z_normalized(&q);
        let s_norm = z_normalized(&s);
        let exact = ed_sq(&s_norm, &q_norm);
        let (mu, sigma) = mean_std(&s);
        let got = ed_norm_early_abandon(&s, &q_norm, mu, sigma, exact + 1e-9).unwrap();
        assert!((got - exact).abs() < 1e-9);
        assert!(ed_norm_early_abandon(&s, &q_norm, mu, sigma, exact - 1e-6).is_none());
    }

    #[test]
    fn norm_early_abandon_constant_candidate() {
        let s = [4.0; 6];
        let q = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let q_norm = z_normalized(&q);
        // Ŝ = 0 ⇒ distance² = Σ q̂² = m (population-normalized).
        let got = ed_norm_early_abandon(&s, &q_norm, 4.0, 0.0, 1e18).unwrap();
        assert!((got - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ordered_variant_same_result() {
        let s = [5.0, 9.0, 1.0, 4.0, 7.0, -2.0];
        let q = [0.0, 2.0, -1.0, 0.5, 1.0, 0.25];
        let q_norm = z_normalized(&q);
        let (mu, sigma) = mean_std(&s);
        let order = abandon_order(&q_norm);
        let plain = ed_norm_early_abandon(&s, &q_norm, mu, sigma, 1e18).unwrap();
        let ordered = ed_norm_early_abandon_ordered(&s, &q_norm, &order, mu, sigma, 1e18).unwrap();
        assert!((plain - ordered).abs() < 1e-9);
    }

    #[test]
    fn abandon_order_is_descending_magnitude() {
        let q = [0.1, -5.0, 2.0, 0.0];
        let order = abandon_order(&q);
        assert_eq!(order, vec![1, 2, 0, 3]);
    }
}
