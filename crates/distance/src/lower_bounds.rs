//! Cascading lower bounds for DTW (and ED) pruning.
//!
//! All bounds return **squared** values so they compose with the squared
//! thresholds of the early-abandoning kernels:
//!
//! `LB_Kim-FL ≤ LB_Keogh ≤ DTW²` and `LB_PAA ≤ DTW²` (Eq. 3).

/// LB_Kim (first/last variant): squared distance contributed by the first
/// and last aligned points, which every warping path must pay.
#[inline]
pub fn lb_kim_fl_sq(s: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(s.len(), q.len());
    if s.is_empty() {
        return 0.0;
    }
    let m = s.len();
    let df = s[0] - q[0];
    let dl = s[m - 1] - q[m - 1];
    df * df + dl * dl
}

/// Per-point LB_Keogh excursion beyond the envelope, branch-free.
///
/// At most one of the two clamped deltas is non-zero, so their sum is the
/// excursion; squaring it reproduces the branchy `(v − u)²` / `(v − l)²`
/// cases bit-for-bit (`(l − v)² == (v − l)²` exactly, and adding `+0.0`
/// to a non-negative accumulator is a no-op at the bit level).
#[inline(always)]
fn keogh_excursion(v: f64, l: f64, u: f64) -> f64 {
    (v - u).max(0.0) + (l - v).max(0.0)
}

/// LB_Keogh squared: `Σᵢ (sᵢ − uᵢ)²` when `sᵢ > uᵢ`, `(sᵢ − lᵢ)²` when
/// `sᵢ < lᵢ`, else 0 — against the query envelope `(lower, upper)`.
///
/// Branch-free body; bit-identical to [`lb_keogh_sq_scalar`].
#[inline]
pub fn lb_keogh_sq(s: &[f64], lower: &[f64], upper: &[f64]) -> f64 {
    debug_assert_eq!(s.len(), lower.len());
    debug_assert_eq!(s.len(), upper.len());
    let mut acc = 0.0;
    for ((&v, &l), &u) in s.iter().zip(lower).zip(upper) {
        let d = keogh_excursion(v, l, u);
        acc += d * d;
    }
    acc
}

/// Early-abandoning LB_Keogh: `None` as soon as the accumulation exceeds
/// `threshold_sq`.
///
/// Runs the branch-free body over fixed-width chunks, checking the
/// threshold once per chunk instead of once per element — the verdict and
/// the returned accumulation are unchanged because the accumulator is
/// non-decreasing (bit-identical to [`lb_keogh_sq_early_abandon_scalar`]).
#[inline]
pub fn lb_keogh_sq_early_abandon(
    s: &[f64],
    lower: &[f64],
    upper: &[f64],
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(s.len(), lower.len());
    debug_assert_eq!(s.len(), upper.len());
    const LANES: usize = 8;
    let mut acc = 0.0;
    let mut sc = s.chunks_exact(LANES);
    let mut lc = lower.chunks_exact(LANES);
    let mut uc = upper.chunks_exact(LANES);
    for ((cs, cl), cu) in (&mut sc).zip(&mut lc).zip(&mut uc) {
        for ((&v, &l), &u) in cs.iter().zip(cl).zip(cu) {
            let d = keogh_excursion(v, l, u);
            acc += d * d;
        }
        if acc > threshold_sq {
            return None;
        }
    }
    for ((&v, &l), &u) in sc.remainder().iter().zip(lc.remainder()).zip(uc.remainder()) {
        let d = keogh_excursion(v, l, u);
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// The pre-optimization scalar LB_Keogh (branchy per-element cases and a
/// per-element threshold check). Retained as the bit-identity oracle and
/// the bench reporter's old-vs-new baseline.
#[inline]
pub fn lb_keogh_sq_early_abandon_scalar(
    s: &[f64],
    lower: &[f64],
    upper: &[f64],
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(s.len(), lower.len());
    debug_assert_eq!(s.len(), upper.len());
    let mut acc = 0.0;
    for i in 0..s.len() {
        let v = s[i];
        if v > upper[i] {
            let d = v - upper[i];
            acc += d * d;
        } else if v < lower[i] {
            let d = v - lower[i];
            acc += d * d;
        }
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// Branchy counterpart of [`lb_keogh_sq`], kept as its bit-identity
/// oracle.
#[inline]
pub fn lb_keogh_sq_scalar(s: &[f64], lower: &[f64], upper: &[f64]) -> f64 {
    debug_assert_eq!(s.len(), lower.len());
    debug_assert_eq!(s.len(), upper.len());
    let mut acc = 0.0;
    for i in 0..s.len() {
        let v = s[i];
        if v > upper[i] {
            let d = v - upper[i];
            acc += d * d;
        } else if v < lower[i] {
            let d = v - lower[i];
            acc += d * d;
        }
    }
    acc
}

/// LB_PAA squared (Eq. 3 of the paper, from Zhu & Shasha): windows of width
/// `w`; `µ_s`, `µ_l`, `µ_u` are the per-window means of the candidate and of
/// the envelope series. `LB_PAA ≤ DTW_ρ²`.
#[inline]
pub fn lb_paa_sq(mu_s: &[f64], mu_l: &[f64], mu_u: &[f64], w: usize) -> f64 {
    debug_assert_eq!(mu_s.len(), mu_l.len());
    debug_assert_eq!(mu_s.len(), mu_u.len());
    let wf = w as f64;
    let mut acc = 0.0;
    for i in 0..mu_s.len() {
        let v = mu_s[i];
        if v > mu_u[i] {
            let d = v - mu_u[i];
            acc += wf * d * d;
        } else if v < mu_l[i] {
            let d = v - mu_l[i];
            acc += wf * d * d;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw_banded;
    use crate::envelope::keogh_envelope;

    fn window_means(xs: &[f64], w: usize) -> Vec<f64> {
        xs.chunks_exact(w).map(|c| c.iter().sum::<f64>() / w as f64).collect()
    }

    fn pseudo(n: usize, a: u64, b: u64) -> Vec<f64> {
        (0..n).map(|i| (((i as u64 * a + b) % 97) as f64) * 0.21 - 10.0).collect()
    }

    #[test]
    fn kim_fl_below_dtw() {
        for seed in 0..5u64 {
            let s = pseudo(60, 31 + seed, 7);
            let q = pseudo(60, 17 + seed, 3);
            let d = dtw_banded(&s, &q, 5);
            assert!(lb_kim_fl_sq(&s, &q) <= d * d + 1e-9);
        }
    }

    #[test]
    fn keogh_below_dtw() {
        for seed in 0..5u64 {
            let s = pseudo(64, 29 + seed, 11);
            let q = pseudo(64, 13 + seed, 5);
            for rho in [0usize, 2, 6, 15] {
                let (l, u) = keogh_envelope(&q, rho);
                let lb = lb_keogh_sq(&s, &l, &u);
                let d = dtw_banded(&s, &q, rho);
                assert!(
                    lb <= d * d + 1e-9,
                    "LB_Keogh {lb} > DTW² {} (rho={rho}, seed={seed})",
                    d * d
                );
            }
        }
    }

    #[test]
    fn paa_below_dtw() {
        for seed in 0..5u64 {
            let s = pseudo(64, 23 + seed, 19);
            let q = pseudo(64, 37 + seed, 2);
            for rho in [0usize, 3, 8] {
                let (l, u) = keogh_envelope(&q, rho);
                for w in [4usize, 8, 16] {
                    let lb = lb_paa_sq(
                        &window_means(&s, w),
                        &window_means(&l, w),
                        &window_means(&u, w),
                        w,
                    );
                    let d = dtw_banded(&s, &q, rho);
                    assert!(lb <= d * d + 1e-9, "LB_PAA {lb} > DTW² {} (rho={rho}, w={w})", d * d);
                }
            }
        }
    }

    #[test]
    fn paa_below_keogh() {
        // PAA over the envelope is a coarsening of LB_Keogh.
        let s = pseudo(64, 41, 13);
        let q = pseudo(64, 43, 29);
        let (l, u) = keogh_envelope(&q, 4);
        let keogh = lb_keogh_sq(&s, &l, &u);
        let paa = lb_paa_sq(&window_means(&s, 8), &window_means(&l, 8), &window_means(&u, 8), 8);
        assert!(paa <= keogh + 1e-9);
    }

    #[test]
    fn early_abandon_keogh_consistency() {
        let s = pseudo(64, 47, 5);
        let q = pseudo(64, 53, 23);
        let (l, u) = keogh_envelope(&q, 3);
        let exact = lb_keogh_sq(&s, &l, &u);
        assert_eq!(lb_keogh_sq_early_abandon(&s, &l, &u, exact + 1e-9), Some(exact));
        assert_eq!(lb_keogh_sq_early_abandon(&s, &l, &u, exact * 0.5), None);
    }

    #[test]
    fn inside_envelope_is_zero() {
        let q = [1.0, 2.0, 3.0, 2.0, 1.0];
        let (l, u) = keogh_envelope(&q, 2);
        assert_eq!(lb_keogh_sq(&q, &l, &u), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(lb_kim_fl_sq(&[], &[]), 0.0);
        assert_eq!(lb_keogh_sq(&[], &[], &[]), 0.0);
        assert_eq!(lb_paa_sq(&[], &[], &[], 8), 0.0);
    }
}
