//! Distance measures and lower bounds for subsequence matching.
//!
//! Implements everything the matching layer and the baselines need:
//!
//! * [`ed`](mod@ed) — Euclidean distance, plain / squared / early-abandoning /
//!   normalize-on-the-fly variants (the UCR Suite verification kernels),
//! * [`dtw`] — Sakoe–Chiba band-constrained Dynamic Time Warping with
//!   early abandoning (`ρ = 0` degenerates to ED, Definition §II-A),
//! * [`envelope`] — Keogh query envelopes `L`/`U` computed with a
//!   monotonic-deque sliding min/max (O(m) regardless of ρ),
//! * [`lower_bounds`] — LB_Kim-FL, LB_Keogh and LB_PAA (Eq. 3), the
//!   cascading filters used during verification,
//! * [`cascade`] — the shared verification cascade (LB_Kim-FL → LB_Keogh →
//!   early-abandoning banded DTW) with per-stage pruning statistics and
//!   best-so-far threshold threading for top-k queries,
//! * [`lp`] — Lp-norm kernels (Manhattan, general finite p, Chebyshev)
//!   with early abandoning, the "more distance measures" of §X,
//! * [`gdtw`] — generalized DTW over arbitrary point costs (GDTW \[21\]),
//! * [`normalize`] — z-normalization kernels, self-contained so this crate
//!   has no dependencies,
//! * [`scratch`] — [`KernelScratch`], the per-worker grow-only buffer pool
//!   that makes steady-state verification allocation-free.
//!
//! # Conventions
//!
//! All *thresholds* passed into early-abandoning kernels are **squared**
//! distances (`ε²`), because every kernel accumulates squared terms; public
//! entry points returning a distance always return the *unsquared* value.
//!
//! # Optimized kernels and their oracles
//!
//! The hot kernels (banded DTW, ED, LB_Keogh) ship in an optimized form —
//! branch-peeled, chunked, scratch-reusing — alongside their
//! pre-optimization scalar twins (`*_scalar`), which are kept as
//! **bit-identity oracles**: the property suite asserts
//! `optimized(x).map(f64::to_bits) == scalar(x).map(f64::to_bits)` across
//! random inputs, and the bench reporter times old vs. new from the same
//! exports.

pub mod cascade;
pub mod dtw;
pub mod ed;
pub mod envelope;
pub mod gdtw;
pub mod lower_bounds;
pub mod lp;
pub mod normalize;
pub mod scratch;

pub use cascade::{AdaptivePolicy, BestSoFar, CascadeStats, LbCascade};
pub use dtw::{
    dtw_banded, dtw_banded_early_abandon, dtw_banded_early_abandon_scalar,
    dtw_banded_early_abandon_scratch,
};
pub use ed::{
    ed, ed_early_abandon, ed_early_abandon_scalar, ed_norm_early_abandon,
    ed_norm_early_abandon_scalar, ed_sq,
};
pub use envelope::keogh_envelope;
pub use gdtw::{gdtw_banded, gdtw_banded_early_abandon, gdtw_banded_early_abandon_scratch};
pub use lower_bounds::{
    lb_keogh_sq, lb_keogh_sq_early_abandon, lb_keogh_sq_early_abandon_scalar, lb_kim_fl_sq,
    lb_paa_sq,
};
pub use lp::{lp_distance, lp_pow, LpExponent};
pub use normalize::{mean_std, z_normalize, z_normalized};
pub use scratch::KernelScratch;
