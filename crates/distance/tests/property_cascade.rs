//! Property tests of the shared lower-bound cascade: every stage is
//! admissible (never exceeds the true squared DTW/ED distance, so pruning
//! can never lose a match), the stage chain is monotone in tightness where
//! containment holds exactly (ρ = 0, where the envelope degenerates to the
//! query), and the cascade as a whole never lies — mirroring
//! `dtw_early_abandon_never_lies`.

use proptest::prelude::*;

use kvmatch_distance::cascade::{BestSoFar, CascadeStats, LbCascade};
use kvmatch_distance::dtw::dtw_banded;
use kvmatch_distance::ed::ed;
use kvmatch_distance::lower_bounds::{lb_keogh_sq, lb_kim_fl_sq};
use kvmatch_distance::scratch::KernelScratch;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_stage_is_admissible(
        pair in (4usize..40).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..10,
    ) {
        let (s, q) = pair;
        let cascade = LbCascade::new(q.clone(), rho);
        let d_sq = {
            let d = dtw_banded(&s, &q, rho);
            d * d
        };
        let kim = lb_kim_fl_sq(&s, &q);
        let keogh = lb_keogh_sq(&s, cascade.lower(), cascade.upper());
        prop_assert!(kim <= d_sq + 1e-9, "LB_Kim-FL {kim} > DTW² {d_sq}");
        prop_assert!(keogh <= d_sq + 1e-9, "LB_Keogh {keogh} > DTW² {d_sq}");
    }

    #[test]
    fn stage_chain_monotone_in_tightness_rho0(
        pair in (4usize..40).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
    ) {
        // At ρ = 0 the envelope equals the query, so the containment chain
        // LB_Kim-FL ≤ LB_Keogh ≤ DTW² = ED² is exact, stage by stage.
        let (s, q) = pair;
        let cascade = LbCascade::new(q.clone(), 0);
        let kim = lb_kim_fl_sq(&s, &q);
        let keogh = lb_keogh_sq(&s, cascade.lower(), cascade.upper());
        let d = ed(&s, &q);
        prop_assert!(kim <= keogh + 1e-9, "LB_Kim-FL {kim} > LB_Keogh {keogh}");
        prop_assert!(keogh <= d * d + 1e-9, "LB_Keogh {keogh} > ED² {}", d * d);
    }

    #[test]
    fn cascade_never_lies(
        pair in (2usize..30).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..8,
        frac in 0.0f64..2.0,
    ) {
        // Mirror of dtw_early_abandon_never_lies, through the full cascade:
        // acceptance returns the exact squared distance within threshold;
        // pruning (at any stage) implies the exact distance exceeds it.
        let (s, q) = pair;
        let cascade = LbCascade::new(q.clone(), rho);
        let exact = dtw_banded(&s, &q, rho);
        let thr_sq = (exact * frac) * (exact * frac);
        let mut scratch = KernelScratch::new();
        let mut stats = CascadeStats::default();
        match cascade.verify(&s, thr_sq, &mut scratch, &mut stats) {
            Some(d_sq) => {
                prop_assert!((d_sq.sqrt() - exact).abs() < 1e-6);
                prop_assert!(d_sq <= thr_sq + 1e-9);
            }
            None => prop_assert!(exact * exact > thr_sq - 1e-9),
        }
        // Exactly one terminal stage accounted for this candidate.
        prop_assert_eq!(
            stats.pruned_lb_kim + stats.pruned_lb_keogh + stats.full_distance_computations,
            1
        );
    }

    #[test]
    fn skip_kim_agrees_with_full_cascade_when_kim_passes(
        pair in (2usize..30).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..8,
        frac in 0.5f64..2.0,
    ) {
        let (s, q) = pair;
        let cascade = LbCascade::new(q.clone(), rho);
        let exact = dtw_banded(&s, &q, rho);
        let thr_sq = (exact * frac) * (exact * frac);
        let mut a = CascadeStats::default();
        if !cascade.prune_kim(&s, thr_sq, &mut a) {
            let mut scratch = KernelScratch::new();
            let mut b = CascadeStats::default();
            prop_assert_eq!(
                cascade.verify(&s, thr_sq, &mut scratch, &mut a),
                cascade.verify_skip_kim(&s, thr_sq, &mut scratch, &mut b)
            );
        }
    }

    #[test]
    fn best_so_far_threshold_never_widens(
        distances in proptest::collection::vec(0.0f64..100.0, 1..40),
        k in 1usize..6,
    ) {
        // Threading candidates through BestSoFar only ever tightens the
        // effective threshold, and the kept set is exactly the k smallest.
        let mut best = BestSoFar::new(k, f64::INFINITY);
        let mut last_thr = best.threshold_sq();
        for &d in &distances {
            best.offer(d);
            let thr = best.threshold_sq();
            prop_assert!(thr <= last_thr + 1e-12, "threshold widened: {last_thr} → {thr}");
            last_thr = thr;
        }
        let mut sorted = distances.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.truncate(k);
        prop_assert_eq!(best.kept_sq(), sorted);
    }
}
