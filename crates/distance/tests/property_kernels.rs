//! Bit-identity property suite for the optimized kernel pass.
//!
//! The optimized kernels (peeled/branch-free banded DTW, chunked ED and
//! LB_Keogh) are only allowed to differ from their retained scalar twins
//! in *speed*: every test here compares outputs through `f64::to_bits`,
//! so even a one-ulp rounding divergence fails. The suite also pins down
//! the edge cases the chunk/peel rewrites are most likely to break —
//! empty inputs, length-1 series, bands at least as wide as the series,
//! all-identical values — and that adaptive cascade demotion never
//! changes any returned distance.

use proptest::prelude::*;

use kvmatch_distance::cascade::{AdaptivePolicy, CascadeStats, LbCascade};
use kvmatch_distance::dtw::{dtw_banded_early_abandon_scalar, dtw_banded_early_abandon_scratch};
use kvmatch_distance::ed::{
    ed_early_abandon, ed_early_abandon_scalar, ed_norm_early_abandon, ed_norm_early_abandon_scalar,
};
use kvmatch_distance::envelope::keogh_envelope;
use kvmatch_distance::gdtw::{gdtw_banded_early_abandon, gdtw_banded_early_abandon_scratch};
use kvmatch_distance::lower_bounds::{
    lb_keogh_sq, lb_keogh_sq_early_abandon, lb_keogh_sq_early_abandon_scalar, lb_keogh_sq_scalar,
};
use kvmatch_distance::normalize::mean_std;
use kvmatch_distance::scratch::KernelScratch;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

/// `Option<f64>` → comparable bits (abandon vs. accept must also agree).
fn bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dtw_scratch_bit_identical_to_scalar(
        pair in (1usize..48).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..60,
        frac in 0.0f64..2.5,
    ) {
        let (a, b) = pair;
        let mut scratch = KernelScratch::new();
        // Derive thresholds around the exact value so both accept and
        // abandon paths are exercised.
        let exact = dtw_banded_early_abandon_scalar(&a, &b, rho, f64::INFINITY)
            .expect("infinite threshold always accepts");
        for thr in [exact * frac, 0.0, f64::INFINITY] {
            let fast = dtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch);
            let slow = dtw_banded_early_abandon_scalar(&a, &b, rho, thr);
            prop_assert_eq!(bits(fast), bits(slow), "rho={} thr={}", rho, thr);
        }
    }

    #[test]
    fn ed_chunked_bit_identical_to_scalar(
        pair in (1usize..64).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        frac in 0.0f64..2.5,
    ) {
        let (a, b) = pair;
        let exact = ed_early_abandon_scalar(&a, &b, f64::INFINITY).unwrap();
        for thr in [exact * frac, 0.0, f64::INFINITY] {
            prop_assert_eq!(
                bits(ed_early_abandon(&a, &b, thr)),
                bits(ed_early_abandon_scalar(&a, &b, thr))
            );
        }
    }

    #[test]
    fn ed_norm_chunked_bit_identical_to_scalar(
        pair in (1usize..64).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        frac in 0.0f64..2.5,
        constant in proptest::bool::ANY,
    ) {
        let (s, q) = pair;
        // Exercise both the σ = 0 (constant candidate) and general paths.
        let (mu_s, sigma_s) = if constant { (3.0, 0.0) } else { mean_std(&s) };
        let exact = ed_norm_early_abandon_scalar(&s, &q, mu_s, sigma_s, f64::INFINITY).unwrap();
        for thr in [exact * frac, 0.0, f64::INFINITY] {
            prop_assert_eq!(
                bits(ed_norm_early_abandon(&s, &q, mu_s, sigma_s, thr)),
                bits(ed_norm_early_abandon_scalar(&s, &q, mu_s, sigma_s, thr))
            );
        }
    }

    #[test]
    fn lb_keogh_branch_free_bit_identical_to_scalar(
        pair in (1usize..64).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..20,
        frac in 0.0f64..2.5,
    ) {
        // Real envelopes only: the branch-free excursion is bit-identical
        // exactly when lower ≤ upper, which every Keogh envelope satisfies.
        let (s, q) = pair;
        let (l, u) = keogh_envelope(&q, rho);
        prop_assert_eq!(
            lb_keogh_sq(&s, &l, &u).to_bits(),
            lb_keogh_sq_scalar(&s, &l, &u).to_bits()
        );
        let exact = lb_keogh_sq_scalar(&s, &l, &u);
        for thr in [exact * frac, 0.0, f64::INFINITY] {
            prop_assert_eq!(
                bits(lb_keogh_sq_early_abandon(&s, &l, &u, thr)),
                bits(lb_keogh_sq_early_abandon_scalar(&s, &l, &u, thr))
            );
        }
    }

    #[test]
    fn gdtw_scratch_bit_identical_to_allocating(
        pair in (1usize..32).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..40,
        frac in 0.0f64..2.5,
    ) {
        let (a, b) = pair;
        let mut scratch = KernelScratch::new();
        let point = |x: f64, y: f64| (x - y).abs();
        let exact = gdtw_banded_early_abandon(&a, &b, rho, f64::INFINITY, point).unwrap();
        for thr in [exact * frac, 0.0, f64::INFINITY] {
            prop_assert_eq!(
                bits(gdtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch, point)),
                bits(gdtw_banded_early_abandon(&a, &b, rho, thr, point))
            );
        }
    }

    #[test]
    fn adaptive_cascade_distances_bit_identical(
        pair in (2usize..40).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..8,
        frac in 0.0f64..2.0,
        window in 1u32..16,
        probation in 1u32..32,
    ) {
        // Stage demotion may only change *which* admissible bounds run —
        // the accept/abandon verdict and any returned distance are exact
        // either way. Drive the adaptive cascade repeatedly so gates
        // actually demote and re-probate mid-stream.
        let (s, q) = pair;
        let plain = LbCascade::new(q.clone(), rho);
        let mut adaptive = LbCascade::new(q.clone(), rho);
        adaptive.set_adaptive(Some(AdaptivePolicy {
            window,
            min_prune_rate: 0.9,
            probation,
        }));
        let mut scratch = KernelScratch::new();
        let exact = dtw_banded_early_abandon_scalar(&s, &q, rho, f64::INFINITY).unwrap();
        let thr = exact * frac;
        for _ in 0..48 {
            let mut ap = CascadeStats::default();
            let mut pp = CascadeStats::default();
            prop_assert_eq!(
                bits(adaptive.verify(&s, thr, &mut scratch, &mut ap)),
                bits(plain.verify(&s, thr, &mut scratch, &mut pp))
            );
        }
    }

    #[test]
    fn warm_scratch_runs_allocation_free(
        pair in (1usize..48).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..20,
    ) {
        // The zero-allocation contract at the kernel level: a scratch
        // pre-grown for (m, rho) never allocates, whatever the inputs.
        let (a, b) = pair;
        let mut scratch = KernelScratch::with_query_capacity(a.len(), rho);
        for thr in [0.0, 1.0, f64::INFINITY] {
            dtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch);
        }
        prop_assert_eq!(scratch.alloc_events(), 0);
    }
}

// ---- deterministic edge cases the strategies above can't force ----

#[test]
fn empty_series_bit_identical() {
    let mut scratch = KernelScratch::new();
    for thr in [0.0, 1.0, f64::INFINITY, -1.0] {
        assert_eq!(
            bits(dtw_banded_early_abandon_scratch(&[], &[], 3, thr, &mut scratch)),
            bits(dtw_banded_early_abandon_scalar(&[], &[], 3, thr))
        );
        assert_eq!(
            bits(ed_early_abandon(&[], &[], thr)),
            bits(ed_early_abandon_scalar(&[], &[], thr))
        );
        assert_eq!(
            bits(lb_keogh_sq_early_abandon(&[], &[], &[], thr)),
            bits(lb_keogh_sq_early_abandon_scalar(&[], &[], &[], thr))
        );
    }
}

#[test]
fn length_one_series_bit_identical() {
    let mut scratch = KernelScratch::new();
    for (a, b) in [([2.5], [7.0]), ([0.0], [0.0]), ([-3.0], [-3.0])] {
        for rho in [0usize, 1, 10] {
            for thr in [0.0, 20.0, f64::INFINITY] {
                assert_eq!(
                    bits(dtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch)),
                    bits(dtw_banded_early_abandon_scalar(&a, &b, rho, thr)),
                    "rho={rho} thr={thr}"
                );
            }
        }
    }
}

#[test]
fn band_wider_than_series_bit_identical() {
    let a = [1.0, -2.0, 3.5, 0.25, -1.75];
    let b = [0.5, 2.0, -3.0, 1.0, 4.0];
    let mut scratch = KernelScratch::new();
    for rho in [4usize, 5, 6, 100] {
        for thr in [0.0, 10.0, 1e6, f64::INFINITY] {
            assert_eq!(
                bits(dtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch)),
                bits(dtw_banded_early_abandon_scalar(&a, &b, rho, thr)),
                "rho={rho} thr={thr}"
            );
        }
    }
}

#[test]
fn all_identical_values_bit_identical() {
    let a = [4.0; 24];
    let b = [4.0; 24];
    let c = [-4.0; 24];
    let mut scratch = KernelScratch::new();
    for rho in [0usize, 3, 23, 50] {
        for thr in [0.0, 1.0, f64::INFINITY] {
            assert_eq!(
                bits(dtw_banded_early_abandon_scratch(&a, &b, rho, thr, &mut scratch)),
                bits(dtw_banded_early_abandon_scalar(&a, &b, rho, thr))
            );
            assert_eq!(
                bits(dtw_banded_early_abandon_scratch(&a, &c, rho, thr, &mut scratch)),
                bits(dtw_banded_early_abandon_scalar(&a, &c, rho, thr))
            );
        }
        let (l, u) = keogh_envelope(&b, rho);
        assert_eq!(lb_keogh_sq(&a, &l, &u).to_bits(), lb_keogh_sq_scalar(&a, &l, &u).to_bits());
    }
}
