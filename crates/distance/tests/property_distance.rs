//! Property tests of the distance kernels: the banded DTW against the
//! quadratic reference, envelope against the naive window min/max, and
//! the lower-bound ordering chain.

use proptest::prelude::*;

use kvmatch_distance::dtw::{dtw_banded, dtw_banded_early_abandon, dtw_banded_reference};
use kvmatch_distance::ed::{ed, ed_early_abandon, ed_norm_early_abandon};
use kvmatch_distance::envelope::{keogh_envelope, keogh_envelope_reference};
use kvmatch_distance::lower_bounds::{lb_keogh_sq, lb_kim_fl_sq, lb_paa_sq};
use kvmatch_distance::normalize::{mean_std, z_normalized};

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn banded_dtw_equals_reference(
        pair in (2usize..40).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..12,
    ) {
        let (a, b) = pair;
        let fast = dtw_banded(&a, &b, rho);
        let slow = dtw_banded_reference(&a, &b, rho);
        prop_assert!((fast - slow).abs() < 1e-6, "fast {fast} vs reference {slow}");
    }

    #[test]
    fn dtw_early_abandon_never_lies(
        pair in (2usize..30).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..8,
        frac in 0.0f64..2.0,
    ) {
        let (a, b) = pair;
        let exact = dtw_banded(&a, &b, rho);
        let thr_sq = (exact * frac) * (exact * frac);
        match dtw_banded_early_abandon(&a, &b, rho, thr_sq) {
            Some(d_sq) => {
                prop_assert!((d_sq.sqrt() - exact).abs() < 1e-6);
                prop_assert!(d_sq <= thr_sq + 1e-9);
            }
            None => prop_assert!(exact * exact > thr_sq - 1e-9),
        }
    }

    #[test]
    fn dtw_never_exceeds_ed(
        pair in (2usize..40).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..10,
    ) {
        let (a, b) = pair;
        prop_assert!(dtw_banded(&a, &b, rho) <= ed(&a, &b) + 1e-9);
    }

    #[test]
    fn envelope_equals_reference(q in series(1..80), rho in 0usize..20) {
        let (lf, uf) = keogh_envelope(&q, rho);
        let (lr, ur) = keogh_envelope_reference(&q, rho);
        prop_assert_eq!(lf, lr);
        prop_assert_eq!(uf, ur);
    }

    #[test]
    fn lower_bound_chain_holds(
        pair in (8usize..48).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        rho in 0usize..6,
    ) {
        let (s, q) = pair;
        let d_sq = {
            let d = dtw_banded(&s, &q, rho);
            d * d
        };
        let (lo, hi) = keogh_envelope(&q, rho);
        let kim = lb_kim_fl_sq(&s, &q);
        let keogh = lb_keogh_sq(&s, &lo, &hi);
        prop_assert!(kim <= d_sq + 1e-9, "LB_Kim {kim} > DTW² {d_sq}");
        prop_assert!(keogh <= d_sq + 1e-9, "LB_Keogh {keogh} > DTW² {d_sq}");
        // LB_PAA over complete segments.
        let w = 4;
        let f = s.len() / w;
        if f >= 1 {
            let paa = |v: &[f64]| -> Vec<f64> {
                (0..f).map(|k| v[k * w..(k + 1) * w].iter().sum::<f64>() / w as f64).collect()
            };
            let lb = lb_paa_sq(&paa(&s), &paa(&lo), &paa(&hi), w);
            prop_assert!(lb <= d_sq + 1e-9, "LB_PAA {lb} > DTW² {d_sq}");
            prop_assert!(lb <= keogh + 1e-9, "LB_PAA {lb} > LB_Keogh {keogh}");
        }
    }

    #[test]
    fn ed_early_abandon_never_lies(
        pair in (1usize..60).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
        frac in 0.0f64..2.0,
    ) {
        let (a, b) = pair;
        let exact_sq = {
            let d = ed(&a, &b);
            d * d
        };
        let thr = exact_sq * frac;
        match ed_early_abandon(&a, &b, thr) {
            Some(d_sq) => prop_assert!((d_sq - exact_sq).abs() < 1e-9),
            None => prop_assert!(exact_sq > thr - 1e-9),
        }
    }

    #[test]
    fn normalized_ed_matches_materialized(
        pair in (2usize..50).prop_flat_map(|m| (series(m..m + 1), series(m..m + 1))),
    ) {
        let (s, q) = pair;
        let q_norm = z_normalized(&q);
        let s_norm = z_normalized(&s);
        let exact_sq = {
            let d = ed(&s_norm, &q_norm);
            d * d
        };
        let (mu, sigma) = mean_std(&s);
        let got = ed_norm_early_abandon(&s, &q_norm, mu, sigma, f64::INFINITY).expect("no bound");
        prop_assert!((got - exact_sq).abs() < 1e-6, "{got} vs {exact_sq}");
    }
}
