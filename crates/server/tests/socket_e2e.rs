//! The acceptance test of the wire stack: concurrent client connections
//! drive a mixed range / top-k / append workload against a real
//! `kvmatch-server` over TCP, with pipelined request ids, and every
//! answer must be **bit-identical** to the same request served by an
//! in-process [`QueryService`] over the same demo catalog.

use std::sync::Arc;
use std::time::Duration;

use kvmatch_client::Client;
use kvmatch_core::{MatchResult, QuerySpec, SeriesId};
use kvmatch_proto::{code, Request};
use kvmatch_serve::{QueryRequest, Submit};
use kvmatch_server::demo::DemoSpec;
use kvmatch_server::{Server, ServerOptions};
use kvmatch_timeseries::generator::composite_series;

/// A small but non-trivial demo shape (4 series × 5 000 points).
fn spec() -> DemoSpec {
    DemoSpec { n: 20_000, w: 50, series: 4, seed: 42, threads: 0, submitters: 8, shards: 1 }
}

/// The query pool over the non-append series (indices 1..4): per series,
/// alternating exact-range / wide-range / top-k probes.
fn query_pool(spec: &DemoSpec) -> Vec<QueryRequest> {
    let mut pool = Vec::new();
    for i in 1..spec.series {
        let id = SeriesId::new(i as u64 + 1);
        let xs = spec.series_data(i);
        for k in 0..4usize {
            let at = 300 + 677 * k + 131 * i;
            let q = xs[at..at + 200].to_vec();
            pool.push(match k % 3 {
                0 => QueryRequest::range(QuerySpec::rsm_ed(q, 1e-9).with_series(id)),
                1 => QueryRequest::range(QuerySpec::rsm_ed(q, 12.0).with_series(id)),
                _ => QueryRequest::top_k(QuerySpec::rsm_ed(q, 50.0).with_series(id), 1 + k),
            });
        }
    }
    pool
}

#[test]
fn concurrent_connections_pipelined_bit_identical_with_in_process_service() {
    let spec = spec();
    let pool = query_pool(&spec);

    // The in-process reference: the same catalog, the same serving
    // pipeline, no sockets.
    let reference = spec.spawn_service(2);
    let expected: Vec<Vec<MatchResult>> = pool
        .iter()
        .map(|req| {
            let handle = match reference.submit_timeout(req.clone(), Duration::from_secs(10)) {
                Submit::Accepted(h) => h,
                Submit::Rejected(_) => panic!("reference submission rejected"),
            };
            handle.wait().expect("reference request served").results
        })
        .collect();
    reference.shutdown();

    // The system under test: the same catalog behind a TCP server.
    let service = Arc::new(spec.spawn_service(2));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerOptions::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    const QUERY_CONNS: usize = 4;
    const ROUNDS: usize = 6;
    const WINDOW: usize = 8;
    std::thread::scope(|scope| {
        // Four query connections, each pipelining a WINDOW of requests
        // before collecting — in-flight ids overlap by construction.
        for t in 0..QUERY_CONNS {
            let pool = &pool;
            let expected = &expected;
            scope.spawn(move || {
                let client = Client::connect_retry(addr, 20, Duration::from_millis(50))
                    .expect("client connects");
                client.ping().expect("ping");
                for round in 0..ROUNDS {
                    let picks: Vec<usize> =
                        (0..WINDOW).map(|j| (t * 13 + round * 7 + j) % pool.len()).collect();
                    let pending: Vec<_> = picks
                        .iter()
                        .map(|&which| {
                            let req = &pool[which];
                            client
                                .send(&Request::Query { spec: req.spec.clone(), deadline_us: None })
                                .expect("send")
                        })
                        .collect();
                    // Collect in reverse submission order: correctness
                    // must come from request-id demux, not from luck.
                    for (which, pending) in picks.into_iter().zip(pending).rev() {
                        let reply = pending.wait_query().expect("query served over the wire");
                        assert_eq!(
                            reply.results, expected[which],
                            "connection {t} round {round} pool #{which}: socket answer \
                             diverged from the in-process service"
                        );
                    }
                }
            });
        }

        // A fifth connection streams appends into series 1 and proves
        // the ingest barrier holds across the wire.
        scope.spawn(move || {
            let client = Client::connect_retry(addr, 20, Duration::from_millis(50))
                .expect("append client connects");
            let id = SeriesId::new(1);
            let base_len = spec.n_per_series();
            let tail = composite_series(spec.seed ^ 0x0A99_E17D, 3_000);
            for chunk in tail.chunks(1_000) {
                client.append(id, chunk.to_vec()).expect("append applied over the wire");
            }
            // A query behind the appends (same connection, same series)
            // must see the appended points at their exact offset.
            let probe = QuerySpec::rsm_ed(tail[2_600..2_850].to_vec(), 1e-9).with_series(id);
            let reply = client.query(probe, None).expect("post-append query served");
            assert!(
                reply.results.iter().any(|r| r.offset == base_len + 2_600),
                "append barrier broken over the wire: {:?}",
                reply.results
            );
        });
    });

    // Server-side error taxonomy crosses the wire as stable codes.
    let client = Client::connect(addr).expect("probe client connects");
    let unknown = QuerySpec::rsm_ed(vec![0.0; 200], 1.0).with_series(SeriesId::new(999));
    match client.query(unknown, None) {
        Err(kvmatch_client::ClientError::Server(err)) => {
            assert_eq!(err.code, code::UNKNOWN_SERIES, "unexpected code: {err:?}");
        }
        other => panic!("expected a server error frame, got {other:?}"),
    }

    // The metrics frame folds network counters into the serving snapshot.
    let m = client.metrics().expect("metrics served");
    let offered = (QUERY_CONNS * ROUNDS * WINDOW) as u64;
    assert!(m.completed >= offered, "expected >= {offered} completed, got {}", m.completed);
    assert_eq!(m.appends, 3);
    assert!(m.net_connections_accepted >= 6);
    assert!(m.net_frames_in > offered);
    assert!(m.net_frames_out > offered);
    assert!(m.net_bytes_in > 0 && m.net_bytes_out > 0);
    assert_eq!(m.net_protocol_errors, 0);

    // Graceful shutdown: the request is acknowledged, the drain signal
    // fires, and every thread joins.
    client.shutdown_server().expect("shutdown acknowledged");
    server.wait_shutdown_requested();
    drop(client);
    server.shutdown();
    let service = Arc::try_unwrap(service).ok().expect("all server references released");
    let mut catalog = service.shutdown();
    assert_eq!(catalog.series_len(SeriesId::new(1)), Some(spec.n_per_series() + 3_000));
    // The served catalog still answers in-process after the front door
    // closed.
    let xs = spec.series_data(1);
    let probe = QuerySpec::rsm_ed(xs[400..600].to_vec(), 1e-9).with_series(SeriesId::new(2));
    let batch = catalog.execute_batch(std::slice::from_ref(&probe)).unwrap();
    assert!(batch.outputs[0].results.iter().any(|r| r.offset == 400));
}

/// EXPLAIN over a real socket: the report crosses the wire with the
/// serve-side spans plus the server- and client-added ones, its prune
/// accounting equals the executor stats verbatim, results are
/// bit-identical to the unexplained query, and the text exposition
/// endpoint scrapes the full metric family set.
#[test]
fn explain_over_the_wire_carries_spans_and_exact_prune_counts() {
    let spec =
        DemoSpec { n: 8_000, w: 50, series: 2, seed: 17, threads: 0, submitters: 2, shards: 1 };
    let service = Arc::new(spec.spawn_service(2));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerOptions::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let client = Client::connect_retry(addr, 20, Duration::from_millis(50)).expect("connect");

    let xs = spec.series_data(1);
    let probe = QuerySpec::rsm_dtw(xs[500..750].to_vec(), 15.0, 5).with_series(SeriesId::new(2));

    let plain = client.query(probe.clone(), None).expect("plain query served");
    assert!(plain.explain.is_none(), "no explain flag, no report on the wire");

    let explained = client.query(probe.with_explain(true), None).expect("explain query served");
    assert_eq!(explained.results, plain.results, "explain must not perturb wire results");
    let report = explained.explain.as_deref().expect("explain report crossed the wire");
    assert_ne!(report.trace_id, 0);

    // Span taxonomy: serve-side queue/execute, the server's socket span,
    // and the client-side round trip appended locally.
    let span = |name: &str| report.spans.iter().find(|s| s.name == name);
    let execute = span("serve.execute").expect("execute span");
    let request = span("server.request").expect("server span");
    let rtt = span("client.rtt").expect("client span");
    assert!(span("serve.queue").is_some(), "queue span");
    assert!(request.nanos >= execute.nanos, "socket span covers execution");
    assert!(rtt.nanos >= request.nanos, "round trip covers the server");

    // Prune accounting must equal the cascade's own stats, verbatim.
    let stats = &explained.stats;
    assert_eq!(report.pruned_constraint, stats.pruned_constraint);
    assert_eq!(report.pruned_lb_kim, stats.pruned_lb_kim);
    assert_eq!(report.pruned_lb_keogh, stats.pruned_lb_keogh);
    assert_eq!(report.full_distance_computations, stats.full_distance_computations);
    assert_eq!(report.probe_nanos, stats.phase1_nanos);
    assert_eq!(report.lb_kim_nanos, stats.lb_kim_nanos);
    assert_eq!(report.lb_keogh_nanos, stats.lb_keogh_nanos);
    assert_eq!(report.dtw_nanos, stats.dtw_nanos);
    assert_eq!(report.alloc_events, stats.alloc_events);
    assert_eq!(report.adaptive_skipped_lb_kim, stats.adaptive_skipped_lb_kim);
    assert_eq!(report.adaptive_skipped_lb_keogh, stats.adaptive_skipped_lb_keogh);

    // The text exposition endpoint serves a scrapeable payload covering
    // serving, network and histogram families.
    let text = client.metrics_text().expect("metrics text served");
    for needle in [
        "# TYPE kvmatch_serve_submitted_total counter",
        "# TYPE kvmatch_serve_queue_depth gauge",
        "# TYPE kvmatch_serve_latency_us summary",
        "kvmatch_serve_latency_us_count",
        "# TYPE kvmatch_net_frames_in_total counter",
        "kvmatch_net_connections_active",
        "kvmatch_serve_worker_batches_total{worker=\"0\"}",
    ] {
        assert!(text.contains(needle), "scrape missing {needle}:\n{text}");
    }
    // The slow log has entries by now and rides the same scrape.
    assert!(text.contains("# slowlog rank="), "{text}");

    client.shutdown_server().expect("shutdown acknowledged");
    server.wait_shutdown_requested();
    drop(client);
    server.shutdown();
    Arc::try_unwrap(service).ok().expect("all server references released").shutdown();
}

/// Regression: a pipelining client that stops reading and then dies must
/// not wedge its connection thread. With the response path saturated the
/// reader blocks pushing into the full outgoing queue; when the client's
/// reset kills the writer, the writer must close that queue so the reader
/// unblocks — otherwise `Server::shutdown` hangs forever in its joins.
#[test]
fn dead_pipelining_client_does_not_wedge_shutdown() {
    use std::io::{ErrorKind, Write};

    let spec =
        DemoSpec { n: 4_000, w: 50, series: 1, seed: 9, threads: 0, submitters: 2, shards: 1 };
    let service = Arc::new(spec.spawn_service(1));
    // A tiny outgoing queue makes the reader block as soon as the writer
    // stalls against our unread socket.
    let options = ServerOptions {
        out_queue: 2,
        drain_timeout: Duration::from_secs(1),
        ..ServerOptions::default()
    };
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", options).expect("bind");
    let addr = server.local_addr();

    let raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.set_nonblocking(true).expect("nonblocking");
    let ping = Request::Ping.encode(1).unwrap();
    // Flood pings without reading a single pong. Pongs fill our receive
    // buffer until the server's writer blocks, then its outgoing queue
    // fills, then its reader blocks in push_wait, then our own writes
    // stall. A full second of sustained WouldBlock means the connection
    // is wedged end to end.
    let mut stalled = 0u32;
    while stalled < 40 {
        match (&raw).write(&ping) {
            Ok(_) => stalled = 0,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                stalled += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("unexpected socket error: {e}"),
        }
    }
    // Closing with unread data in the receive buffer resets the
    // connection, so the server's blocked write fails promptly.
    drop(raw);

    server.shutdown();
    Arc::try_unwrap(service).ok().expect("all server references released").shutdown();
}

/// Malformed bytes on the socket are answered with a typed error frame
/// (request id 0) and the connection is closed — the server never
/// panics and other connections keep serving.
#[test]
fn protocol_violation_closes_only_the_offending_connection() {
    let spec =
        DemoSpec { n: 4_000, w: 50, series: 1, seed: 7, threads: 0, submitters: 2, shards: 1 };
    let service = Arc::new(spec.spawn_service(1));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerOptions::default())
        .expect("bind loopback");
    let addr = server.local_addr();

    // A well-behaved connection, kept open across the violation.
    let good = Client::connect_retry(addr, 20, Duration::from_millis(50)).expect("connect");
    good.ping().expect("ping before the violation");

    // A raw socket speaking garbage: valid length prefix, bogus version.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&[10, 0, 0, 0, 42, 0x04, 0, 0, 0, 0, 0, 0, 0, 0]).expect("write garbage");
        let payload =
            kvmatch_proto::read_frame(&mut raw).expect("error frame arrives").expect("not EOF");
        let frame = kvmatch_proto::decode_response(&payload).expect("decodes");
        assert_eq!(frame.request_id, 0);
        match frame.message {
            kvmatch_proto::Response::Error(err) => {
                assert_eq!(err.code, code::UNSUPPORTED_VERSION)
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
        // ...and then EOF: the connection is closed.
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("read to EOF");
        assert!(rest.is_empty(), "no bytes after the error frame");
    }

    // The violation is counted, and the good connection still serves.
    good.ping().expect("ping after the violation");
    let m = good.metrics().expect("metrics");
    assert_eq!(m.net_protocol_errors, 1);

    good.shutdown_server().expect("shutdown acknowledged");
    server.wait_shutdown_requested();
    drop(good);
    server.shutdown();
}
