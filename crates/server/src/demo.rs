//! The deterministic demo catalog the `kvmatch-server` binary serves.
//!
//! Everything here is a pure function of [`DemoSpec`], which is itself a
//! pure function of the `KVM_*` environment — so a bench load generator
//! or an integration test running in a *different process* can rebuild
//! the exact catalog the server holds and compute expected answers that
//! are bit-identical to what arrives over the socket. The formulas
//! mirror the bench report's serving fixture; changing either side
//! breaks the cross-process identity check, which is the point.

use kvmatch_core::exec::ExecutorConfig;
use kvmatch_core::{Catalog, IndexBuildConfig, MemoryCatalogBackend, SeriesId};
use kvmatch_serve::QueryService;
use kvmatch_timeseries::generator::composite_series;

/// The shape of the demo catalog: sizes and the seed everything derives
/// from.
#[derive(Clone, Copy, Debug)]
pub struct DemoSpec {
    /// Total points across all series (split evenly).
    pub n: usize,
    /// Index window width.
    pub w: usize,
    /// Number of series.
    pub series: usize,
    /// Master seed; per-series seeds derive from it.
    pub seed: u64,
    /// Executor verification threads (0 = library default).
    pub threads: usize,
    /// Sizes the admission queue, mirroring the bench's serving config.
    pub submitters: usize,
    /// Catalog shards (each with its own lane + worker set).
    pub shards: usize,
}

impl Default for DemoSpec {
    fn default() -> Self {
        Self { n: 120_000, w: 50, series: 4, seed: 42, threads: 0, submitters: 8, shards: 1 }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl DemoSpec {
    /// Reads `KVM_N`, `KVM_W`, `KVM_SERIES`, `KVM_SEED`, `KVM_THREADS`,
    /// `KVM_SUBMITTERS` and `KVM_SHARDS` — the same knobs (same
    /// defaults) the bench report reads, so server and load generator
    /// agree by construction.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            n: env_usize("KVM_N", d.n),
            w: env_usize("KVM_W", d.w),
            series: env_usize("KVM_SERIES", d.series).max(1),
            seed: std::env::var("KVM_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(d.seed),
            threads: env_usize("KVM_THREADS", d.threads),
            submitters: env_usize("KVM_SUBMITTERS", d.submitters).max(1),
            shards: env_usize("KVM_SHARDS", d.shards).max(1),
        }
    }

    /// Points per series (the bench fixture's split).
    pub fn n_per_series(&self) -> usize {
        (self.n / self.series).max(self.w * 20).min(20_000)
    }

    /// Series ids are `1..=series`.
    pub fn ids(&self) -> Vec<SeriesId> {
        (0..self.series).map(|i| SeriesId::new(i as u64 + 1)).collect()
    }

    /// The data of series index `i` (0-based).
    pub fn series_data(&self, i: usize) -> Vec<f64> {
        composite_series(self.seed.wrapping_add(104_729 * (i as u64 + 1)), self.n_per_series())
    }

    /// Builds and materializes the full demo catalog.
    pub fn build_catalog(&self) -> Catalog<MemoryCatalogBackend> {
        let mut catalog = Catalog::with_exec_config(
            MemoryCatalogBackend,
            ExecutorConfig { threads: self.threads, ..ExecutorConfig::default() },
        );
        for (i, id) in self.ids().into_iter().enumerate() {
            catalog.create_series(id, IndexBuildConfig::new(self.w)).expect("create series");
            catalog.append(id, &self.series_data(i)).expect("append series data");
        }
        catalog.materialize().expect("materialize demo catalog");
        catalog
    }

    /// Spawns the demo service with the bench report's serving
    /// topology at the given per-shard worker count: catalog split
    /// across `self.shards`, admission queue sized from the expected
    /// submitter count.
    pub fn spawn_service(&self, workers: usize) -> QueryService<MemoryCatalogBackend> {
        let queue = (self.submitters * 2).max(4).max(16);
        QueryService::builder(self.build_catalog())
            .shards(self.shards)
            .workers(workers)
            .queue_capacity(queue)
            .max_batch(16)
            .max_batch_delay(std::time::Duration::from_millis(1))
            .build()
            .expect("demo topology is valid by construction")
    }
}
