//! Stand-alone KV-match query server over the demo catalog.
//!
//! ```text
//! kvmatch-server [--addr HOST:PORT]
//! ```
//!
//! The catalog is a pure function of the `KVM_*` environment (`KVM_N`,
//! `KVM_W`, `KVM_SERIES`, `KVM_SEED`, `KVM_THREADS`, `KVM_SUBMITTERS`,
//! `KVM_WORKERS`) — see [`kvmatch_server::demo`] — so clients in other
//! processes can reconstruct it and check answers bit-identically. The
//! address comes from `--addr` or `KVM_ADDR` (default `127.0.0.1:7878`;
//! use port 0 for an OS-assigned port, printed on startup).
//!
//! The process serves until a client sends a `Shutdown` request, then
//! drains open connections and exits.

use std::io::Write;
use std::sync::Arc;

use kvmatch_server::demo::DemoSpec;
use kvmatch_server::{Server, ServerOptions};

fn main() {
    let mut addr = std::env::var("KVM_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("--addr requires a HOST:PORT argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: kvmatch-server [--addr HOST:PORT]");
                println!("catalog shape via KVM_N / KVM_W / KVM_SERIES / KVM_SEED;");
                println!("service via KVM_SHARDS / KVM_WORKERS / KVM_SUBMITTERS / KVM_THREADS;");
                println!("address via KVM_ADDR (default 127.0.0.1:7878)");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let spec = DemoSpec::from_env();
    let workers = std::env::var("KVM_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    eprintln!(
        "building demo catalog: {} series x {} points (w={}, seed={}, shards={})",
        spec.series,
        spec.n_per_series(),
        spec.w,
        spec.seed,
        spec.shards
    );
    let service = Arc::new(spec.spawn_service(workers));

    let server = match Server::bind(Arc::clone(&service), &addr, ServerOptions::default()) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("failed to bind {addr}: {err}");
            std::process::exit(1);
        }
    };
    // The READY line is the startup handshake scripts wait for — it
    // carries the resolved port for `--addr ...:0` binds.
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();

    server.wait_shutdown_requested();
    eprintln!("shutdown requested; draining connections");
    server.shutdown();
    match Arc::try_unwrap(service) {
        Ok(service) => {
            service.shutdown();
        }
        // After Server::shutdown joined every connection thread the
        // binary's Arc must be the last one; a survivor means a leaked
        // clone, and the worker threads it keeps alive die with the
        // process — make that visible instead of silently exiting.
        Err(_) => eprintln!("service still shared after drain; skipping worker shutdown"),
    }
}
