//! TCP front door for the KV-match serving pipeline.
//!
//! [`Server`] binds a `TcpListener` and speaks [`kvmatch_proto`] on top
//! of an existing [`QueryService`]: a **thread-per-connection acceptor**
//! where each connection runs a reader thread (decode frames, admit work
//! into the service in arrival order) and a writer thread (resolve
//! response handles, encode, write). Because the reader admits a request
//! and moves on without waiting for its response, **one connection can
//! have many requests in flight** — the pipelined request ids of
//! [`kvmatch_proto`] keep the answers attributable.
//!
//! Ordering guarantees inherited from the service: requests are submitted
//! in socket arrival order, so the per-series append/query ordering of
//! the ingest lane holds across the wire exactly as it does in-process.
//! Responses are also written in arrival order (FIFO — a slow query
//! head-of-line blocks later answers on the *same* connection; other
//! connections are unaffected). The ids still travel with every frame,
//! so clients never depend on that ordering.
//!
//! Backpressure is layered: the service's bounded queue rejects
//! (`REJECTED` error frames carrying queue state) after a bounded
//! admission wait, and each connection's outgoing queue is bounded too —
//! a client that stops reading eventually stops being read from (TCP
//! does the rest).
//!
//! Shutdown: a `Shutdown` request (or [`Server::shutdown`]) stops the
//! acceptor, drains every admitted request to its connection, then joins
//! all threads. The [`demo`] module builds the deterministic catalog the
//! `kvmatch-server` binary serves, so external processes (the bench load
//! generator, integration tests) can reconstruct bit-identical expected
//! answers.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kvmatch_core::catalog::CatalogBackend;
use kvmatch_obs::{Counter, Gauge, Registry, SpanRecord};
use kvmatch_proto as proto;
use kvmatch_proto::{Request, Response};
use kvmatch_serve::sync::BoundedQueue;
use kvmatch_serve::wire;
use kvmatch_serve::{AppendHandle, QueryService, ResponseHandle, ServeError, Submit};

pub mod demo;

/// Tuning knobs of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// How long a connection's reader waits for submission-queue space
    /// before answering a `REJECTED` error frame. A bounded wait turns
    /// most transient backpressure into socket-level pushback instead of
    /// error round-trips.
    pub admission_wait: Duration,
    /// The same bound for appends (the ingest lane shares the queue).
    pub append_wait: Duration,
    /// Per-connection bound on responses awaiting write. A full queue
    /// blocks the connection's reader — backpressure against pipelining
    /// clients that stop reading.
    pub out_queue: usize,
    /// How long [`Server::shutdown`] waits for open connections to
    /// finish before force-closing their sockets.
    pub drain_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            admission_wait: Duration::from_millis(250),
            append_wait: Duration::from_millis(250),
            out_queue: 1024,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Network-side counters, folded into the wire metrics response next to
/// the serving snapshot. Registered on the service's shared
/// [`Registry`] under `kvmatch_net_*` names, so the text exposition
/// covers sockets and scheduler in a single scrape.
struct NetMetrics {
    connections_accepted: Arc<Counter>,
    connections_active: Arc<Gauge>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    protocol_errors: Arc<Counter>,
}

impl NetMetrics {
    fn on_registry(r: &Registry) -> Self {
        Self {
            connections_accepted: r.counter("kvmatch_net_connections_accepted_total"),
            connections_active: r.gauge("kvmatch_net_connections_active"),
            frames_in: r.counter("kvmatch_net_frames_in_total"),
            frames_out: r.counter("kvmatch_net_frames_out_total"),
            bytes_in: r.counter("kvmatch_net_bytes_in_total"),
            bytes_out: r.counter("kvmatch_net_bytes_out_total"),
            protocol_errors: r.counter("kvmatch_net_protocol_errors_total"),
        }
    }
}

/// A point-in-time copy of the server's network counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetSnapshot {
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request frames read off sockets.
    pub frames_in: u64,
    /// Response frames written to sockets.
    pub frames_out: u64,
    /// Request payload bytes read off sockets (length prefixes excluded).
    pub bytes_in: u64,
    /// Response frame bytes written to sockets.
    pub bytes_out: u64,
    /// Connections terminated for protocol violations.
    pub protocol_errors: u64,
}

impl NetMetrics {
    fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            connections_accepted: self.connections_accepted.get(),
            connections_active: self.connections_active.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            protocol_errors: self.protocol_errors.get(),
        }
    }
}

/// Latched "a client asked us to shut down" signal.
struct ShutdownSignal {
    state: Mutex<bool>,
    cond: Condvar,
}

impl ShutdownSignal {
    fn new() -> Self {
        Self { state: Mutex::new(false), cond: Condvar::new() }
    }

    fn raise(&self) {
        *self.state.lock().expect("shutdown signal poisoned") = true;
        self.cond.notify_all();
    }

    fn wait(&self) {
        let mut raised = self.state.lock().expect("shutdown signal poisoned");
        while !*raised {
            raised = self.cond.wait(raised).expect("shutdown signal poisoned");
        }
    }
}

struct ServerShared<B: CatalogBackend> {
    service: Arc<QueryService<B>>,
    options: ServerOptions,
    net: NetMetrics,
    shutdown: ShutdownSignal,
    /// Accept-loop exit flag (set by [`Server::shutdown`]).
    closing: AtomicBool,
    /// Live connection sockets, for force-close on drain timeout.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// A running TCP front door over a shared [`QueryService`].
pub struct Server<B: CatalogBackend> {
    shared: Arc<ServerShared<B>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl<B> Server<B>
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    /// Binds `addr` and starts accepting. The service stays shared — the
    /// caller keeps its own `Arc` for in-process submissions, metrics,
    /// and the final `QueryService::shutdown`.
    pub fn bind<A: ToSocketAddrs>(
        service: Arc<QueryService<B>>,
        addr: A,
        options: ServerOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let net = NetMetrics::on_registry(&service.registry());
        let shared = Arc::new(ServerShared {
            service,
            options,
            net,
            shutdown: ShutdownSignal::new(),
            closing: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("kvmatch-server-accept".into())
            .spawn(move || accept_loop(listener, acceptor_shared))?;
        Ok(Self { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// The bound address (with the OS-assigned port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until some client sends a `Shutdown` request.
    pub fn wait_shutdown_requested(&self) {
        self.shared.shutdown.wait();
    }

    /// A point-in-time copy of the network counters.
    pub fn net_metrics(&self) -> NetSnapshot {
        self.shared.net.snapshot()
    }

    /// Graceful drain: stop accepting, wait up to
    /// [`ServerOptions::drain_timeout`] for open connections to finish
    /// (every admitted request is answered to its socket), force-close
    /// stragglers, join all threads.
    pub fn shutdown(mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        let handles =
            self.acceptor.take().expect("shutdown runs once").join().expect("acceptor panicked");
        let deadline = Instant::now() + self.shared.options.drain_timeout;
        while Instant::now() < deadline {
            if self.shared.net.connections_active.get() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (_, stream) in self.shared.conns.lock().expect("conns poisoned").drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn accept_loop<B>(listener: TcpListener, shared: Arc<ServerShared<B>>) -> Vec<JoinHandle<()>>
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn = 0u64;
    for stream in listener.incoming() {
        if shared.closing.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Reap connections that already ended so a long-running server
        // holds one JoinHandle per *open* connection, not per connection
        // ever accepted.
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        next_conn += 1;
        let conn_id = next_conn;
        shared.net.connections_accepted.inc();
        shared.net.connections_active.add(1);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns poisoned").insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(&shared);
        match std::thread::Builder::new().name(format!("kvmatch-server-conn-{conn_id}")).spawn(
            move || {
                connection(stream, conn_id, &conn_shared);
                conn_shared.conns.lock().expect("conns poisoned").remove(&conn_id);
                conn_shared.net.connections_active.sub(1);
            },
        ) {
            Ok(handle) => handles.push(handle),
            Err(_) => {
                shared.conns.lock().expect("conns poisoned").remove(&conn_id);
                shared.net.connections_active.sub(1);
            }
        }
    }
    handles
}

/// One response awaiting write, in request arrival order. Every variant
/// carries the protocol version its request arrived with — the response
/// is encoded in that same version, so a v1 peer never sees v2 bytes on
/// a connection it opened.
enum Outgoing {
    /// Already resolved (errors, pongs, metrics, acks).
    Ready(u64, u8, Box<Response>),
    /// A query in flight inside the service. The `Instant` is the
    /// arrival time at the socket, for the `server.request` span an
    /// explain response carries.
    Query(u64, u8, ResponseHandle, Instant),
    /// An append in flight inside the ingest lane.
    Append(u64, u8, AppendHandle),
}

/// One connection: this thread reads and admits; a sibling thread
/// resolves and writes.
fn connection<B>(stream: TcpStream, conn_id: u64, shared: &Arc<ServerShared<B>>)
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let out: Arc<BoundedQueue<Outgoing>> = Arc::new(BoundedQueue::new(shared.options.out_queue));
    let writer = {
        let out = Arc::clone(&out);
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("kvmatch-server-conn-{conn_id}-writer"))
            .spawn(move || writer_loop(write_half, &out, &shared))
    };
    let writer = match writer {
        Ok(w) => w,
        Err(_) => return,
    };

    let mut reader = BufReader::new(stream);
    loop {
        let payload = match proto::read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            // Clean EOF at a frame boundary — the client is done.
            Ok(None) => break,
            Err(err) => {
                // Transport death is silent; protocol violations get one
                // explanatory error frame before the connection closes.
                if !matches!(err, proto::ProtoError::Io(_)) {
                    shared.net.protocol_errors.inc();
                    let wire_err = proto::WireError {
                        code: err.wire_code(),
                        detail: err.to_string(),
                        rejected: None,
                    };
                    // No request version to echo — v1 error frames are
                    // understood by every peer.
                    let _ = out.push_wait(Outgoing::Ready(
                        0,
                        proto::MIN_VERSION,
                        Box::new(Response::Error(wire_err)),
                    ));
                }
                break;
            }
        };
        shared.net.bytes_in.add(payload.len() as u64);
        let frame = match proto::decode_request(&payload) {
            Ok(frame) => frame,
            Err(err) => {
                shared.net.protocol_errors.inc();
                let wire_err = proto::WireError {
                    code: err.wire_code(),
                    detail: err.to_string(),
                    rejected: None,
                };
                let _ = out.push_wait(Outgoing::Ready(
                    0,
                    proto::MIN_VERSION,
                    Box::new(Response::Error(wire_err)),
                ));
                break;
            }
        };
        shared.net.frames_in.inc();
        let id = frame.request_id;
        let version = frame.version;
        let item = match frame.message {
            Request::Query { spec, deadline_us } => {
                let arrived = Instant::now();
                let request = wire::query_request(spec, deadline_us);
                match shared.service.submit_timeout(request, shared.options.admission_wait) {
                    Submit::Accepted(handle) => Outgoing::Query(id, version, handle, arrived),
                    Submit::Rejected(r) => Outgoing::Ready(
                        id,
                        version,
                        Box::new(Response::Error(wire::wire_error(&ServeError::Rejected(
                            r.rejected,
                        )))),
                    ),
                }
            }
            Request::Append { series, points } => {
                match shared.service.append(series, points, shared.options.append_wait) {
                    Ok(handle) => Outgoing::Append(id, version, handle),
                    Err(rejected) => Outgoing::Ready(
                        id,
                        version,
                        Box::new(Response::Error(wire::wire_error(&ServeError::Rejected(
                            rejected.rejected,
                        )))),
                    ),
                }
            }
            Request::Metrics => {
                let mut m = wire::wire_metrics(&shared.service.metrics());
                let net = shared.net.snapshot();
                m.net_connections_accepted = net.connections_accepted;
                m.net_connections_active = net.connections_active;
                m.net_frames_in = net.frames_in;
                m.net_frames_out = net.frames_out;
                m.net_bytes_in = net.bytes_in;
                m.net_bytes_out = net.bytes_out;
                m.net_protocol_errors = net.protocol_errors;
                Outgoing::Ready(id, version, Box::new(Response::Metrics(m)))
            }
            Request::MetricsText => {
                // The shared registry holds serving and network metrics
                // alike; one render is the whole exposition.
                let text = shared.service.metrics_text();
                Outgoing::Ready(id, version, Box::new(Response::MetricsText(text)))
            }
            Request::Ping => Outgoing::Ready(id, version, Box::new(Response::Pong)),
            Request::Shutdown => {
                shared.shutdown.raise();
                Outgoing::Ready(id, version, Box::new(Response::ShutdownStarted))
            }
        };
        // A full outgoing queue blocks here — reader backpressure.
        if out.push_wait(item).is_err() {
            break;
        }
    }
    // Everything admitted has been pushed; let the writer drain and exit.
    out.close();
    let _ = writer.join();
}

/// The connection's writer: resolve each outgoing item in FIFO order,
/// encode, write; flush when the queue runs empty (batching flushes
/// under pipelined load).
fn writer_loop<B>(stream: TcpStream, out: &BoundedQueue<Outgoing>, shared: &ServerShared<B>)
where
    B: CatalogBackend,
{
    let mut writer = BufWriter::new(stream);
    while let Some(item) = out.pop_wait() {
        let (id, version, response) = match item {
            Outgoing::Ready(id, version, response) => (id, version, *response),
            Outgoing::Query(id, version, handle, arrived) => match handle.wait() {
                Ok(mut resp) => {
                    // The server's own span: socket arrival to response
                    // write, wrapping the service's queue/execute spans.
                    if let Some(explain) = resp.explain.as_mut() {
                        explain.spans.push(SpanRecord {
                            name: "server.request".into(),
                            depth: 0,
                            nanos: arrived.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        });
                    }
                    (id, version, wire::wire_response(&resp))
                }
                Err(err) => (id, version, Response::Error(wire::wire_error(&err))),
            },
            Outgoing::Append(id, version, handle) => match handle.wait() {
                Ok(()) => (id, version, Response::Appended),
                Err(err) => (id, version, Response::Error(wire::wire_error(&err))),
            },
        };
        // A response too large for one frame (encode enforces MAX_FRAME)
        // degrades to an error frame the client can attribute and act on.
        // Responses echo the version their request arrived with.
        let frame = match response.encode_v(id, version) {
            Ok(frame) => frame,
            Err(err) => {
                let wire_err = proto::WireError {
                    code: err.wire_code(),
                    detail: err.to_string(),
                    rejected: None,
                };
                match Response::Error(wire_err).encode_v(id, version) {
                    Ok(frame) => frame,
                    Err(_) => {
                        abort_outgoing(out);
                        return;
                    }
                }
            }
        };
        if writer.write_all(&frame).is_err() {
            abort_outgoing(out);
            return;
        }
        shared.net.frames_out.inc();
        shared.net.bytes_out.add(frame.len() as u64);
        if out.is_empty() && writer.flush().is_err() {
            abort_outgoing(out);
            return;
        }
    }
    let _ = writer.flush();
}

/// The write half died mid-stream: close the outgoing queue so the
/// connection reader's `push_wait` fails with `Closed` instead of
/// blocking forever on a queue nobody drains (a pipelining client that
/// stopped reading would otherwise wedge the connection thread — and
/// with it `Server::shutdown`'s join — indefinitely), then discard what
/// was queued. Dropping unresolved handles is safe: they are oneshot
/// receivers, the service completes the work regardless.
fn abort_outgoing(out: &BoundedQueue<Outgoing>) {
    out.close();
    while out.pop_wait().is_some() {}
}
