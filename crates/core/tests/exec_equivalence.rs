//! Batched-vs-sequential equivalence: for random workloads, the
//! [`QueryExecutor`] must return exactly what per-query [`KvMatcher`]
//! execution returns — same offsets, bit-identical distances — for every
//! query type, thread count and cache configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvmatch_core::{
    ExecutorConfig, IndexBuildConfig, KvIndex, KvMatcher, QueryExecutor, QuerySpec,
};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};
use kvmatch_timeseries::generator::composite_series;

fn build_index(xs: &[f64], w: usize) -> KvIndex<MemoryKvStore> {
    let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
        xs,
        IndexBuildConfig::new(w),
        MemoryKvStoreBuilder::new(),
    )
    .unwrap();
    idx
}

/// Draws a random workload of all four query types, with queries sampled
/// from the series itself (jittered ε so selectivity varies).
fn random_specs(xs: &[f64], count: usize, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let m = rng.random_range(100..260);
            let off = rng.random_range(0..=xs.len() - m);
            let q = xs[off..off + m].to_vec();
            match rng.random_range(0..4u32) {
                0 => QuerySpec::rsm_ed(q, rng.random_range(0.5..20.0)),
                1 => QuerySpec::rsm_dtw(q, rng.random_range(0.5..10.0), rng.random_range(1..8)),
                2 => QuerySpec::cnsm_ed(
                    q,
                    rng.random_range(0.5..4.0),
                    rng.random_range(1.1..2.0),
                    rng.random_range(0.5..6.0),
                ),
                _ => QuerySpec::cnsm_dtw(
                    q,
                    rng.random_range(0.5..3.0),
                    rng.random_range(1..6),
                    rng.random_range(1.1..2.0),
                    rng.random_range(0.5..6.0),
                ),
            }
        })
        .collect()
}

fn assert_batch_equals_sequential(seed: u64, n: usize, w: usize, threads: usize, queries: usize) {
    let xs = composite_series(seed, n);
    let idx = build_index(&xs, w);
    let data = MemorySeriesStore::new(xs.clone());
    let specs = random_specs(&xs, queries, seed.wrapping_mul(7919));
    let matcher = KvMatcher::new(&idx, &data).unwrap();
    let exec = QueryExecutor::with_config(
        &idx,
        &data,
        ExecutorConfig { threads, cache_capacity: 512, ..ExecutorConfig::default() },
    )
    .unwrap();
    let batch = exec.execute_batch(&specs).unwrap();
    assert_eq!(batch.outputs.len(), specs.len());
    let mut total_matches = 0u64;
    for (i, (spec, out)) in specs.iter().zip(&batch.outputs).enumerate() {
        let (want, want_stats) = matcher.execute(spec).unwrap();
        assert_eq!(
            out.results, want,
            "query {i} (seed {seed}, threads {threads}): batched differs from sequential"
        );
        // Phase-1 candidate accounting is also identical: caching changes
        // *where* rows come from, never which candidates are produced.
        assert_eq!(out.stats.candidates, want_stats.candidates, "query {i} candidates");
        assert_eq!(
            out.stats.candidate_intervals, want_stats.candidate_intervals,
            "query {i} intervals"
        );
        assert_eq!(out.stats.matches, want_stats.matches, "query {i} matches");
        assert_eq!(
            out.stats.full_distance_computations, want_stats.full_distance_computations,
            "query {i} full distances"
        );
        total_matches += out.stats.matches;
    }
    assert!(total_matches > 0, "workload (seed {seed}) should produce at least one match");
}

#[test]
fn random_workloads_match_ed_and_dtw() {
    assert_batch_equals_sequential(1101, 6_000, 50, 4, 10);
    assert_batch_equals_sequential(1103, 5_000, 40, 2, 8);
}

#[test]
fn random_workload_single_thread() {
    assert_batch_equals_sequential(1109, 4_000, 50, 1, 6);
}

#[test]
fn random_workload_more_threads_than_items() {
    assert_batch_equals_sequential(1117, 3_000, 25, 16, 4);
}

#[test]
fn repeated_batches_stay_equivalent_with_warm_cache() {
    // A warm row cache must not change any result across repeated batches.
    let xs = composite_series(1123, 5_000);
    let idx = build_index(&xs, 50);
    let data = MemorySeriesStore::new(xs.clone());
    let specs = random_specs(&xs, 6, 99);
    let matcher = KvMatcher::new(&idx, &data).unwrap();
    let exec = QueryExecutor::new(&idx, &data).unwrap();
    let first = exec.execute_batch(&specs).unwrap();
    let second = exec.execute_batch(&specs).unwrap();
    for ((spec, a), b) in specs.iter().zip(&first.outputs).zip(&second.outputs) {
        let (want, _) = matcher.execute(spec).unwrap();
        assert_eq!(a.results, want);
        assert_eq!(b.results, want);
    }
    assert!(
        second.stats.probe_cache_hits == second.stats.probes,
        "second batch should be fully cache-served: {:?}",
        second.stats
    );
}
