//! Incremental index maintenance: extend a KV-index as the series grows.
//!
//! Time series are append-only in every deployment the paper targets
//! (data centers, IoT); rebuilding a KV-index from scratch on every batch
//! of new points would waste the O(n) build. [`IndexAppender`] instead
//! decodes the existing rows once, streams the new samples through the
//! same rolling-mean bucketing, and writes an updated index:
//!
//! * a new window position whose mean falls inside an existing row's
//!   `[low, up)` range is appended to that row's interval set (positions
//!   arrive in ascending order, so this is an O(1) tail extension);
//! * a mean falling in a gap between rows opens a fresh equal-width grid
//!   row `[k·d, (k+1)·d)`, clipped against its neighbours so rows stay
//!   disjoint.
//!
//! The γ-merge is **not** re-run over old rows (mirroring how LSM-style
//! stores avoid global reorganization on ingest), so an appended index is
//! not guaranteed byte-identical to a fresh rebuild — but it satisfies the
//! same partition invariant and therefore answers every query with the
//! same no-false-dismissal guarantee. Tests verify result-set equality
//! against fresh rebuilds and the brute-force scan.

use kvmatch_storage::{KvStore, KvStoreBuilder};
use kvmatch_timeseries::RollingStats;

use crate::build::{BuildStats, IndexBuildConfig, IndexRow};
use crate::index::{decode_row, KvIndex, META_KEY};
use crate::query::CoreError;

/// Streaming extension of an existing (or empty) KV-index.
#[derive(Debug)]
pub struct IndexAppender {
    config: IndexBuildConfig,
    rows: Vec<IndexRow>,
    rolling: RollingStats,
    next_position: u64,
    series_len: usize,
    /// Smallest row index touched (extended, or shifted by an insert)
    /// since the last [`IndexAppender::mark_sealed`]. Rows below it are
    /// byte-identical to the previously sealed generation: inserting at
    /// `idx` only shifts indexes ≥ `idx`, and extensions mutate exactly
    /// `rows[idx]`, so a running minimum over the touched `idx` values is
    /// a sound (if conservative) first-changed bound.
    first_changed: Option<usize>,
}

impl IndexAppender {
    /// Starts from an existing index. `tail` must be the last
    /// `min(w − 1, series_len)` samples of the already-indexed series —
    /// they seed the rolling window so the first new sample completes the
    /// first new sliding window.
    pub fn from_index<S: KvStore>(index: &KvIndex<S>, tail: &[f64]) -> Result<Self, CoreError> {
        let params = *index.meta().params();
        let w = params.window;
        let expected_tail = (w - 1).min(params.series_len);
        if tail.len() != expected_tail {
            return Err(CoreError::InvalidQuery(format!(
                "append tail must hold the last {expected_tail} samples, got {}",
                tail.len()
            )));
        }
        let config = IndexBuildConfig {
            window: w,
            width_d: params.width_d,
            merge_gamma: params.merge_gamma,
            ..IndexBuildConfig::new(w)
        };

        // Decode every row (one full scan — the cost a rebuild would pay
        // per *sample*, paid here once per append session).
        let mut rows = Vec::with_capacity(index.meta().row_count());
        let scanned = index.store().scan_all()?;
        let mut entries = index.meta().entries().iter();
        for kv in &scanned {
            if kv.key.as_ref() == META_KEY {
                continue;
            }
            let entry = entries.next().ok_or_else(|| {
                CoreError::CorruptIndex("store holds more rows than the meta table".into())
            })?;
            rows.push(IndexRow { low: entry.low, up: entry.up, intervals: decode_row(&kv.value)? });
        }
        if entries.next().is_some() {
            return Err(CoreError::CorruptIndex(
                "meta table holds more rows than the store".into(),
            ));
        }

        let mut rolling = RollingStats::new(w);
        for &v in tail {
            rolling.push(v);
        }
        let next_position = (params.series_len + 1).saturating_sub(w) as u64;
        Ok(Self {
            config,
            rows,
            rolling,
            next_position,
            series_len: params.series_len,
            first_changed: None,
        })
    }

    /// Starts from nothing (equivalent to building fresh, but through the
    /// append path — useful for uniform ingestion pipelines).
    pub fn new(config: IndexBuildConfig) -> Self {
        Self {
            rolling: RollingStats::new(config.window),
            config,
            rows: Vec::new(),
            next_position: 0,
            series_len: 0,
            first_changed: None,
        }
    }

    /// Total series length covered after the appends so far.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Current number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The build configuration (window width, bucket width, γ).
    pub fn config(&self) -> IndexBuildConfig {
        self.config
    }

    /// The current rows, sorted by `low` — a consistent snapshot the
    /// catalog persists (via
    /// [`KvIndex::append_series_rows`]) without consuming the appender,
    /// so ingestion continues across materializations.
    pub fn rows(&self) -> &[IndexRow] {
        &self.rows
    }

    /// Index of the first row that changed since the last
    /// [`IndexAppender::mark_sealed`]; every row below it is byte-identical
    /// to the sealed state. `rows().len()` means no row changed (appends
    /// that only grew `series_len` still change the meta row, which
    /// generational backends always rewrite).
    pub fn changed_rows_from(&self) -> usize {
        self.first_changed.unwrap_or(self.rows.len())
    }

    /// Records that the current rows were sealed into a generation, so
    /// change tracking restarts from here.
    pub fn mark_sealed(&mut self) {
        self.first_changed = None;
    }

    /// Appends one sample.
    pub fn push(&mut self, v: f64) {
        self.rolling.push(v);
        self.series_len += 1;
        if let Some(mu) = self.rolling.mean() {
            let pos = self.next_position;
            self.next_position += 1;
            self.insert_position(mu, pos);
        }
    }

    /// Appends a chunk of samples.
    pub fn push_chunk(&mut self, xs: &[f64]) {
        for &v in xs {
            self.push(v);
        }
    }

    fn insert_position(&mut self, mu: f64, pos: u64) {
        // First row whose range could contain or follow `mu`.
        let idx = self.rows.partition_point(|r| r.up <= mu);
        self.first_changed = Some(self.first_changed.map_or(idx, |f| f.min(idx)));
        if let Some(row) = self.rows.get_mut(idx) {
            if row.low <= mu && mu < row.up {
                row.intervals.extend_or_open(pos);
                return;
            }
        }
        // Gap: open a grid row clipped against the neighbours.
        let d = self.config.width_d;
        let k = (mu / d).floor();
        let mut low = k * d;
        let mut up = (k + 1.0) * d;
        if idx > 0 {
            low = low.max(self.rows[idx - 1].up);
        }
        if let Some(next) = self.rows.get(idx) {
            up = up.min(next.low);
        }
        debug_assert!(low <= mu && mu < up, "clipped row [{low}, {up}) must contain {mu}");
        let mut intervals = crate::interval::IntervalSet::new();
        intervals.extend_or_open(pos);
        self.rows.insert(idx, IndexRow { low, up, intervals });
    }

    /// Persists the extended index. Returns the index plus build-style
    /// statistics over the final rows.
    pub fn finish_into<B>(self, builder: B) -> Result<(KvIndex<B::Store>, BuildStats), CoreError>
    where
        B: KvStoreBuilder,
    {
        let stats = BuildStats {
            rows_fixed_width: self.rows.len(),
            rows_merged: self.rows.len(),
            total_intervals: self.rows.iter().map(|r| r.intervals.num_intervals() as u64).sum(),
            total_positions: self.rows.iter().map(|r| r.intervals.num_positions()).sum(),
        };
        let index =
            KvIndex::<B::Store>::persist_rows(self.rows, self.config, self.series_len, builder)?;
        Ok((index, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::KvMatcher;
    use crate::naive::naive_search;
    use crate::query::QuerySpec;
    use kvmatch_storage::memory::MemoryKvStoreBuilder;
    use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};
    use kvmatch_timeseries::generator::composite_series;
    use kvmatch_timeseries::rolling::sliding_means;

    fn build_fresh(xs: &[f64], w: usize) -> KvIndex<MemoryKvStore> {
        KvIndex::<MemoryKvStore>::build_into(
            xs,
            IndexBuildConfig::new(w),
            MemoryKvStoreBuilder::new(),
        )
        .unwrap()
        .0
    }

    fn append_to(idx: &KvIndex<MemoryKvStore>, old: &[f64], new: &[f64]) -> KvIndex<MemoryKvStore> {
        let w = idx.window();
        let tail_len = (w - 1).min(old.len());
        let mut app = IndexAppender::from_index(idx, &old[old.len() - tail_len..]).unwrap();
        app.push_chunk(new);
        app.finish_into(MemoryKvStoreBuilder::new()).unwrap().0
    }

    /// Partition invariant: every window position appears in exactly one
    /// row, and that row's range contains its mean.
    fn assert_partition(idx: &KvIndex<MemoryKvStore>, xs: &[f64]) {
        let w = idx.window();
        let means = sliding_means(xs, w);
        assert_eq!(idx.meta().total_positions() as usize, means.len());
        let (all, _) = idx.probe(f64::NEG_INFINITY, f64::INFINITY).unwrap();
        assert_eq!(all.num_positions() as usize, means.len());
        for (j, &mu) in means.iter().enumerate() {
            let (si, ei) = idx.meta().rows_overlapping(mu, mu);
            assert!(si < ei, "no row covers mean {mu} of position {j}");
        }
    }

    #[test]
    fn appended_index_answers_like_fresh_rebuild() {
        let full = composite_series(601, 8_000);
        let (old, new) = full.split_at(5_000);
        let w = 50;
        let idx_old = build_fresh(old, w);
        let appended = append_to(&idx_old, old, new);
        assert_eq!(appended.series_len(), full.len());
        assert_partition(&appended, &full);

        let fresh = build_fresh(&full, w);
        let data = MemorySeriesStore::new(full.clone());
        let q = full[5_100..5_400].to_vec(); // spans the append boundary region
        for spec in [
            QuerySpec::rsm_ed(q.clone(), 10.0),
            QuerySpec::rsm_dtw(q.clone(), 6.0, 8),
            QuerySpec::cnsm_ed(q.clone(), 2.0, 1.5, 4.0),
            QuerySpec::cnsm_dtw(q.clone(), 2.0, 8, 1.5, 4.0),
        ] {
            let (a, _) = KvMatcher::new(&appended, &data).unwrap().execute(&spec).unwrap();
            let (f, _) = KvMatcher::new(&fresh, &data).unwrap().execute(&spec).unwrap();
            let want = naive_search(&full, &spec);
            let a_off: Vec<usize> = a.iter().map(|r| r.offset).collect();
            let f_off: Vec<usize> = f.iter().map(|r| r.offset).collect();
            let w_off: Vec<usize> = want.iter().map(|r| r.offset).collect();
            assert_eq!(a_off, w_off, "appended ≠ naive");
            assert_eq!(f_off, w_off, "fresh ≠ naive");
        }
    }

    #[test]
    fn matches_spanning_the_boundary_are_found() {
        let full = composite_series(603, 6_000);
        let (old, new) = full.split_at(3_000);
        let idx_old = build_fresh(old, 50);
        let appended = append_to(&idx_old, old, new);
        let data = MemorySeriesStore::new(full.clone());
        // Query drawn right across the old/new boundary.
        let q = full[2_900..3_150].to_vec();
        let (res, _) =
            KvMatcher::new(&appended, &data).unwrap().execute(&QuerySpec::rsm_ed(q, 1e-9)).unwrap();
        assert!(res.iter().any(|r| r.offset == 2_900), "boundary self-match lost");
    }

    #[test]
    fn chunked_appends_equal_single_append() {
        let full = composite_series(605, 7_000);
        let (old, new) = full.split_at(4_000);
        let w = 40;
        let idx_old = build_fresh(old, w);

        let one_shot = append_to(&idx_old, old, new);

        let mut app = IndexAppender::from_index(&idx_old, &old[old.len() - (w - 1)..]).unwrap();
        for chunk in new.chunks(137) {
            app.push_chunk(chunk);
        }
        let (chunked, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();

        assert_eq!(one_shot.meta(), chunked.meta());
        let (a, _) = one_shot.probe(f64::NEG_INFINITY, f64::INFINITY).unwrap();
        let (b, _) = chunked.probe(f64::NEG_INFINITY, f64::INFINITY).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_appends_compose() {
        let full = composite_series(607, 9_000);
        let w = 50;
        let mut idx = build_fresh(&full[..3_000], w);
        let mut covered = 3_000usize;
        for next in [5_000usize, 6_500, 9_000] {
            idx = append_to(&idx, &full[..covered], &full[covered..next]);
            covered = next;
            assert_eq!(idx.series_len(), covered);
            assert_partition(&idx, &full[..covered]);
        }
        let data = MemorySeriesStore::new(full.clone());
        let q = full[7_000..7_300].to_vec();
        let spec = QuerySpec::rsm_ed(q, 12.0);
        let (got, _) = KvMatcher::new(&idx, &data).unwrap().execute(&spec).unwrap();
        let want = naive_search(&full, &spec);
        assert_eq!(
            got.iter().map(|r| r.offset).collect::<Vec<_>>(),
            want.iter().map(|r| r.offset).collect::<Vec<_>>()
        );
    }

    #[test]
    fn append_path_from_empty_equals_fresh_build() {
        let xs = composite_series(609, 4_000);
        let w = 25;
        let mut app = IndexAppender::new(IndexBuildConfig::new(w));
        app.push_chunk(&xs);
        let (via_append, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        assert_partition(&via_append, &xs);
        // Semantically equal to the fresh build (row boundaries may differ
        // because the append path never γ-merges).
        let fresh = build_fresh(&xs, w);
        let data = MemorySeriesStore::new(xs.clone());
        let spec = QuerySpec::rsm_ed(xs[100..400].to_vec(), 8.0);
        let (a, _) = KvMatcher::new(&via_append, &data).unwrap().execute(&spec).unwrap();
        let (b, _) = KvMatcher::new(&fresh, &data).unwrap().execute(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wrong_tail_length_rejected() {
        let xs = composite_series(611, 2_000);
        let idx = build_fresh(&xs, 50);
        assert!(IndexAppender::from_index(&idx, &xs[xs.len() - 10..]).is_err());
        assert!(IndexAppender::from_index(&idx, &[]).is_err());
    }

    #[test]
    fn short_old_series_appends_correctly() {
        // Old series shorter than w: no windows existed yet.
        let full = composite_series(613, 1_000);
        let w = 50;
        let old = &full[..30];
        let idx_old = build_fresh(old, w);
        assert_eq!(idx_old.meta().row_count(), 0);
        let mut app = IndexAppender::from_index(&idx_old, old).unwrap(); // tail = whole series
        app.push_chunk(&full[30..]);
        let (idx, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        assert_partition(&idx, &full);
    }

    #[test]
    fn empty_append_is_identity() {
        let xs = composite_series(615, 3_000);
        let idx = build_fresh(&xs, 50);
        let appended = append_to(&idx, &xs, &[]);
        assert_eq!(idx.meta(), appended.meta());
    }

    #[test]
    fn empty_chunks_interleaved_are_noops() {
        let xs = composite_series(617, 4_000);
        let w = 40;
        let mut plain = IndexAppender::new(IndexBuildConfig::new(w));
        let mut interleaved = IndexAppender::new(IndexBuildConfig::new(w));
        for chunk in xs.chunks(251) {
            plain.push_chunk(chunk);
            interleaved.push_chunk(&[]);
            interleaved.push_chunk(chunk);
            interleaved.push_chunk(&[]);
        }
        assert_eq!(plain.series_len(), interleaved.series_len());
        assert_eq!(plain.rows(), interleaved.rows());
        let (a, _) = plain.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        let (b, _) = interleaved.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        assert_eq!(a.meta(), b.meta());
    }

    #[test]
    fn single_point_batches_equal_one_shot() {
        let xs = composite_series(619, 2_000);
        let w = 25;
        let mut one_at_a_time = IndexAppender::new(IndexBuildConfig::new(w));
        for &v in &xs {
            one_at_a_time.push_chunk(std::slice::from_ref(&v));
        }
        let mut one_shot = IndexAppender::new(IndexBuildConfig::new(w));
        one_shot.push_chunk(&xs);
        assert_eq!(one_at_a_time.rows(), one_shot.rows());
        let (a, _) = one_at_a_time.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        assert_partition(&a, &xs);
    }

    /// The gap-row path: appended means beyond every existing row open
    /// fresh grid rows, the index stays a disjoint partition, and
    /// queries over the grown range answer exactly like the naive scan.
    #[test]
    fn appended_gap_means_open_rows() {
        let w = 10;
        // Old data: one tight mean cluster around 0 (no transitions, so
        // the mean range away from 0 is genuinely uncovered).
        let old: Vec<f64> = (0..300).map(|i| if i % 2 == 0 { 0.4 } else { -0.4 }).collect();
        let config = IndexBuildConfig { width_d: 0.5, ..IndexBuildConfig::new(w) };
        let mut base = IndexAppender::new(config);
        base.push_chunk(&old);
        let (idx_old, _) = base.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        let old_rows = idx_old.meta().row_count();

        // Appended points around 10: the boundary windows sweep the mean
        // from 0 to 10, opening a ladder of fresh gap rows.
        let new: Vec<f64> = (0..150).map(|i| 10.0 + if i % 2 == 0 { 0.3 } else { -0.3 }).collect();
        let mut app = IndexAppender::from_index(&idx_old, &old[old.len() - (w - 1)..]).unwrap();
        app.push_chunk(&new);
        assert!(app.row_count() > old_rows, "gap rows were opened");
        let (appended, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();

        let full: Vec<f64> = old.iter().chain(&new).copied().collect();
        assert_partition(&appended, &full);
        for pair in appended.meta().entries().windows(2) {
            assert!(pair[0].up <= pair[1].low, "rows overlap: {pair:?}");
        }
        // Queries across the boundary answer exactly like the naive scan.
        let data = MemorySeriesStore::new(full.clone());
        let q = full[old.len() - 20..old.len() + 30].to_vec();
        let spec = QuerySpec::rsm_ed(q, 2.0);
        let (got, _) = KvMatcher::new(&appended, &data).unwrap().execute(&spec).unwrap();
        let want = naive_search(&full, &spec);
        assert_eq!(
            got.iter().map(|r| r.offset).collect::<Vec<_>>(),
            want.iter().map(|r| r.offset).collect::<Vec<_>>()
        );
    }

    /// The gap-row *clipping* path. Grid-built rows are always aligned to
    /// multiples of `d`, so a fresh grid cell never overlaps them — the
    /// clip exists for stores whose rows moved off the grid (external
    /// compaction, future row-splitting). Hand-craft such an index and
    /// verify a gap mean opens a row clipped against *both* neighbours.
    #[test]
    fn gap_row_clips_against_non_aligned_neighbours() {
        use crate::interval::{IntervalSet, WindowInterval};
        let w = 4;
        let config = IndexBuildConfig { width_d: 1.0, ..IndexBuildConfig::new(w) };
        let iv = |l: u64, r: u64| IntervalSet::from_sorted(vec![WindowInterval::new(l, r)]);
        // Two non-grid-aligned rows inside the d = 1 cell [0, 1).
        let rows = vec![
            IndexRow { low: 0.0, up: 0.3, intervals: iv(0, 1) },
            IndexRow { low: 0.7, up: 1.0, intervals: iv(2, 2) },
        ];
        let idx =
            KvIndex::<MemoryKvStore>::persist_rows(rows, config, 6, MemoryKvStoreBuilder::new())
                .unwrap();

        // Push one sample completing a window with mean 0.5 — inside the
        // gap, and inside the grid cell both neighbours intrude into.
        let mut app = IndexAppender::from_index(&idx, &[0.5, 0.5, 0.5]).unwrap();
        app.push(0.5);
        assert_eq!(app.row_count(), 3, "a fresh gap row was opened");
        let (appended, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
        let entries = appended.meta().entries();
        // The new row is clipped to [0.3, 0.7) — both clips applied —
        // and holds the new window position 3.
        assert_eq!((entries[1].low, entries[1].up), (0.3, 0.7));
        assert_eq!(entries[1].n_positions, 1);
        let (is, _) = appended.probe(0.5, 0.5).unwrap();
        assert!(is.contains(3));
        for pair in entries.windows(2) {
            assert!(pair[0].up <= pair[1].low, "rows overlap: {pair:?}");
        }
    }
}
