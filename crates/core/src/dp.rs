//! KV-match_DP — dynamic query segmentation over multiple indexes (§VI).
//!
//! A [`MultiIndex`] holds `L` KV-indexes with window widths
//! `Σ = {w_u · 2^(i−1)}`. A query is split into variable-length disjoint
//! windows by a two-dimensional dynamic program minimizing the objective
//! `F(SG) = (∏ nI(IS_i))^(1/p) / n` (Eq. 8), where each `nI(IS_i)` is
//! estimated from the meta tables alone (Eq. 9's `C` terms) — no index I/O
//! happens during segmentation.

use std::time::Instant;

use kvmatch_storage::{KvStore, KvStoreBuilder, SeriesStore};

use crate::build::IndexBuildConfig;
use crate::cache::RowCache;
use crate::index::KvIndex;
use crate::interval::IntervalSet;
use crate::matcher::{verify_candidates, PreparedQuery};
use crate::query::{CoreError, MatchResult, MatchStats, QuerySpec};

/// Configuration of the index set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexSetConfig {
    /// Minimum window width `w_u`.
    pub wu: usize,
    /// Number of indexes `L`; widths are `w_u · 2^(i−1)`, `1 ≤ i ≤ L`.
    pub levels: usize,
    /// Bucket width `d` for every index.
    pub width_d: f64,
    /// Merge threshold γ for every index.
    pub merge_gamma: f64,
}

impl Default for IndexSetConfig {
    /// Paper defaults: `w_u = 25`, `L = 5` ⇒ Σ = {25, 50, 100, 200, 400}.
    fn default() -> Self {
        Self { wu: 25, levels: 5, width_d: 0.5, merge_gamma: 0.8 }
    }
}

impl IndexSetConfig {
    /// The window widths Σ, ascending.
    pub fn window_lengths(&self) -> Vec<usize> {
        (0..self.levels).map(|i| self.wu << i).collect()
    }

    /// Build configuration for one width.
    pub fn build_config(&self, window: usize) -> IndexBuildConfig {
        IndexBuildConfig {
            window,
            width_d: self.width_d,
            merge_gamma: self.merge_gamma,
            ..IndexBuildConfig::new(window)
        }
    }
}

/// One window of a query segmentation: `Q(offset, window)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// 0-based offset into the query.
    pub offset: usize,
    /// Window width (∈ Σ).
    pub window: usize,
}

/// A set of KV-indexes over the same series with doubling window widths.
#[derive(Debug)]
pub struct MultiIndex<S: KvStore> {
    indexes: Vec<KvIndex<S>>,
    wu: usize,
}

impl<S: KvStore> MultiIndex<S> {
    /// Wraps pre-built indexes. They must cover the same series and have
    /// the doubling-width structure `w_u · 2^i`, ascending.
    pub fn new(indexes: Vec<KvIndex<S>>) -> Result<Self, CoreError> {
        if indexes.is_empty() {
            return Err(CoreError::CorruptIndex("multi-index needs ≥ 1 index".into()));
        }
        let wu = indexes[0].window();
        let n = indexes[0].series_len();
        for (i, idx) in indexes.iter().enumerate() {
            if idx.window() != wu << i {
                return Err(CoreError::CorruptIndex(format!(
                    "index {i} has window {}, expected {}",
                    idx.window(),
                    wu << i
                )));
            }
            if idx.series_len() != n {
                return Err(CoreError::CorruptIndex(
                    "indexes cover different series lengths".into(),
                ));
            }
        }
        Ok(Self { indexes, wu })
    }

    /// Builds the full index set over `xs`, creating one store per width
    /// through `make_builder(window)`.
    pub fn build_with<B, F>(
        xs: &[f64],
        config: IndexSetConfig,
        mut make_builder: F,
    ) -> Result<MultiIndex<B::Store>, CoreError>
    where
        B: KvStoreBuilder,
        F: FnMut(usize) -> B,
    {
        let mut indexes = Vec::with_capacity(config.levels);
        for w in config.window_lengths() {
            let (idx, _) =
                KvIndex::<B::Store>::build_into(xs, config.build_config(w), make_builder(w))?;
            indexes.push(idx);
        }
        MultiIndex::new(indexes)
    }

    /// The minimum window width `w_u`.
    pub fn wu(&self) -> usize {
        self.wu
    }

    /// Number of levels `L`.
    pub fn levels(&self) -> usize {
        self.indexes.len()
    }

    /// All indexes, ascending width.
    pub fn indexes(&self) -> &[KvIndex<S>] {
        &self.indexes
    }

    /// Length of the covered series.
    pub fn series_len(&self) -> usize {
        self.indexes[0].series_len()
    }

    /// The index for window width `w` (must be in Σ).
    pub fn index_for(&self, w: usize) -> Option<&KvIndex<S>> {
        if !w.is_multiple_of(self.wu) {
            return None;
        }
        let ratio = w / self.wu;
        if !ratio.is_power_of_two() {
            return None;
        }
        let level = ratio.trailing_zeros() as usize;
        self.indexes.get(level)
    }

    /// Total scan operations across all member indexes.
    pub fn total_index_accesses(&self) -> u64 {
        self.indexes.iter().map(|i| i.store().io_stats().scans()).sum()
    }

    /// The optimal segmentation of `prep`'s query (Algorithm 2 / Eq. 9).
    ///
    /// Runs entirely on the meta tables. Returns segments in query order;
    /// the query suffix shorter than `w_u` is left uncovered (ignoring it
    /// preserves correctness, §V-A footnote).
    pub fn segment_query(&self, prep: &PreparedQuery) -> Result<Vec<Segment>, CoreError> {
        let wu = self.wu;
        let m_prime = prep.m / wu;
        if m_prime == 0 {
            return Err(CoreError::QueryTooShort { query_len: prep.m, window: wu });
        }
        let levels = self.indexes.len();
        let inf = f64::INFINITY;

        // ln C_{start,ϕ}: estimated nI(IS) of the window Q(start·wu, ϕ·wu),
        // from the meta table of KV-index_{ϕ·wu}. Precomputed once per
        // (start, level) — the DP loop below would otherwise recompute each
        // entry O(m') times.
        let cost_table: Vec<Vec<f64>> = (0..levels)
            .map(|level| {
                let phi = 1usize << level;
                let w = phi * wu;
                (0..m_prime.saturating_sub(phi - 1))
                    .map(|start| {
                        let range = prep.window_range(start * wu, w);
                        let c =
                            self.indexes[level].meta().estimate_intervals(range.lower, range.upper);
                        (c as f64).max(0.5).ln()
                    })
                    .collect()
            })
            .collect();
        let ln_cost =
            |start: usize, phi: usize| -> f64 { cost_table[phi.trailing_zeros() as usize][start] };

        // v[i][j] = ln of the Eq. 9 sub-state; P[i][j] = chosen ϕ.
        let dim = m_prime + 1;
        let mut v = vec![inf; dim * dim];
        let mut back = vec![0usize; dim * dim];
        v[0] = 0.0; // v[0][0] = ln 1
        for i in 1..=m_prime {
            let max_k = levels.min(i.ilog2() as usize + 1);
            for j in 1..=i {
                let mut best = inf;
                let mut best_phi = 0usize;
                for k in 1..=max_k {
                    let phi = 1usize << (k - 1);
                    if phi > i {
                        break;
                    }
                    let prev = v[(i - phi) * dim + (j - 1)];
                    if !prev.is_finite() {
                        continue;
                    }
                    let cand = ((j - 1) as f64 * prev + ln_cost(i - phi, phi)) / j as f64;
                    if cand < best {
                        best = cand;
                        best_phi = phi;
                    }
                }
                v[i * dim + j] = best;
                back[i * dim + j] = best_phi;
            }
        }

        // Pick the window count with minimal objective, then walk back.
        let (mut j, _) = (1..=m_prime)
            .map(|j| (j, v[m_prime * dim + j]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("objective is never NaN"))
            .expect("m' ≥ 1");
        let mut i = m_prime;
        let mut segments = Vec::new();
        while i != 0 {
            let phi = back[i * dim + j];
            debug_assert!(phi >= 1, "broken backward pointer at ({i}, {j})");
            segments.push(Segment { offset: (i - phi) * wu, window: phi * wu });
            i -= phi;
            j -= 1;
        }
        segments.reverse();
        Ok(segments)
    }
}

/// Tuning knobs of the DP matcher (§VI-C optimizations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DpOptions {
    /// Probe windows in ascending estimated-cost order (optimization 2),
    /// stopping as soon as the intersection becomes empty.
    pub reorder_by_cost: bool,
    /// Process at most this many windows (optimization 3): the remaining
    /// `CS_i` filters are skipped, which keeps correctness (each is a
    /// superset of the result) at the price of more phase-2 candidates.
    pub max_windows: Option<usize>,
}

impl Default for DpOptions {
    fn default() -> Self {
        Self { reorder_by_cost: true, max_windows: None }
    }
}

/// The KV-match_DP matcher.
pub struct DpMatcher<'a, S: KvStore, D: SeriesStore> {
    multi: &'a MultiIndex<S>,
    data: &'a D,
    options: DpOptions,
    row_cache: Option<&'a RowCache>,
}

impl<'a, S: KvStore, D: SeriesStore> DpMatcher<'a, S, D> {
    /// Binds a multi-index to its data store.
    pub fn new(multi: &'a MultiIndex<S>, data: &'a D) -> Result<Self, CoreError> {
        if multi.series_len() != data.len() {
            return Err(CoreError::CorruptIndex(format!(
                "multi-index covers length {}, data store has {}",
                multi.series_len(),
                data.len()
            )));
        }
        Ok(Self { multi, data, options: DpOptions::default(), row_cache: None })
    }

    /// Reuses index rows across queries through `cache` (§VI-C
    /// optimization 1). The cache is shared across all member indexes —
    /// keys carry the window width.
    pub fn with_row_cache(mut self, cache: &'a RowCache) -> Self {
        self.row_cache = Some(cache);
        self
    }

    /// Overrides the DP options.
    pub fn with_options(mut self, options: DpOptions) -> Self {
        self.options = options;
        self
    }

    /// Executes the query: DP segmentation, multi-index probing,
    /// intersection, verification.
    pub fn execute(&self, spec: &QuerySpec) -> Result<(Vec<MatchResult>, MatchStats), CoreError> {
        let (results, stats, _) = self.execute_traced(spec)?;
        Ok((results, stats))
    }

    /// Like [`DpMatcher::execute`] but also returns the chosen segmentation.
    pub fn execute_traced(
        &self,
        spec: &QuerySpec,
    ) -> Result<(Vec<MatchResult>, MatchStats, Vec<Segment>), CoreError> {
        let prep = PreparedQuery::new(spec.clone())?;
        let n = self.data.len();
        let mut stats = MatchStats::default();
        if prep.m > n {
            return Ok((Vec::new(), stats, Vec::new()));
        }

        let t1 = Instant::now();
        let mut segments = self.multi.segment_query(&prep)?;

        // Probe order: ascending estimated cost when requested.
        let mut order: Vec<usize> = (0..segments.len()).collect();
        if self.options.reorder_by_cost {
            let costs: Vec<u64> = segments
                .iter()
                .map(|seg| {
                    let range = prep.window_range(seg.offset, seg.window);
                    self.multi
                        .index_for(seg.window)
                        .expect("segment windows come from Σ")
                        .meta()
                        .estimate_intervals(range.lower, range.upper)
                })
                .collect();
            order.sort_by_key(|&i| costs[i]);
        }
        let limit = self.options.max_windows.unwrap_or(segments.len()).max(1);

        let mut cs: Option<IntervalSet> = None;
        for &si in order.iter().take(limit) {
            let seg = segments[si];
            let idx = self.multi.index_for(seg.window).expect("segment windows come from Σ");
            let range = prep.window_range(seg.offset, seg.window);
            let (is, info) = match self.row_cache {
                Some(cache) => idx.probe_cached(range.lower, range.upper, cache)?,
                None => idx.probe(range.lower, range.upper)?,
            };
            stats.absorb_probe(&info);
            let csi = is.shift_left(seg.offset as u64);
            cs = Some(match cs {
                None => csi,
                Some(prev) => prev.intersect(&csi),
            });
            if cs.as_ref().expect("just set").is_empty() {
                break;
            }
        }
        let cs = cs.expect("segmentation yields ≥ 1 window").clamp_max((n - prep.m) as u64);
        stats.candidates = cs.num_positions();
        stats.candidate_intervals = cs.num_intervals() as u64;
        stats.phase1_nanos = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let results = verify_candidates(self.data, &prep, &cs, &mut stats)?;
        stats.phase2_nanos = t2.elapsed().as_nanos() as u64;
        segments.sort_by_key(|s| s.offset);
        Ok((results, stats, segments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_search;
    use kvmatch_storage::memory::MemoryKvStoreBuilder;
    use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};
    use kvmatch_timeseries::generator::composite_series;

    fn small_cfg() -> IndexSetConfig {
        IndexSetConfig { wu: 25, levels: 4, ..Default::default() }
    }

    fn build_multi(xs: &[f64], cfg: IndexSetConfig) -> MultiIndex<MemoryKvStore> {
        MultiIndex::<MemoryKvStore>::build_with::<MemoryKvStoreBuilder, _>(xs, cfg, |_| {
            MemoryKvStoreBuilder::new()
        })
        .unwrap()
    }

    #[test]
    fn window_lengths_double() {
        assert_eq!(IndexSetConfig::default().window_lengths(), vec![25, 50, 100, 200, 400]);
        assert_eq!(small_cfg().window_lengths(), vec![25, 50, 100, 200]);
    }

    #[test]
    fn index_for_lookup() {
        let xs = composite_series(71, 3_000);
        let multi = build_multi(&xs, small_cfg());
        assert_eq!(multi.index_for(25).unwrap().window(), 25);
        assert_eq!(multi.index_for(200).unwrap().window(), 200);
        assert!(multi.index_for(75).is_none());
        assert!(multi.index_for(400).is_none(), "beyond configured levels");
        assert!(multi.index_for(30).is_none());
    }

    #[test]
    fn segmentation_tiles_query_prefix() {
        let xs = composite_series(73, 10_000);
        let multi = build_multi(&xs, small_cfg());
        for m in [25usize, 100, 130, 333, 1024, 2048] {
            let q = xs[50..50 + m].to_vec();
            let prep = PreparedQuery::new(QuerySpec::rsm_ed(q, 5.0)).unwrap();
            let segs = multi.segment_query(&prep).unwrap();
            assert!(!segs.is_empty());
            // Windows tile [0, (m/wu)·wu) contiguously.
            let mut cursor = 0usize;
            for s in &segs {
                assert_eq!(s.offset, cursor, "m={m}");
                assert!(multi.index_for(s.window).is_some(), "window {} not in Σ", s.window);
                cursor += s.window;
            }
            assert_eq!(cursor, (m / 25) * 25, "m={m}");
        }
    }

    #[test]
    fn segmentation_rejects_short_query() {
        let xs = composite_series(79, 2_000);
        let multi = build_multi(&xs, small_cfg());
        let prep = PreparedQuery::new(QuerySpec::rsm_ed(vec![1.0; 10], 5.0)).unwrap();
        assert!(matches!(multi.segment_query(&prep), Err(CoreError::QueryTooShort { .. })));
    }

    fn check_dp_equals_naive(xs: &[f64], spec: &QuerySpec) {
        let multi = build_multi(xs, small_cfg());
        let data = MemorySeriesStore::new(xs.to_vec());
        let matcher = DpMatcher::new(&multi, &data).unwrap();
        let (got, _) = matcher.execute(spec).unwrap();
        let want = naive_search(xs, spec);
        assert_eq!(
            got.iter().map(|r| r.offset).collect::<Vec<_>>(),
            want.iter().map(|r| r.offset).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dp_rsm_ed_equals_naive() {
        let xs = composite_series(83, 6_000);
        let q = xs[1500..1800].to_vec();
        for eps in [1.0, 10.0, 40.0] {
            check_dp_equals_naive(&xs, &QuerySpec::rsm_ed(q.clone(), eps));
        }
    }

    #[test]
    fn dp_cnsm_ed_equals_naive() {
        let xs = composite_series(89, 6_000);
        let q = xs[3000..3300].to_vec();
        check_dp_equals_naive(&xs, &QuerySpec::cnsm_ed(q, 3.0, 1.5, 5.0));
    }

    #[test]
    fn dp_rsm_dtw_equals_naive() {
        let xs = composite_series(97, 2_500);
        let q = xs[400..600].to_vec();
        check_dp_equals_naive(&xs, &QuerySpec::rsm_dtw(q, 6.0, 5));
    }

    #[test]
    fn dp_cnsm_dtw_equals_naive() {
        let xs = composite_series(101, 2_000);
        let q = xs[900..1100].to_vec();
        check_dp_equals_naive(&xs, &QuerySpec::cnsm_dtw(q, 3.0, 5, 1.5, 4.0));
    }

    #[test]
    fn options_do_not_change_results() {
        let xs = composite_series(103, 5_000);
        let q = xs[100..500].to_vec();
        let spec = QuerySpec::rsm_ed(q, 20.0);
        let multi = build_multi(&xs, small_cfg());
        let data = MemorySeriesStore::new(xs.clone());
        let baseline = DpMatcher::new(&multi, &data)
            .unwrap()
            .with_options(DpOptions { reorder_by_cost: false, max_windows: None });
        let (want, _) = baseline.execute(&spec).unwrap();
        for opts in [
            DpOptions { reorder_by_cost: true, max_windows: None },
            DpOptions { reorder_by_cost: true, max_windows: Some(2) },
            DpOptions { reorder_by_cost: false, max_windows: Some(1) },
        ] {
            let m = DpMatcher::new(&multi, &data).unwrap().with_options(opts);
            let (got, _) = m.execute(&spec).unwrap();
            assert_eq!(got, want, "{opts:?}");
        }
    }

    #[test]
    fn max_windows_increases_candidates() {
        let xs = composite_series(107, 8_000);
        let q = xs[2000..2800].to_vec();
        let spec = QuerySpec::rsm_ed(q, 25.0);
        let multi = build_multi(&xs, small_cfg());
        let data = MemorySeriesStore::new(xs.clone());
        let all = DpMatcher::new(&multi, &data).unwrap();
        let (_, stats_all) = all.execute(&spec).unwrap();
        let limited = DpMatcher::new(&multi, &data)
            .unwrap()
            .with_options(DpOptions { reorder_by_cost: true, max_windows: Some(1) });
        let (_, stats_one) = limited.execute(&spec).unwrap();
        assert!(stats_one.candidates >= stats_all.candidates);
        assert!(stats_one.index_accesses <= stats_all.index_accesses);
    }

    #[test]
    fn multi_index_validation() {
        let xs = composite_series(109, 2_000);
        let a = {
            let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
                &xs,
                IndexBuildConfig::new(25),
                MemoryKvStoreBuilder::new(),
            )
            .unwrap();
            idx
        };
        let b = {
            let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
                &xs,
                IndexBuildConfig::new(75), // not 50 ⇒ breaks the doubling chain
                MemoryKvStoreBuilder::new(),
            )
            .unwrap();
            idx
        };
        assert!(MultiIndex::new(vec![a, b]).is_err());
        assert!(MultiIndex::<MemoryKvStore>::new(vec![]).is_err());
    }
}
