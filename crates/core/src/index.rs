//! The persisted KV-index (paper §IV).
//!
//! Logically: ordered rows `⟨K_i = [low_i, up_i), V_i = window intervals⟩`
//! plus the meta table. Physically: any [`KvStore`]. Row keys are the
//! order-preserving encoding of `low_i`; the meta table is stored under a
//! reserved one-byte key that sorts below every encoded `f64`.
//!
//! Row payload layout (little-endian):
//!
//! ```text
//! count: u32 │ first_left: u64 │ len_0: u32 │ (gap_i: u32, len_i: u32)*
//! ```
//!
//! `gap_i = left_i − right_{i−1}` (≥ 2 because rows store non-adjacent
//! intervals), `len_i = right_i − left_i + 1`. Series up to 2³² window
//! positions are supported; longer gaps/lengths are rejected at build time.

use kvmatch_storage::{encode_f64, KvStore, KvStoreBuilder, SeriesId};

use crate::build::{self, BuildStats, IndexBuildConfig, IndexRow};
use crate::cache::RowCache;
use crate::interval::{IntervalSet, WindowInterval};
use crate::meta::MetaTable;
use crate::query::CoreError;

/// Reserved key suffix of the meta-table row (sorts before every encoded
/// `f64`, and — being shorter — before every prefixed row key too).
pub const META_KEY: &[u8] = &[0x00];

/// Encodes a row's interval set into the payload layout above.
pub fn encode_row(intervals: &IntervalSet) -> Result<Vec<u8>, CoreError> {
    let ivs = intervals.intervals();
    let mut out = Vec::with_capacity(4 + 8 + ivs.len() * 8);
    out.extend_from_slice(&(ivs.len() as u32).to_le_bytes());
    if ivs.is_empty() {
        return Ok(out);
    }
    out.extend_from_slice(&ivs[0].left.to_le_bytes());
    let to_u32 = |v: u64, what: &str| -> Result<u32, CoreError> {
        u32::try_from(v).map_err(|_| {
            CoreError::InvalidQuery(format!(
                "{what} {v} exceeds the u32 row-encoding limit (series too long)"
            ))
        })
    };
    out.extend_from_slice(&to_u32(ivs[0].size(), "interval length")?.to_le_bytes());
    for k in 1..ivs.len() {
        let gap = ivs[k].left - ivs[k - 1].right;
        out.extend_from_slice(&to_u32(gap, "interval gap")?.to_le_bytes());
        out.extend_from_slice(&to_u32(ivs[k].size(), "interval length")?.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a row payload.
pub fn decode_row(bytes: &[u8]) -> Result<IntervalSet, CoreError> {
    let corrupt = |msg: &str| CoreError::CorruptIndex(msg.to_string());
    if bytes.len() < 4 {
        return Err(corrupt("row shorter than header"));
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if count == 0 {
        if bytes.len() != 4 {
            return Err(corrupt("empty row with trailing bytes"));
        }
        return Ok(IntervalSet::new());
    }
    let expected = 4 + 8 + 4 + (count - 1) * 8;
    if bytes.len() != expected {
        return Err(corrupt("row length mismatch"));
    }
    let mut p = 4usize;
    let first_left = u64::from_le_bytes(bytes[p..p + 8].try_into().expect("8 bytes"));
    p += 8;
    let len0 = u32::from_le_bytes(bytes[p..p + 4].try_into().expect("4 bytes")) as u64;
    p += 4;
    if len0 == 0 {
        return Err(corrupt("zero-length interval"));
    }
    let mut out = Vec::with_capacity(count);
    out.push(WindowInterval::new(first_left, first_left + len0 - 1));
    for _ in 1..count {
        let gap = u32::from_le_bytes(bytes[p..p + 4].try_into().expect("4 bytes")) as u64;
        p += 4;
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().expect("4 bytes")) as u64;
        p += 4;
        if gap < 2 || len == 0 {
            return Err(corrupt("invalid gap or length"));
        }
        let prev_right = out.last().expect("non-empty").right;
        let left = prev_right + gap;
        out.push(WindowInterval::new(left, left + len - 1));
    }
    Ok(IntervalSet::from_sorted(out))
}

/// Information recorded while probing the index for one query window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanInfo {
    /// Rows returned by the scan.
    pub rows: u64,
    /// Window intervals collected.
    pub intervals: u64,
    /// Window positions covered.
    pub positions: u64,
    /// Store scan operations issued (1 for an uncached probe; 0..k for a
    /// cached probe that fetched k missing row spans).
    pub scans: u64,
    /// Rows served from the [`RowCache`] instead of the store.
    pub rows_from_cache: u64,
    /// Rows this probe's cache inserts evicted to stay within the cache's
    /// entry/interval budgets.
    pub evictions: u64,
}

impl ScanInfo {
    /// True when the probe needed no store scan at all — either every
    /// overlapping row was served from the cache, or no row overlapped the
    /// probed range. Batched execution reports these separately from real
    /// index accesses so shared probes don't inflate I/O numbers.
    pub fn is_cache_hit(&self) -> bool {
        self.scans == 0
    }
}

/// A KV-index bound to a [`KvStore`].
///
/// Single-series indexes (the original layout) use an empty key prefix;
/// series-scoped views built by the catalog prefix every key with the
/// big-endian [`SeriesId`], so one physical store hosts the index rows of
/// many series without their key ranges interleaving.
#[derive(Debug)]
pub struct KvIndex<S: KvStore> {
    store: S,
    meta: MetaTable,
    series: SeriesId,
    /// Key prefix of this index's rows: empty for the single-series
    /// layout, `series.encode()` for catalog members.
    prefix: Vec<u8>,
}

impl<S: KvStore> KvIndex<S> {
    /// Builds an index over `xs` and persists it through `builder`.
    pub fn build_into<B>(
        xs: &[f64],
        config: IndexBuildConfig,
        builder: B,
    ) -> Result<(KvIndex<B::Store>, BuildStats), CoreError>
    where
        B: KvStoreBuilder,
    {
        let (rows, stats) = build::build_rows(xs, config);
        let index = Self::persist_rows(rows, config, xs.len(), builder)?;
        Ok((index, stats))
    }

    /// Builds in parallel (identical rows to [`KvIndex::build_into`]).
    pub fn build_into_parallel<B>(
        xs: &[f64],
        config: IndexBuildConfig,
        builder: B,
        threads: usize,
    ) -> Result<(KvIndex<B::Store>, BuildStats), CoreError>
    where
        B: KvStoreBuilder,
    {
        let (rows, stats) = build::build_rows_parallel(xs, config, threads);
        let index = Self::persist_rows(rows, config, xs.len(), builder)?;
        Ok((index, stats))
    }

    /// Persists pre-built rows (used by the out-of-core streaming path —
    /// feed a [`build::RowAccumulator`], then persist here).
    pub fn persist_rows<B>(
        rows: Vec<IndexRow>,
        config: IndexBuildConfig,
        series_len: usize,
        mut builder: B,
    ) -> Result<KvIndex<B::Store>, CoreError>
    where
        B: KvStoreBuilder,
    {
        let meta = Self::append_rows_prefixed(&mut builder, &[], &rows, 0, config, series_len)?;
        let store = builder.finish()?;
        Ok(KvIndex { store, meta, series: SeriesId::DEFAULT, prefix: Vec::new() })
    }

    /// Appends one series' meta row and index rows to a shared builder
    /// **without finishing it** — the multi-series bulk-build path. Call
    /// once per series in ascending [`SeriesId`] order (the prefix keeps
    /// the overall stream sorted), then
    /// [`finish`](KvStoreBuilder::finish) the builder and reopen each
    /// series with [`KvIndex::open_series`].
    pub fn append_series_rows<B>(
        builder: &mut B,
        series: SeriesId,
        rows: &[IndexRow],
        config: IndexBuildConfig,
        series_len: usize,
    ) -> Result<MetaTable, CoreError>
    where
        B: KvStoreBuilder,
    {
        Self::append_rows_prefixed(builder, &series.encode(), rows, 0, config, series_len)
    }

    /// Like [`KvIndex::append_series_rows`], but writes only the rows at
    /// index `from` onward — the *delta-run* path of generational backends.
    /// The meta row still describes the complete row set; rows below `from`
    /// must already exist byte-identically in an earlier run of the same
    /// series so a newest-wins merge across runs reconstructs the full
    /// index. (Appenders never remove rows or change a sealed row's `low`
    /// bound, which is what makes the prefix reusable.)
    pub fn append_series_rows_from<B>(
        builder: &mut B,
        series: SeriesId,
        rows: &[IndexRow],
        from: usize,
        config: IndexBuildConfig,
        series_len: usize,
    ) -> Result<MetaTable, CoreError>
    where
        B: KvStoreBuilder,
    {
        Self::append_rows_prefixed(builder, &series.encode(), rows, from, config, series_len)
    }

    fn append_rows_prefixed<B>(
        builder: &mut B,
        prefix: &[u8],
        rows: &[IndexRow],
        from: usize,
        config: IndexBuildConfig,
        series_len: usize,
    ) -> Result<MetaTable, CoreError>
    where
        B: KvStoreBuilder,
    {
        let meta = build::meta_for_rows(rows, config, series_len);
        let mut key = Vec::with_capacity(prefix.len() + 8);
        key.extend_from_slice(prefix);
        key.extend_from_slice(META_KEY);
        builder.append(&key, &meta.to_bytes())?;
        for row in &rows[from.min(rows.len())..] {
            key.truncate(prefix.len());
            key.extend_from_slice(&encode_f64(row.low));
            builder.append(&key, &encode_row(&row.intervals)?)?;
        }
        Ok(meta)
    }

    /// Opens a single-series index from an existing store, loading and
    /// validating the meta table.
    pub fn open(store: S) -> Result<Self, CoreError> {
        let meta_bytes = store
            .get(META_KEY)?
            .ok_or_else(|| CoreError::CorruptIndex("missing meta row".into()))?;
        let meta = MetaTable::from_bytes(&meta_bytes)?;
        if store.row_count() != meta.row_count() + 1 {
            return Err(CoreError::CorruptIndex(format!(
                "store has {} rows, meta expects {}",
                store.row_count(),
                meta.row_count() + 1
            )));
        }
        Ok(Self { store, meta, series: SeriesId::DEFAULT, prefix: Vec::new() })
    }

    /// Opens the view of one series inside a multi-series store written by
    /// [`KvIndex::append_series_rows`], validating this series' meta row.
    /// Other series' rows are invisible to the view. Unlike
    /// [`KvIndex::open`], no row-count scan runs here — the catalog
    /// reopens every series after every materialization, and a full
    /// range scan would double that cost; [`KvIndex::probe`]'s per-range
    /// count check still catches missing rows at query time.
    pub fn open_series(store: S, series: SeriesId) -> Result<Self, CoreError> {
        let prefix = series.encode().to_vec();
        let meta_key = series.key(META_KEY);
        let meta_bytes = store
            .get(&meta_key)?
            .ok_or_else(|| CoreError::CorruptIndex(format!("missing meta row for {series}")))?;
        let meta = MetaTable::from_bytes(&meta_bytes)?;
        Ok(Self { store, meta, series, prefix })
    }

    /// The series this index view is scoped to ([`SeriesId::DEFAULT`] for
    /// single-series indexes).
    pub fn series(&self) -> SeriesId {
        self.series
    }

    /// The meta table.
    pub fn meta(&self) -> &MetaTable {
        &self.meta
    }

    /// The window width `w` of this index.
    pub fn window(&self) -> usize {
        self.meta.params().window
    }

    /// Length of the indexed series.
    pub fn series_len(&self) -> usize {
        self.meta.params().series_len
    }

    /// The underlying store (for I/O statistics).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Phase-1 probe for one query window: a single scan over the rows
    /// overlapping `[lr, ur]`, returning the union of their interval sets
    /// (`IS_i`, sorted and coalesced) plus scan accounting.
    pub fn probe(&self, lr: f64, ur: f64) -> Result<(IntervalSet, ScanInfo), CoreError> {
        let (si, ei) = self.meta.rows_overlapping(lr, ur);
        if si >= ei {
            // Still issue a (degenerate) scan so access counting matches
            // the algorithm: one index access per query window.
            self.store.io_stats().record_scan();
            return Ok((IntervalSet::new(), ScanInfo { scans: 1, ..ScanInfo::default() }));
        }
        let sets = self.scan_row_sets(si, ei)?;
        let mut is = IntervalSet::new();
        let mut info = ScanInfo { scans: 1, ..ScanInfo::default() };
        for set in &sets {
            info.rows += 1;
            is = is.union(set);
        }
        info.intervals = is.num_intervals() as u64;
        info.positions = is.num_positions();
        Ok((is, info))
    }

    /// Cached phase-1 probe — §VI-C optimization 1. Rows already in
    /// `cache` are reused; each maximal span of missing rows costs one
    /// store scan (zero scans on a full hit).
    pub fn probe_cached(
        &self,
        lr: f64,
        ur: f64,
        cache: &RowCache,
    ) -> Result<(IntervalSet, ScanInfo), CoreError> {
        let (si, ei) = self.meta.rows_overlapping(lr, ur);
        let mut info = ScanInfo::default();
        if si >= ei {
            // Mirror the uncached probe: an empty row range still counts
            // as one (degenerate) index access. The cache never held these
            // rows, so reporting a cache hit would fake probe savings.
            self.store.io_stats().record_scan();
            return Ok((IntervalSet::new(), ScanInfo { scans: 1, ..ScanInfo::default() }));
        }
        let w = self.window();
        let sid = self.series.raw();
        let mut sets: Vec<Option<std::sync::Arc<IntervalSet>>> =
            (si..ei).map(|r| cache.get((sid, w, r))).collect();
        info.rows_from_cache = sets.iter().flatten().count() as u64;

        // Fetch every maximal contiguous span of missing rows with one
        // scan each ("we only need to fetch the rest part").
        let mut k = 0usize;
        while k < sets.len() {
            if sets[k].is_some() {
                k += 1;
                continue;
            }
            let span_start = k;
            while k < sets.len() && sets[k].is_none() {
                k += 1;
            }
            let fetched = self.scan_row_sets(si + span_start, si + k)?;
            info.scans += 1;
            for (offset, set) in fetched.into_iter().enumerate() {
                let row = si + span_start + offset;
                let set = std::sync::Arc::new(set);
                info.evictions += cache.insert((sid, w, row), std::sync::Arc::clone(&set));
                sets[span_start + offset] = Some(set);
            }
        }

        let mut is = IntervalSet::new();
        let mut touched = 0u64;
        for set in sets.iter().flatten() {
            touched += 1;
            is = is.union(set);
        }
        // `rows` counts store-fetched rows only; cached rows are reported
        // separately so `rows + rows_from_cache` is the total touched.
        info.rows = touched - info.rows_from_cache;
        info.intervals = is.num_intervals() as u64;
        info.positions = is.num_positions();
        Ok((is, info))
    }

    /// Fetches and decodes rows `si..ei` (meta-table row indexes) with one
    /// store scan, in row order.
    fn scan_row_sets(&self, si: usize, ei: usize) -> Result<Vec<IntervalSet>, CoreError> {
        debug_assert!(si < ei);
        let entries = self.meta.entries();
        let key_of = |low: f64| {
            let mut key = Vec::with_capacity(self.prefix.len() + 8);
            key.extend_from_slice(&self.prefix);
            key.extend_from_slice(&encode_f64(low));
            key
        };
        let start_key = key_of(entries[si].low);
        // End key: just past the last row's low key. Encoding of `low` of
        // the row after `ei−1` if present, else the exclusive upper bound
        // `up` of the final row.
        let end_key =
            if ei < entries.len() { key_of(entries[ei].low) } else { key_of(entries[ei - 1].up) };
        let rows = self.store.scan(&start_key, &end_key)?;
        if rows.len() != ei - si {
            return Err(CoreError::CorruptIndex(format!(
                "scan of rows {si}..{ei} returned {} rows",
                rows.len()
            )));
        }
        rows.iter().map(|row| decode_row(&row.value)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvmatch_storage::memory::MemoryKvStoreBuilder;
    use kvmatch_storage::{FileKvStore, FileKvStoreBuilder, MemoryKvStore};
    use kvmatch_timeseries::generator::composite_series;
    use kvmatch_timeseries::rolling::sliding_means;

    fn iv(l: u64, r: u64) -> WindowInterval {
        WindowInterval::new(l, r)
    }

    #[test]
    fn row_encoding_round_trip() {
        let cases = vec![
            IntervalSet::new(),
            IntervalSet::from_sorted(vec![iv(0, 0)]),
            IntervalSet::from_sorted(vec![iv(5, 9)]),
            IntervalSet::from_sorted(vec![iv(0, 3), iv(10, 10), iv(100, 250)]),
            IntervalSet::from_sorted(vec![iv(1000, 1002), iv(49_999, 50_000)]),
        ];
        for set in cases {
            let bytes = encode_row(&set).unwrap();
            let back = decode_row(&bytes).unwrap();
            assert_eq!(set, back);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[1, 0, 0]).is_err());
        // count = 1 but truncated body.
        assert!(decode_row(&[1, 0, 0, 0, 5, 0]).is_err());
        // count = 0 with trailing junk.
        assert!(decode_row(&[0, 0, 0, 0, 9]).is_err());
        // zero-length interval.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&7u64.to_le_bytes());
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_row(&bad).is_err());
    }

    fn build_memory(xs: &[f64], w: usize) -> KvIndex<MemoryKvStore> {
        let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
            xs,
            IndexBuildConfig::new(w),
            MemoryKvStoreBuilder::new(),
        )
        .unwrap();
        idx
    }

    #[test]
    fn build_and_probe_memory() {
        let xs = composite_series(21, 8_000);
        let w = 50;
        let idx = build_memory(&xs, w);
        assert_eq!(idx.window(), w);
        assert_eq!(idx.series_len(), xs.len());
        assert_eq!(idx.meta().total_positions() as usize, xs.len() - w + 1);

        // Probe a range and cross-check against brute force over means.
        let means = sliding_means(&xs, w);
        for (lr, ur) in [(-1.0, 1.0), (0.0, 0.25), (-100.0, 100.0), (50.0, 60.0)] {
            let (is, info) = idx.probe(lr, ur).unwrap();
            // Soundness: every window whose mean is in [lr, ur] is found.
            for (j, &mu) in means.iter().enumerate() {
                if lr <= mu && mu <= ur {
                    assert!(is.contains(j as u64), "missing window {j} (mean {mu})");
                }
            }
            // Coverage never exceeds the widened row boundaries: every
            // found window's mean falls inside some overlapping row range.
            let (si, ei) = idx.meta().rows_overlapping(lr, ur);
            if si < ei {
                let low = idx.meta().entries()[si].low;
                let up = idx.meta().entries()[ei - 1].up;
                for j in is.positions() {
                    let mu = means[j as usize];
                    assert!(low <= mu && mu < up, "window {j} mean {mu} outside rows");
                }
            } else {
                assert!(is.is_empty());
            }
            assert_eq!(info.positions, is.num_positions());
        }
    }

    #[test]
    fn probe_counts_one_scan_per_call() {
        let xs = composite_series(22, 2_000);
        let idx = build_memory(&xs, 25);
        let before = idx.store().io_stats().scans();
        let (_, info) = idx.probe(-0.5, 0.5).unwrap();
        assert!(!info.is_cache_hit(), "uncached probes always scan");
        idx.probe(1e9, 2e9).unwrap(); // empty range still counts as an access
        assert_eq!(idx.store().io_stats().scans() - before, 2);

        // Cached probes report cache hits vs real scans distinctly: the
        // first cached probe fetches (a real scan), the repeat is served
        // entirely from the cache — zero store scans, all rows accounted
        // as cache-served, and the probe flagged as a cache hit.
        let cache = crate::cache::RowCache::new(1024);
        let before = idx.store().io_stats().scans();
        let (is_cold, cold) = idx.probe_cached(-0.5, 0.5, &cache).unwrap();
        assert_eq!(cold.scans, 1);
        assert!(!cold.is_cache_hit());
        assert!(cold.rows > 0);
        assert_eq!(cold.rows_from_cache, 0);
        let (is_warm, warm) = idx.probe_cached(-0.5, 0.5, &cache).unwrap();
        assert_eq!(is_cold, is_warm, "cache does not change probe results");
        assert_eq!(warm.scans, 0, "warm probe issues no store scan");
        assert!(warm.is_cache_hit());
        assert_eq!(warm.rows, 0);
        assert_eq!(warm.rows_from_cache, cold.rows);
        assert_eq!(
            idx.store().io_stats().scans() - before,
            1,
            "only the cold probe touched the store"
        );

        // An empty row range is never a cache hit — it counts as one
        // degenerate access, exactly like the uncached probe.
        let (_, empty) = idx.probe_cached(1e9, 2e9, &cache).unwrap();
        assert_eq!(empty.scans, 1);
        assert!(!empty.is_cache_hit());
        let (_, empty_again) = idx.probe_cached(1e9, 2e9, &cache).unwrap();
        assert_eq!(empty_again.scans, 1, "no phantom caching of empty ranges");
    }

    #[test]
    fn file_backed_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("kv.idx");
        let xs = composite_series(23, 6_000);
        let w = 40;
        let (built, _) = KvIndex::<FileKvStore>::build_into(
            &xs,
            IndexBuildConfig::new(w),
            FileKvStoreBuilder::create(&path).unwrap(),
        )
        .unwrap();

        // Reopen from disk and compare probes.
        let reopened = KvIndex::open(FileKvStore::open(&path).unwrap()).unwrap();
        assert_eq!(built.meta(), reopened.meta());
        let (is_a, _) = built.probe(-2.0, 2.0).unwrap();
        let (is_b, _) = reopened.probe(-2.0, 2.0).unwrap();
        assert_eq!(is_a, is_b);
    }

    #[test]
    fn open_rejects_store_without_meta() {
        let store = MemoryKvStore::new();
        store.insert(encode_f64(0.0).to_vec(), vec![0u8, 0, 0, 0]);
        assert!(matches!(KvIndex::open(store), Err(CoreError::CorruptIndex(_))));
    }

    #[test]
    fn parallel_build_identical_index() {
        let xs = composite_series(29, 25_000);
        let (a, sa) = KvIndex::<MemoryKvStore>::build_into(
            &xs,
            IndexBuildConfig::new(64),
            MemoryKvStoreBuilder::new(),
        )
        .unwrap();
        let (b, sb) = KvIndex::<MemoryKvStore>::build_into_parallel(
            &xs,
            IndexBuildConfig::new(64),
            MemoryKvStoreBuilder::new(),
            4,
        )
        .unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.meta(), b.meta());
    }

    #[test]
    fn shared_store_hosts_many_series() {
        use kvmatch_storage::SeriesId;
        // Three series with different data and windows in ONE store.
        let series: Vec<(SeriesId, Vec<f64>, usize)> = vec![
            (SeriesId::new(1), composite_series(31, 4_000), 50),
            (SeriesId::new(2), composite_series(37, 3_000), 25),
            (SeriesId::new(9), composite_series(41, 5_000), 50),
        ];
        let mut builder = MemoryKvStoreBuilder::new();
        for (id, xs, w) in &series {
            let (rows, _) = build::build_rows(xs, IndexBuildConfig::new(*w));
            KvIndex::<MemoryKvStore>::append_series_rows(
                &mut builder,
                *id,
                &rows,
                IndexBuildConfig::new(*w),
                xs.len(),
            )
            .unwrap();
        }
        let store = std::sync::Arc::new(builder.finish().unwrap());

        for (id, xs, w) in &series {
            let view = KvIndex::open_series(std::sync::Arc::clone(&store), *id).unwrap();
            assert_eq!(view.series(), *id);
            assert_eq!(view.window(), *w);
            assert_eq!(view.series_len(), xs.len());
            // Probes through the shared store equal a dedicated
            // single-series index over the same data.
            let solo = build_memory(xs, *w);
            for (lr, ur) in [(-2.0, 2.0), (0.1, 0.6), (f64::NEG_INFINITY, f64::INFINITY)] {
                let (got, _) = view.probe(lr, ur).unwrap();
                let (want, _) = solo.probe(lr, ur).unwrap();
                assert_eq!(got, want, "{id} probe [{lr}, {ur}] diverged");
            }
        }

        // Unknown series is rejected; cached probes keep series apart.
        assert!(KvIndex::open_series(std::sync::Arc::clone(&store), SeriesId::new(3)).is_err());
        let cache = crate::cache::RowCache::new(4096);
        let a = KvIndex::open_series(std::sync::Arc::clone(&store), SeriesId::new(1)).unwrap();
        let b = KvIndex::open_series(std::sync::Arc::clone(&store), SeriesId::new(9)).unwrap();
        let (ia, _) = a.probe_cached(-1.0, 1.0, &cache).unwrap();
        let (ib, _) = b.probe_cached(-1.0, 1.0, &cache).unwrap();
        let (ia_warm, wa) = a.probe_cached(-1.0, 1.0, &cache).unwrap();
        let (ib_warm, wb) = b.probe_cached(-1.0, 1.0, &cache).unwrap();
        assert_eq!(ia, ia_warm);
        assert_eq!(ib, ib_warm);
        assert!(wa.is_cache_hit() && wb.is_cache_hit());
    }

    #[test]
    fn empty_series_builds_empty_index() {
        let idx = build_memory(&[], 25);
        assert_eq!(idx.meta().row_count(), 0);
        let (is, info) = idx.probe(-1.0, 1.0).unwrap();
        assert!(is.is_empty());
        assert_eq!(info, ScanInfo { scans: 1, ..ScanInfo::default() });
    }
}
