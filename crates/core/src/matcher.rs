//! KV-match — Algorithm 1 of the paper.
//!
//! Phase 1 (index probing): for each disjoint query window `Q_i`, compute
//! the lemma range `[LR_i, UR_i]`, scan the index once, union the returned
//! interval sets into `IS_i`, left-shift by `i·w` into `CS_i`, and
//! intersect into the running candidate set `CS`.
//!
//! Phase 2 (post-processing): fetch `X(WI.l, WI.r − WI.l + |Q|)` for every
//! candidate interval and verify each of its `|WI|` subsequences with the
//! appropriate distance kernel, guarded by the same cascading lower bounds
//! UCR Suite uses (so the head-to-head comparison is fair).

use std::time::Instant;

use parking_lot::Mutex;

use kvmatch_distance::cascade::{AdaptivePolicy, BestSoFar, CascadeStats, LbCascade};
use kvmatch_distance::ed::{abandon_order, ed_early_abandon, ed_norm_early_abandon_ordered};
use kvmatch_distance::lp::{lp_norm_pow_early_abandon, lp_pow_early_abandon};
use kvmatch_distance::normalize::{mean_std, z_normalize};
use kvmatch_distance::scratch::KernelScratch;
use kvmatch_distance::LpExponent;
use kvmatch_storage::{KvStore, SeriesStore};
use kvmatch_timeseries::PrefixStats;

use crate::cache::RowCache;
use crate::index::KvIndex;
use crate::interval::{IntervalSet, WindowInterval};
use crate::query::Measure;
use crate::query::{select_top_k, Constraint, CoreError, MatchResult, MatchStats, QuerySpec};
use crate::ranges::{
    cnsm_dtw_range, cnsm_ed_range, cnsm_lp_range, rsm_dtw_range, rsm_ed_range, rsm_lp_range,
    MeanRange,
};

/// A query pre-processed for matching: global statistics, normalized form,
/// verification cascades and envelope prefix statistics. Shared by the
/// basic matcher, KV-match_DP and the batched [`QueryExecutor`].
///
/// [`QueryExecutor`]: crate::exec::QueryExecutor
pub struct PreparedQuery {
    /// The original specification.
    pub spec: QuerySpec,
    /// `|Q|`.
    pub m: usize,
    /// Global query mean `µ^Q`.
    pub mu_q: f64,
    /// Global query std `σ^Q`.
    pub sigma_q: f64,
    q_stats: PrefixStats,
    /// Raw-domain cascade (DTW only) plus its envelope prefix statistics
    /// (the latter feed the Lemma-2/4 window ranges).
    cascade: Option<CascadeData>,
    /// Normalized query (cNSM only).
    q_norm: Vec<f64>,
    /// Early-abandon coordinate order over `q_norm` (cNSM-ED).
    order: Vec<usize>,
    /// Normalized-domain cascade (cNSM-DTW verification).
    cascade_norm: Option<LbCascade>,
}

struct CascadeData {
    cascade: LbCascade,
    l_stats: PrefixStats,
    u_stats: PrefixStats,
}

impl PreparedQuery {
    /// Validates and pre-processes a query.
    pub fn new(spec: QuerySpec) -> Result<Self, CoreError> {
        spec.validate()?;
        let m = spec.query.len();
        let (mu_q, sigma_q) = mean_std(&spec.query);
        let q_stats = PrefixStats::new(&spec.query);
        let cascade = if spec.measure.is_dtw() {
            let mut cascade = LbCascade::new(spec.query.clone(), spec.measure.rho());
            cascade.set_timed(spec.explain);
            let l_stats = PrefixStats::new(cascade.lower());
            let u_stats = PrefixStats::new(cascade.upper());
            Some(CascadeData { cascade, l_stats, u_stats })
        } else {
            None
        };
        let (q_norm, order, cascade_norm) = if spec.is_normalized() {
            // (µ, σ) are already in hand — clone and normalize in place
            // instead of paying z_normalized's duplicate statistics pass.
            let mut q_norm = spec.query.clone();
            z_normalize(&mut q_norm, mu_q, sigma_q);
            let order = abandon_order(&q_norm);
            let cascade_norm = spec.measure.is_dtw().then(|| {
                let mut c = LbCascade::new(q_norm.clone(), spec.measure.rho());
                c.set_timed(spec.explain);
                c
            });
            (q_norm, order, cascade_norm)
        } else {
            (Vec::new(), Vec::new(), None)
        };
        Ok(Self { spec, m, mu_q, sigma_q, q_stats, cascade, q_norm, order, cascade_norm })
    }

    /// Enables (`Some`) or disables (`None`) adaptive cascade stage
    /// demotion on every DTW cascade this query owns (raw and normalized
    /// domain). Adaptive demotion never changes returned distances — only
    /// which admissible lower bounds get evaluated. No-op for non-DTW
    /// measures.
    pub fn set_adaptive(&mut self, policy: Option<AdaptivePolicy>) {
        if let Some(data) = &mut self.cascade {
            data.cascade.set_adaptive(policy);
        }
        if let Some(cascade) = &mut self.cascade_norm {
            cascade.set_adaptive(policy);
        }
    }

    /// The lemma range `[LR, UR]` for the query window `Q(offset, w)`.
    ///
    /// Dispatches to Lemma 1/2/3/4 according to the query type. Window
    /// widths other than a fixed `w` are allowed — the lemmas hold per
    /// window (the property KV-match_DP exploits, §VI-A).
    pub fn window_range(&self, offset: usize, w: usize) -> MeanRange {
        let eps = self.spec.epsilon;
        match (&self.spec.constraint, &self.cascade) {
            (None, None) => match self.spec.measure {
                Measure::Lp { p } => rsm_lp_range(self.q_stats.range_mean(offset, w), eps, w, p),
                _ => rsm_ed_range(self.q_stats.range_mean(offset, w), eps, w),
            },
            (None, Some(env)) => rsm_dtw_range(
                env.l_stats.range_mean(offset, w),
                env.u_stats.range_mean(offset, w),
                eps,
                w,
            ),
            (Some(c), None) => match self.spec.measure {
                Measure::Lp { p } => cnsm_lp_range(
                    self.q_stats.range_mean(offset, w),
                    self.mu_q,
                    self.sigma_q,
                    eps,
                    c.alpha,
                    c.beta,
                    w,
                    p,
                ),
                _ => cnsm_ed_range(
                    self.q_stats.range_mean(offset, w),
                    self.mu_q,
                    self.sigma_q,
                    eps,
                    c.alpha,
                    c.beta,
                    w,
                ),
            },
            (Some(c), Some(env)) => cnsm_dtw_range(
                env.l_stats.range_mean(offset, w),
                env.u_stats.range_mean(offset, w),
                self.mu_q,
                self.sigma_q,
                eps,
                c.alpha,
                c.beta,
                w,
            ),
        }
    }

    #[inline]
    fn constraint_ok(&self, c: &Constraint, mu_s: f64, sigma_s: f64) -> bool {
        (mu_s - self.mu_q).abs() <= c.beta
            && sigma_s >= self.sigma_q / c.alpha
            && sigma_s <= self.sigma_q * c.alpha
    }

    /// The query's comparison-domain bound: distances are compared (and
    /// early-abandoned) in squared space for ED/DTW and in p-th-power
    /// space for Lp, so this is `ε²` or `pow_p(ε)` respectively. Top-k
    /// verification starts from this ceiling and tightens it as results
    /// accumulate ([`BestSoFar`]).
    pub fn threshold_ceiling(&self) -> f64 {
        match self.spec.measure {
            Measure::Lp { p } => p.pow(self.spec.epsilon),
            _ => self.spec.epsilon * self.spec.epsilon,
        }
    }

    /// Maps a comparison-domain value back to the reported distance —
    /// `sqrt` for ED/DTW, the p-th root for Lp.
    pub fn distance_of(&self, comparison: f64) -> f64 {
        match self.spec.measure {
            Measure::Lp { p } => p.root(comparison),
            _ => comparison.sqrt(),
        }
    }

    /// Verifies one candidate subsequence `s` (with its statistics) against
    /// the query; returns the achieved distance when it qualifies. DTW
    /// candidates run the shared [`LbCascade`]; every stage outcome is
    /// recorded in `stats`.
    pub fn verify(
        &self,
        s: &[f64],
        mu_s: f64,
        sigma_s: f64,
        scratch: &mut KernelScratch,
        stats: &mut CascadeStats,
    ) -> Option<f64> {
        self.verify_within(s, mu_s, sigma_s, self.threshold_ceiling(), scratch, stats)
            .map(|raw| self.distance_of(raw))
    }

    /// [`PreparedQuery::verify`] against an explicit comparison-domain
    /// bound instead of the spec's ε — the top-k path, where the bound is
    /// the best-so-far threshold (≤ the ceiling, shrinking as results
    /// accumulate). Returns the qualifying value **in the comparison
    /// domain** (the kernel's native squared / p-th-power accumulator):
    /// top-k thresholding must stay in that domain end-to-end, because
    /// rooting and re-squaring can round a threshold *below* the exact
    /// value it came from and wrongly abandon tied candidates. Any
    /// returned value is exact (early abandoning only ever rejects), so a
    /// candidate inside the final top-k produces the same bits no matter
    /// how tight the bound was when it ran.
    pub fn verify_within(
        &self,
        s: &[f64],
        mu_s: f64,
        sigma_s: f64,
        bound: f64,
        scratch: &mut KernelScratch,
        stats: &mut CascadeStats,
    ) -> Option<f64> {
        if let Measure::Lp { p } = self.spec.measure {
            return self.verify_lp(s, mu_s, sigma_s, p, bound, stats);
        }
        match (&self.spec.constraint, self.spec.measure.is_dtw()) {
            (None, false) => {
                stats.full_distance_computations += 1;
                ed_early_abandon(s, &self.spec.query, bound)
            }
            (None, true) => {
                let cascade = &self.cascade.as_ref().expect("RSM-DTW has a cascade").cascade;
                cascade.verify(s, bound, scratch, stats)
            }
            (Some(c), false) => {
                if !self.constraint_ok(c, mu_s, sigma_s) {
                    stats.pruned_constraint += 1;
                    return None;
                }
                stats.full_distance_computations += 1;
                ed_norm_early_abandon_ordered(s, &self.q_norm, &self.order, mu_s, sigma_s, bound)
            }
            (Some(c), true) => {
                if !self.constraint_ok(c, mu_s, sigma_s) {
                    stats.pruned_constraint += 1;
                    return None;
                }
                // Materialize Ŝ once in the scratch's norm buffer, reuse
                // it for every cascade stage. `take_norm` detaches the
                // buffer so the cascade can borrow the scratch's DP rows
                // alongside it; `restore_norm` hands the capacity back.
                let mut s_norm = scratch.take_norm(s);
                z_normalize(&mut s_norm, mu_s, sigma_s);
                let cascade = self.cascade_norm.as_ref().expect("cNSM-DTW has a cascade");
                let out = cascade.verify(&s_norm, bound, scratch, stats);
                scratch.restore_norm(s_norm);
                out
            }
        }
    }

    /// Lp verification (RSM-Lp / cNSM-Lp), in the p-th-power domain.
    fn verify_lp(
        &self,
        s: &[f64],
        mu_s: f64,
        sigma_s: f64,
        p: LpExponent,
        bound_pow: f64,
        stats: &mut CascadeStats,
    ) -> Option<f64> {
        match &self.spec.constraint {
            None => {
                stats.full_distance_computations += 1;
                lp_pow_early_abandon(s, &self.spec.query, p, bound_pow)
            }
            Some(c) => {
                if !self.constraint_ok(c, mu_s, sigma_s) {
                    stats.pruned_constraint += 1;
                    return None;
                }
                stats.full_distance_computations += 1;
                lp_norm_pow_early_abandon(s, &self.q_norm, mu_s, sigma_s, p, bound_pow)
            }
        }
    }

    /// A best-so-far tracker for this query's top-k execution, or `None`
    /// for plain range queries. The tracker lives behind a mutex so
    /// parallel verification workers tighten one shared threshold.
    pub(crate) fn best_so_far(&self) -> Option<Mutex<BestSoFar>> {
        self.spec.limit.map(|k| Mutex::new(BestSoFar::new(k, self.threshold_ceiling())))
    }
}

/// Everything phase 2 produced for one candidate interval.
pub(crate) struct IntervalVerification {
    /// Qualified subsequences, in offset order. For top-k queries the
    /// `distance` field holds the **comparison-domain** value (squared /
    /// p-th-power) until the final [`select_top_k`] +
    /// [`finish_topk_distances`] pass — selection and thresholding must
    /// share the kernels' exact domain, so rooting happens only at the
    /// very end.
    pub results: Vec<MatchResult>,
    /// Data points fetched for this interval.
    pub points_fetched: u64,
    /// Per-cascade-stage pruning counts.
    pub cascade: CascadeStats,
    /// Kernel scratch buffer growths this interval forced (0 once the
    /// worker's scratch is warm).
    pub alloc_events: u64,
}

/// Verifies every subsequence of one candidate interval `wi` against the
/// series store. The single verification routine behind the sequential
/// matchers and each [`QueryExecutor`] work item — batched and sequential
/// execution produce bit-identical results because they both run this.
///
/// For top-k queries `best` carries the query's shared [`BestSoFar`]:
/// each candidate is verified against the tracker's current threshold
/// (≤ ε, shrinking as results accumulate — cross-candidate tightening
/// across *all* of the query's intervals, even when they run on different
/// worker threads), and every qualifying distance is offered back.
/// Candidates the tracker rejects are provably outside the final top-k
/// (the threshold only shrinks), so dropping them preserves exactness.
///
/// [`QueryExecutor`]: crate::exec::QueryExecutor
pub(crate) fn verify_interval<D: SeriesStore>(
    data: &D,
    prep: &PreparedQuery,
    wi: WindowInterval,
    scratch: &mut KernelScratch,
    best: Option<&Mutex<BestSoFar>>,
) -> Result<IntervalVerification, CoreError> {
    let m = prep.m;
    let l = wi.left as usize;
    let count = wi.size() as usize;
    let fetch_len = count - 1 + m;
    let allocs_before = scratch.alloc_events();
    let buf = data.fetch(l, fetch_len)?;
    // O(1) per-candidate statistics over the fetched block.
    let ps = prep.spec.is_normalized().then(|| PrefixStats::new(&buf));
    let ceiling = prep.threshold_ceiling();
    let mut results = Vec::new();
    let mut cascade = CascadeStats::default();
    for k in 0..count {
        let s = &buf[k..k + m];
        let (mu_s, sigma_s) = match &ps {
            Some(ps) => ps.range_mean_std(k, m),
            None => (0.0, 0.0),
        };
        // A stale (looser) threshold read is always safe; the offer below
        // re-checks against the freshest one.
        let bound = match best {
            Some(b) => b.lock().threshold_sq(),
            None => ceiling,
        };
        if let Some(raw) = prep.verify_within(s, mu_s, sigma_s, bound, scratch, &mut cascade) {
            match best {
                Some(b) => {
                    // Offer the kernel's exact comparison-domain value —
                    // never a rooted-and-resquared copy, which can round
                    // below `raw` and make the shared threshold wrongly
                    // abandon exact ties.
                    if !b.lock().offer(raw) {
                        continue; // strictly worse than the current k-th best
                    }
                    results.push(MatchResult { offset: l + k, distance: raw });
                }
                None => {
                    results.push(MatchResult { offset: l + k, distance: prep.distance_of(raw) });
                }
            }
        }
    }
    Ok(IntervalVerification {
        results,
        points_fetched: fetch_len as u64,
        cascade,
        alloc_events: scratch.alloc_events() - allocs_before,
    })
}

/// Converts a top-k result set's comparison-domain values into reported
/// distances — the final step after [`select_top_k`], shared by every
/// execution path.
pub(crate) fn finish_topk_distances(prep: &PreparedQuery, results: &mut [MatchResult]) {
    for r in results {
        r.distance = prep.distance_of(r.distance);
    }
}

/// Verifies every candidate interval of `cs` against the series store.
/// Shared by [`KvMatcher`] and the DP matcher. Top-k specs thread a
/// [`BestSoFar`] across the intervals and reduce the survivors with
/// [`select_top_k`] — the same selection the batched executor applies, so
/// both paths stay bit-identical.
pub(crate) fn verify_candidates<D: SeriesStore>(
    data: &D,
    prep: &PreparedQuery,
    cs: &IntervalSet,
    stats: &mut MatchStats,
) -> Result<Vec<MatchResult>, CoreError> {
    let best = prep.best_so_far();
    let mut results = Vec::new();
    let mut scratch = KernelScratch::with_query_capacity(prep.m, prep.spec.measure.rho());
    for wi in cs.intervals() {
        let iv = verify_interval(data, prep, *wi, &mut scratch, best.as_ref())?;
        stats.points_fetched += iv.points_fetched;
        stats.absorb_cascade(&iv.cascade);
        stats.alloc_events += iv.alloc_events;
        results.extend(iv.results);
    }
    if let Some(k) = prep.spec.limit {
        select_top_k(&mut results, k);
        finish_topk_distances(prep, &mut results);
    }
    stats.matches = results.len() as u64;
    Ok(results)
}

/// The basic fixed-window KV-match matcher.
pub struct KvMatcher<'a, S: KvStore, D: SeriesStore> {
    index: &'a KvIndex<S>,
    data: &'a D,
    row_cache: Option<&'a RowCache>,
}

impl<'a, S: KvStore, D: SeriesStore> KvMatcher<'a, S, D> {
    /// Binds an index to its data store. Fails when the index was built
    /// over a series of a different length.
    pub fn new(index: &'a KvIndex<S>, data: &'a D) -> Result<Self, CoreError> {
        if index.series_len() != data.len() {
            return Err(CoreError::CorruptIndex(format!(
                "index covers a series of length {}, data store has {}",
                index.series_len(),
                data.len()
            )));
        }
        Ok(Self { index, data, row_cache: None })
    }

    /// Reuses index rows across queries through `cache` (§VI-C
    /// optimization 1). Results are identical; repeated or overlapping
    /// probes skip the store.
    pub fn with_row_cache(mut self, cache: &'a RowCache) -> Self {
        self.row_cache = Some(cache);
        self
    }

    fn probe(&self, lr: f64, ur: f64) -> Result<(IntervalSet, crate::index::ScanInfo), CoreError> {
        match self.row_cache {
            Some(cache) => self.index.probe_cached(lr, ur, cache),
            None => self.index.probe(lr, ur),
        }
    }

    /// Phase-1 only: the per-window candidate sets `CS_i` (already
    /// left-shifted) and their running intersection `CS` — the quantities
    /// Table VII compares against FRM. Unlike [`KvMatcher::execute`], every
    /// window is probed even when the intersection empties early.
    pub fn window_candidate_sets(
        &self,
        spec: &QuerySpec,
    ) -> Result<(Vec<IntervalSet>, IntervalSet), CoreError> {
        let prep = PreparedQuery::new(spec.clone())?;
        let w = self.index.window();
        let m = prep.m;
        if m < w {
            return Err(CoreError::QueryTooShort { query_len: m, window: w });
        }
        let n = self.data.len();
        if m > n {
            return Ok((Vec::new(), IntervalSet::new()));
        }
        let p = m / w;
        let max_start = (n - m) as u64;
        let mut sets = Vec::with_capacity(p);
        for i in 0..p {
            let range = prep.window_range(i * w, w);
            let (is, _) = self.probe(range.lower, range.upper)?;
            sets.push(is.shift_left((i * w) as u64).clamp_max(max_start));
        }
        let mut cs = sets[0].clone();
        for s in &sets[1..] {
            cs = cs.intersect(s);
        }
        Ok((sets, cs))
    }

    /// Executes Algorithm 1, returning qualified subsequences (ordered by
    /// offset) and execution statistics.
    pub fn execute(&self, spec: &QuerySpec) -> Result<(Vec<MatchResult>, MatchStats), CoreError> {
        let prep = PreparedQuery::new(spec.clone())?;
        let w = self.index.window();
        let m = prep.m;
        if m < w {
            return Err(CoreError::QueryTooShort { query_len: m, window: w });
        }
        let n = self.data.len();
        let mut stats = MatchStats::default();
        if m > n {
            return Ok((Vec::new(), stats));
        }

        // Phase 1: index probing (Lines 2–12).
        let t1 = Instant::now();
        let p = m / w;
        let mut cs: Option<IntervalSet> = None;
        for i in 0..p {
            let range = prep.window_range(i * w, w);
            let (is, info) = self.probe(range.lower, range.upper)?;
            stats.absorb_probe(&info);
            let csi = is.shift_left((i * w) as u64);
            cs = Some(match cs {
                None => csi,
                Some(prev) => prev.intersect(&csi),
            });
            if cs.as_ref().expect("just set").is_empty() {
                break;
            }
        }
        let cs = cs.expect("p ≥ 1 because m ≥ w").clamp_max((n - m) as u64);
        stats.candidates = cs.num_positions();
        stats.candidate_intervals = cs.num_intervals() as u64;
        stats.phase1_nanos = t1.elapsed().as_nanos() as u64;

        // Phase 2: verification (Lines 13–18).
        let t2 = Instant::now();
        let results = verify_candidates(self.data, &prep, &cs, &mut stats)?;
        stats.phase2_nanos = t2.elapsed().as_nanos() as u64;
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuildConfig;
    use crate::naive::naive_search;
    use kvmatch_storage::memory::MemoryKvStoreBuilder;
    use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};
    use kvmatch_timeseries::generator::composite_series;

    fn build_index(xs: &[f64], w: usize) -> KvIndex<MemoryKvStore> {
        let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
            xs,
            IndexBuildConfig::new(w),
            MemoryKvStoreBuilder::new(),
        )
        .unwrap();
        idx
    }

    fn check_equals_naive(xs: &[f64], w: usize, spec: &QuerySpec) -> MatchStats {
        let idx = build_index(xs, w);
        let data = MemorySeriesStore::new(xs.to_vec());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let (got, stats) = matcher.execute(spec).unwrap();
        let want = naive_search(xs, spec);
        let got_offsets: Vec<usize> = got.iter().map(|r| r.offset).collect();
        let want_offsets: Vec<usize> = want.iter().map(|r| r.offset).collect();
        assert_eq!(got_offsets, want_offsets, "offset sets differ");
        for (g, w_) in got.iter().zip(&want) {
            assert!(
                (g.distance - w_.distance).abs() < 1e-6,
                "distance mismatch at {}: {} vs {}",
                g.offset,
                g.distance,
                w_.distance
            );
        }
        stats
    }

    #[test]
    fn rsm_ed_equals_naive() {
        let xs = composite_series(31, 6_000);
        let q = xs[1000..1160].to_vec();
        for eps in [0.0, 1.0, 5.0, 20.0, 60.0] {
            let stats = check_equals_naive(&xs, 50, &QuerySpec::rsm_ed(q.clone(), eps));
            assert_eq!(stats.index_accesses, 3, "p = 160/50 = 3 probes");
        }
    }

    #[test]
    fn rsm_dtw_equals_naive() {
        let xs = composite_series(37, 3_000);
        let q = xs[500..650].to_vec();
        for eps in [1.0, 8.0, 30.0] {
            check_equals_naive(&xs, 50, &QuerySpec::rsm_dtw(q.clone(), eps, 7));
        }
    }

    #[test]
    fn cnsm_ed_equals_naive() {
        let xs = composite_series(41, 6_000);
        let q = xs[2000..2200].to_vec();
        for (eps, alpha, beta) in [(0.5, 1.1, 0.5), (2.0, 1.5, 2.0), (5.0, 2.0, 10.0)] {
            check_equals_naive(&xs, 50, &QuerySpec::cnsm_ed(q.clone(), eps, alpha, beta));
        }
    }

    #[test]
    fn cnsm_dtw_equals_naive() {
        let xs = composite_series(43, 2_500);
        let q = xs[700..860].to_vec();
        for (eps, alpha, beta) in [(1.0, 1.2, 1.0), (4.0, 2.0, 5.0)] {
            check_equals_naive(&xs, 40, &QuerySpec::cnsm_dtw(q.clone(), eps, 5, alpha, beta));
        }
    }

    #[test]
    fn query_not_multiple_of_window_keeps_prefix() {
        // |Q| = 130, w = 50 ⇒ p = 2 windows; the 30-sample tail is ignored
        // by phase 1 but fully verified in phase 2.
        let xs = composite_series(47, 4_000);
        let q = xs[100..230].to_vec();
        check_equals_naive(&xs, 50, &QuerySpec::rsm_ed(q, 10.0));
    }

    #[test]
    fn query_shorter_than_window_errors() {
        let xs = composite_series(51, 1_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let err = matcher.execute(&QuerySpec::rsm_ed(vec![0.0; 20], 1.0)).unwrap_err();
        assert!(matches!(err, CoreError::QueryTooShort { query_len: 20, window: 50 }));
    }

    #[test]
    fn mismatched_series_length_rejected() {
        let xs = composite_series(53, 1_000);
        let idx = build_index(&xs, 25);
        let other = MemorySeriesStore::new(vec![0.0; 500]);
        assert!(KvMatcher::new(&idx, &other).is_err());
    }

    #[test]
    fn self_match_is_always_found() {
        // Pull queries straight from the data: offset must be reported
        // with distance 0 for RSM-ED and cNSM-ED.
        let xs = composite_series(59, 5_000);
        for off in [0usize, 1234, 4800 - 200] {
            let q = xs[off..off + 200].to_vec();
            let idx = build_index(&xs, 50);
            let data = MemorySeriesStore::new(xs.clone());
            let matcher = KvMatcher::new(&idx, &data).unwrap();
            let (res, _) = matcher.execute(&QuerySpec::rsm_ed(q.clone(), 1e-9)).unwrap();
            assert!(res.iter().any(|r| r.offset == off), "RSM self-match at {off}");
            let (res, _) = matcher.execute(&QuerySpec::cnsm_ed(q, 1e-9, 1.0001, 0.001)).unwrap();
            assert!(res.iter().any(|r| r.offset == off), "cNSM self-match at {off}");
        }
    }

    #[test]
    fn empty_result_on_far_query() {
        let xs = vec![0.0; 2_000];
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs);
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let q = vec![1e6; 100];
        let (res, stats) = matcher.execute(&QuerySpec::rsm_ed(q, 1.0)).unwrap();
        assert!(res.is_empty());
        assert_eq!(stats.candidates, 0);
        // Early exit: the first empty intersection stops probing.
        assert!(stats.index_accesses <= 2);
    }

    #[test]
    fn stats_are_consistent() {
        let xs = composite_series(61, 4_000);
        let q = xs[100..400].to_vec();
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let (res, stats) = matcher.execute(&QuerySpec::rsm_ed(q, 15.0)).unwrap();
        assert_eq!(stats.matches as usize, res.len());
        assert!(stats.candidates >= stats.matches);
        assert!(stats.candidate_intervals <= stats.candidates);
        assert!(stats.points_fetched >= stats.candidates);
        assert_eq!(stats.index_accesses, 6);
    }

    #[test]
    fn window_candidate_sets_intersect_to_cs() {
        let xs = composite_series(63, 4_000);
        let q = xs[500..800].to_vec();
        let spec = QuerySpec::rsm_ed(q, 12.0);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let (sets, cs) = matcher.window_candidate_sets(&spec).unwrap();
        assert_eq!(sets.len(), 6);
        // CS ⊆ every CS_i, and every true match is in CS.
        for r in naive_search(&xs, &spec) {
            assert!(cs.contains(r.offset as u64), "match {} missing from CS", r.offset);
            for (i, s) in sets.iter().enumerate() {
                assert!(s.contains(r.offset as u64), "match {} missing from CS_{i}", r.offset);
            }
        }
        let (_, stats) = matcher.execute(&spec).unwrap();
        assert_eq!(stats.candidates, cs.num_positions());
    }

    #[test]
    fn topk_returns_k_nearest_with_deterministic_ties() {
        let mut xs = composite_series(71, 4_000);
        // Plant the exact query at three offsets: three distance-0 ties.
        let q = xs[500..650].to_vec();
        xs[1200..1350].copy_from_slice(&q);
        xs[3000..3150].copy_from_slice(&q);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let spec = QuerySpec::rsm_ed(q, 25.0).top_k(2);
        let (got, stats) = matcher.execute(&spec).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(stats.matches, 2);
        // Ties break by lower offset: 500 and 1200 win over 3000.
        assert_eq!(got[0], MatchResult { offset: 500, distance: 0.0 });
        assert_eq!(got[1], MatchResult { offset: 1200, distance: 0.0 });
        // The oracle agrees bit-identically (same ED kernel, raw slices).
        assert_eq!(got, naive_search(&xs, &spec));
        // Nearest-first ordering on non-tied data too.
        let spec = QuerySpec::rsm_ed(xs[2000..2150].to_vec(), 30.0).top_k(5);
        let (got, _) = matcher.execute(&spec).unwrap();
        assert_eq!(got, naive_search(&xs, &spec));
        for pair in got.windows(2) {
            assert!(pair[0].distance <= pair[1].distance, "not nearest-first: {got:?}");
        }
    }

    #[test]
    fn topk_respects_epsilon_ceiling() {
        let xs = composite_series(73, 3_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let q = xs[700..900].to_vec();
        // ε = 0 keeps only the self-match even though k = 10 slots exist.
        let (got, _) = matcher.execute(&QuerySpec::rsm_ed(q.clone(), 0.0).top_k(10)).unwrap();
        assert_eq!(got, vec![MatchResult { offset: 700, distance: 0.0 }]);
        // k = 0 is rejected up front.
        assert!(matches!(
            matcher.execute(&QuerySpec::rsm_ed(q, 1.0).top_k(0)),
            Err(CoreError::InvalidQuery(_))
        ));
    }

    #[test]
    fn warm_verify_interval_is_allocation_free() {
        // The zero-allocation contract of the kernel pass: once a worker's
        // KernelScratch has grown to a query's working-set size, repeated
        // verify_interval calls perform no kernel heap allocations —
        // KernelScratch counts every buffer growth, so a zero delta on the
        // warm repetition proves it. Covers all four query classes
        // (RSM/cNSM × ED/DTW); the cNSM-DTW case exercises the
        // take_norm/restore_norm round trip.
        let xs = composite_series(77, 2_000);
        let q = xs[300..460].to_vec();
        let data = MemorySeriesStore::new(xs.clone());
        let specs = [
            QuerySpec::rsm_ed(q.clone(), 25.0),
            QuerySpec::rsm_dtw(q.clone(), 25.0, 7),
            QuerySpec::cnsm_ed(q.clone(), 5.0, 1.5, 2.0),
            QuerySpec::cnsm_dtw(q.clone(), 5.0, 7, 1.5, 2.0),
        ];
        for spec in specs {
            let prep = PreparedQuery::new(spec.clone()).unwrap();
            let wi = WindowInterval::new(200, 600);
            let mut scratch = KernelScratch::new();
            // Cold pass: the scratch grows to size.
            verify_interval(&data, &prep, wi, &mut scratch, None).unwrap();
            let warm = scratch.alloc_events();
            // Warm passes: zero further kernel allocations.
            for _ in 0..3 {
                verify_interval(&data, &prep, wi, &mut scratch, None).unwrap();
            }
            assert_eq!(
                scratch.alloc_events(),
                warm,
                "warm verify_interval allocated ({:?})",
                spec.measure
            );
        }
    }

    #[test]
    fn adaptive_cascade_same_results() {
        // Adaptive stage demotion must never change which subsequences
        // qualify or their distances — only the lower-bound work done.
        let xs = composite_series(79, 2_500);
        let q = xs[600..760].to_vec();
        let data = MemorySeriesStore::new(xs.clone());
        for spec in [
            QuerySpec::rsm_dtw(q.clone(), 20.0, 6),
            QuerySpec::cnsm_dtw(q.clone(), 4.0, 6, 1.5, 2.0),
        ] {
            let plain = PreparedQuery::new(spec.clone()).unwrap();
            let mut adaptive = PreparedQuery::new(spec.clone()).unwrap();
            adaptive.set_adaptive(Some(AdaptivePolicy {
                window: 16,
                min_prune_rate: 0.9, // demote aggressively
                probation: 64,
            }));
            let wi = WindowInterval::new(100, 1200);
            let mut scratch = KernelScratch::new();
            let a = verify_interval(&data, &plain, wi, &mut scratch, None).unwrap();
            let b = verify_interval(&data, &adaptive, wi, &mut scratch, None).unwrap();
            let av: Vec<(usize, u64)> =
                a.results.iter().map(|r| (r.offset, r.distance.to_bits())).collect();
            let bv: Vec<(usize, u64)> =
                b.results.iter().map(|r| (r.offset, r.distance.to_bits())).collect();
            assert_eq!(av, bv, "adaptive changed results ({:?})", spec.measure);
        }
    }

    #[test]
    fn query_longer_than_series_is_empty_ok() {
        let xs = composite_series(67, 500);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let (res, _) = matcher.execute(&QuerySpec::rsm_ed(vec![0.0; 1000], 5.0)).unwrap();
        assert!(res.is_empty());
    }
}
