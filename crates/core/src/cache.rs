//! Index-row cache — §VI-C optimization 1.
//!
//! "To reduce the duplicate index visit, we can cache the index rows
//! already fetched. Then for each new RList, if partial of it is already in
//! the cache, we only need to fetch the rest part from KV-index."
//!
//! A [`RowCache`] holds decoded interval sets keyed by `(window width,
//! row index)`, shared across queries (and across the member indexes of a
//! KV-match_DP multi-index — the window width disambiguates). Rows are
//! immutable once built, so cached entries never go stale for a given
//! index; eviction is LRU by a monotonically increasing touch generation.
//!
//! Exploratory workloads — the paper's motivating scenario of a user
//! re-issuing near-identical queries with tweaked `ε`, `α`, `β` — hit the
//! same key ranges repeatedly; the cache turns those re-probes into pure
//! in-memory unions with **zero** storage scans.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::interval::IntervalSet;

/// Cache key: `(raw series id, index window width, row index)`.
pub type RowKey = (u64, usize, usize);

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowCacheStats {
    /// Rows served from the cache.
    pub hits: u64,
    /// Rows that had to be fetched from the store.
    pub misses: u64,
    /// Rows evicted to stay within capacity.
    pub evictions: u64,
}

impl RowCacheStats {
    /// The counter movement since an `earlier` snapshot — how a batch (or
    /// any delimited phase) used the cache, independent of prior traffic.
    pub fn since(&self, earlier: &RowCacheStats) -> RowCacheStats {
        RowCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<RowKey, (Arc<IntervalSet>, u64)>,
    recency: BTreeMap<u64, RowKey>,
    next_gen: u64,
    stats: RowCacheStats,
}

/// A shared, thread-safe LRU cache of decoded index rows.
#[derive(Debug)]
pub struct RowCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl RowCache {
    /// A cache holding at most `capacity` rows (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), inner: Mutex::new(Inner::default()) }
    }

    /// Maximum rows held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RowCacheStats {
        self.inner.lock().stats
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.recency.clear();
    }

    /// Looks up one row, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: RowKey) -> Option<Arc<IntervalSet>> {
        let mut inner = self.inner.lock();
        let next = inner.next_gen;
        match inner.map.get_mut(&key) {
            Some((set, generation)) => {
                let set = Arc::clone(set);
                let old = std::mem::replace(generation, next);
                inner.recency.remove(&old);
                inner.recency.insert(next, key);
                inner.next_gen += 1;
                inner.stats.hits += 1;
                Some(set)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) one row, evicting the least recently used
    /// entries beyond capacity.
    pub fn insert(&self, key: RowKey, set: Arc<IntervalSet>) {
        let mut inner = self.inner.lock();
        let generation = inner.next_gen;
        inner.next_gen += 1;
        if let Some((_, old)) = inner.map.insert(key, (set, generation)) {
            inner.recency.remove(&old);
        }
        inner.recency.insert(generation, key);
        while inner.map.len() > self.capacity {
            let (&oldest, &victim) = inner.recency.iter().next().expect("map non-empty");
            inner.recency.remove(&oldest);
            inner.map.remove(&victim);
            inner.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::WindowInterval;

    fn set(l: u64, r: u64) -> Arc<IntervalSet> {
        Arc::new(IntervalSet::from_sorted(vec![WindowInterval::new(l, r)]))
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = RowCache::new(4);
        assert!(cache.get((0, 50, 0)).is_none());
        cache.insert((0, 50, 0), set(1, 5));
        let got = cache.get((0, 50, 0)).expect("cached");
        assert_eq!(got.num_positions(), 5);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = RowCache::new(2);
        cache.insert((0, 50, 0), set(0, 0));
        cache.insert((0, 50, 1), set(1, 1));
        // Touch row 0 so row 1 is the LRU victim.
        assert!(cache.get((0, 50, 0)).is_some());
        cache.insert((0, 50, 2), set(2, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.get((0, 50, 0)).is_some(), "recently touched survives");
        assert!(cache.get((0, 50, 1)).is_none(), "LRU victim evicted");
        assert!(cache.get((0, 50, 2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn window_width_and_series_disambiguate() {
        let cache = RowCache::new(8);
        cache.insert((0, 25, 3), set(10, 10));
        cache.insert((0, 50, 3), set(20, 20));
        cache.insert((7, 50, 3), set(30, 30));
        assert_eq!(cache.get((0, 25, 3)).unwrap().positions().next(), Some(10));
        assert_eq!(cache.get((0, 50, 3)).unwrap().positions().next(), Some(20));
        assert_eq!(cache.get((7, 50, 3)).unwrap().positions().next(), Some(30));
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = RowCache::new(3);
        for i in 0..3 {
            cache.insert((0, 50, i), set(i as u64, i as u64));
        }
        cache.insert((0, 50, 0), set(99, 99)); // overwrite
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get((0, 50, 0)).unwrap().positions().next(), Some(99));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = RowCache::new(2);
        cache.insert((0, 50, 0), set(0, 0));
        cache.get((0, 50, 0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn stats_since_subtracts_snapshot() {
        let cache = RowCache::new(4);
        cache.get((0, 50, 0)); // miss
        let snap = cache.stats();
        cache.insert((0, 50, 0), set(0, 0));
        cache.get((0, 50, 0)); // hit
        cache.get((0, 50, 1)); // miss
        let delta = cache.stats().since(&snap);
        assert_eq!((delta.hits, delta.misses, delta.evictions), (1, 1, 0));
        // A fresh snapshot against itself is zero.
        let s = cache.stats();
        assert_eq!(s.since(&s), RowCacheStats::default());
    }

    #[test]
    fn capacity_minimum_is_one() {
        let cache = RowCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert((0, 50, 0), set(0, 0));
        cache.insert((0, 50, 1), set(1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(RowCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500usize {
                        let key = (0, 50, (t * 131 + i) % 100);
                        match cache.get(key) {
                            Some(_) => {}
                            None => cache.insert(key, set(i as u64, i as u64 + 1)),
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2_000);
    }
}
