//! Index-row cache — §VI-C optimization 1.
//!
//! "To reduce the duplicate index visit, we can cache the index rows
//! already fetched. Then for each new RList, if partial of it is already in
//! the cache, we only need to fetch the rest part from KV-index."
//!
//! A [`RowCache`] holds decoded interval sets keyed by `(window width,
//! row index)`, shared across queries (and across the member indexes of a
//! KV-match_DP multi-index — the window width disambiguates). Rows are
//! immutable once built, so cached entries never go stale for a given
//! index; eviction is LRU by a monotonically increasing touch generation.
//!
//! Exploratory workloads — the paper's motivating scenario of a user
//! re-issuing near-identical queries with tweaked `ε`, `α`, `β` — hit the
//! same key ranges repeatedly; the cache turns those re-probes into pure
//! in-memory unions with **zero** storage scans.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::interval::IntervalSet;

/// Cache key: `(raw series id, index window width, row index)`.
pub type RowKey = (u64, usize, usize);

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowCacheStats {
    /// Rows served from the cache.
    pub hits: u64,
    /// Rows that had to be fetched from the store.
    pub misses: u64,
    /// Rows evicted to stay within capacity.
    pub evictions: u64,
}

impl RowCacheStats {
    /// The counter movement since an `earlier` snapshot — how a batch (or
    /// any delimited phase) used the cache, independent of prior traffic.
    pub fn since(&self, earlier: &RowCacheStats) -> RowCacheStats {
        RowCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<RowKey, (Arc<IntervalSet>, u64)>,
    recency: BTreeMap<u64, RowKey>,
    next_gen: u64,
    /// Total intervals held across every cached row — the memory proxy
    /// the interval budget bounds (rows hold wildly different interval
    /// counts, so an entry cap alone does not bound memory).
    intervals_held: u64,
    stats: RowCacheStats,
}

/// A shared, thread-safe LRU cache of decoded index rows.
///
/// Two independent bounds keep long-running serving from growing without
/// limit: an entry cap (`capacity` rows) and an optional *interval
/// budget* — the summed interval count across cached rows, a proxy for
/// resident memory. Exceeding either evicts LRU entries (the freshly
/// inserted row is never its own victim).
#[derive(Debug)]
pub struct RowCache {
    capacity: usize,
    interval_budget: u64,
    inner: Mutex<Inner>,
}

impl RowCache {
    /// A cache holding at most `capacity` rows (≥ 1), with no interval
    /// budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_interval_budget(capacity, 0)
    }

    /// A cache bounded by both an entry cap and a total-interval budget
    /// (`0` = unbounded intervals).
    pub fn with_interval_budget(capacity: usize, interval_budget: u64) -> Self {
        Self { capacity: capacity.max(1), interval_budget, inner: Mutex::new(Inner::default()) }
    }

    /// Maximum rows held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The total-interval budget (`0` = unbounded).
    pub fn interval_budget(&self) -> u64 {
        self.interval_budget
    }

    /// Total intervals currently held across every cached row.
    pub fn intervals_held(&self) -> u64 {
        self.inner.lock().intervals_held
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RowCacheStats {
        self.inner.lock().stats
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.recency.clear();
        inner.intervals_held = 0;
    }

    /// Looks up one row, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: RowKey) -> Option<Arc<IntervalSet>> {
        let mut inner = self.inner.lock();
        let next = inner.next_gen;
        match inner.map.get_mut(&key) {
            Some((set, generation)) => {
                let set = Arc::clone(set);
                let old = std::mem::replace(generation, next);
                inner.recency.remove(&old);
                inner.recency.insert(next, key);
                inner.next_gen += 1;
                inner.stats.hits += 1;
                Some(set)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) one row, evicting least-recently-used
    /// entries until both the entry cap and the interval budget hold
    /// again. Returns how many rows were evicted (so probe accounting can
    /// attribute eviction pressure to the query that caused it). The row
    /// just inserted is never evicted, even when it alone exceeds the
    /// budget — evicting it immediately would make every probe of a large
    /// row thrash.
    pub fn insert(&self, key: RowKey, set: Arc<IntervalSet>) -> u64 {
        let mut inner = self.inner.lock();
        let generation = inner.next_gen;
        inner.next_gen += 1;
        inner.intervals_held += set.num_intervals() as u64;
        if let Some((old_set, old)) = inner.map.insert(key, (set, generation)) {
            inner.recency.remove(&old);
            inner.intervals_held -= old_set.num_intervals() as u64;
        }
        inner.recency.insert(generation, key);
        let mut evicted = 0u64;
        let over_budget = |inner: &Inner| {
            inner.map.len() > self.capacity
                || (self.interval_budget > 0
                    && inner.intervals_held > self.interval_budget
                    && inner.map.len() > 1)
        };
        while over_budget(&inner) {
            let (&oldest, &victim) = inner.recency.iter().next().expect("map non-empty");
            inner.recency.remove(&oldest);
            let (victim_set, _) = inner.map.remove(&victim).expect("recency tracks map");
            inner.intervals_held -= victim_set.num_intervals() as u64;
            inner.stats.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    /// A fresh cache (same bounds, fresh counters) seeded with every entry
    /// whose row index is below `first_superseded_row` — the rows a new
    /// generation left byte-identical, so their decoded interval sets stay
    /// valid. Entries at or above the cutoff belong to superseded rows and
    /// are not carried over. The source cache is untouched (older pinned
    /// generations keep serving from it).
    pub fn carry_forward(&self, first_superseded_row: usize) -> RowCache {
        let fresh = RowCache::with_interval_budget(self.capacity, self.interval_budget);
        let keep: Vec<(RowKey, Arc<IntervalSet>)> = {
            let inner = self.inner.lock();
            // Walk recency oldest → newest so LRU order survives the copy.
            inner
                .recency
                .values()
                .filter(|key| key.2 < first_superseded_row)
                .map(|key| (*key, Arc::clone(&inner.map[key].0)))
                .collect()
        };
        for (key, set) in keep {
            fresh.insert(key, set);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::WindowInterval;

    fn set(l: u64, r: u64) -> Arc<IntervalSet> {
        Arc::new(IntervalSet::from_sorted(vec![WindowInterval::new(l, r)]))
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = RowCache::new(4);
        assert!(cache.get((0, 50, 0)).is_none());
        cache.insert((0, 50, 0), set(1, 5));
        let got = cache.get((0, 50, 0)).expect("cached");
        assert_eq!(got.num_positions(), 5);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = RowCache::new(2);
        cache.insert((0, 50, 0), set(0, 0));
        cache.insert((0, 50, 1), set(1, 1));
        // Touch row 0 so row 1 is the LRU victim.
        assert!(cache.get((0, 50, 0)).is_some());
        cache.insert((0, 50, 2), set(2, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.get((0, 50, 0)).is_some(), "recently touched survives");
        assert!(cache.get((0, 50, 1)).is_none(), "LRU victim evicted");
        assert!(cache.get((0, 50, 2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn window_width_and_series_disambiguate() {
        let cache = RowCache::new(8);
        cache.insert((0, 25, 3), set(10, 10));
        cache.insert((0, 50, 3), set(20, 20));
        cache.insert((7, 50, 3), set(30, 30));
        assert_eq!(cache.get((0, 25, 3)).unwrap().positions().next(), Some(10));
        assert_eq!(cache.get((0, 50, 3)).unwrap().positions().next(), Some(20));
        assert_eq!(cache.get((7, 50, 3)).unwrap().positions().next(), Some(30));
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = RowCache::new(3);
        for i in 0..3 {
            cache.insert((0, 50, i), set(i as u64, i as u64));
        }
        cache.insert((0, 50, 0), set(99, 99)); // overwrite
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get((0, 50, 0)).unwrap().positions().next(), Some(99));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = RowCache::new(2);
        cache.insert((0, 50, 0), set(0, 0));
        cache.get((0, 50, 0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn stats_since_subtracts_snapshot() {
        let cache = RowCache::new(4);
        cache.get((0, 50, 0)); // miss
        let snap = cache.stats();
        cache.insert((0, 50, 0), set(0, 0));
        cache.get((0, 50, 0)); // hit
        cache.get((0, 50, 1)); // miss
        let delta = cache.stats().since(&snap);
        assert_eq!((delta.hits, delta.misses, delta.evictions), (1, 1, 0));
        // A fresh snapshot against itself is zero.
        let s = cache.stats();
        assert_eq!(s.since(&s), RowCacheStats::default());
    }

    #[test]
    fn capacity_minimum_is_one() {
        let cache = RowCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert((0, 50, 0), set(0, 0));
        cache.insert((0, 50, 1), set(1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn interval_budget_bounds_memory() {
        // Entry cap alone would admit all of these; the interval budget
        // evicts down to ≤ 6 held intervals.
        let cache = RowCache::new(100);
        assert_eq!(cache.interval_budget(), 0, "plain caches are unbudgeted");
        let cache = RowCache::with_interval_budget(100, 6);
        let wide = |n: usize| {
            Arc::new(IntervalSet::from_sorted(
                (0..n).map(|i| WindowInterval::new(10 * i as u64, 10 * i as u64 + 1)).collect(),
            ))
        };
        assert_eq!(cache.insert((0, 50, 0), wide(3)), 0);
        assert_eq!(cache.insert((0, 50, 1), wide(3)), 0);
        assert_eq!(cache.intervals_held(), 6);
        // Third row pushes past the budget: the LRU row goes.
        assert_eq!(cache.insert((0, 50, 2), wide(3)), 1);
        assert_eq!(cache.intervals_held(), 6);
        assert!(cache.get((0, 50, 0)).is_none(), "LRU victim evicted");
        assert_eq!(cache.stats().evictions, 1);
        // A single row larger than the whole budget is kept (never its
        // own victim) but evicts everything else.
        assert_eq!(cache.insert((0, 50, 3), wide(50)), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.intervals_held(), 50);
        cache.clear();
        assert_eq!(cache.intervals_held(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(RowCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500usize {
                        let key = (0, 50, (t * 131 + i) % 100);
                        if cache.get(key).is_none() {
                            cache.insert(key, set(i as u64, i as u64 + 1));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 2_000);
    }

    #[test]
    fn carry_forward_keeps_only_unsuperseded_rows() {
        let cache = RowCache::with_interval_budget(8, 100);
        for row in 0..6usize {
            cache.insert((7, 50, row), set(row as u64, row as u64 + 2));
        }
        // Touch row 1 so it is the most recent of the survivors.
        cache.get((7, 50, 1)).expect("cached");
        let next = cache.carry_forward(4);
        assert_eq!(next.capacity(), 8);
        assert_eq!(next.interval_budget(), 100);
        assert_eq!(next.len(), 4, "rows 0..4 carried, 4..6 superseded");
        for row in 0..4usize {
            assert!(next.get((7, 50, row)).is_some(), "row {row} carried forward");
        }
        for row in 4..6usize {
            assert!(next.get((7, 50, row)).is_none(), "row {row} superseded");
        }
        // Counters restart in the new generation's cache.
        assert_eq!(next.stats().evictions, 0);
        // The source cache is untouched for pinned older snapshots.
        assert_eq!(cache.len(), 6);
        // LRU order survived: inserting past capacity in the copy evicts
        // the oldest surviving row (0), not the recently touched row 1.
        for row in 10..15usize {
            next.insert((7, 50, row), set(1, 2));
        }
        assert!(next.get((7, 50, 0)).is_none(), "oldest survivor evicted first");
        assert!(next.get((7, 50, 1)).is_some(), "recently touched survivor kept");
    }
}
