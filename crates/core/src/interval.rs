//! Window intervals and ordered interval-set algebra (paper §IV-A, §V-C).
//!
//! A [`WindowInterval`] `[l, r]` denotes the set of sliding-window positions
//! `{l, l+1, …, r}` (Definition 1). Index rows, `IS_i`, `CS_i` and the final
//! candidate set `CS` are all [`IntervalSet`]s: sorted, pairwise-disjoint,
//! non-adjacent intervals. Union, intersection and shifting are single
//! merge-style passes, O(nI) — the property the paper's Algorithm 1 relies
//! on for its merge-sort-like intersection.

/// An inclusive range `[l, r]` of window positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowInterval {
    /// Left boundary `WI.l` (inclusive).
    pub left: u64,
    /// Right boundary `WI.r` (inclusive).
    pub right: u64,
}

impl WindowInterval {
    /// Creates `[l, r]`.
    ///
    /// # Panics
    /// Panics if `l > r`.
    pub fn new(left: u64, right: u64) -> Self {
        assert!(left <= right, "interval [{left}, {right}] is inverted");
        Self { left, right }
    }

    /// Number of window positions `|WI| = r − l + 1`.
    #[inline]
    pub fn size(&self) -> u64 {
        self.right - self.left + 1
    }

    /// True if position `j` lies inside.
    #[inline]
    pub fn contains(&self, j: u64) -> bool {
        self.left <= j && j <= self.right
    }
}

/// A sorted sequence of disjoint, non-adjacent window intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    intervals: Vec<WindowInterval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from intervals already sorted, disjoint and non-adjacent.
    ///
    /// # Panics
    /// Debug-panics when the invariant is violated.
    pub fn from_sorted(intervals: Vec<WindowInterval>) -> Self {
        debug_assert!(
            intervals.windows(2).all(|w| w[0].right + 1 < w[1].left),
            "intervals not sorted/disjoint/non-adjacent"
        );
        Self { intervals }
    }

    /// Builds from arbitrary intervals: sorts and coalesces overlapping or
    /// adjacent ones.
    pub fn from_unsorted(mut intervals: Vec<WindowInterval>) -> Self {
        intervals.sort_unstable();
        let mut out: Vec<WindowInterval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match out.last_mut() {
                Some(last) if iv.left <= last.right.saturating_add(1) => {
                    last.right = last.right.max(iv.right);
                }
                _ => out.push(iv),
            }
        }
        Self { intervals: out }
    }

    /// A set holding the single position `j`.
    pub fn singleton(j: u64) -> Self {
        Self { intervals: vec![WindowInterval::new(j, j)] }
    }

    /// The intervals, sorted.
    pub fn intervals(&self) -> &[WindowInterval] {
        &self.intervals
    }

    /// Number of intervals `nI` (Eq. 6).
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of window positions `nP` (Eq. 7).
    pub fn num_positions(&self) -> u64 {
        self.intervals.iter().map(WindowInterval::size).sum()
    }

    /// True when no interval is present.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Membership test for one position (binary search).
    pub fn contains(&self, j: u64) -> bool {
        match self.intervals.binary_search_by(|iv| iv.left.cmp(&j)) {
            Ok(_) => true,
            Err(0) => false,
            Err(k) => self.intervals[k - 1].contains(j),
        }
    }

    /// Appends an interval that starts after everything already present,
    /// coalescing when adjacent or overlapping. Used by streaming builders.
    pub fn push_coalescing(&mut self, iv: WindowInterval) {
        match self.intervals.last_mut() {
            Some(last) if iv.left <= last.right.saturating_add(1) => {
                debug_assert!(iv.left >= last.left, "push_coalescing went backwards");
                last.right = last.right.max(iv.right);
            }
            _ => self.intervals.push(iv),
        }
    }

    /// Extends the last interval to cover position `j` when `j` directly
    /// follows it; otherwise opens a new `[j, j]` interval. This is the
    /// index builder's inner loop (§IV-B).
    pub fn extend_or_open(&mut self, j: u64) {
        self.push_coalescing(WindowInterval::new(j, j));
    }

    /// Set union (coalescing adjacency) — merge of two sorted sequences,
    /// O(nI(a) + nI(b)).
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let (a, b) = (&self.intervals, &other.intervals);
        let mut out = IntervalSet { intervals: Vec::with_capacity(a.len() + b.len()) };
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let take_a = j >= b.len() || (i < a.len() && a[i].left <= b[j].left);
            let iv = if take_a {
                let iv = a[i];
                i += 1;
                iv
            } else {
                let iv = b[j];
                j += 1;
                iv
            };
            out.push_coalescing(iv);
        }
        out
    }

    /// Set intersection — merge of two sorted sequences, O(nI(a) + nI(b)).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (a, b) = (&self.intervals, &other.intervals);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let l = a[i].left.max(b[j].left);
            let r = a[i].right.min(b[j].right);
            if l <= r {
                out.push(WindowInterval::new(l, r));
            }
            if a[i].right < b[j].right {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet::from_sorted(out)
    }

    /// Shifts every position left by `delta`, dropping positions below
    /// `delta` (a window at position `j < delta` cannot be the `i`-th
    /// disjoint window of any subsequence). This implements
    /// `CS_i = { j − (i−1)·w | j ∈ IS_i }` (§V-C).
    pub fn shift_left(&self, delta: u64) -> IntervalSet {
        let mut out = Vec::with_capacity(self.intervals.len());
        for iv in &self.intervals {
            if iv.right < delta {
                continue;
            }
            let l = iv.left.max(delta) - delta;
            let r = iv.right - delta;
            out.push(WindowInterval::new(l, r));
        }
        IntervalSet::from_sorted(out)
    }

    /// Clamps all positions to `≤ max_pos`, truncating or dropping
    /// intervals. Candidate starts must satisfy `j ≤ n − m`.
    pub fn clamp_max(&self, max_pos: u64) -> IntervalSet {
        let mut out = Vec::with_capacity(self.intervals.len());
        for iv in &self.intervals {
            if iv.left > max_pos {
                break;
            }
            out.push(WindowInterval::new(iv.left, iv.right.min(max_pos)));
        }
        IntervalSet::from_sorted(out)
    }

    /// Iterator over all positions (use only on small sets — tests).
    pub fn positions(&self) -> impl Iterator<Item = u64> + '_ {
        self.intervals.iter().flat_map(|iv| iv.left..=iv.right)
    }
}

impl FromIterator<WindowInterval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = WindowInterval>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ivs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_unsorted(ivs.iter().map(|&(l, r)| WindowInterval::new(l, r)).collect())
    }

    #[test]
    fn interval_size_and_contains() {
        let iv = WindowInterval::new(5, 9);
        assert_eq!(iv.size(), 5);
        assert!(iv.contains(5) && iv.contains(9));
        assert!(!iv.contains(4) && !iv.contains(10));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        let _ = WindowInterval::new(3, 2);
    }

    #[test]
    fn from_unsorted_coalesces() {
        let s = set(&[(10, 12), (1, 3), (4, 6), (20, 20), (11, 15)]);
        assert_eq!(
            s.intervals(),
            &[WindowInterval::new(1, 6), WindowInterval::new(10, 15), WindowInterval::new(20, 20)]
        );
        assert_eq!(s.num_intervals(), 3);
        assert_eq!(s.num_positions(), 6 + 6 + 1);
    }

    #[test]
    fn union_basic() {
        let a = set(&[(1, 3), (10, 12)]);
        let b = set(&[(4, 5), (11, 20), (30, 31)]);
        let u = a.union(&b);
        assert_eq!(
            u.intervals(),
            &[WindowInterval::new(1, 5), WindowInterval::new(10, 20), WindowInterval::new(30, 31)]
        );
    }

    #[test]
    fn union_with_empty() {
        let a = set(&[(1, 2)]);
        assert_eq!(a.union(&IntervalSet::new()), a);
        assert_eq!(IntervalSet::new().union(&a), a);
    }

    #[test]
    fn intersect_basic() {
        let a = set(&[(1, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        let i = a.intersect(&b);
        assert_eq!(i.intervals(), &[WindowInterval::new(5, 10), WindowInterval::new(20, 25)]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = set(&[(1, 5)]);
        let b = set(&[(6, 9)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn shift_left_drops_and_clamps() {
        let a = set(&[(0, 2), (5, 9), (100, 100)]);
        let s = a.shift_left(4);
        assert_eq!(s.intervals(), &[WindowInterval::new(1, 5), WindowInterval::new(96, 96)]);
        // interval entirely below delta is dropped; [5,9] becomes [1,5];
        // the straddling part of [0,2] is gone entirely (right < delta).
    }

    #[test]
    fn shift_left_zero_is_identity() {
        let a = set(&[(3, 7)]);
        assert_eq!(a.shift_left(0), a);
    }

    #[test]
    fn shift_straddling_interval() {
        let a = set(&[(2, 8)]);
        let s = a.shift_left(5);
        assert_eq!(s.intervals(), &[WindowInterval::new(0, 3)]);
    }

    #[test]
    fn clamp_max_truncates() {
        let a = set(&[(0, 5), (10, 20), (30, 40)]);
        let c = a.clamp_max(15);
        assert_eq!(c.intervals(), &[WindowInterval::new(0, 5), WindowInterval::new(10, 15)]);
    }

    #[test]
    fn contains_membership() {
        let a = set(&[(2, 4), (8, 8), (100, 200)]);
        for j in [2, 3, 4, 8, 100, 150, 200] {
            assert!(a.contains(j), "{j}");
        }
        for j in [0, 1, 5, 7, 9, 99, 201] {
            assert!(!a.contains(j), "{j}");
        }
    }

    #[test]
    fn extend_or_open_builder_pattern() {
        let mut s = IntervalSet::new();
        for j in [1u64, 2, 3, 7, 8, 12] {
            s.extend_or_open(j);
        }
        assert_eq!(
            s.intervals(),
            &[WindowInterval::new(1, 3), WindowInterval::new(7, 8), WindowInterval::new(12, 12)]
        );
    }

    #[test]
    fn positions_iterator() {
        let s = set(&[(1, 3), (6, 6)]);
        let ps: Vec<u64> = s.positions().collect();
        assert_eq!(ps, vec![1, 2, 3, 6]);
    }

    #[test]
    fn set_ops_match_naive_model() {
        // Cross-check against a bitset model over a small universe.
        let universe = 64u64;
        for seed in 0..50u64 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut rand_bits = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state
            };
            let bits_a = rand_bits() & rand_bits();
            let bits_b = rand_bits() & rand_bits();
            let to_set = |bits: u64| -> IntervalSet {
                (0..universe)
                    .filter(|j| bits >> j & 1 == 1)
                    .map(|j| WindowInterval::new(j, j))
                    .collect()
            };
            let a = to_set(bits_a);
            let b = to_set(bits_b);
            let mut got_u: Vec<u64> = a.union(&b).positions().collect();
            got_u.sort_unstable();
            let want_u: Vec<u64> =
                (0..universe).filter(|j| (bits_a | bits_b) >> j & 1 == 1).collect();
            assert_eq!(got_u, want_u, "union mismatch seed {seed}");
            let got_i: Vec<u64> = a.intersect(&b).positions().collect();
            let want_i: Vec<u64> =
                (0..universe).filter(|j| (bits_a & bits_b) >> j & 1 == 1).collect();
            assert_eq!(got_i, want_i, "intersect mismatch seed {seed}");
        }
    }
}
