//! Batched, multi-threaded query execution across one or many series.
//!
//! [`QueryExecutor`] takes a *batch* of ED/DTW queries — possibly
//! targeting different series of a catalog — and answers all of them with
//! less total work than running [`KvMatcher`](crate::matcher::KvMatcher)
//! once per query. The batching model has three layers:
//!
//! 1. **Planning once.** Every query is validated and pre-processed
//!    ([`PreparedQuery`]) up front: window segmentation (`p = ⌊m/w⌋`
//!    windows at offsets `i·w`), lemma ranges, envelopes and cascade
//!    material are computed exactly once per query before any I/O starts,
//!    and each query is routed to its target series (an
//!    [`UnknownSeries`](crate::query::CoreError::UnknownSeries) routing
//!    error fails the batch before any work runs).
//! 2. **Shared probing.** Phase 1 runs on the calling thread, routing
//!    every window probe through the target series' [`RowCache`]. Queries
//!    whose lemma ranges overlap — the common case for related queries
//!    over the same series — hit rows another query already fetched, so
//!    each distinct row span costs one store scan for the *whole batch*.
//!    Caches are **per series**: same-window rows of different series
//!    never alias. Probe accounting keeps real scans
//!    ([`MatchStats::index_accesses`]) and cache-served probes
//!    ([`MatchStats::probe_cache_hits`]) distinct.
//! 3. **Fanned-out verification.** Phase 2 flattens every (query,
//!    candidate-interval) pair — across *all* series — into one work list
//!    and drains it from a [`std::thread::scope`] worker pool. Each work
//!    item runs the same per-interval verification routine (and the same
//!    shared [`LbCascade`](kvmatch_distance::LbCascade) stages) the
//!    sequential matcher runs, so batched results are **bit-identical**
//!    per series to per-query [`KvMatcher`](crate::matcher::KvMatcher)
//!    output — the equivalence tests assert exact equality, including
//!    distances.
//!
//! Worker results are merged back in deterministic (query, interval)
//! order; per-query statistics report the same candidate counts as
//! sequential execution, while [`BatchStats`] carries the batch-level
//! numbers and [`BatchOutput::per_series`] the per-series split (wall
//! time, probe sharing, matches) the bench report publishes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use kvmatch_storage::{KvStore, SeriesId, SeriesStore};

use kvmatch_distance::{AdaptivePolicy, BestSoFar, KernelScratch};
use parking_lot::Mutex;

use crate::cache::{RowCache, RowCacheStats};
use crate::index::KvIndex;
use crate::interval::{IntervalSet, WindowInterval};
use crate::matcher::{verify_interval, PreparedQuery};
use crate::query::{select_top_k, CoreError, MatchResult, MatchStats, QuerySpec};

/// Tuning knobs for a [`QueryExecutor`].
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Verification worker threads; `0` resolves to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Row-cache capacity (decoded index rows kept for probe sharing),
    /// per series.
    pub cache_capacity: usize,
    /// Row-cache *interval* budget per series (`0` = unbounded): caps the
    /// summed interval count across cached rows, so long-running serving
    /// bounds cache memory even when individual rows are huge. Evictions
    /// it forces surface in [`MatchStats::cache_evictions`].
    pub cache_interval_budget: u64,
    /// Adaptive cascade stage demotion for DTW verification (`None` = the
    /// fixed LB_Kim-FL → LB_Keogh → DTW order, the default). When set,
    /// each query's cascade demotes lower-bound stages whose observed
    /// pruning rate falls below the policy's floor — results are always
    /// bit-identical; only the per-stage work and
    /// [`CascadeStats`](kvmatch_distance::CascadeStats) change.
    pub adaptive_cascade: Option<AdaptivePolicy>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self { threads: 0, cache_capacity: 4096, cache_interval_budget: 0, adaptive_cascade: None }
    }
}

impl ExecutorConfig {
    /// A fresh per-series row cache honouring this config's bounds.
    pub(crate) fn new_cache(&self) -> RowCache {
        RowCache::with_interval_budget(self.cache_capacity, self.cache_interval_budget)
    }
}

/// One query's answer: the same `(results, stats)` pair
/// [`KvMatcher::execute`](crate::matcher::KvMatcher::execute) returns.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Qualified subsequences, ordered by offset.
    pub results: Vec<MatchResult>,
    /// Per-query execution statistics.
    pub stats: MatchStats,
}

/// Batch-level statistics: where the shared work went.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: u64,
    /// Distinct series the batch touched.
    pub series_touched: u64,
    /// Wall-clock nanoseconds of the (sequential) probe phase.
    pub probe_nanos: u64,
    /// Wall-clock nanoseconds of the (parallel) verification phase.
    pub verify_nanos: u64,
    /// Window probes issued across the batch.
    pub probes: u64,
    /// Probes served without any store scan (shared via the row cache).
    pub probe_cache_hits: u64,
    /// Real store scans issued.
    pub store_scans: u64,
    /// Verification work items (candidate intervals) executed.
    pub work_items: u64,
    /// Worker threads used for verification.
    pub threads: u64,
    /// Row-cache counter movement over this batch, summed across the
    /// per-series caches.
    pub row_cache: RowCacheStats,
}

/// One series' share of a batch — the split the bench report publishes.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeriesBatchStats {
    /// The series.
    pub series: SeriesId,
    /// Queries routed to this series.
    pub queries: u64,
    /// Summed phase-1 nanoseconds of those queries (probing is
    /// sequential, so this is attributable wall time).
    pub probe_nanos: u64,
    /// Summed per-interval verification worker nanoseconds attributed to
    /// this series (CPU time, not wall time — verification interleaves
    /// across series on the shared pool).
    pub verify_nanos: u64,
    /// Window probes issued for this series.
    pub probes: u64,
    /// Probes served entirely from this series' row cache.
    pub probe_cache_hits: u64,
    /// Real store scans issued for this series.
    pub store_scans: u64,
    /// Verification work items of this series.
    pub work_items: u64,
    /// Qualified results across this series' queries.
    pub matches: u64,
}

/// The whole batch's answers plus batch statistics.
#[derive(Clone, Debug)]
pub struct BatchOutput {
    /// Per-query outputs, in input order.
    pub outputs: Vec<QueryOutput>,
    /// Batch-level statistics.
    pub stats: BatchStats,
    /// Per-series split, ordered by series id (only series that received
    /// at least one query appear).
    pub per_series: Vec<SeriesBatchStats>,
}

/// A per-query execution plan produced by phase 1.
struct Plan {
    prep: PreparedQuery,
    target: usize,
    probes: u64,
    cs: IntervalSet,
    stats: MatchStats,
    /// Top-k only: the query's shared best-so-far threshold. Workers
    /// verifying *any* of this query's intervals — potentially on
    /// different threads — tighten and read the same bound, so a good
    /// match found in one interval abandons candidates in every other.
    best: Option<Mutex<BestSoFar>>,
}

/// One unit of phase-2 work: a candidate interval of one query.
#[derive(Clone, Copy)]
struct WorkItem {
    query: usize,
    interval: WindowInterval,
}

/// What a worker produced for one [`WorkItem`].
struct WorkOutput {
    item_idx: usize,
    nanos: u64,
    verification: Result<crate::matcher::IntervalVerification, CoreError>,
}

/// One series served by a [`QueryExecutor`]: its index view, its data
/// store, and its private row cache.
struct ExecTarget<'a, S: KvStore, D: SeriesStore> {
    series: SeriesId,
    index: &'a KvIndex<S>,
    data: &'a D,
    cache: Arc<RowCache>,
}

/// Batched multi-threaded executor over one or more (index, data store)
/// pairs — one per series.
pub struct QueryExecutor<'a, S: KvStore, D: SeriesStore> {
    targets: Vec<ExecTarget<'a, S, D>>,
    by_series: HashMap<u64, usize>,
    config: ExecutorConfig,
}

impl<'a, S: KvStore, D: SeriesStore> QueryExecutor<'a, S, D> {
    /// Binds an executor to one index and its data store (with default
    /// configuration). The target series is the index's own
    /// ([`SeriesId::DEFAULT`] for single-series indexes, so specs built
    /// by the plain constructors route here). Fails when the index
    /// covers a series of a different length.
    pub fn new(index: &'a KvIndex<S>, data: &'a D) -> Result<Self, CoreError> {
        Self::with_config(index, data, ExecutorConfig::default())
    }

    /// Binds a single-series executor with explicit configuration.
    pub fn with_config(
        index: &'a KvIndex<S>,
        data: &'a D,
        config: ExecutorConfig,
    ) -> Result<Self, CoreError> {
        let series = index.series();
        let cache = Arc::new(config.new_cache());
        Self::multi([(series, index, data, cache)], config)
    }

    /// Binds an executor over many series. Each target brings its own
    /// row cache (the catalog passes long-lived caches in, so probe
    /// sharing survives across batches and materializations keep clean
    /// series' caches warm). Series ids must be unique and every index
    /// must match its data store's length.
    pub fn multi(
        targets: impl IntoIterator<Item = (SeriesId, &'a KvIndex<S>, &'a D, Arc<RowCache>)>,
        config: ExecutorConfig,
    ) -> Result<Self, CoreError> {
        let mut resolved = Vec::new();
        let mut by_series = HashMap::new();
        for (series, index, data, cache) in targets {
            if index.series_len() != data.len() {
                return Err(CoreError::CorruptIndex(format!(
                    "{series}: index covers a series of length {}, data store has {}",
                    index.series_len(),
                    data.len()
                )));
            }
            if by_series.insert(series.raw(), resolved.len()).is_some() {
                return Err(CoreError::InvalidQuery(format!("duplicate executor target {series}")));
            }
            resolved.push(ExecTarget { series, index, data, cache });
        }
        if resolved.is_empty() {
            return Err(CoreError::InvalidQuery("executor needs at least one target".into()));
        }
        Ok(Self { targets: resolved, by_series, config })
    }

    /// The series this executor serves, in target order.
    pub fn series(&self) -> Vec<SeriesId> {
        self.targets.iter().map(|t| t.series).collect()
    }

    /// The first target's row cache (the only one for single-series
    /// executors). Persists across batches, so repeated batches keep
    /// sharing probe work.
    pub fn cache(&self) -> &RowCache {
        &self.targets[0].cache
    }

    /// The row cache serving `series`, if the executor has that target.
    pub fn cache_for(&self, series: SeriesId) -> Option<&RowCache> {
        self.by_series.get(&series.raw()).map(|&i| &*self.targets[i].cache)
    }

    /// The resolved verification thread count.
    pub fn threads(&self) -> usize {
        if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Executes a batch of queries, each routed to its target series.
    /// Per-query results are bit-identical to running
    /// [`KvMatcher::execute`](crate::matcher::KvMatcher::execute) on each
    /// spec against its own series in isolation; any invalid or
    /// unroutable query or storage error fails the whole batch.
    pub fn execute_batch(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        D: Sync,
    {
        let cache_before: Vec<RowCacheStats> =
            self.targets.iter().map(|t| t.cache.stats()).collect();
        let mut batch = BatchStats { queries: specs.len() as u64, ..BatchStats::default() };

        // Phase 0: route and plan every query before any I/O.
        let mut plans = Vec::with_capacity(specs.len());
        for spec in specs {
            let target = *self
                .by_series
                .get(&spec.series.raw())
                .ok_or(CoreError::UnknownSeries(spec.series))?;
            let mut prep = PreparedQuery::new(spec.clone())?;
            prep.set_adaptive(self.config.adaptive_cascade);
            let w = self.targets[target].index.window();
            if prep.m < w {
                return Err(CoreError::QueryTooShort { query_len: prep.m, window: w });
            }
            let best = prep.best_so_far();
            plans.push(Plan {
                prep,
                target,
                probes: 0,
                cs: IntervalSet::new(),
                stats: MatchStats::default(),
                best,
            });
        }
        batch.series_touched = {
            let mut touched: Vec<usize> = plans.iter().map(|p| p.target).collect();
            touched.sort_unstable();
            touched.dedup();
            touched.len() as u64
        };

        // Phase 1: probe through each series' shared row cache,
        // sequentially.
        let t_probe = Instant::now();
        for plan in &mut plans {
            let t1 = Instant::now();
            let target = &self.targets[plan.target];
            let w = target.index.window();
            let n = target.data.len();
            let m = plan.prep.m;
            if m > n {
                continue; // no window fits; empty candidate set
            }
            let p = m / w;
            let mut cs: Option<IntervalSet> = None;
            for i in 0..p {
                let range = plan.prep.window_range(i * w, w);
                let (is, info) =
                    target.index.probe_cached(range.lower, range.upper, &target.cache)?;
                plan.stats.absorb_probe(&info);
                plan.probes += 1;
                batch.probes += 1;
                batch.store_scans += info.scans;
                if info.is_cache_hit() {
                    batch.probe_cache_hits += 1;
                }
                let csi = is.shift_left((i * w) as u64);
                cs = Some(match cs {
                    None => csi,
                    Some(prev) => prev.intersect(&csi),
                });
                if cs.as_ref().expect("just set").is_empty() {
                    break;
                }
            }
            plan.cs = cs.expect("p ≥ 1 because m ≥ w").clamp_max((n - m) as u64);
            plan.stats.candidates = plan.cs.num_positions();
            plan.stats.candidate_intervals = plan.cs.num_intervals() as u64;
            plan.stats.phase1_nanos = t1.elapsed().as_nanos() as u64;
        }
        batch.probe_nanos = t_probe.elapsed().as_nanos() as u64;

        // Phase 2: flatten (query, interval) work items across every
        // series and fan out over one worker pool.
        let items: Vec<WorkItem> = plans
            .iter()
            .enumerate()
            .flat_map(|(query, plan)| {
                plan.cs.intervals().iter().map(move |&interval| WorkItem { query, interval })
            })
            .collect();
        batch.work_items = items.len() as u64;

        // Workers only need each plan's data store; collecting the refs
        // here keeps the spawned closures independent of the store type
        // `S` (only `D: Sync` is required).
        let data_refs: Vec<&D> = self.targets.iter().map(|t| t.data).collect();
        let threads = self.threads().min(items.len()).max(1);
        batch.threads = threads as u64;
        let t_verify = Instant::now();
        let mut outputs: Vec<WorkOutput> = if items.is_empty() {
            Vec::new()
        } else if threads == 1 {
            // Single worker: run inline, skipping thread spawn/join cost.
            // One scratch per worker: after the first item it is warm and
            // verification performs no kernel heap allocations.
            let mut produced = Vec::with_capacity(items.len());
            let mut scratch = KernelScratch::new();
            for (item_idx, item) in items.iter().enumerate() {
                let plan = &plans[item.query];
                let t = Instant::now();
                let verification = verify_interval(
                    data_refs[plan.target],
                    &plan.prep,
                    item.interval,
                    &mut scratch,
                    plan.best.as_ref(),
                );
                produced.push(WorkOutput {
                    item_idx,
                    nanos: t.elapsed().as_nanos() as u64,
                    verification,
                });
            }
            produced
        } else {
            let next = AtomicUsize::new(0);
            let next_ref = &next;
            let plans_ref = &plans;
            let items_ref = &items;
            let data_ref = &data_refs;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut produced = Vec::new();
                            let mut scratch = KernelScratch::new();
                            loop {
                                let item_idx = next_ref.fetch_add(1, Ordering::Relaxed);
                                if item_idx >= items_ref.len() {
                                    break;
                                }
                                let item = items_ref[item_idx];
                                let plan = &plans_ref[item.query];
                                let t = Instant::now();
                                let verification = verify_interval(
                                    data_ref[plan.target],
                                    &plan.prep,
                                    item.interval,
                                    &mut scratch,
                                    plan.best.as_ref(),
                                );
                                produced.push(WorkOutput {
                                    item_idx,
                                    nanos: t.elapsed().as_nanos() as u64,
                                    verification,
                                });
                            }
                            produced
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("verification worker panicked"))
                    .collect()
            })
        };
        batch.verify_nanos = t_verify.elapsed().as_nanos() as u64;

        // Merge in deterministic (query, interval) order. Items were
        // created query-by-query over already-sorted interval sets, so
        // ascending item index reproduces the sequential append order.
        // The inline (single-worker) path produced them in that order
        // already.
        if threads > 1 {
            outputs.sort_unstable_by_key(|o| o.item_idx);
        }
        let mut merged: Vec<Vec<MatchResult>> = plans.iter().map(|_| Vec::new()).collect();
        for out in outputs {
            let query = items[out.item_idx].query;
            let plan = &mut plans[query];
            let iv = out.verification?;
            plan.stats.points_fetched += iv.points_fetched;
            plan.stats.absorb_cascade(&iv.cascade);
            plan.stats.alloc_events += iv.alloc_events;
            plan.stats.phase2_nanos += out.nanos;
            merged[query].extend(iv.results);
        }

        for (target, before) in self.targets.iter().zip(&cache_before) {
            let delta = target.cache.stats().since(before);
            batch.row_cache.hits += delta.hits;
            batch.row_cache.misses += delta.misses;
            batch.row_cache.evictions += delta.evictions;
        }

        // Per-series split plus final per-query outputs.
        let mut per_target: Vec<SeriesBatchStats> = self
            .targets
            .iter()
            .map(|t| SeriesBatchStats { series: t.series, ..SeriesBatchStats::default() })
            .collect();
        let outputs: Vec<QueryOutput> = plans
            .into_iter()
            .zip(merged)
            .map(|(mut plan, mut results)| {
                // Top-k: reduce the accumulated survivors (still carrying
                // comparison-domain values) to the final k with the same
                // deterministic selection the sequential matcher applies,
                // then root the distances — worker interleaving only
                // affects which *excess* candidates were kept along the
                // way, never the selected set.
                if let Some(k) = plan.prep.spec.limit {
                    select_top_k(&mut results, k);
                    crate::matcher::finish_topk_distances(&plan.prep, &mut results);
                }
                plan.stats.matches = results.len() as u64;
                let s = &mut per_target[plan.target];
                s.queries += 1;
                s.probe_nanos += plan.stats.phase1_nanos;
                s.verify_nanos += plan.stats.phase2_nanos;
                s.probes += plan.probes;
                s.probe_cache_hits += plan.stats.probe_cache_hits;
                s.store_scans += plan.stats.index_accesses;
                s.work_items += plan.stats.candidate_intervals;
                s.matches += plan.stats.matches;
                QueryOutput { results, stats: plan.stats }
            })
            .collect();
        let mut per_series: Vec<SeriesBatchStats> =
            per_target.into_iter().filter(|s| s.queries > 0).collect();
        per_series.sort_by_key(|s| s.series);
        Ok(BatchOutput { outputs, stats: batch, per_series })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuildConfig;
    use crate::matcher::KvMatcher;
    use kvmatch_storage::memory::MemoryKvStoreBuilder;
    use kvmatch_storage::{KvStoreBuilder, MemoryKvStore, MemorySeriesStore};
    use kvmatch_timeseries::generator::composite_series;

    fn build_index(xs: &[f64], w: usize) -> KvIndex<MemoryKvStore> {
        let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
            xs,
            IndexBuildConfig::new(w),
            MemoryKvStoreBuilder::new(),
        )
        .unwrap();
        idx
    }

    #[test]
    fn batch_equals_sequential_matcher() {
        let xs = composite_series(71, 6_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let specs = vec![
            QuerySpec::rsm_ed(xs[100..300].to_vec(), 12.0),
            QuerySpec::rsm_dtw(xs[900..1100].to_vec(), 6.0, 5),
            QuerySpec::cnsm_ed(xs[2500..2700].to_vec(), 2.0, 1.5, 3.0),
            QuerySpec::cnsm_dtw(xs[4000..4160].to_vec(), 2.0, 5, 1.5, 3.0),
        ];
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let exec = QueryExecutor::with_config(
            &idx,
            &data,
            ExecutorConfig { threads: 3, ..ExecutorConfig::default() },
        )
        .unwrap();
        let batch = exec.execute_batch(&specs).unwrap();
        assert_eq!(batch.outputs.len(), specs.len());
        for (spec, out) in specs.iter().zip(&batch.outputs) {
            let (want, want_stats) = matcher.execute(spec).unwrap();
            assert_eq!(out.results, want, "batched results must be bit-identical");
            assert_eq!(out.stats.candidates, want_stats.candidates);
            assert_eq!(out.stats.candidate_intervals, want_stats.candidate_intervals);
            assert_eq!(out.stats.matches, want_stats.matches);
            assert_eq!(out.stats.points_fetched, want_stats.points_fetched);
        }
        assert_eq!(batch.stats.series_touched, 1);
        assert_eq!(batch.per_series.len(), 1);
        assert_eq!(batch.per_series[0].queries, specs.len() as u64);
    }

    #[test]
    fn overlapping_queries_share_probes() {
        let xs = composite_series(73, 8_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        // The same query repeated: after the first, every probe is a hit.
        let q = xs[1000..1300].to_vec();
        let specs = vec![QuerySpec::rsm_ed(q, 10.0); 4];
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let batch = exec.execute_batch(&specs).unwrap();
        assert!(batch.stats.probe_cache_hits >= 3 * (300 / 50) - 3, "{:?}", batch.stats);
        assert!(batch.stats.row_cache.hits > 0);
        // Repeated queries' stats show the cache serving their rows.
        let repeat = &batch.outputs[1].stats;
        assert_eq!(repeat.index_accesses, 0, "fully cache-served probes issue no scans");
        assert!(repeat.probe_cache_hits > 0);
        assert!(repeat.rows_from_cache > 0);
    }

    #[test]
    fn cache_persists_across_batches() {
        let xs = composite_series(79, 4_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let specs = vec![QuerySpec::rsm_ed(xs[500..700].to_vec(), 8.0)];
        let first = exec.execute_batch(&specs).unwrap();
        let second = exec.execute_batch(&specs).unwrap();
        assert_eq!(first.outputs[0].results, second.outputs[0].results);
        assert_eq!(second.stats.store_scans, 0, "second batch fully cache-served");
        assert_eq!(second.stats.probe_cache_hits, second.stats.probes);
    }

    #[test]
    fn empty_batch_and_long_query() {
        let xs = composite_series(83, 1_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let empty = exec.execute_batch(&[]).unwrap();
        assert!(empty.outputs.is_empty());
        assert!(empty.per_series.is_empty());
        // A query longer than the series yields an empty result, like the
        // sequential matcher.
        let batch = exec.execute_batch(&[QuerySpec::rsm_ed(vec![0.0; 2_000], 5.0)]).unwrap();
        assert!(batch.outputs[0].results.is_empty());
        assert_eq!(batch.outputs[0].stats.candidates, 0);
    }

    #[test]
    fn invalid_query_fails_whole_batch() {
        let xs = composite_series(89, 1_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let specs = vec![
            QuerySpec::rsm_ed(xs[0..100].to_vec(), 5.0),
            QuerySpec::rsm_ed(vec![0.0; 20], 1.0),
        ];
        assert!(matches!(
            exec.execute_batch(&specs),
            Err(CoreError::QueryTooShort { query_len: 20, window: 50 })
        ));
    }

    #[test]
    fn mismatched_series_length_rejected() {
        let xs = composite_series(97, 1_000);
        let idx = build_index(&xs, 25);
        let other = MemorySeriesStore::new(vec![0.0; 500]);
        assert!(QueryExecutor::new(&idx, &other).is_err());
    }

    #[test]
    fn single_thread_config_still_correct() {
        let xs = composite_series(101, 3_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let exec = QueryExecutor::with_config(
            &idx,
            &data,
            ExecutorConfig { threads: 1, cache_capacity: 8, ..ExecutorConfig::default() },
        )
        .unwrap();
        let spec = QuerySpec::rsm_dtw(xs[700..900].to_vec(), 8.0, 6);
        let batch = exec.execute_batch(std::slice::from_ref(&spec)).unwrap();
        let (want, _) = matcher.execute(&spec).unwrap();
        assert_eq!(batch.outputs[0].results, want);
        assert_eq!(batch.stats.threads, 1);
    }

    /// Three single-series indexes served by one executor: a mixed batch
    /// routes each query to its series and stays bit-identical to
    /// dedicated sequential matchers.
    #[test]
    fn mixed_series_batch_routes_and_matches() {
        let ids = [SeriesId::new(1), SeriesId::new(2), SeriesId::new(5)];
        let series: Vec<Vec<f64>> = [111u64, 222, 333]
            .iter()
            .map(|&seed| composite_series(seed, 4_000 + (seed as usize % 7) * 500))
            .collect();
        // Build each series into one shared store via the prefix layout.
        let mut builder = MemoryKvStoreBuilder::new();
        for (id, xs) in ids.iter().zip(&series) {
            let (rows, _) = crate::build::build_rows(xs, IndexBuildConfig::new(50));
            KvIndex::<MemoryKvStore>::append_series_rows(
                &mut builder,
                *id,
                &rows,
                IndexBuildConfig::new(50),
                xs.len(),
            )
            .unwrap();
        }
        let store = std::sync::Arc::new(builder.finish().unwrap());
        let views: Vec<KvIndex<std::sync::Arc<MemoryKvStore>>> = ids
            .iter()
            .map(|id| KvIndex::open_series(std::sync::Arc::clone(&store), *id).unwrap())
            .collect();
        let stores: Vec<MemorySeriesStore> =
            series.iter().map(|xs| MemorySeriesStore::new(xs.clone())).collect();

        let exec = QueryExecutor::multi(
            ids.iter()
                .zip(&views)
                .zip(&stores)
                .map(|((id, v), d)| (*id, v, d, Arc::new(RowCache::new(1024)))),
            ExecutorConfig { threads: 4, ..ExecutorConfig::default() },
        )
        .unwrap();
        assert_eq!(exec.series(), ids.to_vec());

        // A mixed, interleaved batch: every query type, every series.
        let mut specs = Vec::new();
        for (i, (id, xs)) in ids.iter().zip(&series).enumerate() {
            let at = 300 + i * 157;
            specs.push(QuerySpec::rsm_ed(xs[at..at + 200].to_vec(), 10.0).with_series(*id));
            specs.push(QuerySpec::rsm_dtw(xs[at + 50..at + 250].to_vec(), 5.0, 6).with_series(*id));
            specs.push(
                QuerySpec::cnsm_ed(xs[at + 100..at + 300].to_vec(), 2.0, 1.5, 3.0).with_series(*id),
            );
        }
        // Interleave so no series' queries are contiguous.
        let interleaved: Vec<QuerySpec> =
            (0..3).flat_map(|k| specs.iter().skip(k).step_by(3).cloned()).collect();

        let batch = exec.execute_batch(&interleaved).unwrap();
        assert_eq!(batch.stats.series_touched, 3);
        assert_eq!(batch.per_series.len(), 3);
        for (spec, out) in interleaved.iter().zip(&batch.outputs) {
            let i = ids.iter().position(|id| *id == spec.series).unwrap();
            let solo_idx = build_index(&series[i], 50);
            let matcher = KvMatcher::new(&solo_idx, &stores[i]).unwrap();
            let (want, _) = matcher.execute(spec).unwrap();
            assert_eq!(out.results, want, "{} diverged", spec.series);
        }
        // The per-series split accounts for every query and match.
        assert_eq!(batch.per_series.iter().map(|s| s.queries).sum::<u64>(), 9);
        let total_matches: u64 = batch.outputs.iter().map(|o| o.stats.matches).sum();
        assert_eq!(batch.per_series.iter().map(|s| s.matches).sum::<u64>(), total_matches);
    }

    /// Batched top-k — with its shared, cross-worker threshold tightening
    /// — must stay bit-identical to the sequential matcher's top-k, for
    /// every query type and any thread count.
    #[test]
    fn batched_topk_equals_sequential_topk() {
        let mut xs = composite_series(113, 6_000);
        let q = xs[800..1000].to_vec();
        xs[4000..4200].copy_from_slice(&q); // exact tie for determinism stress
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let specs = vec![
            QuerySpec::rsm_ed(q.clone(), 40.0).top_k(3),
            QuerySpec::rsm_dtw(xs[1500..1700].to_vec(), 12.0, 6).top_k(4),
            QuerySpec::cnsm_ed(xs[2500..2700].to_vec(), 3.0, 1.5, 4.0).top_k(2),
            QuerySpec::cnsm_dtw(xs[3200..3360].to_vec(), 2.5, 5, 1.5, 4.0).top_k(2),
            // A mixed batch: range queries ride along unchanged.
            QuerySpec::rsm_ed(q, 10.0),
        ];
        for threads in [1usize, 4] {
            let exec = QueryExecutor::with_config(
                &idx,
                &data,
                ExecutorConfig { threads, ..ExecutorConfig::default() },
            )
            .unwrap();
            let batch = exec.execute_batch(&specs).unwrap();
            for (spec, out) in specs.iter().zip(&batch.outputs) {
                let (want, _) = matcher.execute(spec).unwrap();
                assert_eq!(out.results, want, "threads={threads} diverged for {spec:?}");
                if let Some(k) = spec.limit {
                    assert!(out.results.len() <= k);
                }
            }
        }
    }

    /// The adaptive cascade config knob must never change any result —
    /// stage demotion only re-routes candidates between admissible lower
    /// bounds and the exact kernel.
    #[test]
    fn adaptive_cascade_config_is_result_invariant() {
        let xs = composite_series(127, 5_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let specs = vec![
            QuerySpec::rsm_dtw(xs[900..1100].to_vec(), 8.0, 6),
            QuerySpec::cnsm_dtw(xs[2000..2160].to_vec(), 3.0, 5, 1.5, 3.0),
            QuerySpec::rsm_dtw(xs[3000..3200].to_vec(), 15.0, 6).top_k(3),
        ];
        let plain = QueryExecutor::new(&idx, &data).unwrap().execute_batch(&specs).unwrap();
        let adaptive = QueryExecutor::with_config(
            &idx,
            &data,
            ExecutorConfig {
                threads: 2,
                adaptive_cascade: Some(AdaptivePolicy {
                    window: 8,
                    min_prune_rate: 0.9, // demote as aggressively as possible
                    probation: 32,
                }),
                ..ExecutorConfig::default()
            },
        )
        .unwrap()
        .execute_batch(&specs)
        .unwrap();
        for (a, b) in plain.outputs.iter().zip(&adaptive.outputs) {
            assert_eq!(a.results, b.results, "adaptive cascade changed results");
        }
    }

    /// A spec targeting a series the executor doesn't serve fails the
    /// batch up front.
    #[test]
    fn unknown_series_rejected() {
        let xs = composite_series(103, 1_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let spec = QuerySpec::rsm_ed(xs[0..100].to_vec(), 5.0).with_series(SeriesId::new(42));
        assert!(matches!(
            exec.execute_batch(std::slice::from_ref(&spec)),
            Err(CoreError::UnknownSeries(id)) if id == SeriesId::new(42)
        ));
        assert!(exec.cache_for(SeriesId::new(42)).is_none());
        assert!(exec.cache_for(SeriesId::DEFAULT).is_some());
    }

    /// Same-window series must not alias in the caches: repeated mixed
    /// batches stay correct and the second run is fully cache-served.
    #[test]
    fn per_series_caches_do_not_alias() {
        let a = composite_series(107, 3_000);
        let b = composite_series(109, 3_000);
        let idx_a = build_index(&a, 50);
        let idx_b = build_index(&b, 50);
        let da = MemorySeriesStore::new(a.clone());
        let db = MemorySeriesStore::new(b.clone());
        let ida = SeriesId::new(1);
        let idb = SeriesId::new(2);
        // Rebind the single-series indexes as two catalog targets. The
        // indexes themselves are series 0 views, so probe keys would
        // collide if the executor shared one cache — each target's
        // private cache keeps them apart.
        let exec = QueryExecutor::multi(
            [
                (ida, &idx_a, &da, Arc::new(RowCache::new(512))),
                (idb, &idx_b, &db, Arc::new(RowCache::new(512))),
            ],
            ExecutorConfig { threads: 2, ..ExecutorConfig::default() },
        )
        .unwrap();
        let specs = vec![
            QuerySpec::rsm_ed(a[100..350].to_vec(), 8.0).with_series(ida),
            QuerySpec::rsm_ed(b[100..350].to_vec(), 8.0).with_series(idb),
        ];
        let first = exec.execute_batch(&specs).unwrap();
        let second = exec.execute_batch(&specs).unwrap();
        for (x, y) in first.outputs.iter().zip(&second.outputs) {
            assert_eq!(x.results, y.results);
        }
        assert_eq!(second.stats.store_scans, 0, "warm mixed batch is fully cache-served");
        // And each series' answers equal its dedicated matcher's.
        let (want_a, _) = KvMatcher::new(&idx_a, &da).unwrap().execute(&specs[0]).unwrap();
        let (want_b, _) = KvMatcher::new(&idx_b, &db).unwrap().execute(&specs[1]).unwrap();
        assert_eq!(first.outputs[0].results, want_a);
        assert_eq!(first.outputs[1].results, want_b);
    }
}
