//! Batched, multi-threaded query execution.
//!
//! [`QueryExecutor`] takes a *batch* of ED/DTW queries against one index
//! and answers all of them with less total work than running
//! [`KvMatcher`](crate::matcher::KvMatcher) once per query. The batching
//! model has three layers:
//!
//! 1. **Planning once.** Every query is validated and pre-processed
//!    ([`PreparedQuery`]) up front: window segmentation (`p = ⌊m/w⌋`
//!    windows at offsets `i·w`), lemma ranges, envelopes and cascade
//!    material are computed exactly once per query before any I/O starts.
//! 2. **Shared probing.** Phase 1 runs on the calling thread, routing
//!    every window probe through one [`RowCache`]. Queries whose lemma
//!    ranges overlap — the common case for related queries over the same
//!    series — hit rows another query already fetched, so each distinct
//!    row span costs one store scan for the *whole batch*. Probe
//!    accounting keeps real scans ([`MatchStats::index_accesses`]) and
//!    cache-served probes ([`MatchStats::probe_cache_hits`]) distinct.
//! 3. **Fanned-out verification.** Phase 2 flattens every (query,
//!    candidate-interval) pair into a work list and drains it from a
//!    [`std::thread::scope`] worker pool. Each work item runs the same
//!    per-interval verification routine (and the same shared
//!    [`LbCascade`](kvmatch_distance::LbCascade) stages) the sequential
//!    matcher runs, so batched results are **bit-identical** to
//!    per-query [`KvMatcher`](crate::matcher::KvMatcher) output — the
//!    equivalence tests assert exact equality, including distances.
//!
//! Worker results are merged back in deterministic (query, interval)
//! order; per-query statistics report the same candidate counts as
//! sequential execution, while [`BatchStats`] carries the batch-level
//! numbers (wall time per phase, shared-probe savings, row-cache delta).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use kvmatch_storage::{KvStore, SeriesStore};

use crate::cache::{RowCache, RowCacheStats};
use crate::index::KvIndex;
use crate::interval::{IntervalSet, WindowInterval};
use crate::matcher::{verify_interval, PreparedQuery};
use crate::query::{CoreError, MatchResult, MatchStats, QuerySpec};

/// Tuning knobs for a [`QueryExecutor`].
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Verification worker threads; `0` resolves to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Row-cache capacity (decoded index rows kept for probe sharing).
    pub cache_capacity: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self { threads: 0, cache_capacity: 4096 }
    }
}

/// One query's answer: the same `(results, stats)` pair
/// [`KvMatcher::execute`](crate::matcher::KvMatcher::execute) returns.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Qualified subsequences, ordered by offset.
    pub results: Vec<MatchResult>,
    /// Per-query execution statistics.
    pub stats: MatchStats,
}

/// Batch-level statistics: where the shared work went.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: u64,
    /// Wall-clock nanoseconds of the (sequential) probe phase.
    pub probe_nanos: u64,
    /// Wall-clock nanoseconds of the (parallel) verification phase.
    pub verify_nanos: u64,
    /// Window probes issued across the batch.
    pub probes: u64,
    /// Probes served without any store scan (shared via the row cache).
    pub probe_cache_hits: u64,
    /// Real store scans issued.
    pub store_scans: u64,
    /// Verification work items (candidate intervals) executed.
    pub work_items: u64,
    /// Worker threads used for verification.
    pub threads: u64,
    /// Row-cache counter movement over this batch.
    pub row_cache: RowCacheStats,
}

/// The whole batch's answers plus batch statistics.
#[derive(Clone, Debug)]
pub struct BatchOutput {
    /// Per-query outputs, in input order.
    pub outputs: Vec<QueryOutput>,
    /// Batch-level statistics.
    pub stats: BatchStats,
}

/// A per-query execution plan produced by phase 1.
struct Plan {
    prep: PreparedQuery,
    cs: IntervalSet,
    stats: MatchStats,
}

/// One unit of phase-2 work: a candidate interval of one query.
#[derive(Clone, Copy)]
struct WorkItem {
    query: usize,
    interval: WindowInterval,
}

/// What a worker produced for one [`WorkItem`].
struct WorkOutput {
    item_idx: usize,
    nanos: u64,
    verification: Result<crate::matcher::IntervalVerification, CoreError>,
}

/// Batched multi-threaded executor over one index + data store.
pub struct QueryExecutor<'a, S: KvStore, D: SeriesStore> {
    index: &'a KvIndex<S>,
    data: &'a D,
    cache: RowCache,
    config: ExecutorConfig,
}

impl<'a, S: KvStore, D: SeriesStore> QueryExecutor<'a, S, D> {
    /// Binds an executor to an index and its data store (with default
    /// configuration). Fails when the index covers a series of a
    /// different length.
    pub fn new(index: &'a KvIndex<S>, data: &'a D) -> Result<Self, CoreError> {
        Self::with_config(index, data, ExecutorConfig::default())
    }

    /// Binds with explicit configuration.
    pub fn with_config(
        index: &'a KvIndex<S>,
        data: &'a D,
        config: ExecutorConfig,
    ) -> Result<Self, CoreError> {
        if index.series_len() != data.len() {
            return Err(CoreError::CorruptIndex(format!(
                "index covers a series of length {}, data store has {}",
                index.series_len(),
                data.len()
            )));
        }
        let cache = RowCache::new(config.cache_capacity);
        Ok(Self { index, data, cache, config })
    }

    /// The executor's row cache (persists across batches, so repeated
    /// batches keep sharing probe work).
    pub fn cache(&self) -> &RowCache {
        &self.cache
    }

    /// The resolved verification thread count.
    pub fn threads(&self) -> usize {
        if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Executes a batch of queries. Per-query results are bit-identical to
    /// running [`KvMatcher::execute`](crate::matcher::KvMatcher::execute)
    /// on each spec in isolation; any invalid query or storage error fails
    /// the whole batch.
    pub fn execute_batch(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        D: Sync,
    {
        let cache_before = self.cache.stats();
        let mut batch = BatchStats { queries: specs.len() as u64, ..BatchStats::default() };

        // Phase 0: plan every query before any I/O.
        let w = self.index.window();
        let n = self.data.len();
        let mut plans = Vec::with_capacity(specs.len());
        for spec in specs {
            let prep = PreparedQuery::new(spec.clone())?;
            if prep.m < w {
                return Err(CoreError::QueryTooShort { query_len: prep.m, window: w });
            }
            plans.push(Plan { prep, cs: IntervalSet::new(), stats: MatchStats::default() });
        }

        // Phase 1: probe through the shared row cache, sequentially.
        let t_probe = Instant::now();
        for plan in &mut plans {
            let t1 = Instant::now();
            let m = plan.prep.m;
            if m > n {
                continue; // no window fits; empty candidate set
            }
            let p = m / w;
            let mut cs: Option<IntervalSet> = None;
            for i in 0..p {
                let range = plan.prep.window_range(i * w, w);
                let (is, info) = self.index.probe_cached(range.lower, range.upper, &self.cache)?;
                plan.stats.absorb_probe(&info);
                batch.probes += 1;
                batch.store_scans += info.scans;
                if info.is_cache_hit() {
                    batch.probe_cache_hits += 1;
                }
                let csi = is.shift_left((i * w) as u64);
                cs = Some(match cs {
                    None => csi,
                    Some(prev) => prev.intersect(&csi),
                });
                if cs.as_ref().expect("just set").is_empty() {
                    break;
                }
            }
            plan.cs = cs.expect("p ≥ 1 because m ≥ w").clamp_max((n - m) as u64);
            plan.stats.candidates = plan.cs.num_positions();
            plan.stats.candidate_intervals = plan.cs.num_intervals() as u64;
            plan.stats.phase1_nanos = t1.elapsed().as_nanos() as u64;
        }
        batch.probe_nanos = t_probe.elapsed().as_nanos() as u64;

        // Phase 2: flatten (query, interval) work items and fan out.
        let items: Vec<WorkItem> = plans
            .iter()
            .enumerate()
            .flat_map(|(query, plan)| {
                plan.cs.intervals().iter().map(move |&interval| WorkItem { query, interval })
            })
            .collect();
        batch.work_items = items.len() as u64;

        let threads = self.threads().min(items.len()).max(1);
        batch.threads = threads as u64;
        let t_verify = Instant::now();
        let mut outputs: Vec<WorkOutput> = if items.is_empty() {
            Vec::new()
        } else if threads == 1 {
            // Single worker: run inline, skipping thread spawn/join cost.
            let mut produced = Vec::with_capacity(items.len());
            let mut scratch: Vec<f64> = Vec::new();
            for (item_idx, item) in items.iter().enumerate() {
                let t = Instant::now();
                let verification = verify_interval(
                    self.data,
                    &plans[item.query].prep,
                    item.interval,
                    &mut scratch,
                );
                produced.push(WorkOutput {
                    item_idx,
                    nanos: t.elapsed().as_nanos() as u64,
                    verification,
                });
            }
            produced
        } else {
            let next = AtomicUsize::new(0);
            let next_ref = &next;
            let plans_ref = &plans;
            let items_ref = &items;
            let data = self.data;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut produced = Vec::new();
                            let mut scratch: Vec<f64> = Vec::new();
                            loop {
                                let item_idx = next_ref.fetch_add(1, Ordering::Relaxed);
                                if item_idx >= items_ref.len() {
                                    break;
                                }
                                let item = items_ref[item_idx];
                                let t = Instant::now();
                                let verification = verify_interval(
                                    data,
                                    &plans_ref[item.query].prep,
                                    item.interval,
                                    &mut scratch,
                                );
                                produced.push(WorkOutput {
                                    item_idx,
                                    nanos: t.elapsed().as_nanos() as u64,
                                    verification,
                                });
                            }
                            produced
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("verification worker panicked"))
                    .collect()
            })
        };
        batch.verify_nanos = t_verify.elapsed().as_nanos() as u64;

        // Merge in deterministic (query, interval) order. Items were
        // created query-by-query over already-sorted interval sets, so
        // ascending item index reproduces the sequential append order.
        outputs.sort_unstable_by_key(|o| o.item_idx);
        let mut merged: Vec<Vec<MatchResult>> = plans.iter().map(|_| Vec::new()).collect();
        for out in outputs {
            let query = items[out.item_idx].query;
            let plan = &mut plans[query];
            let iv = out.verification?;
            plan.stats.points_fetched += iv.points_fetched;
            plan.stats.absorb_cascade(&iv.cascade);
            plan.stats.phase2_nanos += out.nanos;
            merged[query].extend(iv.results);
        }

        batch.row_cache = self.cache.stats().since(&cache_before);
        let outputs = plans
            .into_iter()
            .zip(merged)
            .map(|(mut plan, results)| {
                plan.stats.matches = results.len() as u64;
                QueryOutput { results, stats: plan.stats }
            })
            .collect();
        Ok(BatchOutput { outputs, stats: batch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuildConfig;
    use crate::matcher::KvMatcher;
    use kvmatch_storage::memory::MemoryKvStoreBuilder;
    use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};
    use kvmatch_timeseries::generator::composite_series;

    fn build_index(xs: &[f64], w: usize) -> KvIndex<MemoryKvStore> {
        let (idx, _) = KvIndex::<MemoryKvStore>::build_into(
            xs,
            IndexBuildConfig::new(w),
            MemoryKvStoreBuilder::new(),
        )
        .unwrap();
        idx
    }

    #[test]
    fn batch_equals_sequential_matcher() {
        let xs = composite_series(71, 6_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let specs = vec![
            QuerySpec::rsm_ed(xs[100..300].to_vec(), 12.0),
            QuerySpec::rsm_dtw(xs[900..1100].to_vec(), 6.0, 5),
            QuerySpec::cnsm_ed(xs[2500..2700].to_vec(), 2.0, 1.5, 3.0),
            QuerySpec::cnsm_dtw(xs[4000..4160].to_vec(), 2.0, 5, 1.5, 3.0),
        ];
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let exec = QueryExecutor::with_config(
            &idx,
            &data,
            ExecutorConfig { threads: 3, ..ExecutorConfig::default() },
        )
        .unwrap();
        let batch = exec.execute_batch(&specs).unwrap();
        assert_eq!(batch.outputs.len(), specs.len());
        for (spec, out) in specs.iter().zip(&batch.outputs) {
            let (want, want_stats) = matcher.execute(spec).unwrap();
            assert_eq!(out.results, want, "batched results must be bit-identical");
            assert_eq!(out.stats.candidates, want_stats.candidates);
            assert_eq!(out.stats.candidate_intervals, want_stats.candidate_intervals);
            assert_eq!(out.stats.matches, want_stats.matches);
            assert_eq!(out.stats.points_fetched, want_stats.points_fetched);
        }
    }

    #[test]
    fn overlapping_queries_share_probes() {
        let xs = composite_series(73, 8_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        // The same query repeated: after the first, every probe is a hit.
        let q = xs[1000..1300].to_vec();
        let specs = vec![QuerySpec::rsm_ed(q, 10.0); 4];
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let batch = exec.execute_batch(&specs).unwrap();
        assert!(batch.stats.probe_cache_hits >= 3 * (300 / 50) - 3, "{:?}", batch.stats);
        assert!(batch.stats.row_cache.hits > 0);
        // Repeated queries' stats show the cache serving their rows.
        let repeat = &batch.outputs[1].stats;
        assert_eq!(repeat.index_accesses, 0, "fully cache-served probes issue no scans");
        assert!(repeat.probe_cache_hits > 0);
        assert!(repeat.rows_from_cache > 0);
    }

    #[test]
    fn cache_persists_across_batches() {
        let xs = composite_series(79, 4_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let specs = vec![QuerySpec::rsm_ed(xs[500..700].to_vec(), 8.0)];
        let first = exec.execute_batch(&specs).unwrap();
        let second = exec.execute_batch(&specs).unwrap();
        assert_eq!(first.outputs[0].results, second.outputs[0].results);
        assert_eq!(second.stats.store_scans, 0, "second batch fully cache-served");
        assert_eq!(second.stats.probe_cache_hits, second.stats.probes);
    }

    #[test]
    fn empty_batch_and_long_query() {
        let xs = composite_series(83, 1_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let empty = exec.execute_batch(&[]).unwrap();
        assert!(empty.outputs.is_empty());
        // A query longer than the series yields an empty result, like the
        // sequential matcher.
        let batch = exec.execute_batch(&[QuerySpec::rsm_ed(vec![0.0; 2_000], 5.0)]).unwrap();
        assert!(batch.outputs[0].results.is_empty());
        assert_eq!(batch.outputs[0].stats.candidates, 0);
    }

    #[test]
    fn invalid_query_fails_whole_batch() {
        let xs = composite_series(89, 1_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let exec = QueryExecutor::new(&idx, &data).unwrap();
        let specs = vec![
            QuerySpec::rsm_ed(xs[0..100].to_vec(), 5.0),
            QuerySpec::rsm_ed(vec![0.0; 20], 1.0),
        ];
        assert!(matches!(
            exec.execute_batch(&specs),
            Err(CoreError::QueryTooShort { query_len: 20, window: 50 })
        ));
    }

    #[test]
    fn mismatched_series_length_rejected() {
        let xs = composite_series(97, 1_000);
        let idx = build_index(&xs, 25);
        let other = MemorySeriesStore::new(vec![0.0; 500]);
        assert!(QueryExecutor::new(&idx, &other).is_err());
    }

    #[test]
    fn single_thread_config_still_correct() {
        let xs = composite_series(101, 3_000);
        let idx = build_index(&xs, 50);
        let data = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&idx, &data).unwrap();
        let exec = QueryExecutor::with_config(
            &idx,
            &data,
            ExecutorConfig { threads: 1, cache_capacity: 8 },
        )
        .unwrap();
        let spec = QuerySpec::rsm_dtw(xs[700..900].to_vec(), 8.0, 6);
        let batch = exec.execute_batch(std::slice::from_ref(&spec)).unwrap();
        let (want, _) = matcher.execute(&spec).unwrap();
        assert_eq!(batch.outputs[0].results, want);
        assert_eq!(batch.stats.threads, 1);
    }
}
