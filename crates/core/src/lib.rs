//! # kvmatch-core — KV-index, KV-match and KV-match_DP
//!
//! The primary contribution of *"KV-match: A Subsequence Matching Approach
//! Supporting Normalization and Time Warping"* (ICDE 2019, extended version
//! arXiv:1710.00560): a single one-dimensional key-value index over
//! sliding-window mean values that answers four query types —
//!
//! * **RSM-ED / RSM-DTW** — raw subsequence matching,
//! * **cNSM-ED / cNSM-DTW** — constrained *normalized* subsequence matching
//!   (`D(Ŝ, Q̂) ≤ ε` with `1/α ≤ σS/σQ ≤ α` and `|µS − µQ| ≤ β`),
//!
//! with no false dismissals, over any storage backend providing an ordered
//! scan (see `kvmatch-storage`).
//!
//! ## Quick start
//!
//! ```
//! use kvmatch_core::{IndexBuildConfig, KvIndex, KvMatcher, QuerySpec};
//! use kvmatch_storage::memory::MemoryKvStoreBuilder;
//! use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};
//!
//! // Some data and a query drawn from it.
//! let xs: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.05).sin() * 3.0).collect();
//! let q = xs[300..500].to_vec();
//!
//! // Build the index (w = 50) and run an RSM-ED query.
//! let (index, _) = KvIndex::<MemoryKvStore>::build_into(
//!     &xs,
//!     IndexBuildConfig::new(50),
//!     MemoryKvStoreBuilder::new(),
//! ).unwrap();
//! let data = MemorySeriesStore::new(xs.clone());
//! let matcher = KvMatcher::new(&index, &data).unwrap();
//! let (results, stats) = matcher.execute(&QuerySpec::rsm_ed(q, 0.5)).unwrap();
//! assert!(results.iter().any(|r| r.offset == 300));
//! assert!(stats.candidates < 2000, "index pruned the scan");
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`interval`] | §IV-A, §V-C | window intervals, set algebra |
//! | [`ranges`] | §III | Lemmas 1–4 filtering ranges |
//! | [`build`] | §IV-B | index construction (streaming, parallel) |
//! | [`meta`] | §IV-A | the meta table |
//! | [`index`] | §IV | persisted index over a `KvStore` |
//! | [`matcher`] | §V | KV-match, Algorithm 1 |
//! | [`exec`] | — | batched multi-threaded query executor (multi-series routing) |
//! | [`catalog`] | §VII | multi-series catalog + streaming ingestion |
//! | [`dp`] | §VI | KV-match_DP: multi-index + Eq. 9 segmentation |
//! | [`naive`] | §II | exhaustive reference implementation |
//! | [`query`] | §II | query specs, results, statistics, errors |

pub mod append;
pub mod build;
pub mod cache;
pub mod catalog;
pub mod dp;
pub mod exec;
pub mod index;
pub mod interval;
pub mod matcher;
pub mod meta;
pub mod naive;
pub mod query;
pub mod ranges;

pub use append::IndexAppender;
pub use build::{BuildStats, IndexBuildConfig, IndexRow, RowAccumulator};
pub use cache::{RowCache, RowCacheStats};
pub use catalog::{
    seal_with_builder, BackendMaintenanceStats, Catalog, CatalogBackend, CatalogSnapshot,
    CatalogStats, GenerationInput, MemoryCatalogBackend, ReadView, SeriesGeneration,
    ShardedCatalogBackend,
};
pub use dp::{DpMatcher, DpOptions, IndexSetConfig, MultiIndex, Segment};
pub use exec::{
    BatchOutput, BatchStats, ExecutorConfig, QueryExecutor, QueryOutput, SeriesBatchStats,
};
pub use index::{KvIndex, ScanInfo};
pub use interval::{IntervalSet, WindowInterval};
pub use kvmatch_storage::SeriesId;
pub use matcher::{KvMatcher, PreparedQuery};
pub use meta::{IndexParams, MetaEntry, MetaTable};
pub use naive::{naive_count, naive_search};
pub use query::{select_top_k, Constraint, CoreError, MatchResult, MatchStats, Measure, QuerySpec};
pub use ranges::MeanRange;
