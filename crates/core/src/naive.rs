//! Reference (index-free) implementations of all four query types.
//!
//! A direct realization of the problem statements in §II-A: scan every
//! offset, compute the exact distance (and the cNSM constraints), keep
//! qualifying subsequences. No pruning beyond exact early abandoning, no
//! index — this is the ground truth the matcher and the baselines are
//! tested against, and the tool the benchmark harness uses to calibrate
//! selectivities.

use kvmatch_distance::dtw::dtw_banded_early_abandon;
use kvmatch_distance::ed::{ed_early_abandon, ed_norm_early_abandon};
use kvmatch_distance::lp::{lp_norm_pow_early_abandon, lp_pow_early_abandon};
use kvmatch_distance::normalize::{mean_std, z_normalized};
use kvmatch_timeseries::PrefixStats;

use crate::query::{MatchResult, Measure, QuerySpec};

/// Exhaustive scan returning every subsequence that satisfies `spec`.
///
/// Results are ordered by offset; top-k specs (`spec.limit`) are reduced
/// with the same deterministic [`select_top_k`](crate::query::select_top_k)
/// selection the matchers apply (nearest-first, ties by lower offset).
/// Time complexity O(n·m) for ED and O(n·m·ρ) for DTW; use only where
/// that is affordable (tests, calibration, moderate `n`).
pub fn naive_search(xs: &[f64], spec: &QuerySpec) -> Vec<MatchResult> {
    spec.validate().expect("invalid query spec");
    let m = spec.query.len();
    if m > xs.len() {
        return Vec::new();
    }
    let eps_sq = spec.epsilon * spec.epsilon;
    let rho = spec.measure.rho();
    let stats = PrefixStats::new(xs);
    // Accumulate in the kernels' comparison domain (squared / p-th
    // power); top-k selection happens there too — the same domain the
    // matchers threshold in — and distances root only at the very end.
    let mut out = Vec::new();

    match &spec.constraint {
        None => {
            // RSM: raw distances.
            for j in 0..=xs.len() - m {
                let s = &xs[j..j + m];
                let hit = match spec.measure {
                    Measure::Dtw { .. } => dtw_banded_early_abandon(s, &spec.query, rho, eps_sq),
                    Measure::Ed => ed_early_abandon(s, &spec.query, eps_sq),
                    Measure::Lp { p } => {
                        lp_pow_early_abandon(s, &spec.query, p, p.pow(spec.epsilon))
                    }
                };
                if let Some(distance) = hit {
                    out.push(MatchResult { offset: j, distance });
                }
            }
        }
        Some(c) => {
            // cNSM: normalized distances plus the (α, β) constraints.
            let (mu_q, sigma_q) = mean_std(&spec.query);
            let q_norm = z_normalized(&spec.query);
            for j in 0..=xs.len() - m {
                let (mu_s, sigma_s) = stats.range_mean_std(j, m);
                if (mu_s - mu_q).abs() > c.beta {
                    continue;
                }
                if sigma_s < sigma_q / c.alpha || sigma_s > sigma_q * c.alpha {
                    continue;
                }
                let s = &xs[j..j + m];
                let hit = match spec.measure {
                    Measure::Dtw { .. } => {
                        let mut s_norm = s.to_vec();
                        kvmatch_distance::z_normalize(&mut s_norm, mu_s, sigma_s);
                        dtw_banded_early_abandon(&s_norm, &q_norm, rho, eps_sq)
                    }
                    Measure::Ed => ed_norm_early_abandon(s, &q_norm, mu_s, sigma_s, eps_sq),
                    Measure::Lp { p } => {
                        lp_norm_pow_early_abandon(s, &q_norm, mu_s, sigma_s, p, p.pow(spec.epsilon))
                    }
                };
                if let Some(distance) = hit {
                    out.push(MatchResult { offset: j, distance });
                }
            }
        }
    }
    if let Some(k) = spec.limit {
        crate::query::select_top_k(&mut out, k);
    }
    for r in &mut out {
        r.distance = match spec.measure {
            Measure::Lp { p } => p.root(r.distance),
            _ => r.distance.sqrt(),
        };
    }
    out
}

/// Count of matches only (cheaper interface for selectivity calibration).
pub fn naive_count(xs: &[f64], spec: &QuerySpec) -> usize {
    naive_search(xs, spec).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;

    #[test]
    fn exact_copy_is_found_at_distance_zero() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin() * 3.0).collect();
        let q = xs[40..56].to_vec();
        let res = naive_search(&xs, &QuerySpec::rsm_ed(q, 0.0));
        assert!(res.iter().any(|r| r.offset == 40 && r.distance == 0.0));
    }

    #[test]
    fn query_longer_than_series_is_empty() {
        let res = naive_search(&[1.0, 2.0], &QuerySpec::rsm_ed(vec![0.0; 5], 10.0));
        assert!(res.is_empty());
    }

    #[test]
    fn cnsm_finds_shifted_scaled_copy_within_constraints() {
        let base: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut xs = vec![0.0; 200];
        // Plant a scaled (×1.5) + shifted (+2) copy at offset 100.
        for (i, &v) in base.iter().enumerate() {
            xs[100 + i] = v * 1.5 + 2.0;
        }
        let spec = QuerySpec::cnsm_ed(base.clone(), 0.5, 2.0, 3.0);
        let res = naive_search(&xs, &spec);
        assert!(res.iter().any(|r| r.offset == 100), "{res:?}");

        // With a tight β the shifted copy must be rejected.
        let spec_tight = QuerySpec::cnsm_ed(base, 0.5, 2.0, 0.5);
        let res_tight = naive_search(&xs, &spec_tight);
        assert!(!res_tight.iter().any(|r| r.offset == 100));
    }

    #[test]
    fn dtw_rsm_at_least_as_permissive_as_ed() {
        let xs: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin() * 2.0).collect();
        let q = xs[50..90].to_vec();
        let eps = 1.5;
        let ed = naive_search(&xs, &QuerySpec::rsm_ed(q.clone(), eps));
        let dtw = naive_search(&xs, &QuerySpec::rsm_dtw(q, eps, 4));
        let ed_offsets: Vec<usize> = ed.iter().map(|r| r.offset).collect();
        let dtw_offsets: Vec<usize> = dtw.iter().map(|r| r.offset).collect();
        for o in &ed_offsets {
            assert!(dtw_offsets.contains(o), "DTW lost ED match at {o}");
        }
        assert!(dtw_offsets.len() >= ed_offsets.len());
    }

    #[test]
    fn count_matches_search_len() {
        let xs: Vec<f64> = (0..200).map(|i| ((i % 17) as f64) - 8.0).collect();
        let spec = QuerySpec::rsm_ed(xs[10..42].to_vec(), 5.0);
        assert_eq!(naive_count(&xs, &spec), naive_search(&xs, &spec).len());
    }
}
