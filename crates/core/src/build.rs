//! KV-index construction (paper §IV-B).
//!
//! Two steps:
//!
//! 1. **Equal-width bucketing** — stream the series once, maintain the
//!    rolling window mean, and append each window position `j` to the
//!    bucket `⌊µ/d⌋`, extending the bucket's last interval when `j` directly
//!    follows it (the data-locality property that makes rows compact).
//! 2. **Greedy merge** — walk adjacent rows and merge while
//!    `nI(V_i ∪ V_{i+1}) / (nI(V_i) + nI(V_{i+1})) < γ`, coalescing
//!    neighbouring intervals.
//!
//! Both steps are O(n). A parallel segment build (std scoped threads)
//! is provided for large in-memory series, and a streaming accumulator for
//! out-of-core chunked input.

use std::collections::BTreeMap;

use kvmatch_timeseries::RollingStats;

use crate::interval::{IntervalSet, WindowInterval};
use crate::meta::{IndexParams, MetaEntry, MetaTable};

/// Index-build configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexBuildConfig {
    /// Disjoint/sliding window width `w`.
    pub window: usize,
    /// Initial equal-width range `d` (default 0.5, §VIII-A.4).
    pub width_d: f64,
    /// Merge threshold γ (default 0.8).
    pub merge_gamma: f64,
    /// Maximum width of a merged row, in multiples of `d` (default 8).
    ///
    /// The greedy γ-merge is meant to coalesce zigzag rows; without a cap
    /// it can cascade until rows span the whole key space on oscillating
    /// data, destroying probe selectivity. The cap bounds the key-range
    /// granularity a scan can lose.
    pub max_merge_buckets: usize,
}

impl IndexBuildConfig {
    /// Paper defaults for a given window width.
    pub fn new(window: usize) -> Self {
        Self { window, width_d: 0.5, merge_gamma: 0.8, max_merge_buckets: 2 }
    }

    /// Overrides the initial bucket width `d`.
    pub fn with_width(mut self, d: f64) -> Self {
        self.width_d = d;
        self
    }

    /// Overrides the merge threshold γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.merge_gamma = gamma;
        self
    }

    fn validate(&self) {
        assert!(self.window > 0, "window must be positive");
        assert!(self.max_merge_buckets >= 1, "max_merge_buckets must be ≥ 1");
        assert!(self.width_d.is_finite() && self.width_d > 0.0, "bucket width d must be positive");
        assert!((0.0..=1.0).contains(&self.merge_gamma), "merge threshold γ must be in [0, 1]");
    }
}

/// One logical index row: key range `[low, up)` and its interval set.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexRow {
    /// Left endpoint of the mean-value range (inclusive).
    pub low: f64,
    /// Right endpoint (exclusive).
    pub up: f64,
    /// Sorted window intervals whose window means fall in `[low, up)`.
    pub intervals: IntervalSet,
}

/// Build statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Rows produced by the equal-width step.
    pub rows_fixed_width: usize,
    /// Rows after the greedy merge.
    pub rows_merged: usize,
    /// Total window intervals after merge.
    pub total_intervals: u64,
    /// Total window positions (must equal `n − w + 1`).
    pub total_positions: u64,
}

/// Streaming accumulator: push samples, read rows at the end. Used both by
/// the in-memory builder and the chunked out-of-core path.
#[derive(Debug)]
pub struct RowAccumulator {
    config: IndexBuildConfig,
    rolling: RollingStats,
    buckets: BTreeMap<i64, IntervalSet>,
    next_position: u64,
    samples: usize,
}

impl RowAccumulator {
    /// Fresh accumulator.
    pub fn new(config: IndexBuildConfig) -> Self {
        config.validate();
        Self {
            rolling: RollingStats::new(config.window),
            config,
            buckets: BTreeMap::new(),
            next_position: 0,
            samples: 0,
        }
    }

    /// Pushes one sample.
    pub fn push(&mut self, v: f64) {
        self.rolling.push(v);
        self.samples += 1;
        if let Some(mu) = self.rolling.mean() {
            let k = (mu / self.config.width_d).floor() as i64;
            self.buckets.entry(k).or_default().extend_or_open(self.next_position);
            self.next_position += 1;
        }
    }

    /// Pushes a chunk of samples.
    pub fn push_chunk(&mut self, xs: &[f64]) {
        for &v in xs {
            self.push(v);
        }
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Finalizes: runs the greedy merge and returns `(rows, stats)`.
    pub fn finish(self) -> (Vec<IndexRow>, BuildStats) {
        let d = self.config.width_d;
        let fixed: Vec<IndexRow> = self
            .buckets
            .into_iter()
            .map(|(k, intervals)| IndexRow { low: k as f64 * d, up: (k + 1) as f64 * d, intervals })
            .collect();
        finish_rows(fixed, self.config)
    }
}

fn finish_rows(fixed: Vec<IndexRow>, config: IndexBuildConfig) -> (Vec<IndexRow>, BuildStats) {
    let rows_fixed_width = fixed.len();
    let merged =
        merge_rows(fixed, config.merge_gamma, config.width_d * config.max_merge_buckets as f64);
    let stats = BuildStats {
        rows_fixed_width,
        rows_merged: merged.len(),
        total_intervals: merged.iter().map(|r| r.intervals.num_intervals() as u64).sum(),
        total_positions: merged.iter().map(|r| r.intervals.num_positions()).sum(),
    };
    (merged, stats)
}

/// Greedy adjacent-row merge (§IV-B step 2). Merges the running row with
/// the next one while the fraction of intervals surviving the union is
/// below γ — i.e. while many intervals are neighbouring across the rows.
fn merge_rows(rows: Vec<IndexRow>, gamma: f64, max_width: f64) -> Vec<IndexRow> {
    let mut out: Vec<IndexRow> = Vec::with_capacity(rows.len());
    for row in rows {
        match out.last_mut() {
            Some(cur) if cur.up == row.low && row.up - cur.low <= max_width + 1e-12 => {
                let union = cur.intervals.union(&row.intervals);
                let before = cur.intervals.num_intervals() + row.intervals.num_intervals();
                // before == 0 cannot happen: empty buckets are never created.
                let ratio = union.num_intervals() as f64 / before as f64;
                if ratio < gamma {
                    cur.up = row.up;
                    cur.intervals = union;
                } else {
                    out.push(row);
                }
            }
            _ => out.push(row),
        }
    }
    out
}

/// In-memory build: equal-width bucketing + merge over a slice.
pub fn build_rows(xs: &[f64], config: IndexBuildConfig) -> (Vec<IndexRow>, BuildStats) {
    let mut acc = RowAccumulator::new(config);
    acc.push_chunk(xs);
    acc.finish()
}

/// Parallel build over `threads` segments (std scoped threads). Each
/// segment covers a contiguous range of window positions (segments overlap
/// by `w − 1` samples so no window is lost); per-segment bucket maps are
/// merged, then the greedy merge runs once globally. Results are identical
/// to [`build_rows`].
pub fn build_rows_parallel(
    xs: &[f64],
    config: IndexBuildConfig,
    threads: usize,
) -> (Vec<IndexRow>, BuildStats) {
    config.validate();
    let w = config.window;
    let threads = threads.max(1);
    if xs.len() < w || threads == 1 || xs.len() < 4 * w * threads {
        return build_rows(xs, config);
    }
    let n_windows = xs.len() - w + 1;
    let per = n_windows.div_ceil(threads);
    // Each task t owns window positions [t*per, min((t+1)*per, n_windows)).
    let mut partials: Vec<BTreeMap<i64, Vec<WindowInterval>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * per;
            if lo >= n_windows {
                break;
            }
            let hi = ((t + 1) * per).min(n_windows);
            let slice = &xs[lo..hi + w - 1];
            let d = config.width_d;
            handles.push(scope.spawn(move || {
                let mut local: BTreeMap<i64, Vec<WindowInterval>> = BTreeMap::new();
                let mut sum: f64 = slice[..w].iter().sum();
                let mut record = |pos: u64, mu: f64| {
                    let k = (mu / d).floor() as i64;
                    let entry = local.entry(k).or_default();
                    match entry.last_mut() {
                        Some(last) if last.right + 1 == pos => last.right = pos,
                        _ => entry.push(WindowInterval::new(pos, pos)),
                    }
                };
                record(lo as u64, sum / w as f64);
                for (i, j) in (w..slice.len()).enumerate() {
                    sum += slice[j] - slice[j - w];
                    record((lo + i + 1) as u64, sum / w as f64);
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("index build worker panicked"));
        }
    });

    // Merge per-segment maps. Segments are position-ordered, so per-bucket
    // concatenation stays sorted; boundary intervals may touch and are
    // coalesced by from_unsorted.
    let mut buckets: BTreeMap<i64, Vec<WindowInterval>> = BTreeMap::new();
    for partial in partials {
        for (k, ivs) in partial {
            buckets.entry(k).or_default().extend(ivs);
        }
    }
    let d = config.width_d;
    let fixed: Vec<IndexRow> = buckets
        .into_iter()
        .map(|(k, ivs)| IndexRow {
            low: k as f64 * d,
            up: (k + 1) as f64 * d,
            intervals: IntervalSet::from_unsorted(ivs),
        })
        .collect();
    finish_rows(fixed, config)
}

/// Builds the meta table for a set of rows.
pub fn meta_for_rows(rows: &[IndexRow], config: IndexBuildConfig, series_len: usize) -> MetaTable {
    let entries = rows
        .iter()
        .map(|r| MetaEntry {
            low: r.low,
            up: r.up,
            n_intervals: r.intervals.num_intervals() as u64,
            n_positions: r.intervals.num_positions(),
        })
        .collect();
    MetaTable::new(
        IndexParams {
            window: config.window,
            series_len,
            width_d: config.width_d,
            merge_gamma: config.merge_gamma,
        },
        entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvmatch_timeseries::generator::{composite_series, random_walk};
    use kvmatch_timeseries::rolling::sliding_means;

    fn cfg(w: usize) -> IndexBuildConfig {
        IndexBuildConfig::new(w)
    }

    /// Every window position appears in exactly one row, and in the row
    /// whose range contains its mean (before merge widens ranges).
    #[test]
    fn rows_partition_all_window_positions() {
        let xs = composite_series(3, 5_000);
        let w = 32;
        let (rows, stats) = build_rows(&xs, cfg(w));
        assert_eq!(stats.total_positions as usize, xs.len() - w + 1);
        let means = sliding_means(&xs, w);
        // Position -> row containment check.
        for (j, &mu) in means.iter().enumerate() {
            let holder: Vec<&IndexRow> =
                rows.iter().filter(|r| r.intervals.contains(j as u64)).collect();
            assert_eq!(holder.len(), 1, "position {j} appears in {} rows", holder.len());
            let r = holder[0];
            assert!(
                r.low <= mu && mu < r.up,
                "position {j} with mean {mu} stored in row [{}, {})",
                r.low,
                r.up
            );
        }
    }

    #[test]
    fn rows_are_sorted_and_disjoint() {
        let xs = composite_series(5, 4_000);
        let (rows, _) = build_rows(&xs, cfg(25));
        assert!(rows.windows(2).all(|r| r[0].up <= r[1].low));
        assert!(rows.iter().all(|r| r.low < r.up));
    }

    #[test]
    fn merge_reduces_or_keeps_rows() {
        let xs = random_walk(7, 20_000);
        let (rows_no_merge, s0) = build_rows(&xs, cfg(50).with_gamma(0.0));
        let (rows_merged, s1) = build_rows(&xs, cfg(50).with_gamma(0.8));
        assert_eq!(s0.rows_fixed_width, s1.rows_fixed_width);
        assert!(rows_merged.len() <= rows_no_merge.len());
        // γ = 0 means never merge.
        assert_eq!(rows_no_merge.len(), s0.rows_fixed_width);
        // Positions preserved either way.
        assert_eq!(s0.total_positions, s1.total_positions);
    }

    #[test]
    fn gamma_one_merges_aggressively() {
        // γ = 1: merge whenever rows are key-adjacent (ratio < 1 is almost
        // always true, = 1 only when no intervals coalesce).
        let xs = random_walk(11, 10_000);
        let (merged, _) = build_rows(&xs, cfg(25).with_gamma(1.0));
        let (unmerged, _) = build_rows(&xs, cfg(25).with_gamma(0.0));
        assert!(merged.len() <= unmerged.len());
    }

    #[test]
    fn series_shorter_than_window_yields_no_rows() {
        let (rows, stats) = build_rows(&[1.0, 2.0, 3.0], cfg(10));
        assert!(rows.is_empty());
        assert_eq!(stats.total_positions, 0);
    }

    #[test]
    fn single_window_series() {
        let (rows, stats) = build_rows(&[1.0, 2.0, 3.0, 4.0], cfg(4));
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.total_positions, 1);
        assert!(rows[0].intervals.contains(0));
        // mean = 2.5 ⇒ bucket [2.5, 3.0) for d = 0.5.
        assert!(rows[0].low <= 2.5 && 2.5 < rows[0].up);
    }

    #[test]
    fn negative_means_bucket_correctly() {
        let xs = vec![-3.3; 100];
        let (rows, _) = build_rows(&xs, cfg(10));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].low <= -3.3 && -3.3 < rows[0].up);
        assert!((rows[0].low - (-3.5)).abs() < 1e-12, "low {}", rows[0].low);
    }

    #[test]
    fn parallel_matches_sequential() {
        let xs = composite_series(9, 30_000);
        for w in [25usize, 50, 128] {
            let (seq, s_seq) = build_rows(&xs, cfg(w));
            for threads in [2usize, 3, 8] {
                let (par, s_par) = build_rows_parallel(&xs, cfg(w), threads);
                assert_eq!(seq, par, "w={w} threads={threads}");
                assert_eq!(s_seq, s_par);
            }
        }
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let xs = composite_series(2, 500);
        let (seq, _) = build_rows(&xs, cfg(25));
        let (par, _) = build_rows_parallel(&xs, cfg(25), 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn streaming_chunked_equals_bulk() {
        let xs = composite_series(13, 7_777);
        let cfg = cfg(40);
        let (bulk, _) = build_rows(&xs, cfg);
        let mut acc = RowAccumulator::new(cfg);
        for chunk in xs.chunks(111) {
            acc.push_chunk(chunk);
        }
        let (streamed, _) = acc.finish();
        assert_eq!(bulk, streamed);
    }

    #[test]
    fn meta_counts_match_rows() {
        let xs = composite_series(17, 6_000);
        let config = cfg(50);
        let (rows, stats) = build_rows(&xs, config);
        let meta = meta_for_rows(&rows, config, xs.len());
        assert_eq!(meta.row_count(), rows.len());
        assert_eq!(meta.total_positions(), stats.total_positions);
        assert_eq!(meta.total_intervals(), stats.total_intervals);
        assert_eq!(meta.params().window, 50);
        assert_eq!(meta.params().series_len, xs.len());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = build_rows(&[1.0], IndexBuildConfig::new(0));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = build_rows(&[1.0], IndexBuildConfig::new(2).with_width(0.0));
    }

    #[test]
    fn smooth_series_produces_long_intervals() {
        // A slow ramp keeps adjacent window means in the same bucket, so the
        // number of intervals must be far below the number of positions.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 * 1e-4).collect();
        let (_, stats) = build_rows(&xs, cfg(100));
        assert!(
            stats.total_intervals * 20 < stats.total_positions,
            "expected locality: {} intervals for {} positions",
            stats.total_intervals,
            stats.total_positions
        );
    }
}
