//! Query specification, results and statistics.

use std::fmt;

use kvmatch_distance::LpExponent;
use kvmatch_storage::{SeriesId, StorageError};

/// Distance measure of a query (§II-A, extended per the §X future work).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Euclidean distance.
    Ed,
    /// Dynamic Time Warping with a Sakoe–Chiba band of radius `rho`.
    Dtw {
        /// Band radius ρ; `rho = 0` degenerates to ED.
        rho: usize,
    },
    /// An Lp norm (`Lp { p: LpExponent::Finite(2) }` is equivalent to
    /// [`Measure::Ed`] up to kernel choice). The index serves these through
    /// the power-mean generalization of Lemmas 1–2.
    Lp {
        /// The exponent: finite `p ≥ 1` or `∞` (Chebyshev).
        p: LpExponent,
    },
}

impl Measure {
    /// The band radius (0 for non-DTW measures).
    pub fn rho(&self) -> usize {
        match self {
            Measure::Dtw { rho } => *rho,
            _ => 0,
        }
    }

    /// True for the DTW variant.
    pub fn is_dtw(&self) -> bool {
        matches!(self, Measure::Dtw { .. })
    }
}

/// The cNSM constraint thresholds: `1/α ≤ σS/σQ ≤ α`, `|µS − µQ| ≤ β`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Constraint {
    /// Amplitude-scaling threshold, `α ≥ 1`.
    pub alpha: f64,
    /// Offset-shifting threshold, `β ≥ 0`.
    pub beta: f64,
}

/// A fully-specified subsequence-matching query: one of RSM-ED, RSM-DTW,
/// cNSM-ED, cNSM-DTW depending on `measure` and `constraint`.
///
/// `series` routes the query inside a multi-series batch; the constructors
/// default it to [`SeriesId::DEFAULT`], which is what single-series
/// matchers and executors serve. Use [`QuerySpec::with_series`] to target
/// a catalog member.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// The series this query runs against.
    pub series: SeriesId,
    /// The query sequence `Q`.
    pub query: Vec<f64>,
    /// Distance threshold `ε ≥ 0`. For cNSM queries this bounds
    /// `D(Ŝ, Q̂)`; for RSM it bounds `D(S, Q)`. Top-k queries keep ε as a
    /// ceiling: only subsequences within ε compete for the k slots
    /// (`f64::INFINITY` turns that ceiling off).
    pub epsilon: f64,
    /// ED or banded DTW.
    pub measure: Measure,
    /// `Some` makes this a cNSM query; `None` is RSM.
    pub constraint: Option<Constraint>,
    /// `Some(k)` makes this a top-k query: instead of *every* subsequence
    /// within ε, only the `k` nearest are returned (distance ties broken
    /// by lower offset), ordered nearest-first. `None` is the plain range
    /// semantics. Set via [`QuerySpec::top_k`].
    pub limit: Option<usize>,
    /// When set, execution runs with per-stage wall-time tracing enabled
    /// and the serving layer returns a structured trace (EXPLAIN) with
    /// the response. Never changes results — only stats and cost. Set
    /// via [`QuerySpec::with_explain`].
    pub explain: bool,
}

impl QuerySpec {
    /// RSM-ED query.
    pub fn rsm_ed(query: Vec<f64>, epsilon: f64) -> Self {
        Self {
            series: SeriesId::DEFAULT,
            query,
            epsilon,
            measure: Measure::Ed,
            constraint: None,
            limit: None,
            explain: false,
        }
    }

    /// RSM-DTW query.
    pub fn rsm_dtw(query: Vec<f64>, epsilon: f64, rho: usize) -> Self {
        Self {
            series: SeriesId::DEFAULT,
            query,
            epsilon,
            measure: Measure::Dtw { rho },
            constraint: None,
            limit: None,
            explain: false,
        }
    }

    /// cNSM-ED query.
    pub fn cnsm_ed(query: Vec<f64>, epsilon: f64, alpha: f64, beta: f64) -> Self {
        Self {
            series: SeriesId::DEFAULT,
            query,
            epsilon,
            measure: Measure::Ed,
            constraint: Some(Constraint { alpha, beta }),
            limit: None,
            explain: false,
        }
    }

    /// cNSM-DTW query.
    pub fn cnsm_dtw(query: Vec<f64>, epsilon: f64, rho: usize, alpha: f64, beta: f64) -> Self {
        Self {
            series: SeriesId::DEFAULT,
            query,
            epsilon,
            measure: Measure::Dtw { rho },
            constraint: Some(Constraint { alpha, beta }),
            limit: None,
            explain: false,
        }
    }

    /// RSM query under an Lp norm (§X future work; `LpExponent::Finite(1)`
    /// = Manhattan, `LpExponent::Infinity` = Chebyshev).
    pub fn rsm_lp(query: Vec<f64>, epsilon: f64, p: LpExponent) -> Self {
        Self {
            series: SeriesId::DEFAULT,
            query,
            epsilon,
            measure: Measure::Lp { p },
            constraint: None,
            limit: None,
            explain: false,
        }
    }

    /// cNSM query under an Lp norm.
    pub fn cnsm_lp(query: Vec<f64>, epsilon: f64, p: LpExponent, alpha: f64, beta: f64) -> Self {
        Self {
            series: SeriesId::DEFAULT,
            query,
            epsilon,
            measure: Measure::Lp { p },
            constraint: Some(Constraint { alpha, beta }),
            limit: None,
            explain: false,
        }
    }

    /// Validates parameter domains (`ε ≥ 0`, `α ≥ 1`, `β ≥ 0`, non-empty
    /// finite query; cNSM additionally requires `σQ > 0`).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.query.is_empty() {
            return Err(CoreError::InvalidQuery("query is empty".into()));
        }
        if self.query.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::InvalidQuery("query contains non-finite values".into()));
        }
        if self.epsilon.is_nan() || self.epsilon < 0.0 {
            return Err(CoreError::InvalidQuery(format!(
                "epsilon must be ≥ 0, got {}",
                self.epsilon
            )));
        }
        if let Measure::Lp { p: LpExponent::Finite(p) } = self.measure {
            if p == 0 {
                return Err(CoreError::InvalidQuery("Lp exponent must be ≥ 1".into()));
            }
        }
        if self.limit == Some(0) {
            return Err(CoreError::InvalidQuery("top-k with k = 0".into()));
        }
        if let Some(c) = &self.constraint {
            if c.alpha.is_nan() || c.alpha < 1.0 {
                return Err(CoreError::InvalidQuery(format!("alpha must be ≥ 1, got {}", c.alpha)));
            }
            if c.beta.is_nan() || c.beta < 0.0 {
                return Err(CoreError::InvalidQuery(format!("beta must be ≥ 0, got {}", c.beta)));
            }
            let (_, sigma) = kvmatch_distance::mean_std(&self.query);
            if sigma == 0.0 {
                return Err(CoreError::InvalidQuery(
                    "cNSM query must not be constant (σQ = 0)".into(),
                ));
            }
        }
        Ok(())
    }

    /// Targets the query at a catalog series (builder style).
    pub fn with_series(mut self, series: SeriesId) -> Self {
        self.series = series;
        self
    }

    /// Turns the query into a top-k query (builder style): the `k`
    /// nearest subsequences within ε, nearest-first, distance ties broken
    /// by lower offset. Raise ε (up to `f64::INFINITY`) to widen the pool
    /// the k winners are drawn from — a looser ceiling trades index
    /// pruning for recall beyond ε.
    pub fn top_k(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Enables per-stage tracing for this query (builder style): the
    /// cascade runs timed and the serving layer attaches an
    /// `ExplainReport` to the response. Results are bit-identical with
    /// the flag on or off.
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// True for cNSM queries.
    pub fn is_normalized(&self) -> bool {
        self.constraint.is_some()
    }
}

/// Deterministic top-k selection over verified results: keeps the `k`
/// nearest, breaking distance ties by lower offset, ordered
/// nearest-first. Every execution path (sequential matcher, batched
/// executor, naive oracle) funnels its qualified results through this one
/// function so top-k answers are bit-identical across them — and every
/// internal path calls it while `distance` still holds the kernel's
/// comparison-domain value (squared / p-th-power), the same domain the
/// best-so-far threshold prunes in, so selection and pruning can never
/// disagree about a tie.
pub fn select_top_k(results: &mut Vec<MatchResult>, k: usize) {
    results.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.offset.cmp(&b.offset)));
    results.truncate(k);
}

/// One qualified subsequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchResult {
    /// Start offset of the matching subsequence `X(offset, |Q|)` (0-based).
    pub offset: usize,
    /// The achieved distance — `D(S, Q)` for RSM, `D(Ŝ, Q̂)` for cNSM.
    pub distance: f64,
}

/// Query-execution statistics (the columns of the paper's Tables III–VI).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MatchStats {
    /// `nP(CS)` — candidate subsequences verified in phase 2.
    pub candidates: u64,
    /// `nI(CS)` — candidate intervals (data-fetch operations).
    pub candidate_intervals: u64,
    /// Index scan operations performed (the "#index accesses" column).
    pub index_accesses: u64,
    /// Index rows returned across all scans.
    pub rows_scanned: u64,
    /// Index rows served from a [`RowCache`](crate::cache::RowCache)
    /// instead of the store (§VI-C optimization 1).
    pub rows_from_cache: u64,
    /// Window intervals collected across all `IS_i`.
    pub intervals_collected: u64,
    /// Index probes answered entirely from the row cache (no store scan).
    pub probe_cache_hits: u64,
    /// Rows this query's probes evicted from the row cache to stay within
    /// its entry/interval budgets (long-running serving keeps cache memory
    /// bounded; this is where that cost shows up).
    pub cache_evictions: u64,
    /// Data points fetched from the series store in phase 2.
    pub points_fetched: u64,
    /// Candidates rejected by the cNSM constraint pre-stage.
    pub pruned_constraint: u64,
    /// Candidates rejected by LB_Kim-FL.
    pub pruned_lb_kim: u64,
    /// Candidates rejected by LB_Keogh.
    pub pruned_lb_keogh: u64,
    /// Candidates that survived all lower bounds and required a full
    /// distance computation.
    pub full_distance_computations: u64,
    /// Number of qualified results.
    pub matches: u64,
    /// Wall-clock nanoseconds in phase 1 (index probing).
    pub phase1_nanos: u64,
    /// Wall-clock nanoseconds in phase 2 (verification). Under batched
    /// execution this is the summed per-interval worker time attributed to
    /// the query, not wall-clock.
    pub phase2_nanos: u64,
    /// Wall time inside LB_Kim-FL, nanoseconds. Zero unless the query
    /// ran with [`QuerySpec::explain`] (stage timing is off otherwise).
    pub lb_kim_nanos: u64,
    /// Wall time inside LB_Keogh, nanoseconds (explain queries only).
    pub lb_keogh_nanos: u64,
    /// Wall time inside the exact distance kernel, nanoseconds (explain
    /// queries only).
    pub dtw_nanos: u64,
    /// Kernel scratch buffer growths during verification (0 once warm).
    pub alloc_events: u64,
    /// LB_Kim evaluations skipped by adaptive stage demotion.
    pub adaptive_skipped_lb_kim: u64,
    /// LB_Keogh evaluations skipped by adaptive stage demotion.
    pub adaptive_skipped_lb_keogh: u64,
}

impl MatchStats {
    /// Total query nanoseconds (both phases).
    pub fn total_nanos(&self) -> u64 {
        self.phase1_nanos + self.phase2_nanos
    }

    /// Folds one phase-1 probe's accounting into the query statistics,
    /// keeping real store scans and cache-served work distinct.
    pub fn absorb_probe(&mut self, info: &crate::index::ScanInfo) {
        self.index_accesses += info.scans;
        self.rows_scanned += info.rows;
        self.rows_from_cache += info.rows_from_cache;
        self.intervals_collected += info.intervals;
        self.cache_evictions += info.evictions;
        if info.is_cache_hit() {
            self.probe_cache_hits += 1;
        }
    }

    /// Folds phase-2 cascade accounting into the query statistics.
    pub fn absorb_cascade(&mut self, cascade: &kvmatch_distance::CascadeStats) {
        self.pruned_constraint += cascade.pruned_constraint;
        self.pruned_lb_kim += cascade.pruned_lb_kim;
        self.pruned_lb_keogh += cascade.pruned_lb_keogh;
        self.full_distance_computations += cascade.full_distance_computations;
        self.adaptive_skipped_lb_kim += cascade.adaptive_skipped_lb_kim;
        self.adaptive_skipped_lb_keogh += cascade.adaptive_skipped_lb_keogh;
        self.lb_kim_nanos += cascade.lb_kim_nanos;
        self.lb_keogh_nanos += cascade.lb_keogh_nanos;
        self.dtw_nanos += cascade.dtw_nanos;
    }
}

/// Errors from the core matching layer.
#[derive(Debug)]
pub enum CoreError {
    /// Parameter-domain violation.
    InvalidQuery(String),
    /// Query/index incompatibility (e.g. `|Q| < w`).
    QueryTooShort {
        /// Query length.
        query_len: usize,
        /// Index window width.
        window: usize,
    },
    /// A batch query referenced a series its executor does not serve.
    UnknownSeries(SeriesId),
    /// A shared-borrow (read-path) executor was requested while some
    /// series still has unmaterialized appends — the caller must run
    /// `Catalog::materialize` under an exclusive borrow first.
    Unmaterialized,
    /// Storage failure.
    Storage(StorageError),
    /// Persisted index failed validation.
    CorruptIndex(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CoreError::QueryTooShort { query_len, window } => {
                write!(f, "query length {query_len} is shorter than the index window {window}")
            }
            CoreError::UnknownSeries(id) => {
                write!(f, "query routed to unknown {id}")
            }
            CoreError::Unmaterialized => {
                write!(f, "catalog has unmaterialized appends; materialize() first")
            }
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::CorruptIndex(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_query_type() {
        let q = vec![1.0, 2.0, 3.0];
        assert!(!QuerySpec::rsm_ed(q.clone(), 1.0).is_normalized());
        assert!(QuerySpec::cnsm_ed(q.clone(), 1.0, 2.0, 5.0).is_normalized());
        assert_eq!(QuerySpec::rsm_dtw(q.clone(), 1.0, 7).measure.rho(), 7);
        assert!(QuerySpec::cnsm_dtw(q, 1.0, 3, 1.5, 0.5).measure.is_dtw());
    }

    #[test]
    fn validate_rejects_bad_domains() {
        let q = vec![1.0, 2.0, 3.0];
        assert!(QuerySpec::rsm_ed(vec![], 1.0).validate().is_err());
        assert!(QuerySpec::rsm_ed(q.clone(), -1.0).validate().is_err());
        assert!(QuerySpec::rsm_ed(q.clone(), f64::NAN).validate().is_err());
        assert!(QuerySpec::rsm_ed(vec![1.0, f64::NAN], 1.0).validate().is_err());
        assert!(QuerySpec::cnsm_ed(q.clone(), 1.0, 0.5, 1.0).validate().is_err());
        assert!(QuerySpec::cnsm_ed(q.clone(), 1.0, 1.0, -0.1).validate().is_err());
        assert!(QuerySpec::cnsm_ed(vec![2.0; 8], 1.0, 1.5, 1.0).validate().is_err());
        assert!(QuerySpec::cnsm_ed(q.clone(), 1.0, 1.0, 0.0).validate().is_ok());
        assert!(QuerySpec::rsm_ed(q, 0.0).validate().is_ok());
    }

    #[test]
    fn with_series_routes() {
        let q = QuerySpec::rsm_ed(vec![1.0, 2.0], 1.0);
        assert_eq!(q.series, SeriesId::DEFAULT);
        let q = q.with_series(SeriesId::new(9));
        assert_eq!(q.series, SeriesId::new(9));
        assert_eq!(
            CoreError::UnknownSeries(SeriesId::new(9)).to_string(),
            "query routed to unknown series#9"
        );
    }

    #[test]
    fn stats_total() {
        let s = MatchStats { phase1_nanos: 10, phase2_nanos: 32, ..Default::default() };
        assert_eq!(s.total_nanos(), 42);
    }

    #[test]
    fn error_display() {
        let e = CoreError::QueryTooShort { query_len: 10, window: 25 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("25"));
    }
}
