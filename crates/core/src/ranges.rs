//! The filtering-range lemmas (paper §III).
//!
//! For each disjoint query window `Q_i` the lemmas give an interval
//! `[LR_i, UR_i]` that the window mean `µ_i^S` of any qualified subsequence
//! must fall into. All four query types share this format — the property
//! that lets one index serve RSM-ED, cNSM-ED, RSM-DTW and cNSM-DTW.

use kvmatch_distance::LpExponent;

/// A per-window mean-value range `[LR_i, UR_i]` (inclusive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanRange {
    /// Lower bound `LR_i`.
    pub lower: f64,
    /// Upper bound `UR_i`.
    pub upper: f64,
}

impl MeanRange {
    /// True if `mu` satisfies the range.
    #[inline]
    pub fn contains(&self, mu: f64) -> bool {
        self.lower <= mu && mu <= self.upper
    }

    /// Width of the range.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Lemma 1 (RSM-ED): `µ_i^S ∈ [µ_i^Q − ε/√w, µ_i^Q + ε/√w]`.
#[inline]
pub fn rsm_ed_range(mu_qi: f64, epsilon: f64, w: usize) -> MeanRange {
    let slack = epsilon / (w as f64).sqrt();
    MeanRange { lower: mu_qi - slack, upper: mu_qi + slack }
}

/// Lemma 3 (RSM-DTW): `µ_i^S ∈ [µ_i^L − ε/√w, µ_i^U + ε/√w]`, where
/// `µ_i^L`/`µ_i^U` are the means of the `i`-th disjoint windows of the
/// query's lower/upper Keogh envelope.
#[inline]
pub fn rsm_dtw_range(mu_li: f64, mu_ui: f64, epsilon: f64, w: usize) -> MeanRange {
    let slack = epsilon / (w as f64).sqrt();
    MeanRange { lower: mu_li - slack, upper: mu_ui + slack }
}

/// Lp generalization of Lemma 1 (RSM-Lp): by the power-mean inequality,
/// `Σ_{j∈window} |s_j − q_j|^p ≥ w · |µ_i^S − µ_i^Q|^p` for finite `p ≥ 1`,
/// so `µ_i^S ∈ [µ_i^Q − ε/w^(1/p), µ_i^Q + ε/w^(1/p)]`. For `L∞` the mean
/// deviation is bounded by the max deviation: slack `ε`.
#[inline]
pub fn rsm_lp_range(mu_qi: f64, epsilon: f64, w: usize, p: LpExponent) -> MeanRange {
    let slack = epsilon / p.root_w(w);
    MeanRange { lower: mu_qi - slack, upper: mu_qi + slack }
}

/// Lp generalization of Lemma 2 (cNSM-Lp): Lemma 2's proof only uses the
/// per-window corollary, so replacing `ε·σ^Q/√w` by `ε·σ^Q/w^(1/p)` and
/// re-running the (a, b) corner analysis yields the range.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the lemma parameter list
pub fn cnsm_lp_range(
    mu_qi: f64,
    mu_q: f64,
    sigma_q: f64,
    epsilon: f64,
    alpha: f64,
    beta: f64,
    w: usize,
    p: LpExponent,
) -> MeanRange {
    let slack = epsilon * sigma_q / p.root_w(w);
    scaled_shifted_range(mu_qi - mu_q - slack, mu_qi - mu_q + slack, mu_q, alpha, beta)
}

/// Lemma 2 (cNSM-ED).
///
/// With `A = µ_i^Q − µ^Q − ε·σ^Q/√w` and `B = µ_i^Q − µ^Q + ε·σ^Q/√w`:
/// `v_min = min(αA, A/α)`, `v_max = max(αB, B/α)`, and
/// `µ_i^S ∈ [v_min + µ^Q − β, v_max + µ^Q + β]`.
#[inline]
pub fn cnsm_ed_range(
    mu_qi: f64,
    mu_q: f64,
    sigma_q: f64,
    epsilon: f64,
    alpha: f64,
    beta: f64,
    w: usize,
) -> MeanRange {
    let slack = epsilon * sigma_q / (w as f64).sqrt();
    scaled_shifted_range(mu_qi - mu_q - slack, mu_qi - mu_q + slack, mu_q, alpha, beta)
}

/// Lemma 4 (cNSM-DTW): the envelope version of Lemma 2, with
/// `A = µ_i^L − µ^Q − ε·σ^Q/√w` and `B = µ_i^U − µ^Q + ε·σ^Q/√w`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors Lemma 4's parameter list
pub fn cnsm_dtw_range(
    mu_li: f64,
    mu_ui: f64,
    mu_q: f64,
    sigma_q: f64,
    epsilon: f64,
    alpha: f64,
    beta: f64,
    w: usize,
) -> MeanRange {
    let slack = epsilon * sigma_q / (w as f64).sqrt();
    scaled_shifted_range(mu_li - mu_q - slack, mu_ui - mu_q + slack, mu_q, alpha, beta)
}

/// Shared corner analysis of Lemmas 2/4: minimize `A·a + b + µ^Q` and
/// maximize `B·a + b + µ^Q` over `a ∈ [1/α, α]`, `b ∈ [−β, β]`. Both are
/// monotone in `b`; in `a` the extremum sits at a corner whose side depends
/// on the sign of `A` (resp. `B`) — the points p1..p4 of Fig. 5.
#[inline]
fn scaled_shifted_range(a_term: f64, b_term: f64, mu_q: f64, alpha: f64, beta: f64) -> MeanRange {
    let v_min = (alpha * a_term).min(a_term / alpha);
    let v_max = (alpha * b_term).max(b_term / alpha);
    MeanRange { lower: v_min + mu_q - beta, upper: v_max + mu_q + beta }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsm_ed_symmetric_around_window_mean() {
        let r = rsm_ed_range(3.0, 10.0, 25);
        assert_eq!(r.lower, 3.0 - 2.0);
        assert_eq!(r.upper, 3.0 + 2.0);
        assert!(r.contains(3.0) && r.contains(1.0) && r.contains(5.0));
        assert!(!r.contains(0.999) && !r.contains(5.001));
    }

    #[test]
    fn rsm_ed_zero_epsilon_is_point() {
        let r = rsm_ed_range(1.5, 0.0, 16);
        assert_eq!(r.lower, r.upper);
        assert!(r.contains(1.5));
    }

    #[test]
    fn rsm_dtw_extends_envelope() {
        let r = rsm_dtw_range(1.0, 4.0, 6.0, 9);
        assert_eq!(r.lower, 1.0 - 2.0);
        assert_eq!(r.upper, 4.0 + 2.0);
    }

    #[test]
    fn rsm_dtw_degenerate_envelope_equals_ed() {
        // With L = U = Q (ρ = 0 envelope), Lemma 3 reduces to Lemma 1.
        let ed = rsm_ed_range(2.5, 3.0, 4);
        let dtw = rsm_dtw_range(2.5, 2.5, 3.0, 4);
        assert_eq!(ed, dtw);
    }

    #[test]
    fn cnsm_paper_example() {
        // §III-B worked example: Q = (1,1,−1,−1), w = 2, (α, β) = (2, 1),
        // ε = 0. µ_1^Q = 1, µ^Q = 0, σ^Q ≈ 1.1547... (population: 1.0).
        // With ε = 0, A = B = µ_1^Q − µ^Q = 1 > 0, so v_min = 1/α = 0.5,
        // v_max = α = 2. Range = [0.5 − 1, 2 + 1] = [−0.5, 3].
        // µ_1^S = 4 must be excluded — the paper's point.
        let r = cnsm_ed_range(1.0, 0.0, 1.0, 0.0, 2.0, 1.0, 2);
        assert!((r.lower - (-0.5)).abs() < 1e-12);
        assert!((r.upper - 3.0).abs() < 1e-12);
        assert!(!r.contains(4.0));
        assert!(r.contains(1.0));
    }

    #[test]
    fn cnsm_negative_a_branch() {
        // A < 0 ⇒ v_min = α·A (Fig. 5 point p4).
        let r = cnsm_ed_range(-2.0, 0.0, 1.0, 0.0, 2.0, 0.0, 4);
        // A = B = −2; v_min = min(−4, −1) = −4; v_max = max(−4, −1) = −1.
        assert!((r.lower - (-4.0)).abs() < 1e-12);
        assert!((r.upper - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn cnsm_mixed_sign_a_b() {
        // ε large enough that A < 0 < B.
        let r = cnsm_ed_range(0.5, 0.0, 1.0, 4.0, 2.0, 0.0, 4);
        // slack = 4·1/2 = 2 ⇒ A = −1.5, B = 2.5.
        // v_min = min(−3, −0.75) = −3; v_max = max(5, 1.25) = 5.
        assert!((r.lower - (-3.0)).abs() < 1e-12);
        assert!((r.upper - 5.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_beta_zero_reduces_to_normalized_point_range() {
        // α = 1, β = 0: no scaling/shifting slack; the range is exactly
        // [µ_i^Q − εσ/√w, µ_i^Q + εσ/√w].
        let r = cnsm_ed_range(2.0, 1.0, 3.0, 2.0, 1.0, 0.0, 9);
        let slack = 2.0 * 3.0 / 3.0;
        assert!((r.lower - (2.0 - slack)).abs() < 1e-12);
        assert!((r.upper - (2.0 + slack)).abs() < 1e-12);
    }

    #[test]
    fn looser_constraints_widen_ranges() {
        let tight = cnsm_ed_range(1.0, 0.2, 1.5, 2.0, 1.1, 0.5, 8);
        let looser_alpha = cnsm_ed_range(1.0, 0.2, 1.5, 2.0, 2.0, 0.5, 8);
        let looser_beta = cnsm_ed_range(1.0, 0.2, 1.5, 2.0, 1.1, 5.0, 8);
        assert!(looser_alpha.lower <= tight.lower && looser_alpha.upper >= tight.upper);
        assert!(looser_beta.lower <= tight.lower && looser_beta.upper >= tight.upper);
        assert!(looser_beta.width() > tight.width());
    }

    #[test]
    fn cnsm_dtw_wider_than_cnsm_ed() {
        // Envelope means straddle the window mean ⇒ DTW range ⊇ ED range.
        let ed = cnsm_ed_range(1.0, 0.0, 1.0, 2.0, 1.5, 1.0, 4);
        let dtw = cnsm_dtw_range(0.5, 1.5, 0.0, 1.0, 2.0, 1.5, 1.0, 4);
        assert!(dtw.lower <= ed.lower);
        assert!(dtw.upper >= ed.upper);
    }
}
