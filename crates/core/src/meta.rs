//! The index meta table (paper §IV-A).
//!
//! One quadruple `⟨K_i, pos_i, nI(V_i), nP(V_i)⟩` per row. Loaded into
//! memory before matching; used (a) to locate the row range a scan must
//! cover by binary search, and (b) by KV-match_DP to estimate `nI(IS)`
//! without touching the index (the `C_{i−ϕ+1,ϕ}` of Eq. 9).
//!
//! In this implementation the physical row offset is owned by the
//! underlying [`kvmatch_storage::KvStore`]; the meta table keeps the key
//! range and the counts, plus the index parameters needed to validate a
//! query against the index.

use kvmatch_storage::StorageError;

/// Binary-format version of the serialized meta table.
const META_VERSION: u32 = 1;

/// Per-row meta entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetaEntry {
    /// Left endpoint of the row's mean-value range `[low, up)`.
    pub low: f64,
    /// Right endpoint (exclusive).
    pub up: f64,
    /// Number of window intervals in the row, `nI(V_i)`.
    pub n_intervals: u64,
    /// Number of window positions in the row, `nP(V_i)`.
    pub n_positions: u64,
}

/// Index-wide parameters persisted with the meta table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexParams {
    /// Window width `w` the index was built with.
    pub window: usize,
    /// Length `n` of the indexed series.
    pub series_len: usize,
    /// Initial equal-width bucket width `d`.
    pub width_d: f64,
    /// Merge threshold γ.
    pub merge_gamma: f64,
}

/// The in-memory meta table.
#[derive(Clone, Debug, PartialEq)]
pub struct MetaTable {
    params: IndexParams,
    entries: Vec<MetaEntry>,
}

impl MetaTable {
    /// Assembles a meta table; entries must be sorted by `low` with
    /// non-overlapping ranges.
    pub fn new(params: IndexParams, entries: Vec<MetaEntry>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].up <= w[1].low),
            "meta entries overlap or are unsorted"
        );
        Self { params, entries }
    }

    /// Index parameters.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// All entries, sorted by key range.
    pub fn entries(&self) -> &[MetaEntry] {
        &self.entries
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.entries.len()
    }

    /// Total window positions across rows (should equal `n − w + 1`).
    pub fn total_positions(&self) -> u64 {
        self.entries.iter().map(|e| e.n_positions).sum()
    }

    /// Total intervals across rows.
    pub fn total_intervals(&self) -> u64 {
        self.entries.iter().map(|e| e.n_intervals).sum()
    }

    /// The half-open row-index range `[si, ei)` of rows whose key range
    /// intersects `[lr, ur]` (§V-B: the scan may cover extra mean values at
    /// the boundary rows — never misses any).
    pub fn rows_overlapping(&self, lr: f64, ur: f64) -> (usize, usize) {
        if lr > ur || self.entries.is_empty() {
            return (0, 0);
        }
        // First row with up > lr.
        let si = self.entries.partition_point(|e| e.up <= lr);
        // First row with low > ur.
        let ei = self.entries.partition_point(|e| e.low <= ur);
        (si, ei.max(si))
    }

    /// Estimated `nI(IS)` for a window whose mean range is `[lr, ur]` —
    /// the sum of `nI(V_i)` over the overlapping rows, read from meta only.
    pub fn estimate_intervals(&self, lr: f64, ur: f64) -> u64 {
        let (si, ei) = self.rows_overlapping(lr, ur);
        self.entries[si..ei].iter().map(|e| e.n_intervals).sum()
    }

    /// Estimated `nP(IS)` over the overlapping rows.
    pub fn estimate_positions(&self, lr: f64, ur: f64) -> u64 {
        let (si, ei) = self.rows_overlapping(lr, ur);
        self.entries[si..ei].iter().map(|e| e.n_positions).sum()
    }

    /// Serializes to the compact binary layout stored as the index's meta
    /// row.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 * 4 + self.entries.len() * 32);
        out.extend_from_slice(&META_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.params.window as u64).to_le_bytes());
        out.extend_from_slice(&(self.params.series_len as u64).to_le_bytes());
        out.extend_from_slice(&self.params.width_d.to_le_bytes());
        out.extend_from_slice(&self.params.merge_gamma.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.low.to_le_bytes());
            out.extend_from_slice(&e.up.to_le_bytes());
            out.extend_from_slice(&e.n_intervals.to_le_bytes());
            out.extend_from_slice(&e.n_positions.to_le_bytes());
        }
        out
    }

    /// Parses the binary layout produced by [`MetaTable::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut p = 0usize;
        let take = |p: &mut usize, n: usize| -> Result<&[u8], StorageError> {
            if *p + n > bytes.len() {
                return Err(StorageError::Corrupt("truncated meta table".into()));
            }
            let s = &bytes[*p..*p + n];
            *p += n;
            Ok(s)
        };
        let version = u32::from_le_bytes(take(&mut p, 4)?.try_into().expect("4 bytes"));
        if version != META_VERSION {
            return Err(StorageError::Corrupt(format!("unsupported meta version {version}")));
        }
        let window = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8")) as usize;
        let series_len = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8")) as usize;
        let width_d = f64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8"));
        let merge_gamma = f64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8"));
        let count = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8")) as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let low = f64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8"));
            let up = f64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8"));
            let n_intervals = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8"));
            let n_positions = u64::from_le_bytes(take(&mut p, 8)?.try_into().expect("8"));
            if low >= up {
                return Err(StorageError::Corrupt("meta entry with low ≥ up".into()));
            }
            if let Some(prev) = entries.last() {
                let prev: &MetaEntry = prev;
                if low < prev.up {
                    return Err(StorageError::Corrupt("meta entries overlap".into()));
                }
            }
            entries.push(MetaEntry { low, up, n_intervals, n_positions });
        }
        Ok(Self { params: IndexParams { window, series_len, width_d, merge_gamma }, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetaTable {
        MetaTable::new(
            IndexParams { window: 50, series_len: 10_000, width_d: 0.5, merge_gamma: 0.8 },
            vec![
                MetaEntry { low: -1.0, up: -0.5, n_intervals: 3, n_positions: 10 },
                MetaEntry { low: -0.5, up: 0.5, n_intervals: 5, n_positions: 40 },
                MetaEntry { low: 1.0, up: 1.5, n_intervals: 2, n_positions: 7 }, // gap before
            ],
        )
    }

    #[test]
    fn rows_overlapping_hits_boundaries() {
        let m = sample();
        // Entirely inside the middle row.
        assert_eq!(m.rows_overlapping(-0.2, 0.2), (1, 2));
        // Touching low endpoint (inclusive on row ranges' low side).
        assert_eq!(m.rows_overlapping(-0.5, -0.5), (1, 2));
        // up is exclusive: lr = -0.5 must not include row 0.
        assert_eq!(m.rows_overlapping(-0.5, 0.0).0, 1);
        // Spanning the gap selects both neighbours.
        assert_eq!(m.rows_overlapping(0.4, 1.1), (1, 3));
        // Entirely inside the gap selects nothing.
        assert_eq!(m.rows_overlapping(0.6, 0.9), (2, 2));
        // Covering everything.
        assert_eq!(m.rows_overlapping(-10.0, 10.0), (0, 3));
        // Entirely below / above.
        assert_eq!(m.rows_overlapping(-10.0, -2.0), (0, 0));
        let (si, ei) = m.rows_overlapping(5.0, 6.0);
        assert_eq!(si, ei);
        // Inverted range.
        assert_eq!(m.rows_overlapping(1.0, -1.0), (0, 0));
    }

    #[test]
    fn estimates_sum_over_overlap() {
        let m = sample();
        assert_eq!(m.estimate_intervals(-0.7, 0.0), 3 + 5);
        assert_eq!(m.estimate_positions(-0.7, 0.0), 10 + 40);
        assert_eq!(m.estimate_intervals(0.6, 0.9), 0);
        assert_eq!(m.estimate_intervals(-100.0, 100.0), 10);
    }

    #[test]
    fn totals() {
        let m = sample();
        assert_eq!(m.total_positions(), 57);
        assert_eq!(m.total_intervals(), 10);
        assert_eq!(m.row_count(), 3);
    }

    #[test]
    fn binary_round_trip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = MetaTable::from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let m = sample();
        let bytes = m.to_bytes();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(MetaTable::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let m = sample();
        let mut bytes = m.to_bytes();
        bytes[0] = 99;
        assert!(MetaTable::from_bytes(&bytes).is_err());
    }

    #[test]
    fn overlapping_entries_rejected() {
        let m = MetaTable {
            params: IndexParams { window: 1, series_len: 1, width_d: 0.5, merge_gamma: 0.8 },
            entries: vec![
                MetaEntry { low: 0.0, up: 1.0, n_intervals: 1, n_positions: 1 },
                MetaEntry { low: 0.5, up: 2.0, n_intervals: 1, n_positions: 1 },
            ],
        };
        assert!(MetaTable::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let m = MetaTable::new(
            IndexParams { window: 25, series_len: 0, width_d: 0.5, merge_gamma: 0.8 },
            vec![],
        );
        let back = MetaTable::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.row_count(), 0);
        assert_eq!(back.rows_overlapping(0.0, 1.0), (0, 0));
    }
}
