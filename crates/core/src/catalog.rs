//! Multi-series catalog: many append-only series behind one store.
//!
//! The paper's deployment target (§VII: data-center and IoT monitoring)
//! serves *many* append-only series concurrently from one HBase table.
//! [`Catalog`] is that layer: it owns one [`IndexAppender`] + data buffer
//! per series, persists every series' index rows into **one** physical
//! [`KvStore`] using the [`SeriesId`]-prefixed key encoding
//! ([`KvIndex::append_series_rows`]), and serves mixed query batches
//! through the multi-target [`QueryExecutor`].
//!
//! ## Ingestion model
//!
//! [`Catalog::append`] streams live points through the series'
//! [`IndexAppender`] (rolling-mean bucketing, O(1) per point) and hands
//! them to the backend's durability hook ([`CatalogBackend::
//! persist_points`] — the LSM backend routes them through its WAL +
//! memtable). Appended data is immediately queryable: the next executor
//! (or [`Catalog::execute_batch`]) call re-materializes the shared store
//! from the current appender rows. Materialization is O(total rows) —
//! the cost one bulk index build pays — and *clean* series keep their row
//! caches: their rows and row indexes are unchanged by the rebuild, so
//! only dirty series pay cold probes afterwards.
//!
//! ## Backends
//!
//! [`CatalogBackend`] abstracts the substrate exactly like the paper's
//! "any ordered store" claim: [`MemoryCatalogBackend`] (tests, small
//! data), [`ShardedCatalogBackend`] (the simulated HBase cluster +
//! 1024-point block data rows), and `LsmCatalogBackend` in the
//! `kvmatch-lsm` crate (bulk-ingested SSTables + WAL-durable points).
//!
//! Equivalence guarantee, enforced by randomized tests: a catalog answers
//! every series' queries **bit-identically** to a dedicated single-series
//! [`KvMatcher`](crate::matcher::KvMatcher) over the same data.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvmatch_storage::{
    BlockSeriesStore, KvStore, KvStoreBuilder, MemoryKvStore, MemorySeriesStore, SeriesId,
    SeriesStore, ShardedKvStore, ShardedKvStoreBuilder, ShardingConfig,
};

use kvmatch_storage::memory::MemoryKvStoreBuilder;

use crate::append::IndexAppender;
use crate::build::IndexBuildConfig;
use crate::cache::RowCache;
use crate::exec::{BatchOutput, ExecutorConfig, QueryExecutor};
use crate::index::KvIndex;
use crate::query::{CoreError, QuerySpec};

/// Storage substrate of a [`Catalog`]: where index rows are persisted,
/// where phase-2 verification reads series data from, and (optionally)
/// where freshly ingested points go for durability.
pub trait CatalogBackend {
    /// The physical store hosting every series' index rows.
    type Store: KvStore;
    /// Builder used by each materialization.
    type Builder: KvStoreBuilder<Store = Self::Store>;
    /// Per-series data store serving phase-2 fetches.
    type Data: SeriesStore + Sync;

    /// A fresh builder for one materialization of the whole catalog
    /// (every series' rows stream through it in ascending id order).
    fn index_builder(&mut self) -> Result<Self::Builder, CoreError>;

    /// A data store over the series' current points.
    fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError>;

    /// Durability hook invoked for every appended chunk *before* it is
    /// acknowledged; `start` is the series offset of `points[0]`. The
    /// default is a no-op (volatile backends).
    fn persist_points(
        &mut self,
        series: SeriesId,
        start: u64,
        points: &[f64],
    ) -> Result<(), CoreError> {
        let _ = (series, start, points);
        Ok(())
    }

    /// Invoked after a materialization has committed and every series
    /// view was reopened on the new store — the first point where any
    /// previously-live store is provably superseded. Backends with
    /// on-disk generations reclaim them here. Default: no-op.
    fn retire_superseded(&mut self) -> Result<(), CoreError> {
        Ok(())
    }

    /// Durability hook for a newly registered series' index
    /// configuration, so a restarted catalog can rebuild the series'
    /// appender with the same windowing. Default: no-op (volatile
    /// backends).
    fn persist_series_config(
        &mut self,
        series: SeriesId,
        config: &IndexBuildConfig,
    ) -> Result<(), CoreError> {
        let _ = (series, config);
        Ok(())
    }

    /// Replays everything a previous life persisted: each series'
    /// (id, index configuration, points), in ascending id order.
    /// [`Catalog::open`] feeds these straight back through the appenders
    /// so the caller never replays manually. Default: nothing to recover
    /// (volatile backends).
    fn recover_series(&mut self) -> Result<Vec<(SeriesId, IndexBuildConfig, Vec<f64>)>, CoreError> {
        Ok(Vec::new())
    }
}

/// `BTreeMap`-store backend: everything in memory. The default for tests
/// and moderate data sizes.
#[derive(Debug, Default)]
pub struct MemoryCatalogBackend;

impl CatalogBackend for MemoryCatalogBackend {
    type Store = MemoryKvStore;
    type Builder = MemoryKvStoreBuilder;
    type Data = MemorySeriesStore;

    fn index_builder(&mut self) -> Result<Self::Builder, CoreError> {
        Ok(MemoryKvStoreBuilder::new())
    }

    fn data_store(&mut self, _series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        Ok(MemorySeriesStore::new(xs.to_vec()))
    }
}

/// Simulated-HBase backend: index rows range-partitioned over
/// [`ShardedKvStore`] regions, data served from 1024-point
/// [`BlockSeriesStore`] rows (§VII-B).
#[derive(Clone, Debug)]
pub struct ShardedCatalogBackend {
    /// Cluster shape and modelled per-region scan latency.
    pub sharding: ShardingConfig,
    /// Data block size (the paper's default is 1024).
    pub block: usize,
}

impl Default for ShardedCatalogBackend {
    fn default() -> Self {
        Self { sharding: ShardingConfig::default(), block: BlockSeriesStore::DEFAULT_BLOCK }
    }
}

impl CatalogBackend for ShardedCatalogBackend {
    type Store = ShardedKvStore;
    type Builder = ShardedKvStoreBuilder;
    type Data = BlockSeriesStore;

    fn index_builder(&mut self) -> Result<Self::Builder, CoreError> {
        Ok(ShardedKvStoreBuilder::new(self.sharding.clone()))
    }

    fn data_store(&mut self, _series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        Ok(BlockSeriesStore::from_series(xs, self.block))
    }
}

/// One series' live state inside the catalog.
struct SeriesEntry<B: CatalogBackend> {
    appender: IndexAppender,
    buffer: Vec<f64>,
    index: Option<KvIndex<Arc<B::Store>>>,
    data: Option<B::Data>,
    cache: Arc<RowCache>,
    dirty: bool,
}

/// Ingestion/materialization counters of a [`Catalog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Points accepted by [`Catalog::append`] over the catalog's life.
    pub points_ingested: u64,
    /// Append calls served.
    pub append_calls: u64,
    /// Shared-store materializations performed.
    pub materializations: u64,
    /// Series replayed by [`Catalog::open`] from a durable backend.
    pub series_recovered: u64,
    /// Points those replays restored (not double-counted as ingested —
    /// they were counted in the life that appended them).
    pub points_recovered: u64,
}

/// A set of append-only series sharing one physical index store, served
/// by one batched executor. See the module docs for the model.
pub struct Catalog<B: CatalogBackend> {
    backend: B,
    entries: BTreeMap<u64, SeriesEntry<B>>,
    shared: Option<Arc<B::Store>>,
    exec_config: ExecutorConfig,
    stats: CatalogStats,
}

impl<B: CatalogBackend> Catalog<B> {
    /// An empty catalog over `backend` with default executor settings.
    pub fn new(backend: B) -> Self {
        Self::with_exec_config(backend, ExecutorConfig::default())
    }

    /// An empty catalog with explicit executor settings (verification
    /// threads, per-series cache capacity).
    pub fn with_exec_config(backend: B, exec_config: ExecutorConfig) -> Self {
        Self {
            backend,
            entries: BTreeMap::new(),
            shared: None,
            exec_config,
            stats: CatalogStats::default(),
        }
    }

    /// Opens a catalog over a (possibly pre-existing) durable backend,
    /// **automatically replaying** every series a previous life
    /// persisted — ids, index configurations and WAL-durable points all
    /// come back through [`CatalogBackend::recover_series`] without the
    /// caller touching `recover_points` manually. Over a fresh backend
    /// (or a volatile one) this is simply an empty catalog.
    pub fn open(backend: B) -> Result<Self, CoreError> {
        Self::open_with_exec_config(backend, ExecutorConfig::default())
    }

    /// [`Catalog::open`] with explicit executor settings.
    pub fn open_with_exec_config(
        mut backend: B,
        exec_config: ExecutorConfig,
    ) -> Result<Self, CoreError> {
        let recovered = backend.recover_series()?;
        let mut catalog = Self::with_exec_config(backend, exec_config);
        for (series, config, points) in recovered {
            if catalog.entries.contains_key(&series.raw()) {
                return Err(CoreError::CorruptIndex(format!("backend recovered {series} twice")));
            }
            // Feed the replayed points straight through the appender —
            // the same path live ingestion takes — but skip the persist
            // hooks: the backend already holds these durably.
            let mut entry = SeriesEntry {
                appender: IndexAppender::new(config),
                buffer: Vec::new(),
                index: None,
                data: None,
                cache: Arc::new(catalog.exec_config.new_cache()),
                dirty: true,
            };
            entry.appender.push_chunk(&points);
            catalog.stats.points_recovered += points.len() as u64;
            catalog.stats.series_recovered += 1;
            entry.buffer = points;
            catalog.entries.insert(series.raw(), entry);
        }
        Ok(catalog)
    }

    /// Registers an empty series with its own index configuration
    /// (window width may differ per series). The configuration is handed
    /// to the backend's durability hook before the series exists, so a
    /// restart can rebuild the appender identically. Fails on duplicate
    /// ids.
    pub fn create_series(
        &mut self,
        series: SeriesId,
        config: IndexBuildConfig,
    ) -> Result<(), CoreError> {
        if self.entries.contains_key(&series.raw()) {
            return Err(CoreError::InvalidQuery(format!("{series} already exists")));
        }
        self.backend.persist_series_config(series, &config)?;
        self.entries.insert(
            series.raw(),
            SeriesEntry {
                appender: IndexAppender::new(config),
                buffer: Vec::new(),
                index: None,
                data: None,
                cache: Arc::new(self.exec_config.new_cache()),
                dirty: true,
            },
        );
        Ok(())
    }

    /// Registers a series and bulk-loads its initial points through the
    /// append path (one create + append convenience).
    pub fn create_series_with(
        &mut self,
        series: SeriesId,
        config: IndexBuildConfig,
        points: &[f64],
    ) -> Result<(), CoreError> {
        self.create_series(series, config)?;
        self.append(series, points)
    }

    /// Streams live points into a series: the backend durability hook
    /// first, then rolling-mean index maintenance via the series'
    /// [`IndexAppender`]. The points are visible to the next
    /// executor/batch call. On a durability failure nothing is ingested
    /// — the catalog never serves points it could not persist, and a
    /// retried append does not double-ingest.
    pub fn append(&mut self, series: SeriesId, points: &[f64]) -> Result<(), CoreError> {
        let entry = self.entries.get_mut(&series.raw()).ok_or(CoreError::UnknownSeries(series))?;
        self.stats.append_calls += 1;
        if points.is_empty() {
            return Ok(());
        }
        let start = entry.buffer.len() as u64;
        self.backend.persist_points(series, start, points)?;
        entry.appender.push_chunk(points);
        entry.buffer.extend_from_slice(points);
        entry.dirty = true;
        self.stats.points_ingested += points.len() as u64;
        Ok(())
    }

    /// Registered series, ascending.
    pub fn series(&self) -> Vec<SeriesId> {
        self.entries.keys().map(|&raw| SeriesId::new(raw)).collect()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no series is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current length of one series (including unmaterialized appends).
    pub fn series_len(&self, series: SeriesId) -> Option<usize> {
        self.entries.get(&series.raw()).map(|e| e.buffer.len())
    }

    /// Ingestion counters.
    pub fn stats(&self) -> CatalogStats {
        self.stats
    }

    /// The backend (e.g. to reach its durability store).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// True when some series has appends the shared store has not yet
    /// absorbed.
    pub fn needs_materialize(&self) -> bool {
        self.shared.is_none() || self.entries.values().any(|e| e.dirty)
    }

    /// Rebuilds the shared store from every series' current appender
    /// rows (no-op when nothing changed). Dirty series get fresh data
    /// stores and cleared row caches; clean series' caches stay warm —
    /// their rows and row indexes are unchanged by the rebuild.
    pub fn materialize(&mut self) -> Result<(), CoreError> {
        if !self.needs_materialize() {
            return Ok(());
        }
        let mut builder = self.backend.index_builder()?;
        for (&raw, entry) in &self.entries {
            KvIndex::<B::Store>::append_series_rows(
                &mut builder,
                SeriesId::new(raw),
                entry.appender.rows(),
                entry.appender.config(),
                entry.appender.series_len(),
            )?;
        }
        let store = Arc::new(builder.finish()?);
        for (&raw, entry) in self.entries.iter_mut() {
            entry.index = Some(KvIndex::open_series(Arc::clone(&store), SeriesId::new(raw))?);
            if entry.dirty || entry.data.is_none() {
                entry.data = Some(self.backend.data_store(SeriesId::new(raw), &entry.buffer)?);
            }
            if entry.dirty {
                entry.cache.clear();
                entry.dirty = false;
            }
        }
        self.shared = Some(store);
        self.stats.materializations += 1;
        // Every view now serves the new store; earlier generations are
        // provably superseded and safe for the backend to reclaim.
        self.backend.retire_superseded()?;
        Ok(())
    }

    /// The materialized index view of one series (None before the first
    /// materialization or for unknown ids).
    pub fn index(&self, series: SeriesId) -> Option<&KvIndex<Arc<B::Store>>> {
        self.entries.get(&series.raw()).and_then(|e| e.index.as_ref())
    }

    /// The materialized data store of one series.
    pub fn data(&self, series: SeriesId) -> Option<&B::Data> {
        self.entries.get(&series.raw()).and_then(|e| e.data.as_ref())
    }

    /// The shared physical store (after materialization).
    pub fn shared_store(&self) -> Option<&Arc<B::Store>> {
        self.shared.as_ref()
    }

    /// Materializes (if needed) and binds a batched executor over every
    /// series. The executor borrows the catalog, so run the batches you
    /// need, then drop it before appending again.
    pub fn executor(&mut self) -> Result<QueryExecutor<'_, Arc<B::Store>, B::Data>, CoreError> {
        self.materialize()?;
        self.executor_shared()
    }

    /// Binds a batched executor over the **already-materialized** state
    /// through a shared (`&self`) borrow — the read path of concurrent
    /// serving, where many executor workers hold read guards on one
    /// catalog while a dedicated ingest lane owns the write side. Fails
    /// with [`CoreError::Unmaterialized`] when any series has appends the
    /// shared store has not absorbed: the caller (not this method) must
    /// run [`Catalog::materialize`] under its exclusive borrow first.
    pub fn executor_shared(&self) -> Result<QueryExecutor<'_, Arc<B::Store>, B::Data>, CoreError> {
        if self.needs_materialize() {
            return Err(CoreError::Unmaterialized);
        }
        if self.entries.is_empty() {
            return Err(CoreError::InvalidQuery("catalog has no series".into()));
        }
        let config = self.exec_config;
        QueryExecutor::multi(
            self.entries.iter().map(|(&raw, e)| {
                (
                    SeriesId::new(raw),
                    e.index.as_ref().expect("materialized"),
                    e.data.as_ref().expect("materialized"),
                    Arc::clone(&e.cache),
                )
            }),
            config,
        )
    }

    /// One-shot shared-borrow convenience: bind a read-path executor
    /// ([`Catalog::executor_shared`]) and run `specs`. Safe to call from
    /// many threads at once (per-series row caches are thread-safe), as
    /// long as the catalog is materialized and no appender runs
    /// concurrently — exactly what an `RwLock` read guard provides.
    pub fn execute_batch_shared(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        B::Data: Sync,
    {
        self.executor_shared()?.execute_batch(specs)
    }

    /// One-shot convenience: materialize, bind an executor, run `specs`.
    /// Per-series row caches live in the catalog, so repeated calls keep
    /// sharing probe work across batches.
    pub fn execute_batch(&mut self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        B::Data: Sync,
    {
        self.executor()?.execute_batch(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::KvMatcher;
    use crate::query::QuerySpec;
    use kvmatch_timeseries::generator::composite_series;

    fn ids() -> [SeriesId; 3] {
        [SeriesId::new(1), SeriesId::new(2), SeriesId::new(7)]
    }

    fn seeded(seed: u64, n: usize) -> Vec<f64> {
        composite_series(seed, n)
    }

    #[test]
    fn catalog_serves_each_series_like_a_dedicated_matcher() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let data: Vec<Vec<f64>> = vec![seeded(1, 5_000), seeded(2, 4_000), seeded(3, 6_000)];
        for (id, xs) in ids().iter().zip(&data) {
            cat.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
        }
        let mut specs = Vec::new();
        for (id, xs) in ids().iter().zip(&data) {
            specs.push(QuerySpec::rsm_ed(xs[200..450].to_vec(), 9.0).with_series(*id));
            specs.push(
                QuerySpec::cnsm_dtw(xs[1000..1200].to_vec(), 2.0, 5, 1.5, 3.0).with_series(*id),
            );
        }
        let batch = cat.execute_batch(&specs).unwrap();
        for (spec, out) in specs.iter().zip(&batch.outputs) {
            let i = ids().iter().position(|id| *id == spec.series).unwrap();
            // Dedicated single-series pipeline over the same points. The
            // catalog builds through the append path, so compare against
            // an appender-built index (row boundaries differ from a
            // γ-merged bulk build, results must not).
            let mut app = IndexAppender::new(IndexBuildConfig::new(50));
            app.push_chunk(&data[i]);
            let (solo, _) =
                app.finish_into(kvmatch_storage::memory::MemoryKvStoreBuilder::new()).unwrap();
            let store = MemorySeriesStore::new(data[i].clone());
            let (want, _) = KvMatcher::new(&solo, &store).unwrap().execute(spec).unwrap();
            assert_eq!(out.results, want, "{} diverged from dedicated matcher", spec.series);
        }
        assert_eq!(batch.stats.series_touched, 3);
        assert_eq!(cat.stats().materializations, 1);
    }

    #[test]
    fn streaming_appends_are_immediately_queryable() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(3);
        let xs = seeded(11, 6_000);
        cat.create_series(id, IndexBuildConfig::new(25)).unwrap();
        // Ingest in uneven chunks.
        let mut fed = 0usize;
        for chunk in xs.chunks(613) {
            cat.append(id, chunk).unwrap();
            fed += chunk.len();
            assert_eq!(cat.series_len(id), Some(fed));
        }
        // Query spans the whole stream, including the final chunk.
        let spec = QuerySpec::rsm_ed(xs[5_700..5_950].to_vec(), 1e-9).with_series(id);
        let batch = cat.execute_batch(std::slice::from_ref(&spec)).unwrap();
        assert!(
            batch.outputs[0].results.iter().any(|r| r.offset == 5_700),
            "self-match over freshly appended points not found"
        );
        assert_eq!(cat.stats().points_ingested, xs.len() as u64);

        // Append more; the next batch sees it without explicit rebuild.
        let more = seeded(13, 500);
        cat.append(id, &more).unwrap();
        assert!(cat.needs_materialize());
        let spec2 = QuerySpec::rsm_ed(more[100..350].to_vec(), 1e-9).with_series(id);
        let batch2 = cat.execute_batch(std::slice::from_ref(&spec2)).unwrap();
        assert!(batch2.outputs[0].results.iter().any(|r| r.offset == 6_100));
        assert_eq!(cat.stats().materializations, 2);
    }

    #[test]
    fn clean_series_caches_survive_other_series_appends() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let a = SeriesId::new(1);
        let b = SeriesId::new(2);
        let xa = seeded(21, 4_000);
        let xb = seeded(22, 4_000);
        cat.create_series_with(a, IndexBuildConfig::new(50), &xa).unwrap();
        cat.create_series_with(b, IndexBuildConfig::new(50), &xb).unwrap();
        let spec_a = QuerySpec::rsm_ed(xa[500..750].to_vec(), 6.0).with_series(a);
        cat.execute_batch(std::slice::from_ref(&spec_a)).unwrap();

        // Appending to b re-materializes but must keep a's cache warm.
        cat.append(b, &seeded(23, 300)).unwrap();
        let batch = cat.execute_batch(std::slice::from_ref(&spec_a)).unwrap();
        assert_eq!(batch.stats.store_scans, 0, "a's probes should be fully cache-served");
        assert_eq!(batch.stats.probe_cache_hits, batch.stats.probes);
    }

    #[test]
    fn sharded_backend_matches_memory_backend() {
        let data: Vec<Vec<f64>> = vec![seeded(31, 3_000), seeded(32, 2_500)];
        let sid = [SeriesId::new(4), SeriesId::new(9)];
        let mut mem = Catalog::new(MemoryCatalogBackend);
        let mut sharded = Catalog::new(ShardedCatalogBackend {
            sharding: ShardingConfig { regions: 5, latency_per_scan_ns: 1_000 },
            block: 256,
        });
        for (id, xs) in sid.iter().zip(&data) {
            mem.create_series_with(*id, IndexBuildConfig::new(40), xs).unwrap();
            sharded.create_series_with(*id, IndexBuildConfig::new(40), xs).unwrap();
        }
        let specs: Vec<QuerySpec> = sid
            .iter()
            .zip(&data)
            .map(|(id, xs)| QuerySpec::rsm_dtw(xs[700..900].to_vec(), 4.0, 6).with_series(*id))
            .collect();
        let from_mem = mem.execute_batch(&specs).unwrap();
        let from_sharded = sharded.execute_batch(&specs).unwrap();
        for (x, y) in from_mem.outputs.iter().zip(&from_sharded.outputs) {
            assert_eq!(x.results, y.results, "backends must agree bit-identically");
        }
        // The sharded store really is one multi-series store.
        let store = sharded.shared_store().unwrap();
        assert!(store.row_count() > 0);
        assert_eq!(store.region_row_counts().len(), 5);
    }

    #[test]
    fn unknown_and_duplicate_series_rejected() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(1);
        cat.create_series(id, IndexBuildConfig::new(25)).unwrap();
        assert!(cat.create_series(id, IndexBuildConfig::new(25)).is_err());
        assert!(matches!(cat.append(SeriesId::new(2), &[1.0]), Err(CoreError::UnknownSeries(_))));
        // Batch routed at an unregistered series fails up front.
        cat.append(id, &seeded(41, 500)).unwrap();
        let stray = QuerySpec::rsm_ed(vec![0.0; 30], 1.0).with_series(SeriesId::new(99));
        assert!(matches!(
            cat.execute_batch(std::slice::from_ref(&stray)),
            Err(CoreError::UnknownSeries(_))
        ));
        // Empty catalogs cannot build executors.
        let mut empty = Catalog::new(MemoryCatalogBackend);
        assert!(empty.executor().is_err());
        assert!(empty.is_empty());
    }

    /// The read path: a materialized catalog answers through `&self`
    /// (concurrently), and refuses while appends are pending.
    #[test]
    fn shared_executor_serves_materialized_state_only() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(1);
        let xs = seeded(71, 4_000);
        cat.create_series_with(id, IndexBuildConfig::new(50), &xs).unwrap();
        let spec = QuerySpec::rsm_ed(xs[300..550].to_vec(), 7.0).with_series(id);

        // Dirty catalog: the shared borrow must refuse, not materialize.
        assert!(matches!(
            cat.execute_batch_shared(std::slice::from_ref(&spec)),
            Err(CoreError::Unmaterialized)
        ));
        cat.materialize().unwrap();

        // Clean catalog: &self batches from many threads agree with the
        // exclusive-borrow path.
        let want =
            cat.execute_batch(std::slice::from_ref(&spec)).unwrap().outputs[0].results.clone();
        let cat_ref = &cat;
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let spec = spec.clone();
                let want = want.clone();
                scope.spawn(move || {
                    let batch = cat_ref.execute_batch_shared(std::slice::from_ref(&spec)).unwrap();
                    assert_eq!(batch.outputs[0].results, want);
                });
            }
        });

        // A new append dirties the read path again until materialized.
        cat.append(id, &seeded(72, 200)).unwrap();
        assert!(matches!(cat.executor_shared(), Err(CoreError::Unmaterialized)));
        cat.materialize().unwrap();
        assert!(cat.executor_shared().is_ok());
    }

    #[test]
    fn empty_appends_do_not_dirty_or_ingest() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(5);
        cat.create_series_with(id, IndexBuildConfig::new(25), &seeded(51, 1_000)).unwrap();
        cat.materialize().unwrap();
        assert!(!cat.needs_materialize());
        cat.append(id, &[]).unwrap();
        assert!(!cat.needs_materialize(), "empty append must not force a rebuild");
        let stats = cat.stats();
        assert_eq!(stats.points_ingested, 1_000);
        assert_eq!(stats.append_calls, 2);
    }

    #[test]
    fn per_series_windows_may_differ() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let a = SeriesId::new(1);
        let b = SeriesId::new(2);
        let xa = seeded(61, 3_000);
        let xb = seeded(62, 3_000);
        cat.create_series_with(a, IndexBuildConfig::new(25), &xa).unwrap();
        cat.create_series_with(b, IndexBuildConfig::new(100), &xb).unwrap();
        cat.materialize().unwrap();
        assert_eq!(cat.index(a).unwrap().window(), 25);
        assert_eq!(cat.index(b).unwrap().window(), 100);
        // A query long enough for a but not b fails only when routed at b.
        let q = xa[100..150].to_vec();
        assert!(cat.execute_batch(&[QuerySpec::rsm_ed(q.clone(), 5.0).with_series(a)]).is_ok());
        assert!(matches!(
            cat.execute_batch(&[QuerySpec::rsm_ed(q, 5.0).with_series(b)]),
            Err(CoreError::QueryTooShort { window: 100, .. })
        ));
    }
}
