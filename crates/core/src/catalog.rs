//! Multi-series catalog: immutable per-series index generations behind
//! copy-free reader snapshots.
//!
//! The paper's deployment target (§VII: data-center and IoT monitoring)
//! serves *many* append-only series concurrently from one ordered store,
//! with new points streaming in while subsequence queries keep running.
//! [`Catalog`] is that layer: it owns one [`IndexAppender`] + data buffer
//! per series and seals each series' rows into an immutable
//! [`SeriesGeneration`] — index store, phase-2 data store and row cache,
//! all frozen together. Readers never touch the mutable side: they pin a
//! [`CatalogSnapshot`] (an `Arc` per series generation) and run entire
//! batches against it.
//!
//! ## Ingestion model: pin → build-aside → swap → retire
//!
//! [`Catalog::append`] streams live points through the series'
//! [`IndexAppender`] (rolling-mean bucketing, O(1) per point) and hands
//! them to the backend's durability hook
//! ([`CatalogBackend::persist_points`] — the LSM backend routes them
//! through its WAL + memtable). [`Catalog::materialize`] then seals the
//! next generation of **only the dirty series** off to the side
//! ([`CatalogBackend::seal_generation`]) and publishes it with a pointer
//! swap, so a burst on one series costs O(that series' rows), not
//! O(catalog). Clean series keep their generation (and warm row cache)
//! by pointer; dirty series carry forward the cache entries of rows the
//! new generation left byte-identical ([`RowCache::carry_forward`]).
//! Superseded generations are retired only once provably unreachable —
//! when no snapshot pins them any more.
//!
//! ## Backends
//!
//! [`CatalogBackend`] abstracts the substrate exactly like the paper's
//! "any ordered store" claim: [`MemoryCatalogBackend`] (tests, small
//! data), [`ShardedCatalogBackend`] (the simulated HBase cluster +
//! 1024-point block data rows), and `LsmCatalogBackend` in the
//! `kvmatch-lsm` crate (per-series sorted runs with size-tiered
//! compaction + WAL-durable points).
//!
//! Equivalence guarantee, enforced by randomized tests: a generational
//! catalog answers every series' queries **bit-identically** to a
//! full-rebuild catalog and to a dedicated single-series
//! [`KvMatcher`](crate::matcher::KvMatcher) over the same data.

use std::collections::BTreeMap;
use std::sync::Arc;

use kvmatch_storage::{
    BlockSeriesStore, KvStore, KvStoreBuilder, MemoryKvStore, MemorySeriesStore, SeriesId,
    SeriesStore, ShardedKvStore, ShardedKvStoreBuilder, ShardingConfig,
};

use kvmatch_storage::memory::MemoryKvStoreBuilder;

use crate::append::IndexAppender;
use crate::build::{IndexBuildConfig, IndexRow};
use crate::cache::RowCache;
use crate::exec::{BatchOutput, ExecutorConfig, QueryExecutor};
use crate::index::KvIndex;
use crate::query::{CoreError, QuerySpec};

/// Everything a backend needs to seal one series' next index generation.
pub struct GenerationInput<'a> {
    /// The series being sealed.
    pub series: SeriesId,
    /// Catalog-unique, monotonically increasing generation number.
    pub generation: u64,
    /// The series' index configuration.
    pub config: IndexBuildConfig,
    /// Total series length the rows cover.
    pub series_len: usize,
    /// The complete current row set, sorted by `low`.
    pub rows: &'a [IndexRow],
    /// `Some(k)`: rows `..k` are byte-identical to this series' previous
    /// sealed generation, so a run-structured backend may persist only
    /// the delta `rows[k..]` (plus the meta row, which always changes).
    /// `None`: no prior generation — persist everything.
    pub changed_from: Option<usize>,
}

/// Counters a backend keeps about its own maintenance work (run seals,
/// compactions, retired generations). Volatile backends report zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendMaintenanceStats {
    /// Sorted runs sealed (full or delta).
    pub runs_sealed: u64,
    /// Of those, runs holding only a changed suffix of the row set.
    pub delta_runs_sealed: u64,
    /// Size-tiered compaction folds performed.
    pub compactions: u64,
    /// Generations whose files were reclaimed.
    pub generations_retired: u64,
}

/// Storage substrate of a [`Catalog`]: where sealed index generations
/// live, where phase-2 verification reads series data from, and
/// (optionally) where freshly ingested points go for durability.
pub trait CatalogBackend {
    /// The physical store hosting one sealed generation's index rows.
    type Store: KvStore;
    /// Per-series data store serving phase-2 fetches.
    type Data: SeriesStore + Sync;

    /// Seals one series' current rows into an immutable store — the next
    /// generation of that series. Backends without run-structured
    /// storage simply build a fresh store over the full row set
    /// ([`seal_with_builder`]); run-structured backends may honour
    /// [`GenerationInput::changed_from`] and persist only the delta.
    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError>;

    /// A data store over the series' current points.
    fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError>;

    /// Durability hook invoked for every appended chunk *before* it is
    /// acknowledged; `start` is the series offset of `points[0]`. The
    /// default is a no-op (volatile backends).
    fn persist_points(
        &mut self,
        series: SeriesId,
        start: u64,
        points: &[f64],
    ) -> Result<(), CoreError> {
        let _ = (series, start, points);
        Ok(())
    }

    /// Invoked once a superseded generation is provably unreachable — no
    /// snapshot pins it any more — so backends with on-disk state can
    /// reclaim exactly the files no live generation references. Default:
    /// no-op (volatile backends free memory by dropping the store).
    fn retire_generation(&mut self, series: SeriesId, generation: u64) -> Result<(), CoreError> {
        let _ = (series, generation);
        Ok(())
    }

    /// The backend's maintenance counters. Default: all zero.
    fn maintenance_stats(&self) -> BackendMaintenanceStats {
        BackendMaintenanceStats::default()
    }

    /// Durability hook for a newly registered series' index
    /// configuration, so a restarted catalog can rebuild the series'
    /// appender with the same windowing. Default: no-op (volatile
    /// backends).
    fn persist_series_config(
        &mut self,
        series: SeriesId,
        config: &IndexBuildConfig,
    ) -> Result<(), CoreError> {
        let _ = (series, config);
        Ok(())
    }

    /// Replays everything a previous life persisted: each series'
    /// (id, index configuration, points), in ascending id order.
    /// [`Catalog::open`] feeds these straight back through the appenders
    /// so the caller never replays manually. Default: nothing to recover
    /// (volatile backends).
    fn recover_series(&mut self) -> Result<Vec<(SeriesId, IndexBuildConfig, Vec<f64>)>, CoreError> {
        Ok(Vec::new())
    }

    /// A fresh, independent backend instance for shard-per-core catalog
    /// scale-out ([`Catalog::split_routed`]): each shard owns its own
    /// backend so shards never synchronize on storage. `None` — the
    /// default — declares the backend unshardable (it owns exclusive
    /// durable state, like an LSM directory) and restricts its catalogs
    /// to single-shard serving.
    fn shard_instance(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// Seals a generation through any sorted-append [`KvStoreBuilder`] by
/// writing the full row set — the one-store-per-generation path used by
/// backends without run-structured storage.
pub fn seal_with_builder<Bld: KvStoreBuilder>(
    mut builder: Bld,
    input: &GenerationInput<'_>,
) -> Result<Bld::Store, CoreError> {
    KvIndex::<Bld::Store>::append_series_rows(
        &mut builder,
        input.series,
        input.rows,
        input.config,
        input.series_len,
    )?;
    Ok(builder.finish()?)
}

/// `BTreeMap`-store backend: everything in memory. The default for tests
/// and moderate data sizes.
#[derive(Clone, Debug, Default)]
pub struct MemoryCatalogBackend;

impl CatalogBackend for MemoryCatalogBackend {
    type Store = MemoryKvStore;
    type Data = MemorySeriesStore;

    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError> {
        seal_with_builder(MemoryKvStoreBuilder::new(), &input)
    }

    fn data_store(&mut self, _series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        Ok(MemorySeriesStore::new(xs.to_vec()))
    }

    fn shard_instance(&self) -> Option<Self> {
        Some(MemoryCatalogBackend)
    }
}

/// Simulated-HBase backend: each generation's index rows
/// range-partitioned over [`ShardedKvStore`] regions, data served from
/// 1024-point [`BlockSeriesStore`] rows (§VII-B).
#[derive(Clone, Debug)]
pub struct ShardedCatalogBackend {
    /// Cluster shape and modelled per-region scan latency.
    pub sharding: ShardingConfig,
    /// Data block size (the paper's default is 1024).
    pub block: usize,
}

impl Default for ShardedCatalogBackend {
    fn default() -> Self {
        Self { sharding: ShardingConfig::default(), block: BlockSeriesStore::DEFAULT_BLOCK }
    }
}

impl CatalogBackend for ShardedCatalogBackend {
    type Store = ShardedKvStore;
    type Data = BlockSeriesStore;

    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError> {
        seal_with_builder(ShardedKvStoreBuilder::new(self.sharding.clone()), &input)
    }

    fn data_store(&mut self, _series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        Ok(BlockSeriesStore::from_series(xs, self.block))
    }

    fn shard_instance(&self) -> Option<Self> {
        // The "cluster" is simulated per process: every shard can model
        // its own region set with the same sharding configuration.
        Some(self.clone())
    }
}

/// One immutable, sealed state of one series: index store, opened index
/// view, phase-2 data store, and the row cache warmed for exactly this
/// row set. Readers hold these by `Arc`; nothing in here ever mutates
/// (the cache is interior-mutable but only ever caches rows of *this*
/// generation, which are immutable).
pub struct SeriesGeneration<B: CatalogBackend> {
    generation: u64,
    store: Arc<B::Store>,
    index: KvIndex<Arc<B::Store>>,
    data: B::Data,
    cache: Arc<RowCache>,
}

impl<B: CatalogBackend> SeriesGeneration<B> {
    /// The catalog-unique generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sealed index view.
    pub fn index(&self) -> &KvIndex<Arc<B::Store>> {
        &self.index
    }

    /// The sealed phase-2 data store.
    pub fn data(&self) -> &B::Data {
        &self.data
    }

    /// The physical store behind the index view.
    pub fn store(&self) -> &Arc<B::Store> {
        &self.store
    }

    /// This generation's row cache.
    pub fn cache(&self) -> &Arc<RowCache> {
        &self.cache
    }
}

/// A consistent, immutable view of every series' current generation at
/// one materialization point. Snapshots are what readers execute
/// against: pinning one is an `Arc` clone, queries run without touching
/// the catalog (or any lock), and concurrent ingestion can seal and
/// publish new generations freely — the snapshot keeps serving the state
/// it pinned.
pub struct CatalogSnapshot<B: CatalogBackend> {
    entries: BTreeMap<u64, Arc<SeriesGeneration<B>>>,
    exec_config: ExecutorConfig,
}

impl<B: CatalogBackend> CatalogSnapshot<B> {
    /// Series visible in this snapshot, ascending.
    pub fn series(&self) -> Vec<SeriesId> {
        self.entries.keys().map(|&raw| SeriesId::new(raw)).collect()
    }

    /// Number of series visible.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pinned generation of one series.
    pub fn generation(&self, series: SeriesId) -> Option<&Arc<SeriesGeneration<B>>> {
        self.entries.get(&series.raw())
    }

    /// Binds a batched executor over the pinned generations.
    pub fn executor(&self) -> Result<QueryExecutor<'_, Arc<B::Store>, B::Data>, CoreError> {
        if self.entries.is_empty() {
            return Err(CoreError::InvalidQuery("catalog has no series".into()));
        }
        QueryExecutor::multi(
            self.entries
                .iter()
                .map(|(&raw, g)| (SeriesId::new(raw), g.index(), g.data(), Arc::clone(g.cache()))),
            self.exec_config,
        )
    }

    /// One-shot convenience: bind an executor and run `specs`. Safe from
    /// many threads at once — the snapshot is immutable and the row
    /// caches are thread-safe.
    pub fn execute_batch(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        B::Data: Sync,
    {
        self.executor()?.execute_batch(specs)
    }

    /// True when `series` has a published generation in this snapshot.
    pub fn contains(&self, series: SeriesId) -> bool {
        self.entries.contains_key(&series.raw())
    }
}

/// A consistent, lock-free read surface over materialized series state —
/// the one trait both read paths implement, so callers stop reaching for
/// the deprecated shared-borrow entry points
/// ([`Catalog::executor_shared`]/[`Catalog::execute_batch_shared`]):
///
/// * [`CatalogSnapshot`] — the pinned, immutable view a
///   [`Catalog::snapshot`] hands out;
/// * a serving-layer shard handle (`kvmatch_serve`'s
///   `QueryService::read_view`) — the same snapshot pinned through the
///   shard that owns the series, without touching the catalog lock.
///
/// Everything here executes against immutable generations: no catalog
/// borrow, no lock, safe from any number of threads.
pub trait ReadView {
    /// Series answerable through this view, ascending.
    fn view_series(&self) -> Vec<SeriesId>;

    /// True when `series` has a published generation in this view.
    fn contains_series(&self, series: SeriesId) -> bool;

    /// Executes `specs` as one batch; outputs come back in input order.
    fn execute(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>;
}

impl<B: CatalogBackend> ReadView for CatalogSnapshot<B> {
    fn view_series(&self) -> Vec<SeriesId> {
        self.series()
    }

    fn contains_series(&self, series: SeriesId) -> bool {
        self.contains(series)
    }

    fn execute(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError> {
        self.execute_batch(specs)
    }
}

/// One series' live (mutable) state inside the catalog: the appender and
/// point buffer absorbing ingestion, plus the currently published
/// generation.
struct SeriesEntry<B: CatalogBackend> {
    appender: IndexAppender,
    buffer: Vec<f64>,
    current: Option<Arc<SeriesGeneration<B>>>,
    dirty: bool,
}

/// Ingestion/materialization counters of a [`Catalog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Points accepted by [`Catalog::append`] over the catalog's life.
    pub points_ingested: u64,
    /// Append calls served.
    pub append_calls: u64,
    /// Materializations performed (each seals every dirty series once).
    pub materializations: u64,
    /// Per-series generations sealed across all materializations.
    pub generations_sealed: u64,
    /// Superseded generations reclaimed (unpinned by every snapshot).
    pub generations_retired: u64,
    /// Series replayed by [`Catalog::open`] from a durable backend.
    pub series_recovered: u64,
    /// Points those replays restored (not double-counted as ingested —
    /// they were counted in the life that appended them).
    pub points_recovered: u64,
}

/// A set of append-only series served through immutable per-series
/// generations and copy-free snapshots. See the module docs for the
/// model.
pub struct Catalog<B: CatalogBackend> {
    backend: B,
    entries: BTreeMap<u64, SeriesEntry<B>>,
    snapshot: Option<Arc<CatalogSnapshot<B>>>,
    next_generation: u64,
    /// Superseded generations still awaiting retirement: each is held
    /// until its `Arc` count proves no snapshot pins it any more.
    retired: Vec<(SeriesId, Arc<SeriesGeneration<B>>)>,
    exec_config: ExecutorConfig,
    stats: CatalogStats,
}

impl<B: CatalogBackend> Catalog<B> {
    /// An empty catalog over `backend` with default executor settings.
    pub fn new(backend: B) -> Self {
        Self::with_exec_config(backend, ExecutorConfig::default())
    }

    /// An empty catalog with explicit executor settings (verification
    /// threads, per-series cache capacity).
    pub fn with_exec_config(backend: B, exec_config: ExecutorConfig) -> Self {
        Self {
            backend,
            entries: BTreeMap::new(),
            snapshot: None,
            next_generation: 1,
            retired: Vec::new(),
            exec_config,
            stats: CatalogStats::default(),
        }
    }

    /// Opens a catalog over a (possibly pre-existing) durable backend,
    /// **automatically replaying** every series a previous life
    /// persisted — ids, index configurations and WAL-durable points all
    /// come back through [`CatalogBackend::recover_series`] without the
    /// caller touching `recover_points` manually. Over a fresh backend
    /// (or a volatile one) this is simply an empty catalog.
    pub fn open(backend: B) -> Result<Self, CoreError> {
        Self::open_with_exec_config(backend, ExecutorConfig::default())
    }

    /// [`Catalog::open`] with explicit executor settings.
    pub fn open_with_exec_config(
        mut backend: B,
        exec_config: ExecutorConfig,
    ) -> Result<Self, CoreError> {
        let recovered = backend.recover_series()?;
        let mut catalog = Self::with_exec_config(backend, exec_config);
        for (series, config, points) in recovered {
            if catalog.entries.contains_key(&series.raw()) {
                return Err(CoreError::CorruptIndex(format!("backend recovered {series} twice")));
            }
            // Feed the replayed points straight through the appender —
            // the same path live ingestion takes — but skip the persist
            // hooks: the backend already holds these durably.
            let mut entry = SeriesEntry {
                appender: IndexAppender::new(config),
                buffer: Vec::new(),
                current: None,
                dirty: true,
            };
            entry.appender.push_chunk(&points);
            catalog.stats.points_recovered += points.len() as u64;
            catalog.stats.series_recovered += 1;
            entry.buffer = points;
            catalog.entries.insert(series.raw(), entry);
        }
        Ok(catalog)
    }

    /// Registers an empty series with its own index configuration
    /// (window width may differ per series). The configuration is handed
    /// to the backend's durability hook before the series exists, so a
    /// restart can rebuild the appender identically. Fails on duplicate
    /// ids.
    pub fn create_series(
        &mut self,
        series: SeriesId,
        config: IndexBuildConfig,
    ) -> Result<(), CoreError> {
        if self.entries.contains_key(&series.raw()) {
            return Err(CoreError::InvalidQuery(format!("{series} already exists")));
        }
        self.backend.persist_series_config(series, &config)?;
        self.entries.insert(
            series.raw(),
            SeriesEntry {
                appender: IndexAppender::new(config),
                buffer: Vec::new(),
                current: None,
                dirty: true,
            },
        );
        Ok(())
    }

    /// Registers a series and bulk-loads its initial points through the
    /// append path (one create + append convenience).
    pub fn create_series_with(
        &mut self,
        series: SeriesId,
        config: IndexBuildConfig,
        points: &[f64],
    ) -> Result<(), CoreError> {
        self.create_series(series, config)?;
        self.append(series, points)
    }

    /// Streams live points into a series: the backend durability hook
    /// first, then rolling-mean index maintenance via the series'
    /// [`IndexAppender`]. The points are visible to the next
    /// executor/batch call. On a durability failure nothing is ingested
    /// — the catalog never serves points it could not persist, and a
    /// retried append does not double-ingest.
    pub fn append(&mut self, series: SeriesId, points: &[f64]) -> Result<(), CoreError> {
        let entry = self.entries.get_mut(&series.raw()).ok_or(CoreError::UnknownSeries(series))?;
        self.stats.append_calls += 1;
        if points.is_empty() {
            return Ok(());
        }
        let start = entry.buffer.len() as u64;
        self.backend.persist_points(series, start, points)?;
        entry.appender.push_chunk(points);
        entry.buffer.extend_from_slice(points);
        entry.dirty = true;
        self.stats.points_ingested += points.len() as u64;
        Ok(())
    }

    /// Registered series, ascending.
    pub fn series(&self) -> Vec<SeriesId> {
        self.entries.keys().map(|&raw| SeriesId::new(raw)).collect()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no series is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current length of one series (including unmaterialized appends).
    pub fn series_len(&self, series: SeriesId) -> Option<usize> {
        self.entries.get(&series.raw()).map(|e| e.buffer.len())
    }

    /// Ingestion counters.
    pub fn stats(&self) -> CatalogStats {
        self.stats
    }

    /// The backend (e.g. to reach its durability store or maintenance
    /// counters).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// True when some series has appends no published snapshot has
    /// absorbed yet.
    pub fn needs_materialize(&self) -> bool {
        self.snapshot.is_none() || self.entries.values().any(|e| e.dirty || e.current.is_none())
    }

    /// Seals the next generation of every dirty series off to the side,
    /// then publishes a fresh [`CatalogSnapshot`] with a pointer swap
    /// (no-op when nothing changed). Clean series keep their generation
    /// — and warm row cache — by pointer; dirty series carry forward the
    /// cache entries of rows the new generation left byte-identical.
    /// Superseded generations are retired once no snapshot pins them.
    pub fn materialize(&mut self) -> Result<(), CoreError> {
        if !self.needs_materialize() {
            return Ok(());
        }
        // Build aside: published state stays fully readable throughout.
        let mut fresh: Vec<(u64, Arc<SeriesGeneration<B>>)> = Vec::new();
        for (&raw, entry) in self.entries.iter() {
            if entry.current.is_some() && !entry.dirty {
                continue;
            }
            let series = SeriesId::new(raw);
            let generation = self.next_generation;
            self.next_generation += 1;
            let changed_from = entry.current.is_some().then(|| entry.appender.changed_rows_from());
            let store = Arc::new(self.backend.seal_generation(GenerationInput {
                series,
                generation,
                config: entry.appender.config(),
                series_len: entry.appender.series_len(),
                rows: entry.appender.rows(),
                changed_from,
            })?);
            let index = KvIndex::open_series(Arc::clone(&store), series)?;
            let data = self.backend.data_store(series, &entry.buffer)?;
            let cache = match (&entry.current, changed_from) {
                (Some(cur), Some(k)) => Arc::new(cur.cache.carry_forward(k)),
                _ => Arc::new(self.exec_config.new_cache()),
            };
            fresh.push((raw, Arc::new(SeriesGeneration { generation, store, index, data, cache })));
            self.stats.generations_sealed += 1;
        }
        // Publish: per-series pointer swaps, then one snapshot swap.
        for (raw, generation) in fresh {
            let entry = self.entries.get_mut(&raw).expect("just sealed");
            if let Some(old) = entry.current.replace(generation) {
                self.retired.push((SeriesId::new(raw), old));
            }
            entry.dirty = false;
            entry.appender.mark_sealed();
        }
        let snapshot = CatalogSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(&raw, e)| {
                    (raw, Arc::clone(e.current.as_ref().expect("every series sealed")))
                })
                .collect(),
            exec_config: self.exec_config,
        };
        self.snapshot = Some(Arc::new(snapshot));
        self.stats.materializations += 1;
        self.reclaim()
    }

    /// Retires every superseded generation no longer pinned by any
    /// snapshot; still-pinned ones stay queued for the next pass.
    fn reclaim(&mut self) -> Result<(), CoreError> {
        let mut keep = Vec::new();
        for (series, generation) in self.retired.drain(..) {
            // A strong count of 1 means this queue holds the only
            // reference: no snapshot (ours or a reader's pin) can reach
            // the generation, and since clones only come from snapshots,
            // none can appear later — it is provably unreachable.
            if Arc::strong_count(&generation) == 1 {
                let number = generation.generation;
                drop(generation);
                self.backend.retire_generation(series, number)?;
                self.stats.generations_retired += 1;
            } else {
                keep.push((series, generation));
            }
        }
        self.retired = keep;
        Ok(())
    }

    /// The current published snapshot — the handle readers pin. `None`
    /// before the first materialization.
    pub fn snapshot(&self) -> Option<Arc<CatalogSnapshot<B>>> {
        self.snapshot.clone()
    }

    /// The published index view of one series (None before its first
    /// materialization or for unknown ids).
    pub fn index(&self, series: SeriesId) -> Option<&KvIndex<Arc<B::Store>>> {
        self.entries.get(&series.raw()).and_then(|e| e.current.as_deref()).map(|g| g.index())
    }

    /// The published data store of one series.
    pub fn data(&self, series: SeriesId) -> Option<&B::Data> {
        self.entries.get(&series.raw()).and_then(|e| e.current.as_deref()).map(|g| g.data())
    }

    /// The physical store behind one series' published generation.
    pub fn store(&self, series: SeriesId) -> Option<&Arc<B::Store>> {
        self.entries.get(&series.raw()).and_then(|e| e.current.as_deref()).map(|g| g.store())
    }

    /// Materializes (if needed) and binds a batched executor over every
    /// series. The executor borrows the catalog, so run the batches you
    /// need, then drop it before appending again.
    pub fn executor(&mut self) -> Result<QueryExecutor<'_, Arc<B::Store>, B::Data>, CoreError> {
        self.materialize()?;
        self.bind_shared_executor()
    }

    /// The shared-borrow executor binding behind [`Catalog::executor`]
    /// and the deprecated [`Catalog::executor_shared`].
    fn bind_shared_executor(&self) -> Result<QueryExecutor<'_, Arc<B::Store>, B::Data>, CoreError> {
        if self.needs_materialize() {
            return Err(CoreError::Unmaterialized);
        }
        if self.entries.is_empty() {
            return Err(CoreError::InvalidQuery("catalog has no series".into()));
        }
        QueryExecutor::multi(
            self.entries.iter().map(|(&raw, e)| {
                let generation = e.current.as_deref().expect("materialized");
                (
                    SeriesId::new(raw),
                    generation.index(),
                    generation.data(),
                    Arc::clone(generation.cache()),
                )
            }),
            self.exec_config,
        )
    }

    /// Binds a batched executor over the **already-materialized** state
    /// through a shared (`&self`) borrow — the legacy read path of
    /// concurrent serving under an `RwLock` read guard. Fails with
    /// [`CoreError::Unmaterialized`] when any series has appends no
    /// snapshot has absorbed: the caller (not this method) must run
    /// [`Catalog::materialize`] under its exclusive borrow first.
    #[deprecated(
        since = "0.10.0",
        note = "pin Catalog::snapshot() and read through the ReadView trait — readers then \
                never touch the catalog (or its lock) at all"
    )]
    pub fn executor_shared(&self) -> Result<QueryExecutor<'_, Arc<B::Store>, B::Data>, CoreError> {
        self.bind_shared_executor()
    }

    /// One-shot shared-borrow convenience: bind a read-path executor and
    /// run `specs`, as long as the catalog is materialized and no
    /// appender runs concurrently — exactly what an `RwLock` read guard
    /// provides.
    #[deprecated(
        since = "0.10.0",
        note = "pin Catalog::snapshot() and call ReadView::execute — the snapshot needs no \
                lock and keeps serving while the catalog ingests"
    )]
    pub fn execute_batch_shared(&self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        B::Data: Sync,
    {
        self.bind_shared_executor()?.execute_batch(specs)
    }

    /// One-shot convenience: materialize, bind an executor, run `specs`.
    /// Per-generation row caches survive across calls (clean series keep
    /// their generation), so repeated calls keep sharing probe work.
    pub fn execute_batch(&mut self, specs: &[QuerySpec]) -> Result<BatchOutput, CoreError>
    where
        B::Data: Sync,
    {
        self.executor()?.execute_batch(specs)
    }

    /// Splits the catalog into `shards` independently owned catalogs for
    /// shard-per-core serving: every series entry (appender, buffer and
    /// its current sealed generation, moved by pointer — nothing is
    /// resealed) lands in the catalog `route(series)` names, so the
    /// split is bit-identical to the original. Shard 0 keeps this
    /// catalog's backend; every other shard gets a fresh
    /// [`CatalogBackend::shard_instance`]. Hands the catalog back
    /// unchanged as the `Err` arm when the backend is unshardable (or
    /// `shards` is zero). Each shard's published snapshot starts empty —
    /// materialize once (cheap: republishing moved generations seals
    /// nothing) before serving reads.
    // The `Err` arm IS the unchanged catalog — ownership must round-trip
    // on failure, so its size is the point, not an accident.
    #[allow(clippy::result_large_err)]
    pub fn split_routed(
        mut self,
        shards: usize,
        route: impl Fn(SeriesId) -> usize,
    ) -> Result<Vec<Catalog<B>>, Catalog<B>> {
        if shards == 0 {
            return Err(self);
        }
        if shards == 1 {
            self.snapshot = None;
            return Ok(vec![self]);
        }
        let mut backends = Vec::with_capacity(shards - 1);
        for _ in 1..shards {
            match self.backend.shard_instance() {
                Some(backend) => backends.push(backend),
                None => return Err(self),
            }
        }
        let mut out: Vec<Catalog<B>> = backends
            .into_iter()
            .map(|backend| {
                let mut shard = Catalog::with_exec_config(backend, self.exec_config);
                // Generation numbers stay unique within each shard's own
                // backend; continuing from the parent's counter keeps
                // them monotone across the split as well.
                shard.next_generation = self.next_generation;
                shard
            })
            .collect();
        let entries = std::mem::take(&mut self.entries);
        for (raw, entry) in entries {
            let target = route(SeriesId::new(raw)).min(shards - 1);
            match target {
                0 => drop(self.entries.insert(raw, entry)),
                t => drop(out[t - 1].entries.insert(raw, entry)),
            }
        }
        // Superseded-but-pinned generations follow the series that owns
        // them so each shard retires its own.
        for (series, generation) in std::mem::take(&mut self.retired) {
            let target = route(series).min(shards - 1);
            match target {
                0 => self.retired.push((series, generation)),
                t => out[t - 1].retired.push((series, generation)),
            }
        }
        // The pre-split snapshot spans series this catalog no longer
        // owns; drop it so every shard republishes exactly its own set.
        self.snapshot = None;
        out.insert(0, self);
        Ok(out)
    }

    /// Moves every series of `other` into this catalog — the inverse of
    /// [`Catalog::split_routed`], used when a sharded service shuts down
    /// and hands one catalog back. Generations move by pointer
    /// (bit-identical); `other`'s backend is dropped, its ingest
    /// counters are folded into this catalog's [`CatalogStats`], and the
    /// published snapshot is invalidated (the next materialization
    /// republishes the union without resealing anything). Fails on a
    /// duplicate series id before anything moves, leaving this catalog
    /// unchanged (`other` is consumed either way).
    pub fn absorb(&mut self, other: Catalog<B>) -> Result<(), CoreError> {
        if let Some(&raw) = other.entries.keys().find(|raw| self.entries.contains_key(raw)) {
            return Err(CoreError::InvalidQuery(format!(
                "cannot absorb catalog: {} exists on both sides",
                SeriesId::new(raw)
            )));
        }
        for (raw, entry) in other.entries {
            self.entries.insert(raw, entry);
        }
        self.retired.extend(other.retired);
        self.next_generation = self.next_generation.max(other.next_generation);
        self.stats.points_ingested += other.stats.points_ingested;
        self.stats.append_calls += other.stats.append_calls;
        self.stats.materializations += other.stats.materializations;
        self.stats.generations_sealed += other.stats.generations_sealed;
        self.stats.generations_retired += other.stats.generations_retired;
        self.stats.series_recovered += other.stats.series_recovered;
        self.stats.points_recovered += other.stats.points_recovered;
        self.snapshot = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::KvMatcher;
    use crate::query::QuerySpec;
    use kvmatch_timeseries::generator::composite_series;

    fn ids() -> [SeriesId; 3] {
        [SeriesId::new(1), SeriesId::new(2), SeriesId::new(7)]
    }

    fn seeded(seed: u64, n: usize) -> Vec<f64> {
        composite_series(seed, n)
    }

    #[test]
    fn catalog_serves_each_series_like_a_dedicated_matcher() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let data: Vec<Vec<f64>> = vec![seeded(1, 5_000), seeded(2, 4_000), seeded(3, 6_000)];
        for (id, xs) in ids().iter().zip(&data) {
            cat.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
        }
        let mut specs = Vec::new();
        for (id, xs) in ids().iter().zip(&data) {
            specs.push(QuerySpec::rsm_ed(xs[200..450].to_vec(), 9.0).with_series(*id));
            specs.push(
                QuerySpec::cnsm_dtw(xs[1000..1200].to_vec(), 2.0, 5, 1.5, 3.0).with_series(*id),
            );
        }
        let batch = cat.execute_batch(&specs).unwrap();
        for (spec, out) in specs.iter().zip(&batch.outputs) {
            let i = ids().iter().position(|id| *id == spec.series).unwrap();
            // Dedicated single-series pipeline over the same points. The
            // catalog builds through the append path, so compare against
            // an appender-built index (row boundaries differ from a
            // γ-merged bulk build, results must not).
            let mut app = IndexAppender::new(IndexBuildConfig::new(50));
            app.push_chunk(&data[i]);
            let (solo, _) =
                app.finish_into(kvmatch_storage::memory::MemoryKvStoreBuilder::new()).unwrap();
            let store = MemorySeriesStore::new(data[i].clone());
            let (want, _) = KvMatcher::new(&solo, &store).unwrap().execute(spec).unwrap();
            assert_eq!(out.results, want, "{} diverged from dedicated matcher", spec.series);
        }
        assert_eq!(batch.stats.series_touched, 3);
        assert_eq!(cat.stats().materializations, 1);
        assert_eq!(cat.stats().generations_sealed, 3);
    }

    #[test]
    fn streaming_appends_are_immediately_queryable() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(3);
        let xs = seeded(11, 6_000);
        cat.create_series(id, IndexBuildConfig::new(25)).unwrap();
        // Ingest in uneven chunks.
        let mut fed = 0usize;
        for chunk in xs.chunks(613) {
            cat.append(id, chunk).unwrap();
            fed += chunk.len();
            assert_eq!(cat.series_len(id), Some(fed));
        }
        // Query spans the whole stream, including the final chunk.
        let spec = QuerySpec::rsm_ed(xs[5_700..5_950].to_vec(), 1e-9).with_series(id);
        let batch = cat.execute_batch(std::slice::from_ref(&spec)).unwrap();
        assert!(
            batch.outputs[0].results.iter().any(|r| r.offset == 5_700),
            "self-match over freshly appended points not found"
        );
        assert_eq!(cat.stats().points_ingested, xs.len() as u64);

        // Append more; the next batch sees it without explicit rebuild.
        let more = seeded(13, 500);
        cat.append(id, &more).unwrap();
        assert!(cat.needs_materialize());
        let spec2 = QuerySpec::rsm_ed(more[100..350].to_vec(), 1e-9).with_series(id);
        let batch2 = cat.execute_batch(std::slice::from_ref(&spec2)).unwrap();
        assert!(batch2.outputs[0].results.iter().any(|r| r.offset == 6_100));
        assert_eq!(cat.stats().materializations, 2);
    }

    #[test]
    fn clean_series_caches_survive_other_series_appends() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let a = SeriesId::new(1);
        let b = SeriesId::new(2);
        let xa = seeded(21, 4_000);
        let xb = seeded(22, 4_000);
        cat.create_series_with(a, IndexBuildConfig::new(50), &xa).unwrap();
        cat.create_series_with(b, IndexBuildConfig::new(50), &xb).unwrap();
        let spec_a = QuerySpec::rsm_ed(xa[500..750].to_vec(), 6.0).with_series(a);
        cat.execute_batch(std::slice::from_ref(&spec_a)).unwrap();

        // Appending to b seals b's next generation only: a keeps its
        // generation (and warm cache) by pointer.
        let a_before = Arc::clone(cat.snapshot().unwrap().generation(a).unwrap());
        cat.append(b, &seeded(23, 300)).unwrap();
        let batch = cat.execute_batch(std::slice::from_ref(&spec_a)).unwrap();
        assert_eq!(batch.stats.store_scans, 0, "a's probes should be fully cache-served");
        assert_eq!(batch.stats.probe_cache_hits, batch.stats.probes);
        let snap = cat.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&a_before, snap.generation(a).unwrap()),
            "clean series must keep its generation by pointer"
        );
        assert_eq!(cat.stats().generations_sealed, 3, "initial a+b, then b once more");
    }

    #[test]
    fn same_series_append_carries_unsuperseded_cache_rows() {
        // Base data bounded in [0, 1]: every window mean sits low.
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(4);
        let base: Vec<f64> = (0..4_000).map(|i| (i % 100) as f64 / 100.0).collect();
        cat.create_series_with(id, IndexBuildConfig::new(50), &base).unwrap();
        let spec = QuerySpec::rsm_ed(base[500..750].to_vec(), 0.5).with_series(id);
        cat.execute_batch(std::slice::from_ref(&spec)).unwrap();

        // Appended points push every new window mean far above the old
        // rows, so the changed suffix starts past every row the earlier
        // probes touched — those cache entries must carry forward.
        let burst = vec![1_000.0; 400];
        cat.append(id, &burst).unwrap();
        let batch = cat.execute_batch(std::slice::from_ref(&spec)).unwrap();
        assert_eq!(
            batch.stats.store_scans, 0,
            "probes below the changed suffix must stay cache-served"
        );
        // And the merged answer still matches a dedicated matcher over
        // the full series.
        let mut full = base.clone();
        full.extend_from_slice(&burst);
        let mut app = IndexAppender::new(IndexBuildConfig::new(50));
        app.push_chunk(&full);
        let (solo, _) =
            app.finish_into(kvmatch_storage::memory::MemoryKvStoreBuilder::new()).unwrap();
        let store = MemorySeriesStore::new(full);
        let (want, _) = KvMatcher::new(&solo, &store).unwrap().execute(&spec).unwrap();
        assert_eq!(batch.outputs[0].results, want);
    }

    #[test]
    fn snapshots_pin_consistent_state_across_appends() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(6);
        let xs = seeded(81, 3_000);
        cat.create_series_with(id, IndexBuildConfig::new(25), &xs).unwrap();
        cat.materialize().unwrap();
        let pinned = cat.snapshot().unwrap();
        let spec = QuerySpec::rsm_ed(xs[100..300].to_vec(), 3.0).with_series(id);
        let before =
            pinned.execute_batch(std::slice::from_ref(&spec)).unwrap().outputs[0].results.clone();

        // Ingest + publish a new generation; the pinned snapshot must
        // keep serving exactly the state it pinned.
        let more = seeded(82, 800);
        cat.append(id, &more).unwrap();
        cat.materialize().unwrap();
        let again =
            pinned.execute_batch(std::slice::from_ref(&spec)).unwrap().outputs[0].results.clone();
        assert_eq!(before, again, "pinned snapshot drifted after a publish");

        // The new snapshot sees the appended points.
        let tail = QuerySpec::rsm_ed(more[200..500].to_vec(), 1e-9).with_series(id);
        let fresh = cat.snapshot().unwrap();
        assert!(fresh.execute_batch(std::slice::from_ref(&tail)).unwrap().outputs[0]
            .results
            .iter()
            .any(|r| r.offset == 3_200));
        // ... while the pinned one, over shorter data, must not.
        assert!(!pinned.execute_batch(std::slice::from_ref(&tail)).unwrap().outputs[0]
            .results
            .iter()
            .any(|r| r.offset == 3_200));

        // The superseded generation is retired only once unpinned.
        assert_eq!(cat.stats().generations_retired, 0);
        drop(pinned);
        drop(before);
        cat.append(id, &seeded(83, 100)).unwrap();
        cat.materialize().unwrap();
        assert!(cat.stats().generations_retired >= 1, "unpinned generations must retire");
    }

    /// The tentpole equivalence guarantee: interleaved appends +
    /// incremental (delta-tracked) materializations answer queries
    /// bit-identically to a catalog built in one shot over the final
    /// data — for both volatile backends.
    #[test]
    fn generational_materialize_matches_full_rebuild() {
        fn check<B: CatalogBackend + Clone>(backend: B)
        where
            B::Data: Sync,
        {
            let a = SeriesId::new(1);
            let b = SeriesId::new(2);
            let xa = seeded(91, 3_000);
            let xb = seeded(92, 2_500);

            let mut incremental = Catalog::new(backend.clone());
            incremental.create_series(a, IndexBuildConfig::new(40)).unwrap();
            incremental.create_series(b, IndexBuildConfig::new(40)).unwrap();
            // Interleave uneven chunks with materializations so delta
            // tracking, carry-forward and generation reuse all engage.
            for (i, chunk) in xa.chunks(700).enumerate() {
                incremental.append(a, chunk).unwrap();
                if i % 2 == 0 {
                    incremental.materialize().unwrap();
                }
            }
            for chunk in xb.chunks(450) {
                incremental.append(b, chunk).unwrap();
                incremental.materialize().unwrap();
            }
            incremental.materialize().unwrap();

            let mut oneshot = Catalog::new(backend);
            oneshot.create_series_with(a, IndexBuildConfig::new(40), &xa).unwrap();
            oneshot.create_series_with(b, IndexBuildConfig::new(40), &xb).unwrap();

            let specs = vec![
                QuerySpec::rsm_ed(xa[200..420].to_vec(), 8.0).with_series(a),
                QuerySpec::rsm_dtw(xa[2_600..2_800].to_vec(), 4.0, 6).with_series(a),
                QuerySpec::cnsm_ed(xb[900..1_100].to_vec(), 2.0, 1.5, 3.0).with_series(b),
                QuerySpec::rsm_ed(xb[2_300..2_480].to_vec(), 1e-9).with_series(b),
            ];
            let from_incremental = incremental.execute_batch(&specs).unwrap();
            let from_oneshot = oneshot.execute_batch(&specs).unwrap();
            for (x, y) in from_incremental.outputs.iter().zip(&from_oneshot.outputs) {
                assert_eq!(x.results, y.results, "generational answer diverged from full rebuild");
            }
            assert!(incremental.stats().generations_sealed > 2);
        }
        check(MemoryCatalogBackend);
        check(ShardedCatalogBackend {
            sharding: ShardingConfig { regions: 3, latency_per_scan_ns: 0 },
            block: 512,
        });
    }

    #[test]
    fn sharded_backend_matches_memory_backend() {
        let data: Vec<Vec<f64>> = vec![seeded(31, 3_000), seeded(32, 2_500)];
        let sid = [SeriesId::new(4), SeriesId::new(9)];
        let mut mem = Catalog::new(MemoryCatalogBackend);
        let mut sharded = Catalog::new(ShardedCatalogBackend {
            sharding: ShardingConfig { regions: 5, latency_per_scan_ns: 1_000 },
            block: 256,
        });
        for (id, xs) in sid.iter().zip(&data) {
            mem.create_series_with(*id, IndexBuildConfig::new(40), xs).unwrap();
            sharded.create_series_with(*id, IndexBuildConfig::new(40), xs).unwrap();
        }
        let specs: Vec<QuerySpec> = sid
            .iter()
            .zip(&data)
            .map(|(id, xs)| QuerySpec::rsm_dtw(xs[700..900].to_vec(), 4.0, 6).with_series(*id))
            .collect();
        let from_mem = mem.execute_batch(&specs).unwrap();
        let from_sharded = sharded.execute_batch(&specs).unwrap();
        for (x, y) in from_mem.outputs.iter().zip(&from_sharded.outputs) {
            assert_eq!(x.results, y.results, "backends must agree bit-identically");
        }
        // Each sealed generation really is a range-partitioned store.
        let store = sharded.store(sid[0]).unwrap();
        assert!(store.row_count() > 0);
        assert_eq!(store.region_row_counts().len(), 5);
    }

    #[test]
    fn unknown_and_duplicate_series_rejected() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(1);
        cat.create_series(id, IndexBuildConfig::new(25)).unwrap();
        assert!(cat.create_series(id, IndexBuildConfig::new(25)).is_err());
        assert!(matches!(cat.append(SeriesId::new(2), &[1.0]), Err(CoreError::UnknownSeries(_))));
        // Batch routed at an unregistered series fails up front.
        cat.append(id, &seeded(41, 500)).unwrap();
        let stray = QuerySpec::rsm_ed(vec![0.0; 30], 1.0).with_series(SeriesId::new(99));
        assert!(matches!(
            cat.execute_batch(std::slice::from_ref(&stray)),
            Err(CoreError::UnknownSeries(_))
        ));
        // Empty catalogs cannot build executors.
        let mut empty = Catalog::new(MemoryCatalogBackend);
        assert!(empty.executor().is_err());
        assert!(empty.is_empty());
    }

    /// The legacy read path: a materialized catalog answers through
    /// `&self` (concurrently), and refuses while appends are pending.
    /// Deprecated in favor of [`ReadView`] over a pinned snapshot, but
    /// the contract holds as long as the entry points exist.
    #[allow(deprecated)]
    #[test]
    fn shared_executor_serves_materialized_state_only() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(1);
        let xs = seeded(71, 4_000);
        cat.create_series_with(id, IndexBuildConfig::new(50), &xs).unwrap();
        let spec = QuerySpec::rsm_ed(xs[300..550].to_vec(), 7.0).with_series(id);

        // Dirty catalog: the shared borrow must refuse, not materialize.
        assert!(matches!(
            cat.execute_batch_shared(std::slice::from_ref(&spec)),
            Err(CoreError::Unmaterialized)
        ));
        cat.materialize().unwrap();

        // Clean catalog: &self batches from many threads agree with the
        // exclusive-borrow path.
        let want =
            cat.execute_batch(std::slice::from_ref(&spec)).unwrap().outputs[0].results.clone();
        let cat_ref = &cat;
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let spec = spec.clone();
                let want = want.clone();
                scope.spawn(move || {
                    let batch = cat_ref.execute_batch_shared(std::slice::from_ref(&spec)).unwrap();
                    assert_eq!(batch.outputs[0].results, want);
                });
            }
        });

        // A new append dirties the read path again until materialized.
        cat.append(id, &seeded(72, 200)).unwrap();
        assert!(matches!(cat.executor_shared(), Err(CoreError::Unmaterialized)));
        cat.materialize().unwrap();
        assert!(cat.executor_shared().is_ok());
    }

    #[test]
    fn empty_appends_do_not_dirty_or_ingest() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let id = SeriesId::new(5);
        cat.create_series_with(id, IndexBuildConfig::new(25), &seeded(51, 1_000)).unwrap();
        cat.materialize().unwrap();
        assert!(!cat.needs_materialize());
        cat.append(id, &[]).unwrap();
        assert!(!cat.needs_materialize(), "empty append must not force a rebuild");
        let stats = cat.stats();
        assert_eq!(stats.points_ingested, 1_000);
        assert_eq!(stats.append_calls, 2);
    }

    #[test]
    fn per_series_windows_may_differ() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let a = SeriesId::new(1);
        let b = SeriesId::new(2);
        let xa = seeded(61, 3_000);
        let xb = seeded(62, 3_000);
        cat.create_series_with(a, IndexBuildConfig::new(25), &xa).unwrap();
        cat.create_series_with(b, IndexBuildConfig::new(100), &xb).unwrap();
        cat.materialize().unwrap();
        assert_eq!(cat.index(a).unwrap().window(), 25);
        assert_eq!(cat.index(b).unwrap().window(), 100);
        // A query long enough for a but not b fails only when routed at b.
        let q = xa[100..150].to_vec();
        assert!(cat.execute_batch(&[QuerySpec::rsm_ed(q.clone(), 5.0).with_series(a)]).is_ok());
        assert!(matches!(
            cat.execute_batch(&[QuerySpec::rsm_ed(q, 5.0).with_series(b)]),
            Err(CoreError::QueryTooShort { window: 100, .. })
        ));
    }

    /// Runs a batch through any [`ReadView`] — the generic read path the
    /// serving layer's shard handles share with plain snapshots.
    fn through_read_view<V: ReadView>(view: &V, specs: &[QuerySpec]) -> BatchOutput {
        view.execute(specs).unwrap()
    }

    #[test]
    fn split_shards_serve_bit_identically_and_absorb_restores_the_union() {
        let mut cat = Catalog::new(MemoryCatalogBackend);
        let raws = [1u64, 2, 3, 6, 11];
        let mut specs = Vec::new();
        for (i, &raw) in raws.iter().enumerate() {
            let xs = seeded(80 + i as u64, 3_000 + 500 * i);
            cat.create_series_with(SeriesId::new(raw), IndexBuildConfig::new(50), &xs).unwrap();
            specs.push(
                QuerySpec::rsm_ed(xs[120..320].to_vec(), 9.0).with_series(SeriesId::new(raw)),
            );
        }
        let want = cat.execute_batch(&specs).unwrap();
        let ingested = cat.stats().points_ingested;

        let route = |id: SeriesId| (id.raw() % 4) as usize;
        let shards = match cat.split_routed(4, route) {
            Ok(shards) => shards,
            Err(_) => panic!("memory backend is shardable"),
        };
        assert_eq!(shards.len(), 4);
        let mut merged = None;
        for (idx, mut shard) in shards.into_iter().enumerate() {
            // Republishing moved generations seals nothing new.
            let sealed_before = shard.stats().generations_sealed;
            shard.materialize().unwrap();
            assert_eq!(shard.stats().generations_sealed, sealed_before);
            let snap = shard.snapshot().unwrap();
            let owned: Vec<u64> =
                raws.iter().copied().filter(|&raw| route(SeriesId::new(raw)) == idx).collect();
            assert_eq!(snap.view_series().iter().map(|s| s.raw()).collect::<Vec<_>>(), owned);
            // Each shard answers its own series bit-identically to the
            // pre-split catalog, through the ReadView trait.
            for (&raw, (spec, want)) in raws.iter().zip(specs.iter().zip(&want.outputs)) {
                assert_eq!(snap.contains_series(SeriesId::new(raw)), owned.contains(&raw));
                if owned.contains(&raw) {
                    let out = through_read_view(&*snap, std::slice::from_ref(spec));
                    assert_eq!(out.outputs[0].results, want.results);
                }
            }
            match &mut merged {
                None => merged = Some(shard),
                Some(base) => base.absorb(shard).unwrap(),
            }
        }
        let mut merged = merged.unwrap();
        assert_eq!(merged.len(), raws.len());
        assert_eq!(merged.stats().points_ingested, ingested);
        assert_eq!(merged.execute_batch(&specs).unwrap().outputs.len(), want.outputs.len());
        for (got, want) in merged.execute_batch(&specs).unwrap().outputs.iter().zip(&want.outputs) {
            assert_eq!(got.results, want.results);
        }
    }

    #[test]
    fn absorb_refuses_duplicate_series() {
        let mut a = Catalog::new(MemoryCatalogBackend);
        let mut b = Catalog::new(MemoryCatalogBackend);
        a.create_series_with(SeriesId::new(7), IndexBuildConfig::new(25), &seeded(1, 500)).unwrap();
        b.create_series_with(SeriesId::new(7), IndexBuildConfig::new(25), &seeded(2, 500)).unwrap();
        assert!(a.absorb(b).is_err());
        assert_eq!(a.len(), 1, "failed absorb leaves the receiver unchanged");
    }

    #[test]
    fn split_hands_back_unshardable_catalogs_intact() {
        /// A memory backend that *declines* shard scale-out — the shape
        /// of backends owning exclusive durable state.
        struct Unshardable(MemoryCatalogBackend);
        impl CatalogBackend for Unshardable {
            type Store = MemoryKvStore;
            type Data = MemorySeriesStore;
            fn seal_generation(
                &mut self,
                input: GenerationInput<'_>,
            ) -> Result<Self::Store, CoreError> {
                self.0.seal_generation(input)
            }
            fn data_store(
                &mut self,
                series: SeriesId,
                xs: &[f64],
            ) -> Result<Self::Data, CoreError> {
                self.0.data_store(series, xs)
            }
        }

        let mut cat = Catalog::new(Unshardable(MemoryCatalogBackend));
        cat.create_series_with(SeriesId::new(3), IndexBuildConfig::new(25), &seeded(9, 800))
            .unwrap();
        let cat = match cat.split_routed(4, |id| (id.raw() % 4) as usize) {
            Err(cat) => cat,
            Ok(_) => panic!("an unshardable backend must refuse the split"),
        };
        assert_eq!(cat.len(), 1, "refused split hands the catalog back intact");
        // shards = 0 is refused regardless of the backend.
        assert!(Catalog::new(MemoryCatalogBackend).split_routed(0, |_| 0).is_err());
    }
}
