//! Synthetic time-series generation (paper §VIII-A.2).
//!
//! The paper's scalability experiments generate data by repeatedly choosing
//! a segment *type* — random walk, Gaussian, or mixed sine — a segment
//! length, and type parameters, then appending the generated segment until
//! the target length is reached. [`CompositeGenerator`] reproduces exactly
//! that construction; the three segment kinds are also exposed individually.
//!
//! `rand_distr` is not available offline, so Gaussian samples are produced
//! with a Box–Muller transform (see [`gaussian_pair`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a pair of independent standard-normal samples via Box–Muller.
pub fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    // Avoid ln(0): u1 in (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Draws one standard-normal sample (discards the pair's second member).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    gaussian_pair(rng).0
}

/// The three segment types of §VIII-A.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Random walk: start in `[-5, 5]`, step in `[-1, 1]`.
    RandomWalk,
    /// I.i.d. Gaussian: mean in `[-5, 5]`, std in `[0, 2]`.
    Gaussian,
    /// Mixture of sine waves: period, amplitude in `[2, 10]`, mean in `[-5, 5]`.
    MixedSine,
}

/// Configuration of the composite generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Minimum length of one segment before a new regime is drawn.
    pub min_segment: usize,
    /// Maximum length of one segment.
    pub max_segment: usize,
    /// Number of sine components mixed in a `MixedSine` segment.
    pub sine_components: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self { min_segment: 512, max_segment: 4096, sine_components: 3 }
    }
}

/// Regime-switching composite generator (the paper's synthetic workload).
///
/// ```
/// use kvmatch_timeseries::CompositeGenerator;
/// let xs = CompositeGenerator::with_seed(42).generate(10_000);
/// assert_eq!(xs.len(), 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct CompositeGenerator {
    rng: StdRng,
    config: GeneratorConfig,
}

impl CompositeGenerator {
    /// Deterministic generator from a seed, default configuration.
    pub fn with_seed(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), config: GeneratorConfig::default() }
    }

    /// Deterministic generator with a custom configuration.
    pub fn with_config(seed: u64, config: GeneratorConfig) -> Self {
        assert!(
            config.min_segment > 0 && config.min_segment <= config.max_segment,
            "invalid segment length bounds"
        );
        assert!(config.sine_components > 0, "need at least one sine component");
        Self { rng: StdRng::seed_from_u64(seed), config }
    }

    /// Generates exactly `n` samples.
    pub fn generate(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let remaining = n - out.len();
            let seg_len = self
                .rng
                .random_range(self.config.min_segment..=self.config.max_segment)
                .min(remaining);
            let kind = match self.rng.random_range(0..3u32) {
                0 => SegmentKind::RandomWalk,
                1 => SegmentKind::Gaussian,
                _ => SegmentKind::MixedSine,
            };
            self.append_segment(kind, seg_len, &mut out);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Generates a single segment of the given kind (mainly for tests and
    /// the domain examples).
    pub fn generate_segment(&mut self, kind: SegmentKind, len: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        self.append_segment(kind, len, &mut out);
        out
    }

    fn append_segment(&mut self, kind: SegmentKind, len: usize, out: &mut Vec<f64>) {
        match kind {
            SegmentKind::RandomWalk => {
                let mut v = self.rng.random_range(-5.0..5.0);
                for _ in 0..len {
                    v += self.rng.random_range(-1.0..1.0);
                    out.push(v);
                }
            }
            SegmentKind::Gaussian => {
                let mu = self.rng.random_range(-5.0..5.0);
                let sigma = self.rng.random_range(0.0..2.0);
                for _ in 0..len {
                    out.push(mu + sigma * gaussian(&mut self.rng));
                }
            }
            SegmentKind::MixedSine => {
                let k = self.config.sine_components;
                let mut periods = Vec::with_capacity(k);
                let mut amps = Vec::with_capacity(k);
                let mut phases = Vec::with_capacity(k);
                for _ in 0..k {
                    periods.push(self.rng.random_range(2.0..10.0));
                    amps.push(self.rng.random_range(2.0..10.0));
                    phases.push(self.rng.random_range(0.0..std::f64::consts::TAU));
                }
                let mean = self.rng.random_range(-5.0..5.0);
                for t in 0..len {
                    let mut v = mean;
                    for i in 0..k {
                        v += amps[i]
                            * ((t as f64 * std::f64::consts::TAU / periods[i]) + phases[i]).sin()
                            / k as f64;
                    }
                    out.push(v);
                }
            }
        }
    }
}

/// Convenience: a seeded composite series of length `n`.
pub fn composite_series(seed: u64, n: usize) -> Vec<f64> {
    CompositeGenerator::with_seed(seed).generate(n)
}

/// Convenience: a pure random walk of length `n` (smooth mean structure,
/// useful for index-locality tests).
pub fn random_walk(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = rng.random_range(-5.0..5.0);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        v += rng.random_range(-1.0..1.0);
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean_std;

    #[test]
    fn generates_exact_length() {
        for n in [0, 1, 100, 5000] {
            assert_eq!(composite_series(1, n).len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(composite_series(7, 2048), composite_series(7, 2048));
        assert_ne!(composite_series(7, 2048), composite_series(8, 2048));
    }

    #[test]
    fn gaussian_segment_has_requested_moments() {
        let mut g = CompositeGenerator::with_seed(3);
        // Draw many segments and check each stays within loose bounds around
        // its regime parameters (we can't observe the parameters directly,
        // but std must stay below ~2 + noise and mean within [-6, 6]).
        for _ in 0..10 {
            let seg = g.generate_segment(SegmentKind::Gaussian, 4000);
            let (mu, sigma) = mean_std(&seg);
            assert!(mu.abs() < 6.0, "mean {mu}");
            assert!(sigma < 2.5, "std {sigma}");
        }
    }

    #[test]
    fn random_walk_steps_bounded() {
        let xs = random_walk(11, 10_000);
        for w in xs.windows(2) {
            assert!((w[1] - w[0]).abs() <= 1.0);
        }
    }

    #[test]
    fn mixed_sine_is_bounded() {
        let mut g = CompositeGenerator::with_seed(5);
        let seg = g.generate_segment(SegmentKind::MixedSine, 1000);
        // mean in [-5,5], total amplitude ≤ 10 ⇒ |v| ≤ 15.
        assert!(seg.iter().all(|v| v.abs() <= 15.0 + 1e-9));
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let (mu, sigma) = mean_std(&xs);
        assert!(mu.abs() < 0.05, "mean {mu}");
        assert!((sigma - 1.0).abs() < 0.05, "std {sigma}");
    }

    #[test]
    #[should_panic(expected = "invalid segment length bounds")]
    fn bad_config_panics() {
        let _ = CompositeGenerator::with_config(
            0,
            GeneratorConfig { min_segment: 10, max_segment: 5, sine_components: 1 },
        );
    }
}
