//! The [`TimeSeries`] container.

use std::fmt;
use std::ops::Index;

/// An owned, in-memory time series of `f64` samples.
///
/// This is a thin wrapper around `Vec<f64>` that carries the domain
/// vocabulary of the paper: subsequences `X(i, l)`, length `n = |X|`, and
/// z-normalization. Large on-disk series are accessed through
/// `kvmatch-storage`'s `SeriesStore` instead; `TimeSeries` is used for
/// queries, for moderate data sets, and as the decoded form of fetched
/// candidate ranges.
#[derive(Clone, PartialEq, Default)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw samples.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// An empty series.
    pub fn empty() -> Self {
        Self { values: Vec::new() }
    }

    /// Length `n = |X|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the series contains no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw samples.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning the raw samples.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The subsequence `X(i, l)` = `x[i..i+l]`, 0-based.
    ///
    /// Returns `None` when the range exceeds the series bounds.
    pub fn subsequence(&self, offset: usize, len: usize) -> Option<&[f64]> {
        let end = offset.checked_add(len)?;
        self.values.get(offset..end)
    }

    /// Number of length-`l` subsequences, `n - l + 1` (0 when `l > n` or `l == 0`).
    pub fn num_subsequences(&self, l: usize) -> usize {
        if l == 0 || l > self.len() {
            0
        } else {
            self.len() - l + 1
        }
    }

    /// Mean value `µ` of the whole series. Returns 0.0 for an empty series.
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.values)
    }

    /// Population standard deviation `σ` of the whole series.
    pub fn std(&self) -> f64 {
        crate::stats::std(&self.values)
    }

    /// The z-normalized series `X̂ = (x - µ) / σ`.
    ///
    /// A constant series (σ = 0) normalizes to all-zeros, matching the UCR
    /// Suite convention.
    pub fn normalized(&self) -> TimeSeries {
        let mut out = self.values.clone();
        crate::stats::normalize_in_place(&mut out);
        TimeSeries::new(out)
    }

    /// Appends a sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Appends all samples of `other`.
    pub fn extend_from(&mut self, other: &[f64]) {
        self.values.extend_from_slice(other);
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.values.iter()
    }

    /// Global min and max; `None` for an empty series.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        if self.values.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// The value range `max - min`, used for the paper's relative offset
    /// threshold `β = (max(X) − min(X)) · β′%` (§VIII-D).
    pub fn value_range(&self) -> f64 {
        self.min_max().map(|(lo, hi)| hi - lo).unwrap_or(0.0)
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        Self::new(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        Self::new(values.to_vec())
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "TimeSeries({:?})", self.values)
        } else {
            write!(f, "TimeSeries(len={}, head={:?}..)", self.len(), &self.values[..4])
        }
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequence_basics() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.subsequence(0, 2), Some(&[1.0, 2.0][..]));
        assert_eq!(ts.subsequence(2, 2), Some(&[3.0, 4.0][..]));
        assert_eq!(ts.subsequence(3, 2), None);
        assert_eq!(ts.subsequence(0, 5), None);
        assert_eq!(ts.subsequence(4, 0), Some(&[][..]));
    }

    #[test]
    fn subsequence_overflow_is_none() {
        let ts = TimeSeries::new(vec![0.0; 4]);
        assert_eq!(ts.subsequence(usize::MAX, 2), None);
    }

    #[test]
    fn num_subsequences_counts() {
        let ts = TimeSeries::new(vec![0.0; 10]);
        assert_eq!(ts.num_subsequences(1), 10);
        assert_eq!(ts.num_subsequences(10), 1);
        assert_eq!(ts.num_subsequences(11), 0);
        assert_eq!(ts.num_subsequences(0), 0);
    }

    #[test]
    fn mean_and_std() {
        let ts = TimeSeries::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ts.mean() - 5.0).abs() < 1e-12);
        assert!((ts.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_has_zero_mean_unit_std() {
        let ts = TimeSeries::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let nz = ts.normalized();
        assert!(nz.mean().abs() < 1e-12);
        assert!((nz.std() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_constant_series_is_zero() {
        let ts = TimeSeries::new(vec![5.0; 16]);
        let nz = ts.normalized();
        assert!(nz.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn min_max_and_range() {
        let ts = TimeSeries::new(vec![-3.0, 7.0, 0.5]);
        assert_eq!(ts.min_max(), Some((-3.0, 7.0)));
        assert_eq!(ts.value_range(), 10.0);
        assert_eq!(TimeSeries::empty().min_max(), None);
        assert_eq!(TimeSeries::empty().value_range(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let ts: TimeSeries = (0..5).map(|i| i as f64).collect();
        assert_eq!(ts.len(), 5);
        assert_eq!(ts[4], 4.0);
    }
}
