//! Binary series files (paper §VII-A).
//!
//! "All time series values are stored one by one in binary format, and
//! their offsets are omitted because they can be easily inferred from
//! bytes' length." We use little-endian `f64`, 8 bytes per sample, no
//! header — offset `j` lives at byte `8·j`.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Writes `xs` to `path` as consecutive little-endian `f64`s.
pub fn write_series<P: AsRef<Path>>(path: P, xs: &[f64]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &v in xs {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads an entire series file.
pub fn read_series<P: AsRef<Path>>(path: P) -> io::Result<Vec<f64>> {
    let mut f = File::open(path)?;
    let len_bytes = f.metadata()?.len();
    if len_bytes % 8 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("series file length {len_bytes} is not a multiple of 8"),
        ));
    }
    let n = (len_bytes / 8) as usize;
    let mut out = Vec::with_capacity(n);
    let mut reader = BufReader::new(&mut f);
    let mut buf = [0u8; 8];
    for _ in 0..n {
        reader.read_exact(&mut buf)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

/// Reads `len` samples starting at sample offset `offset`.
pub fn read_range<P: AsRef<Path>>(path: P, offset: usize, len: usize) -> io::Result<Vec<f64>> {
    let mut f = File::open(path)?;
    read_range_from(&mut f, offset, len)
}

/// Reads a sample range from an already-open file.
pub fn read_range_from(f: &mut File, offset: usize, len: usize) -> io::Result<Vec<f64>> {
    f.seek(SeekFrom::Start((offset as u64) * 8))?;
    let mut bytes = vec![0u8; len * 8];
    f.read_exact(&mut bytes)?;
    let mut out = Vec::with_capacity(len);
    for chunk in bytes.chunks_exact(8) {
        out.push(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    Ok(out)
}

/// Streaming reader that yields the series in fixed-size chunks — the
/// out-of-core index-building path reads data this way.
pub struct ChunkedReader {
    reader: BufReader<File>,
    chunk: usize,
    remaining: usize,
}

impl ChunkedReader {
    /// Opens `path` for chunked reading with `chunk` samples per call.
    pub fn open<P: AsRef<Path>>(path: P, chunk: usize) -> io::Result<Self> {
        assert!(chunk > 0, "chunk size must be positive");
        let f = File::open(path)?;
        let len_bytes = f.metadata()?.len();
        if len_bytes % 8 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "series file length is not a multiple of 8",
            ));
        }
        Ok(Self {
            reader: BufReader::with_capacity(1 << 20, f),
            chunk,
            remaining: (len_bytes / 8) as usize,
        })
    }

    /// Total samples still unread.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Reads the next chunk into `buf` (cleared first); returns the number
    /// of samples read, 0 at EOF.
    pub fn next_chunk(&mut self, buf: &mut Vec<f64>) -> io::Result<usize> {
        buf.clear();
        let take = self.chunk.min(self.remaining);
        let mut bytes = vec![0u8; take * 8];
        self.reader.read_exact(&mut bytes)?;
        for chunk in bytes.chunks_exact(8) {
            buf.push(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        self.remaining -= take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("xs.bin");
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 5.0).collect();
        write_series(&path, &xs).unwrap();
        let back = read_series(&path).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn empty_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("empty.bin");
        write_series(&path, &[]).unwrap();
        assert!(read_series(&path).unwrap().is_empty());
    }

    #[test]
    fn range_read() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("xs.bin");
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        write_series(&path, &xs).unwrap();
        assert_eq!(read_range(&path, 10, 5).unwrap(), vec![10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(read_range(&path, 95, 5).unwrap(), vec![95.0, 96.0, 97.0, 98.0, 99.0]);
        assert!(read_range(&path, 98, 5).is_err(), "read past EOF must fail");
    }

    #[test]
    fn corrupt_length_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.bin");
        std::fs::write(&path, [0u8; 12]).unwrap();
        assert!(read_series(&path).is_err());
    }

    #[test]
    fn chunked_reader_covers_everything() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("xs.bin");
        let xs: Vec<f64> = (0..2_500).map(|i| i as f64 * 0.25).collect();
        write_series(&path, &xs).unwrap();
        let mut r = ChunkedReader::open(&path, 999).unwrap();
        assert_eq!(r.remaining(), 2500);
        let mut all = Vec::new();
        let mut buf = Vec::new();
        loop {
            let got = r.next_chunk(&mut buf).unwrap();
            if got == 0 {
                break;
            }
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, xs);
    }
}
