//! Domain patterns for the paper's motivating applications (§I).
//!
//! Three scenarios drive the examples and the cNSM-focused tests:
//!
//! * **EOG wind gusts** — the Extreme Operating Gust profile from wind
//!   energy (IEC 61400-1): a short dip, a steep rise to a peak, and a dip
//!   back to the base wind speed. All real occurrences share the shape but
//!   have bounded amplitude, which is exactly the cNSM use case.
//! * **Bridge strain** — a truck crossing produces a bump whose height is
//!   proportional to the truck's weight; searching for trucks of a weight
//!   class is a cNSM query with a mean-value constraint.
//! * **Activity monitoring** — a PAMAP-like accelerometer stream where each
//!   activity is a regime with its own baseline and variance (Example 1 of
//!   the paper: NSM confuses lying / sitting; cNSM does not).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::gaussian;

/// The IEC-style Extreme Operating Gust profile of length `len`, with base
/// level `base` and gust magnitude `magnitude`.
///
/// `v(t) = base − 0.37·magnitude·sin(3πt/T)·(1 − cos(2πt/T))` — dip, spike,
/// dip, returning to `base` (the classic "Mexican hat" of Fig. 2).
pub fn eog_profile(len: usize, base: f64, magnitude: f64) -> Vec<f64> {
    let t_total = len.max(1) as f64;
    (0..len)
        .map(|t| {
            let x = t as f64 / t_total;
            base - 0.37
                * magnitude
                * (3.0 * std::f64::consts::PI * x).sin()
                * (1.0 - (2.0 * std::f64::consts::PI * x).cos())
        })
        .collect()
}

/// A truck-crossing strain bump of length `len`: a raised-cosine pulse of
/// height `weight` over baseline `baseline`.
pub fn strain_bump(len: usize, baseline: f64, weight: f64) -> Vec<f64> {
    let t_total = len.max(1) as f64;
    (0..len)
        .map(|t| {
            let x = t as f64 / t_total;
            baseline + weight * 0.5 * (1.0 - (std::f64::consts::TAU * x).cos())
        })
        .collect()
}

/// Description of one embedded pattern occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occurrence {
    /// Start offset in the host series.
    pub offset: usize,
    /// Length of the occurrence.
    pub len: usize,
    /// Scale factor relative to the template (amplitude / weight).
    pub scale: f64,
    /// Additive offset applied to the template.
    pub shift: f64,
}

/// Embeds scaled/shifted copies of `template` into `host` at well-separated
/// random offsets, adding i.i.d. Gaussian noise of std `noise`.
///
/// Returns the occurrences actually embedded (at most `count`; fewer if the
/// host is too short to separate them). Each occurrence is placed at least
/// `template.len()` away from the previous one.
pub fn embed_occurrences(
    host: &mut [f64],
    template: &[f64],
    count: usize,
    scale_range: (f64, f64),
    shift_range: (f64, f64),
    noise: f64,
    seed: u64,
) -> Vec<Occurrence> {
    let m = template.len();
    if m == 0 || host.len() < m {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let slots = host.len() / (2 * m);
    let n_emb = count.min(slots);
    let mut occs = Vec::with_capacity(n_emb);
    for k in 0..n_emb {
        // Slot k owns [2km, 2km + 2m); place the copy at a jittered offset
        // inside the slot so starts aren't perfectly periodic.
        let jitter = rng.random_range(0..m);
        let offset = 2 * k * m + jitter;
        let scale = rng.random_range(scale_range.0..=scale_range.1);
        let shift = rng.random_range(shift_range.0..=shift_range.1);
        for (i, &tv) in template.iter().enumerate() {
            host[offset + i] = tv * scale + shift + noise * gaussian(&mut rng);
        }
        occs.push(Occurrence { offset, len: m, scale, shift });
    }
    occs
}

/// One activity regime for the PAMAP-like stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activity {
    /// Human-readable label.
    pub name: &'static str,
    /// Baseline accelerometer level.
    pub baseline: f64,
    /// Oscillation amplitude (running is large, lying is tiny).
    pub amplitude: f64,
    /// Oscillation period in samples.
    pub period: f64,
    /// Noise std.
    pub noise: f64,
}

/// The activity catalogue used by the activity-monitoring example: labels
/// and parameters chosen so that *normalized* shapes of `lying`, `sitting`
/// and `breaking` are near-identical while their baselines differ — the
/// paper's Example 1 failure mode for plain NSM.
pub const ACTIVITIES: &[Activity] = &[
    Activity { name: "lying", baseline: 9.6, amplitude: 0.005, period: 180.0, noise: 0.03 },
    Activity { name: "sitting", baseline: 5.0, amplitude: 0.005, period: 180.0, noise: 0.03 },
    Activity { name: "standing", baseline: 1.0, amplitude: 0.008, period: 160.0, noise: 0.035 },
    Activity { name: "breaking", baseline: 3.0, amplitude: 0.006, period: 200.0, noise: 0.03 },
    Activity { name: "walking", baseline: 0.0, amplitude: 2.0, period: 35.0, noise: 0.3 },
    Activity { name: "running", baseline: -1.0, amplitude: 5.0, period: 18.0, noise: 0.6 },
];

/// A segment of the generated activity stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivitySegment {
    /// Index into [`ACTIVITIES`].
    pub activity: usize,
    /// Start offset.
    pub offset: usize,
    /// Length.
    pub len: usize,
}

/// Generates a PAMAP-like stream: activities alternate, each lasting
/// `segment_len` samples, in a seeded random order.
pub fn activity_stream(
    total_len: usize,
    segment_len: usize,
    seed: u64,
) -> (Vec<f64>, Vec<ActivitySegment>) {
    assert!(segment_len > 0, "segment_len must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(total_len);
    let mut segs = Vec::new();
    while xs.len() < total_len {
        let idx = rng.random_range(0..ACTIVITIES.len());
        let a = ACTIVITIES[idx];
        let len = segment_len.min(total_len - xs.len());
        let offset = xs.len();
        let phase = rng.random_range(0.0..std::f64::consts::TAU);
        for t in 0..len {
            let v = a.baseline
                + a.amplitude * ((t as f64 * std::f64::consts::TAU / a.period) + phase).sin()
                + a.noise * gaussian(&mut rng);
            xs.push(v);
        }
        segs.push(ActivitySegment { activity: idx, offset, len });
    }
    (xs, segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean_std;

    #[test]
    fn eog_returns_to_base() {
        let p = eog_profile(200, 600.0, 100.0);
        assert_eq!(p.len(), 200);
        assert!((p[0] - 600.0).abs() < 1.0);
        // Peak is well above base (the 1.37ish factor at x=~0.55).
        let peak = p.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 640.0, "peak {peak}");
        // Has a dip below base too.
        let trough = p.iter().cloned().fold(f64::MAX, f64::min);
        assert!(trough < 590.0, "trough {trough}");
    }

    #[test]
    fn strain_bump_height_tracks_weight() {
        let light = strain_bump(100, 10.0, 5.0);
        let heavy = strain_bump(100, 10.0, 20.0);
        let max_l = light.iter().cloned().fold(f64::MIN, f64::max);
        let max_h = heavy.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max_l - 15.0).abs() < 0.1);
        assert!((max_h - 30.0).abs() < 0.1);
    }

    #[test]
    fn embed_occurrences_places_and_reports() {
        let template = eog_profile(64, 0.0, 10.0);
        let mut host = vec![0.0; 4096];
        let occs = embed_occurrences(&mut host, &template, 5, (0.8, 1.2), (-1.0, 1.0), 0.0, 9);
        assert_eq!(occs.len(), 5);
        for o in &occs {
            assert!(o.offset + o.len <= host.len());
            // The embedded copy equals template*scale+shift exactly (no noise).
            for i in 0..o.len {
                let want = template[i] * o.scale + o.shift;
                assert!((host[o.offset + i] - want).abs() < 1e-9);
            }
        }
        // Occurrences are disjoint and ordered.
        for pair in occs.windows(2) {
            assert!(pair[0].offset + pair[0].len <= pair[1].offset);
        }
    }

    #[test]
    fn embed_too_small_host() {
        let template = vec![1.0; 100];
        let mut host = vec![0.0; 50];
        assert!(
            embed_occurrences(&mut host, &template, 3, (1.0, 1.0), (0.0, 0.0), 0.0, 1).is_empty()
        );
    }

    #[test]
    fn activity_stream_covers_and_labels() {
        let (xs, segs) = activity_stream(10_000, 1500, 4);
        assert_eq!(xs.len(), 10_000);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 10_000);
        // Segment means should be near the activity baseline for the calm ones.
        for s in &segs {
            let a = ACTIVITIES[s.activity];
            if a.amplitude < 0.5 && s.len > 200 {
                let (mu, _) = mean_std(&xs[s.offset..s.offset + s.len]);
                assert!(
                    (mu - a.baseline).abs() < 0.5,
                    "{}: mean {mu} vs baseline {}",
                    a.name,
                    a.baseline
                );
            }
        }
    }

    #[test]
    fn lying_and_sitting_normalize_alike_but_differ_in_mean() {
        // The core claim of Example 1: after normalization the shapes are
        // close, but the raw means are far apart.
        let lying = ACTIVITIES[0];
        let sitting = ACTIVITIES[1];
        assert!((lying.amplitude - sitting.amplitude).abs() < 1e-9);
        assert!((lying.baseline - sitting.baseline).abs() > 3.0);
    }
}
