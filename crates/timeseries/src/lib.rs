//! Time-series container, statistics, synthetic data generators and binary
//! I/O for the [KV-match](https://arxiv.org/abs/1710.00560) reproduction.
//!
//! This crate is the lowest layer of the workspace. It knows nothing about
//! indexing or matching; it provides:
//!
//! * [`TimeSeries`] — an owned `f64` sequence with subsequence views,
//! * [`PrefixStats`] — O(1) mean / standard deviation of any range,
//! * [`RollingStats`] — streaming window statistics for index building,
//! * [`generator`] — the paper's §VIII-A.2 synthetic workload generator
//!   (random walk, Gaussian, mixed sine, and the regime-switching composite),
//! * [`patterns`] — domain patterns for the motivating applications
//!   (EOG wind gusts, bridge-strain truck crossings, activity monitoring),
//! * [`io`] — the little-endian binary data-file format of §VII-A.
//!
//! # Conventions
//!
//! All offsets are **0-based** (the paper is 1-based). A *sliding window*
//! at position `j` with width `w` covers `x[j .. j + w]` (half-open). A
//! length-`m` query has `p = ⌊m / w⌋` *disjoint windows*; the `i`-th
//! (0-based) covers `q[i*w .. (i+1)*w]`.

pub mod generator;
pub mod io;
pub mod patterns;
pub mod rolling;
pub mod series;
pub mod stats;

pub use generator::{CompositeGenerator, GeneratorConfig, SegmentKind};
pub use io::{read_series, write_series, ChunkedReader};
pub use rolling::RollingStats;
pub use series::TimeSeries;
pub use stats::PrefixStats;
