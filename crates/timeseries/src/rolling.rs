//! Streaming window statistics.
//!
//! The index builder (§IV-B) reads the series once and maintains the mean of
//! the current length-`w` sliding window "on the fly". [`RollingStats`] is
//! that primitive: push samples one by one; once `w` samples have been seen
//! the window mean (and std) of the most recent `w` samples is available and
//! updated in O(1) per push.

/// Incremental rolling mean / std over the last `w` pushed samples.
///
/// Uses running sums with a circular buffer. To bound floating-point drift
/// over very long streams, the sums are recomputed from the buffer every
/// `RECOMPUTE_PERIOD` pushes (a full pass over only `w` elements).
#[derive(Clone, Debug)]
pub struct RollingStats {
    window: usize,
    buf: Vec<f64>,
    head: usize,
    count: u64,
    sum: f64,
    sum_sq: f64,
    since_recompute: u32,
}

const RECOMPUTE_PERIOD: u32 = 1 << 16;

impl RollingStats {
    /// Creates a rolling accumulator over windows of width `window`.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must be positive");
        Self {
            window,
            buf: vec![0.0; window],
            head: 0,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            since_recompute: 0,
        }
    }

    /// The window width `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True once at least `w` samples have been pushed.
    pub fn is_full(&self) -> bool {
        self.count >= self.window as u64
    }

    /// Pushes a sample, evicting the sample `w` positions back if full.
    pub fn push(&mut self, v: f64) {
        if self.is_full() {
            let old = self.buf[self.head];
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.buf[self.head] = v;
        self.sum += v;
        self.sum_sq += v * v;
        self.head = (self.head + 1) % self.window;
        self.count += 1;
        self.since_recompute += 1;
        if self.since_recompute >= RECOMPUTE_PERIOD {
            self.recompute();
        }
    }

    fn recompute(&mut self) {
        self.since_recompute = 0;
        let filled = (self.count as usize).min(self.window);
        let mut s = 0.0;
        let mut sq = 0.0;
        for &v in &self.buf[..filled] {
            s += v;
            sq += v * v;
        }
        self.sum = s;
        self.sum_sq = sq;
    }

    /// Mean of the current window; `None` until the window is full.
    pub fn mean(&self) -> Option<f64> {
        self.is_full().then(|| self.sum / self.window as f64)
    }

    /// Population std of the current window; `None` until full.
    pub fn std(&self) -> Option<f64> {
        self.is_full().then(|| {
            let n = self.window as f64;
            let mu = self.sum / n;
            ((self.sum_sq / n) - mu * mu).max(0.0).sqrt()
        })
    }
}

/// Computes the means of *all* length-`w` sliding windows of `xs` in one
/// pass. Returns an empty vector when `w == 0` or `w > xs.len()`.
///
/// This is the bulk form used by tests and by in-memory index builds; the
/// streaming form above is used when the series does not fit in memory.
pub fn sliding_means(xs: &[f64], w: usize) -> Vec<f64> {
    if w == 0 || w > xs.len() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(xs.len() - w + 1);
    let mut sum: f64 = xs[..w].iter().sum();
    out.push(sum / w as f64);
    for j in w..xs.len() {
        sum += xs[j] - xs[j - w];
        out.push(sum / w as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = RollingStats::new(0);
    }

    #[test]
    fn not_full_returns_none() {
        let mut r = RollingStats::new(3);
        r.push(1.0);
        r.push(2.0);
        assert_eq!(r.mean(), None);
        assert_eq!(r.std(), None);
        assert!(!r.is_full());
    }

    #[test]
    fn rolling_matches_naive() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 31) % 17) as f64 * 0.5 - 4.0).collect();
        let w = 7;
        let mut r = RollingStats::new(w);
        let mut got = Vec::new();
        for &v in &xs {
            r.push(v);
            if let Some(m) = r.mean() {
                got.push(m);
            }
        }
        let want = sliding_means(&xs, w);
        assert_eq!(got.len(), want.len());
        for (g, w_) in got.iter().zip(&want) {
            assert!((g - w_).abs() < 1e-9);
        }
    }

    #[test]
    fn rolling_std_matches_naive() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0).collect();
        let w = 5;
        let mut r = RollingStats::new(w);
        for (j, &v) in xs.iter().enumerate() {
            r.push(v);
            if j + 1 >= w {
                let window = &xs[j + 1 - w..j + 1];
                let naive = crate::stats::std(window);
                assert!((r.std().unwrap() - naive).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn window_of_one() {
        let mut r = RollingStats::new(1);
        r.push(42.0);
        assert_eq!(r.mean(), Some(42.0));
        assert_eq!(r.std(), Some(0.0));
        r.push(-1.0);
        assert_eq!(r.mean(), Some(-1.0));
    }

    #[test]
    fn sliding_means_edges() {
        assert!(sliding_means(&[1.0, 2.0], 3).is_empty());
        assert!(sliding_means(&[1.0, 2.0], 0).is_empty());
        assert_eq!(sliding_means(&[1.0, 2.0], 2), vec![1.5]);
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sliding_means(&xs, 1), xs.to_vec());
    }

    #[test]
    fn periodic_recompute_keeps_accuracy() {
        // Push more than RECOMPUTE_PERIOD samples and check drift is bounded.
        let w = 16;
        let n = (1 << 16) + 123;
        let mut r = RollingStats::new(w);
        let xs: Vec<f64> = (0..n).map(|i| 1e6 + ((i % 97) as f64) * 0.001).collect();
        for &v in &xs {
            r.push(v);
        }
        let naive = mean(&xs[n - w..]);
        assert!((r.mean().unwrap() - naive).abs() < 1e-6);
    }
}
