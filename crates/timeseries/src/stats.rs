//! Subsequence statistics.
//!
//! [`PrefixStats`] precomputes prefix sums of values and squared values so
//! that the mean and standard deviation of *any* subsequence are O(1). This
//! is the statistic substrate for index building (window means) and for the
//! cNSM constraint checks (`µS`, `σS` of candidates).

/// Mean of a slice (0.0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice (0.0 for empty input).
///
/// The paper (and the UCR Suite) use the population variant
/// `σ² = E[x²] − E[x]²`.
pub fn std(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let s: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|v| v * v).sum();
    let var = (sq / n - (s / n) * (s / n)).max(0.0);
    var.sqrt()
}

/// Mean and population std in one pass.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mut s = 0.0;
    let mut sq = 0.0;
    for &v in xs {
        s += v;
        sq += v * v;
    }
    let mu = s / n;
    let var = (sq / n - mu * mu).max(0.0);
    (mu, var.sqrt())
}

/// Z-normalizes a slice in place. A constant slice (σ = 0) becomes all-zero.
pub fn normalize_in_place(xs: &mut [f64]) {
    let (mu, sigma) = mean_std(xs);
    if sigma == 0.0 {
        xs.iter_mut().for_each(|v| *v = 0.0);
    } else {
        let inv = 1.0 / sigma;
        xs.iter_mut().for_each(|v| *v = (*v - mu) * inv);
    }
}

/// Returns the z-normalized copy of a slice.
pub fn normalized(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    normalize_in_place(&mut out);
    out
}

/// Prefix-sum statistics over a series: O(n) to build, O(1) per range query.
///
/// ```
/// use kvmatch_timeseries::PrefixStats;
/// let ps = PrefixStats::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(ps.range_mean(1, 2), 2.5);          // mean of [2, 3]
/// assert!((ps.range_std(0, 4) - 1.118033988749895).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct PrefixStats {
    /// `sum[i]` = sum of `x[0..i]`; length `n + 1`.
    sum: Vec<f64>,
    /// `sum_sq[i]` = sum of `x[0..i]²`; length `n + 1`.
    sum_sq: Vec<f64>,
}

impl PrefixStats {
    /// Builds prefix sums for `xs`.
    pub fn new(xs: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(xs.len() + 1);
        let mut sum_sq = Vec::with_capacity(xs.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        let mut s = 0.0;
        let mut sq = 0.0;
        for &v in xs {
            s += v;
            sq += v * v;
            sum.push(s);
            sum_sq.push(sq);
        }
        Self { sum, sum_sq }
    }

    /// Length of the underlying series.
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// True for an empty underlying series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of `x[offset .. offset+len]`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn range_sum(&self, offset: usize, len: usize) -> f64 {
        self.sum[offset + len] - self.sum[offset]
    }

    /// Sum of squares over `x[offset .. offset+len]`.
    #[inline]
    pub fn range_sum_sq(&self, offset: usize, len: usize) -> f64 {
        self.sum_sq[offset + len] - self.sum_sq[offset]
    }

    /// Mean `µ` of `x[offset .. offset+len]` (0.0 for `len == 0`).
    #[inline]
    pub fn range_mean(&self, offset: usize, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.range_sum(offset, len) / len as f64
    }

    /// Population std `σ` of `x[offset .. offset+len]` (0.0 for `len == 0`).
    ///
    /// Floating-point cancellation can make the raw variance slightly
    /// negative for near-constant ranges; it is clamped at zero.
    #[inline]
    pub fn range_std(&self, offset: usize, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let n = len as f64;
        let mu = self.range_sum(offset, len) / n;
        let var = (self.range_sum_sq(offset, len) / n - mu * mu).max(0.0);
        var.sqrt()
    }

    /// Mean and std in one call.
    #[inline]
    pub fn range_mean_std(&self, offset: usize, len: usize) -> (f64, f64) {
        (self.range_mean(offset, len), self.range_std(offset, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_std(xs: &[f64]) -> (f64, f64) {
        let mu = mean(xs);
        let var = xs.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / xs.len() as f64;
        (mu, var.sqrt())
    }

    #[test]
    fn empty_slice_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std(&[]), 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn single_value_stats() {
        assert_eq!(mean(&[7.0]), 7.0);
        assert_eq!(std(&[7.0]), 0.0);
    }

    #[test]
    fn prefix_matches_naive() {
        let xs: Vec<f64> = (0..64).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let ps = PrefixStats::new(&xs);
        for off in 0..xs.len() {
            for len in 1..=(xs.len() - off).min(17) {
                let (m1, s1) = ps.range_mean_std(off, len);
                let (m2, s2) = naive_mean_std(&xs[off..off + len]);
                assert!((m1 - m2).abs() < 1e-9, "mean mismatch at {off}+{len}");
                assert!((s1 - s2).abs() < 1e-9, "std mismatch at {off}+{len}");
            }
        }
    }

    #[test]
    fn prefix_zero_len_range() {
        let ps = PrefixStats::new(&[1.0, 2.0]);
        assert_eq!(ps.range_mean(1, 0), 0.0);
        assert_eq!(ps.range_std(1, 0), 0.0);
        assert_eq!(ps.range_sum(2, 0), 0.0);
    }

    #[test]
    fn prefix_len() {
        assert_eq!(PrefixStats::new(&[]).len(), 0);
        assert!(PrefixStats::new(&[]).is_empty());
        assert_eq!(PrefixStats::new(&[1.0, 2.0, 3.0]).len(), 3);
    }

    #[test]
    fn near_constant_std_clamped() {
        // Large offset + tiny jitter stresses the cancellation path. The
        // E[x²]−E[x]² form loses ~eps·µ² of precision, so only tightness
        // proportional to the offset can be asserted — but never NaN from a
        // negative variance.
        let xs = vec![1e6 + 0.25; 1000];
        let ps = PrefixStats::new(&xs);
        let s = ps.range_std(0, 1000);
        assert!(s.is_finite() && (0.0..0.1).contains(&s), "std {s} should be ~0");
    }

    #[test]
    fn normalize_round_trip_properties() {
        let xs = vec![5.0, -1.0, 2.5, 8.0, 0.0];
        let nz = normalized(&xs);
        let (mu, sigma) = mean_std(&nz);
        assert!(mu.abs() < 1e-12);
        assert!((sigma - 1.0).abs() < 1e-12);
    }
}
