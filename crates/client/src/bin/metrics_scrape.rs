//! `metrics_scrape` — connect to a running `kvmatch-server`, request the
//! metrics text exposition over the wire (`Request::MetricsText`), and
//! print it to stdout.
//!
//! Usage: `metrics_scrape [addr]` (default `127.0.0.1:7878`). Exits
//! non-zero when the server is unreachable or answers with an error —
//! the CI `obs-smoke` job pipes the output through format checks.

use std::time::Duration;

use kvmatch_client::Client;

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let client = match Client::connect_retry(&addr, 40, Duration::from_millis(250)) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("FAIL: cannot connect to {addr}: {err}");
            std::process::exit(1);
        }
    };
    match client.metrics_text() {
        Ok(text) => print!("{text}"),
        Err(err) => {
            eprintln!("FAIL: metrics request to {addr} failed: {err}");
            std::process::exit(1);
        }
    }
}
