//! Blocking TCP client for the KV-match serving protocol.
//!
//! [`Client`] owns one connection to a `kvmatch-server`. Requests are
//! written under a writer lock and tagged with monotonically increasing
//! request ids; a background reader thread demultiplexes response frames
//! by id, so **any number of requests can be in flight on one connection**
//! (pipelining) and threads can share a `Client` freely.
//!
//! Two calling styles:
//!
//! * Synchronous sugar — [`Client::query`], [`Client::append`],
//!   [`Client::metrics`], [`Client::ping`]: send one request, block for
//!   its response.
//! * Pipelined — [`Client::send`] returns a [`Pending`] immediately;
//!   [`Pending::wait`] blocks later. Issuing a window of sends before the
//!   first wait keeps the server's scheduler fed across the network's
//!   round-trip latency.
//!
//! Errors are typed: transport failures are [`ClientError::Io`] /
//! [`ClientError::Disconnected`], protocol violations are
//! [`ClientError::Proto`], and server-reported failures surface as
//! [`ClientError::Server`] with the stable numeric code table from
//! [`kvmatch_proto::code`].

use std::collections::HashMap;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kvmatch_core::{MatchResult, MatchStats, QuerySpec, SeriesId};
use kvmatch_obs::{ExplainReport, SpanRecord};
use kvmatch_proto as proto;
use kvmatch_proto::{ProtoError, Request, Response, WireError, WireMetrics};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, write, or the reader thread died).
    Io(std::io::Error),
    /// The connection closed (or was already closed) before the response
    /// arrived.
    Disconnected,
    /// The server sent bytes that do not parse as protocol frames.
    Proto(ProtoError),
    /// The server answered with an error frame; `code` is one of the
    /// [`proto::code`] constants.
    Server(WireError),
    /// The server answered with a response of the wrong kind for the
    /// request (e.g. `Pong` to a query) — a server bug, surfaced loudly.
    UnexpectedResponse(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
            ClientError::Disconnected => write!(f, "connection closed before the response"),
            ClientError::Proto(e) => write!(f, "protocol violation: {e}"),
            ClientError::Server(e) => write!(f, "server error {}: {}", e.code, e.detail),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response kind: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(err: ProtoError) -> Self {
        match err {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// A successful query answer, as delivered over the wire.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Qualified subsequences (offset order for range, nearest-first for
    /// top-k) — bit-identical to the in-process answer.
    pub results: Vec<MatchResult>,
    /// The executor's per-query statistics.
    pub stats: MatchStats,
    /// Submit→response latency measured inside the service, µs.
    pub latency_us: u64,
    /// The structured trace, present iff the query's spec carried
    /// [`QuerySpec::explain`](kvmatch_core::QuerySpec). Spans cover the
    /// serving pipeline and the server's request handling; the blocking
    /// [`Client::query`] sugar appends its own `client.rtt` span.
    pub explain: Option<Box<ExplainReport>>,
}

/// Demux state shared between callers and the reader thread.
struct Demux {
    /// `request_id → slot`. A `None` slot means "awaited, not answered";
    /// the reader fills it and notifies.
    pending: Mutex<DemuxState>,
    arrived: Condvar,
}

struct DemuxState {
    slots: HashMap<u64, Option<Response>>,
    /// Set once the reader exits; pending waits fail fast from then on.
    dead: bool,
}

impl Demux {
    fn fail_all(&self) {
        let mut st = self.pending.lock().expect("demux lock poisoned");
        st.dead = true;
        drop(st);
        self.arrived.notify_all();
    }
}

/// One connection to a `kvmatch-server`.
pub struct Client {
    writer: Mutex<BufWriter<TcpStream>>,
    demux: Arc<Demux>,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
    stream: TcpStream,
}

/// An in-flight request: wait for exactly one response.
#[must_use = "an unawaited Pending leaks its demux slot until the connection closes"]
pub struct Pending {
    demux: Arc<Demux>,
    id: u64,
}

impl Client {
    /// Connects once.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        Self::from_stream(stream)
    }

    /// Connects with retries: `attempts` tries, `backoff` sleep between
    /// them (the first try is immediate). Covers the races of a server
    /// that is still binding its listener.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        attempts: usize,
        backoff: Duration,
    ) -> Result<Self, ClientError> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
            }
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(err) => last = Some(err),
            }
        }
        Err(last.unwrap_or(ClientError::Disconnected))
    }

    fn from_stream(stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        let read_half = stream.try_clone().map_err(ClientError::Io)?;
        let demux = Arc::new(Demux {
            pending: Mutex::new(DemuxState { slots: HashMap::new(), dead: false }),
            arrived: Condvar::new(),
        });
        let reader_demux = Arc::clone(&demux);
        let reader = std::thread::Builder::new()
            .name("kvmatch-client-reader".into())
            .spawn(move || reader_loop(read_half, reader_demux))
            .map_err(ClientError::Io)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(stream.try_clone().map_err(ClientError::Io)?)),
            demux,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
            stream,
        })
    }

    /// Sends a request without waiting — the pipelined entry point. The
    /// returned [`Pending`] resolves to this request's response, matched
    /// by id regardless of arrival order.
    pub fn send(&self, request: &Request) -> Result<Pending, ClientError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Register the slot BEFORE the bytes leave: a response cannot
        // race its own registration.
        {
            let mut st = self.demux.pending.lock().expect("demux lock poisoned");
            if st.dead {
                return Err(ClientError::Disconnected);
            }
            st.slots.insert(id, None);
        }
        // Encode can fail (payload over MAX_FRAME): surface the typed
        // error here instead of shipping a frame the server must reject.
        let frame = match request.encode(id) {
            Ok(frame) => frame,
            Err(e) => {
                let mut st = self.demux.pending.lock().expect("demux lock poisoned");
                st.slots.remove(&id);
                return Err(e.into());
            }
        };
        let mut w = self.writer.lock().expect("writer lock poisoned");
        if let Err(e) = w.write_all(&frame).and_then(|_| w.flush()) {
            let mut st = self.demux.pending.lock().expect("demux lock poisoned");
            st.slots.remove(&id);
            return Err(ClientError::Io(e));
        }
        Ok(Pending { demux: Arc::clone(&self.demux), id })
    }

    /// Executes one query (range or top-k per `spec.limit`) and blocks
    /// for the answer. `deadline_us` is the serving-side deadline.
    pub fn query(
        &self,
        spec: QuerySpec,
        deadline_us: Option<u64>,
    ) -> Result<QueryReply, ClientError> {
        let sent = Instant::now();
        let mut reply = self.send(&Request::Query { spec, deadline_us })?.wait_query()?;
        // Close the loop on an explained query: the socket round trip as
        // this client observed it, wrapping every server-side span.
        if let Some(explain) = reply.explain.as_mut() {
            explain.spans.push(SpanRecord {
                name: "client.rtt".into(),
                depth: 0,
                nanos: sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            });
        }
        Ok(reply)
    }

    /// Appends points to a series and blocks until they are applied.
    pub fn append(&self, series: SeriesId, points: Vec<f64>) -> Result<(), ClientError> {
        match self.send(&Request::Append { series, points })?.wait()? {
            Response::Appended => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse("append")),
        }
    }

    /// Fetches the server's serving + network metrics snapshot.
    pub fn metrics(&self) -> Result<WireMetrics, ClientError> {
        match self.send(&Request::Metrics)?.wait()? {
            Response::Metrics(m) => Ok(m),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse("metrics")),
        }
    }

    /// Fetches the server's Prometheus-style text exposition (the whole
    /// shared registry plus the slow-query log). Requires protocol v2 —
    /// every connection this client opens speaks v2.
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        match self.send(&Request::MetricsText)?.wait()? {
            Response::MetricsText(text) => Ok(text),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse("metrics_text")),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.send(&Request::Ping)?.wait()? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse("ping")),
        }
    }

    /// Asks the server to drain and exit. The acknowledgement arrives
    /// before the drain completes.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        match self.send(&Request::Shutdown)?.wait()? {
            Response::ShutdownStarted => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse("shutdown")),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Shut the socket down so the reader thread's blocking read
        // returns, then reap it.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.demux.fail_all();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl Pending {
    /// Blocks until this request's response arrives.
    pub fn wait(self) -> Result<Response, ClientError> {
        let mut st = self.demux.pending.lock().expect("demux lock poisoned");
        loop {
            if let Some(Some(_)) = st.slots.get(&self.id) {
                return Ok(st.slots.remove(&self.id).flatten().expect("slot was filled"));
            }
            if st.dead {
                st.slots.remove(&self.id);
                return Err(ClientError::Disconnected);
            }
            st = self.demux.arrived.wait(st).expect("demux lock poisoned");
        }
    }

    /// Blocks for the response and decodes it as a query answer.
    pub fn wait_query(self) -> Result<QueryReply, ClientError> {
        match self.wait()? {
            Response::Query { results, stats, latency_us, explain } => {
                Ok(QueryReply { results, stats, latency_us, explain })
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::UnexpectedResponse("query")),
        }
    }
}

/// The reader thread: decode response frames, fill demux slots by id.
/// Any transport or protocol failure (or clean EOF) kills the connection:
/// every pending and future wait fails with [`ClientError::Disconnected`].
fn reader_loop(stream: TcpStream, demux: Arc<Demux>) {
    let mut reader = BufReader::new(stream);
    loop {
        match proto::read_response(&mut reader) {
            Ok(Some(frame)) => {
                let mut st = demux.pending.lock().expect("demux lock poisoned");
                // An id nobody registered (server bug or a slot dropped
                // by a failed send) is discarded; correctness rests on
                // registered ids only.
                if let Some(slot) = st.slots.get_mut(&frame.request_id) {
                    *slot = Some(frame.message);
                    drop(st);
                    demux.arrived.notify_all();
                }
            }
            Ok(None) | Err(_) => {
                demux.fail_all();
                return;
            }
        }
    }
}
