//! The tentpole's serving guarantee: readers are never blocked by
//! ingestion for longer than a snapshot pointer swap.
//!
//! A gated backend parks `seal_generation` mid-materialization — the
//! ingest lane is then stuck holding the catalog's *write* lock for an
//! arbitrarily long "compaction". Queries submitted during the stall
//! must still complete (served from the pinned previous snapshot), and
//! the acknowledgement/epoch machinery must come out the other side
//! intact: the barriered query sees the appended points once the seal
//! finally lands.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kvmatch_core::catalog::{CatalogBackend, GenerationInput};
use kvmatch_core::{Catalog, CoreError, IndexBuildConfig, MemoryCatalogBackend, QuerySpec};
use kvmatch_serve::{QueryRequest, QueryService};
use kvmatch_storage::SeriesId;
use kvmatch_timeseries::generator::composite_series;

/// Once armed, the next `seal_generation` parks until released, and
/// announces that it parked.
#[derive(Default)]
struct SealGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    armed: bool,
    sealing: bool,
    released: bool,
}

impl SealGate {
    fn arm(&self) {
        self.state.lock().unwrap().armed = true;
    }

    /// Blocks until a seal has parked at the gate.
    fn wait_until_sealing(&self) {
        let mut s = self.state.lock().unwrap();
        while !s.sealing {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn is_sealing(&self) -> bool {
        self.state.lock().unwrap().sealing
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.released = true;
        s.armed = false;
        self.cv.notify_all();
    }

    /// Called from inside `seal_generation`.
    fn enter(&self) {
        let mut s = self.state.lock().unwrap();
        if !s.armed {
            return;
        }
        s.sealing = true;
        self.cv.notify_all();
        while !s.released {
            s = self.cv.wait(s).unwrap();
        }
        s.sealing = false;
    }
}

/// A volatile backend whose generation sealing can be parked on demand —
/// a stand-in for an arbitrarily slow index build or compaction.
struct GatedBackend {
    inner: MemoryCatalogBackend,
    gate: Arc<SealGate>,
}

impl CatalogBackend for GatedBackend {
    type Store = <MemoryCatalogBackend as CatalogBackend>::Store;
    type Data = <MemoryCatalogBackend as CatalogBackend>::Data;

    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError> {
        self.gate.enter();
        self.inner.seal_generation(input)
    }

    fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        self.inner.data_store(series, xs)
    }
}

#[test]
fn readers_flow_while_ingest_seals_a_generation() {
    let a = SeriesId::new(1);
    let b = SeriesId::new(2);
    let base_a = composite_series(501, 4_000);
    let base_b = composite_series(502, 4_000);
    let gate = Arc::new(SealGate::default());
    let mut catalog =
        Catalog::new(GatedBackend { inner: MemoryCatalogBackend, gate: Arc::clone(&gate) });
    catalog.create_series_with(a, IndexBuildConfig::new(50), &base_a).unwrap();
    catalog.create_series_with(b, IndexBuildConfig::new(50), &base_b).unwrap();
    let service = QueryService::builder(catalog).workers(2).build().expect("valid topology");

    // Warm-up proves the service is up before the gate arms.
    let warm =
        QueryRequest::range(QuerySpec::rsm_ed(base_b[100..300].to_vec(), 1e-9).with_series(b));
    let resp = service
        .submit_timeout(warm, Duration::from_secs(10))
        .into_result()
        .expect("submission accepted")
        .wait()
        .expect("warm-up served");
    assert!(resp.results.iter().any(|r| r.offset == 100));

    // Arm the gate, then append to series `a`: the ingest lane will take
    // the catalog write lock, enter `seal_generation`, and park there —
    // the old world, where readers shared that lock, is now stalled for
    // as long as we please.
    gate.arm();
    let tail = composite_series(503, 6_000);
    let ack = service.append(a, tail.clone(), Duration::from_secs(10)).expect("append admitted");
    gate.wait_until_sealing();

    // While the seal is parked: queries on the *other* series, and on
    // the burst series from *before* the append (pre-append submissions
    // carry no epoch requirement — they pin the previous snapshot), must
    // all be answered.
    let stalled_probes = vec![
        QueryRequest::range(QuerySpec::rsm_ed(base_b[700..900].to_vec(), 1e-9).with_series(b)),
        QueryRequest::top_k(
            QuerySpec::rsm_ed(base_b[1_500..1_700].to_vec(), 25.0).with_series(b),
            3,
        ),
        QueryRequest::range(
            QuerySpec::rsm_dtw(base_b[2_200..2_400].to_vec(), 4.0, 5).with_series(b),
        ),
    ];
    let started = Instant::now();
    for (i, probe) in stalled_probes.into_iter().enumerate() {
        let handle = service
            .submit_timeout(probe, Duration::from_secs(10))
            .into_result()
            .expect("submission accepted");
        let resp = handle
            .wait_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("query not served during the stall"))
            .expect("query succeeded during the stall");
        assert!(!resp.results.is_empty(), "probe {i} lost its planted match");
    }
    let stall_read_time = started.elapsed();
    // The load-bearing assertion: every one of those queries completed
    // while the seal was STILL parked — readers never waited for it.
    assert!(
        gate.is_sealing(),
        "seal released early ({stall_read_time:?}); the stall assertions proved nothing"
    );

    // A query on the burst series submitted *after* the append waits at
    // the per-series epoch gate (ordering), but must not prevent others
    // from flowing — and must see the new points once released.
    let behind =
        QueryRequest::range(QuerySpec::rsm_ed(tail[5_600..5_850].to_vec(), 1e-9).with_series(a));
    let behind_handle = service
        .submit_timeout(behind, Duration::from_secs(10))
        .into_result()
        .expect("submission accepted");
    // "Not ready" hands the handle back — the consume-or-re-own contract
    // of `wait_timeout`.
    let behind_handle = match behind_handle.wait_timeout(Duration::from_millis(200)) {
        Err(still_waiting) => still_waiting,
        Ok(_) => panic!("the barriered query must wait for its append, not serve stale data"),
    };
    assert!(gate.is_sealing(), "nothing should have released the seal");

    // Release: the ack lands Ok, and the barriered query sees the tail.
    gate.release();
    ack.wait().expect("append applied and snapshot published");
    let resp = behind_handle
        .wait_timeout(Duration::from_secs(10))
        .unwrap_or_else(|_| panic!("barriered query not served after release"))
        .expect("barriered query succeeded");
    assert!(
        resp.results.iter().any(|r| r.offset == 4_000 + 5_600),
        "post-append query must observe the appended points: {:?}",
        resp.results
    );

    let m = service.metrics();
    assert_eq!(m.materialize_failures, 0);
    assert_eq!(m.failed, 0);
    let catalog = service.shutdown();
    assert_eq!(catalog.series_len(a), Some(4_000 + 6_000));
}

/// A backend whose sealing can be switched to fail — every seal after
/// `fail_after` errors out.
struct FailingBackend {
    inner: MemoryCatalogBackend,
    seals: u64,
    fail_after: u64,
}

impl CatalogBackend for FailingBackend {
    type Store = <MemoryCatalogBackend as CatalogBackend>::Store;
    type Data = <MemoryCatalogBackend as CatalogBackend>::Data;

    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError> {
        self.seals += 1;
        if self.seals > self.fail_after {
            return Err(CoreError::CorruptIndex("injected seal failure".into()));
        }
        self.inner.seal_generation(input)
    }

    fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        self.inner.data_store(series, xs)
    }
}

/// Satellite: a failed post-append materialization is surfaced — the
/// append's acknowledgement carries `ServeError::Materialize`, the
/// failure is counted, and readers keep serving the last good snapshot
/// instead of wedging.
#[test]
fn failed_materialization_is_surfaced_not_swallowed() {
    let a = SeriesId::new(1);
    let base = composite_series(601, 3_000);
    let mut catalog = Catalog::new(FailingBackend {
        inner: MemoryCatalogBackend,
        seals: 0,
        fail_after: 1, // the initial create_series_with seal succeeds
    });
    catalog.create_series_with(a, IndexBuildConfig::new(50), &base).unwrap();
    let service = QueryService::builder(catalog).build().expect("valid topology");

    // The append lands in the catalog, but its snapshot rebuild fails.
    let err = service
        .append(a, composite_series(602, 1_000), Duration::from_secs(10))
        .expect("append admitted")
        .wait()
        .expect_err("failed materialization must fail the ack");
    match err {
        kvmatch_serve::ServeError::Materialize(msg) => {
            assert!(msg.contains("injected seal failure"), "unexpected message: {msg}");
        }
        other => panic!("expected ServeError::Materialize, got {other:?}"),
    }

    // The failure is visible to operators...
    assert!(service.metrics().materialize_failures >= 1);

    // ...and readers still serve the last good snapshot: the base points
    // answer, the unpublished tail does not wedge anything.
    let probe =
        QueryRequest::range(QuerySpec::rsm_ed(base[400..600].to_vec(), 1e-9).with_series(a));
    let resp = service
        .submit_timeout(probe, Duration::from_secs(10))
        .into_result()
        .expect("submission accepted")
        .wait()
        .expect("queries keep flowing after a failed materialization");
    assert!(resp.results.iter().any(|r| r.offset == 400));
    drop(service);
}
