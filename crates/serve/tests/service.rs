//! Behavioural tests of the serving layer: identity-preserving fan-back,
//! deadline expiry, error isolation, deterministic backpressure, ordered
//! appends and graceful shutdown.

use std::time::Duration;

use kvmatch_core::{
    Catalog, IndexAppender, IndexBuildConfig, KvMatcher, MemoryCatalogBackend, QuerySpec, SeriesId,
};
use kvmatch_serve::{QueryKind, QueryRequest, QueryService, ServeError, Submit};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::MemorySeriesStore;
use kvmatch_timeseries::generator::composite_series;

fn catalog_with(series: &[(SeriesId, Vec<f64>)]) -> Catalog<MemoryCatalogBackend> {
    let mut cat = Catalog::new(MemoryCatalogBackend);
    for (id, xs) in series {
        cat.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
    }
    cat
}

/// The sequential ground truth over the same (appender-built) layout the
/// catalog serves.
fn expected(xs: &[f64], spec: &QuerySpec) -> Vec<kvmatch_core::MatchResult> {
    let mut app = IndexAppender::new(IndexBuildConfig::new(50));
    app.push_chunk(xs);
    let (idx, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
    let data = MemorySeriesStore::new(xs.to_vec());
    let (results, _) = KvMatcher::new(&idx, &data).unwrap().execute(spec).unwrap();
    results
}

#[test]
fn responses_preserve_request_identity() {
    let ids = [SeriesId::new(1), SeriesId::new(2)];
    let series: Vec<Vec<f64>> = vec![composite_series(11, 5_000), composite_series(12, 4_000)];
    let cat = catalog_with(&[(ids[0], series[0].clone()), (ids[1], series[1].clone())]);
    // A generous batching window so every submission lands in one batch.
    let service = QueryService::builder(cat)
        .max_batch_delay(Duration::from_millis(50))
        .build()
        .expect("valid topology");

    // Distinct queries with distinct answers, interleaved across series
    // and kinds.
    let mut requests = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&series).enumerate() {
        for k in 0..4usize {
            let at = 300 + 613 * k + 97 * i;
            let spec = QuerySpec::rsm_ed(xs[at..at + 200].to_vec(), 8.0).with_series(*id);
            let req = if k % 2 == 0 {
                QueryRequest::range(spec)
            } else {
                QueryRequest::top_k(spec, 1 + k)
            };
            requests.push((spec_key(&req), req));
        }
    }
    let handles: Vec<_> = requests
        .iter()
        .map(|(_, req)| service.submit(req.clone()).into_result().expect("submission accepted"))
        .collect();
    for ((key, req), handle) in requests.iter().zip(handles) {
        let resp = handle.wait().expect("served");
        let i = ids.iter().position(|id| *id == req.spec.series).unwrap();
        let want = expected(&series[i], &req.spec);
        assert_eq!(resp.results, want, "response crossed wires for request {key}");
        if let QueryKind::TopK(k) = req.kind() {
            assert!(resp.results.len() <= k);
        }
    }
    let m = service.metrics();
    assert_eq!(m.completed, 8);
    assert_eq!(m.submitted, 8);
    assert!(m.avg_batch_occupancy >= 1.0);
    assert!(m.latency_p50_us <= m.latency_p99_us);
    service.shutdown();
}

fn spec_key(req: &QueryRequest) -> String {
    format!("{:?}/{:?}/{}", req.spec.series, req.kind(), req.spec.query.len())
}

#[test]
fn zero_deadline_expires_before_dispatch() {
    let id = SeriesId::new(1);
    let xs = composite_series(21, 3_000);
    let service =
        QueryService::builder(catalog_with(&[(id, xs.clone())])).build().expect("valid topology");
    let req = QueryRequest::range(QuerySpec::rsm_ed(xs[100..300].to_vec(), 5.0).with_series(id))
        .with_deadline(Duration::ZERO);
    let outcome = service.submit(req).into_result().expect("submission accepted").wait();
    assert!(
        matches!(outcome, Err(ServeError::DeadlineExceeded)),
        "zero deadline must expire, got {outcome:?}"
    );
    let m = service.metrics();
    assert_eq!(m.expired, 1);
    assert_eq!(m.completed, 0);
    service.shutdown();
}

#[test]
fn bad_request_does_not_fail_its_batchmates() {
    let id = SeriesId::new(1);
    let xs = composite_series(31, 4_000);
    let service = QueryService::builder(catalog_with(&[(id, xs.clone())]))
        .max_batch_delay(Duration::from_millis(50))
        .build()
        .expect("valid topology");
    let good = QueryRequest::range(QuerySpec::rsm_ed(xs[500..700].to_vec(), 6.0).with_series(id));
    // Routed at a series the catalog does not host — fails the executor
    // batch as a unit, so the scheduler must isolate it.
    let bad = QueryRequest::range(
        QuerySpec::rsm_ed(xs[500..700].to_vec(), 6.0).with_series(SeriesId::new(99)),
    );
    let h_good1 = service.submit(good.clone()).into_result().expect("submission accepted");
    let h_bad = service.submit(bad).into_result().expect("submission accepted");
    let h_good2 = service.submit(good.clone()).into_result().expect("submission accepted");
    assert_eq!(h_good1.wait().expect("good request survives").results, expected(&xs, &good.spec));
    assert!(matches!(h_bad.wait(), Err(ServeError::Query(_))));
    assert_eq!(h_good2.wait().expect("good request survives").results, expected(&xs, &good.spec));
    let m = service.metrics();
    assert_eq!(m.completed, 2);
    assert_eq!(m.failed, 1);
    service.shutdown();
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let id = SeriesId::new(1);
    let xs = composite_series(41, 12_000);
    // One worker, so the pipeline serializes: while the heavy query
    // executes, the front scheduler holds at most one further shard in
    // hand (blocked at the rendezvous hand-off waiting for the busy
    // worker) — everything behind it stays in the bounded queue.
    let service = QueryService::builder(catalog_with(&[(id, xs.clone())]))
        .queue_capacity(2)
        .max_batch(1)
        .max_batch_delay(Duration::ZERO)
        .workers(1)
        .build()
        .expect("valid topology");
    // A verification-heavy query keeps the only worker busy while the
    // queue fills behind it.
    let heavy = QueryRequest::range(
        QuerySpec::rsm_dtw(xs[1_000..1_300].to_vec(), f64::INFINITY, 8).with_series(id),
    );
    let h_heavy = service.submit(heavy).into_result().expect("submission accepted");
    // Let the scheduler hand it to the worker.
    std::thread::sleep(Duration::from_millis(100));
    let quick =
        || QueryRequest::range(QuerySpec::rsm_ed(xs[100..300].to_vec(), 1e-6).with_series(id));
    // q1 is drained into the next shard, which blocks at the hand-off.
    let q1 = service.submit(quick()).into_result().expect("submission accepted");
    std::thread::sleep(Duration::from_millis(50));
    // q2 + q3 now fill the 2-slot queue behind the blocked scheduler:
    // admission control must reject, handing the request back.
    let q2 = service.submit(quick()).into_result().expect("submission accepted");
    let q3 = service.submit(quick()).into_result().expect("submission accepted");
    match service.submit(quick()) {
        Submit::Rejected(r) => {
            assert!(r.is_retryable(), "a full queue is backpressure, not shutdown");
            assert_eq!(r.rejected.capacity, 2);
            assert_eq!(r.rejected.depth, 2, "rejection reports the observed queue state");
            assert_eq!(r.request.spec.query.len(), 200, "request comes back untouched");
        }
        other => panic!("expected rejection, got {}", submit_name(&other)),
    }
    // A timed submission gives up too while the queue stays full.
    assert!(matches!(
        service.submit_timeout(quick(), Duration::from_millis(10)),
        Submit::Rejected(_)
    ));
    // A turned-away append hands the points back unconsumed.
    let rejected = match service.append(id, vec![1.0, 2.0, 3.0], Duration::from_millis(5)) {
        Err(rejected) => rejected,
        Ok(_) => panic!("append into a full queue must be rejected"),
    };
    assert!(rejected.is_retryable());
    assert_eq!(
        rejected.rejected,
        kvmatch_serve::Rejected {
            kind: kvmatch_serve::RejectKind::Backpressure,
            capacity: 2,
            depth: 2,
            shard: 0
        },
        "append rejection carries the same shape as query rejection"
    );
    assert_eq!(rejected.points, vec![1.0, 2.0, 3.0], "points come back for retry");
    assert_eq!(service.metrics().rejected, 3);
    assert_eq!(service.metrics().queue_depth, 2);
    // Everything admitted is eventually served.
    assert!(h_heavy.wait().is_ok());
    assert!(q1.wait().is_ok());
    assert!(q2.wait().is_ok());
    assert!(q3.wait().is_ok());
    service.shutdown();
}

fn submit_name(s: &Submit) -> &'static str {
    match s {
        Submit::Accepted(_) => "Accepted",
        Submit::Rejected(_) => "Rejected",
    }
}

#[test]
fn appends_are_ordered_with_queries() {
    let id = SeriesId::new(1);
    let xs = composite_series(51, 3_000);
    let service = QueryService::builder(catalog_with(&[(id, xs.clone())]))
        .max_batch_delay(Duration::from_millis(20))
        .build()
        .expect("valid topology");
    let fresh = composite_series(52, 400);
    // Submit an append and, behind it, a query for the appended points —
    // the append is a barrier, so the query must see them.
    let ack = service.append(id, fresh.clone(), Duration::from_secs(1)).unwrap();
    let probe =
        QueryRequest::range(QuerySpec::rsm_ed(fresh[50..300].to_vec(), 1e-9).with_series(id));
    let h = service.submit(probe).into_result().expect("submission accepted");
    ack.wait().unwrap();
    let resp = h.wait().unwrap();
    assert!(
        resp.results.iter().any(|r| r.offset == 3_050),
        "query behind the append must see appended points: {:?}",
        resp.results
    );
    assert_eq!(service.metrics().appends, 1);
    let catalog = service.shutdown();
    assert_eq!(catalog.series_len(id), Some(3_400));
}

#[test]
fn explain_returns_spans_and_mirrors_stats_without_changing_results() {
    let id = SeriesId::new(1);
    let xs = composite_series(71, 6_000);
    let service =
        QueryService::builder(catalog_with(&[(id, xs.clone())])).build().expect("valid topology");
    let spec = QuerySpec::rsm_dtw(xs[700..950].to_vec(), 10.0, 5).with_series(id);

    let plain = service
        .submit(QueryRequest::range(spec.clone()))
        .into_result()
        .expect("submission accepted")
        .wait()
        .expect("served");
    assert!(plain.explain.is_none(), "no explain flag, no report");

    let explained = service
        .submit(QueryRequest::range(spec.with_explain(true)))
        .into_result()
        .expect("submission accepted")
        .wait()
        .expect("served");
    assert_eq!(explained.results, plain.results, "explain must not perturb results");

    let report = explained.explain.as_deref().expect("explain flag yields a report");
    assert_ne!(report.trace_id, 0);
    let span = |name: &str| report.spans.iter().find(|s| s.name == name);
    let queue = span("serve.queue").expect("queue span recorded");
    let execute = span("serve.execute").expect("execute span recorded");
    assert_eq!(report.queue_nanos, queue.nanos);
    assert_eq!(report.execute_nanos, execute.nanos);
    assert!(execute.nanos > 0, "execution takes measurable time");

    // The report's prune accounting is the executor's, verbatim.
    let stats = &explained.stats;
    assert_eq!(report.probe_nanos, stats.phase1_nanos);
    assert_eq!(report.pruned_constraint, stats.pruned_constraint);
    assert_eq!(report.pruned_lb_kim, stats.pruned_lb_kim);
    assert_eq!(report.pruned_lb_keogh, stats.pruned_lb_keogh);
    assert_eq!(report.full_distance_computations, stats.full_distance_computations);
    assert_eq!(report.rows_scanned, stats.rows_scanned);
    assert_eq!(report.alloc_events, stats.alloc_events);

    // The service scrape exposes the serving families and the slow log
    // has seen both queries (capacity permitting).
    let text = service.metrics_text();
    assert!(text.contains("# TYPE kvmatch_serve_completed_total counter"), "{text}");
    assert!(text.contains("kvmatch_serve_latency_us_count"), "{text}");
    assert!(text.contains("# slowlog"), "{text}");
    service.shutdown();
}

#[test]
fn shutdown_serves_admitted_requests_and_closes_admissions() {
    let id = SeriesId::new(1);
    let xs = composite_series(61, 3_000);
    let service =
        QueryService::builder(catalog_with(&[(id, xs.clone())])).build().expect("valid topology");
    let spec = QuerySpec::rsm_ed(xs[200..400].to_vec(), 4.0).with_series(id);
    let handles: Vec<_> = (0..5)
        .map(|_| {
            service
                .submit(QueryRequest::range(spec.clone()))
                .into_result()
                .expect("submission accepted")
        })
        .collect();
    let want = expected(&xs, &spec);
    let catalog = service.shutdown();
    for h in handles {
        assert_eq!(h.wait().expect("admitted work is drained").results, want);
    }
    // The catalog comes back usable.
    assert_eq!(catalog.series_len(id), Some(3_000));
}
