//! The acceptance stress test: ≥ 8 concurrent submitter threads drive a
//! mixed range + top-k workload over multiple series through one
//! [`QueryService`], under a deliberately undersized admission queue.
//!
//! Asserts, for every single request:
//! * the served result is **bit-identical** to a direct sequential
//!   [`KvMatcher`] run over the same (appender-built) layout;
//! * nothing deadlocks (the test finishes — every retry loop converges);
//! * bounded-queue rejection is observed and counted once offered load
//!   exceeds capacity, and the service's rejection counter agrees with
//!   the submitters' own tally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kvmatch_core::{
    Catalog, IndexAppender, IndexBuildConfig, KvMatcher, MatchResult, MemoryCatalogBackend,
    QuerySpec, SeriesId,
};
use kvmatch_serve::{QueryRequest, QueryService, Submit};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::MemorySeriesStore;
use kvmatch_timeseries::generator::composite_series;

const SUBMITTERS: usize = 8;
const REQUESTS_PER_THREAD: usize = 24;

#[test]
fn eight_submitters_mixed_workload_bit_identical_with_backpressure() {
    // Three series of different lengths and content.
    let ids = [SeriesId::new(1), SeriesId::new(4), SeriesId::new(9)];
    let series: Vec<Vec<f64>> = vec![
        composite_series(101, 6_000),
        composite_series(102, 5_000),
        composite_series(103, 7_000),
    ];

    let mut catalog = Catalog::new(MemoryCatalogBackend);
    for (id, xs) in ids.iter().zip(&series) {
        catalog.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
    }

    // The request pool: per series, a rotation of range-ED, top-k-ED,
    // range-DTW, top-k-cNSM — with a planted duplicate so top-k tie
    // handling is exercised under concurrency.
    let mut pool: Vec<QueryRequest> = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&series).enumerate() {
        for k in 0..4usize {
            let at = 400 + 911 * k + 137 * i;
            let q = xs[at..at + 200].to_vec();
            let req = match k % 4 {
                0 => QueryRequest::range(QuerySpec::rsm_ed(q, 10.0).with_series(*id)),
                1 => QueryRequest::top_k(QuerySpec::rsm_ed(q, 50.0).with_series(*id), 3),
                2 => QueryRequest::range(QuerySpec::rsm_dtw(q, 6.0, 5).with_series(*id)),
                _ => QueryRequest::top_k(QuerySpec::cnsm_ed(q, 3.0, 1.5, 4.0).with_series(*id), 4),
            };
            pool.push(req);
        }
    }

    // Ground truth: a dedicated sequential matcher per series, over the
    // same appender-built index layout the catalog materializes.
    let expected: Vec<Vec<MatchResult>> = pool
        .iter()
        .map(|req| {
            let i = ids.iter().position(|id| *id == req.spec.series).unwrap();
            let mut app = IndexAppender::new(IndexBuildConfig::new(50));
            app.push_chunk(&series[i]);
            let (idx, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
            let data = MemorySeriesStore::new(series[i].clone());
            let (want, _) = KvMatcher::new(&idx, &data).unwrap().execute(&req.spec).unwrap();
            want
        })
        .collect();

    // Undersized queue: 8 threads × 24 requests against 4 slots — the
    // non-blocking first attempt must hit a full queue somewhere.
    let service = QueryService::builder(catalog)
        .queue_capacity(4)
        .max_batch(4)
        .max_batch_delay(Duration::from_millis(1))
        .build()
        .expect("valid topology");

    let local_rejections = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let service = &service;
            let pool = &pool;
            let expected = &expected;
            let local_rejections = &local_rejections;
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_THREAD {
                    let which = (t * 7 + r) % pool.len();
                    // Submit with retry: the non-blocking attempt counts
                    // rejections, the timed fallback loops until admitted
                    // (convergence doubles as the deadlock check).
                    let mut request = pool[which].clone();
                    let handle = loop {
                        match service.submit(request) {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(r) if r.is_retryable() => {
                                local_rejections.fetch_add(1, Ordering::Relaxed);
                                request = r.request;
                            }
                            Submit::Rejected(_) => panic!("service closed mid-test"),
                        }
                        match service.submit_timeout(request, Duration::from_millis(50)) {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(r) if r.is_retryable() => {
                                local_rejections.fetch_add(1, Ordering::Relaxed);
                                request = r.request;
                            }
                            Submit::Rejected(_) => panic!("service closed mid-test"),
                        }
                    };
                    let response = handle.wait().expect("admitted requests are served");
                    assert_eq!(
                        response.results, expected[which],
                        "thread {t} request {r} (pool #{which}) diverged from the \
                         sequential matcher"
                    );
                }
            });
        }
    });

    let m = service.metrics();
    let offered = (SUBMITTERS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(m.completed, offered, "every request must be answered exactly once");
    assert_eq!(m.submitted, offered, "retries are not double-admitted");
    assert!(
        m.rejected > 0,
        "offered load over a 4-slot queue must trip admission control at least once"
    );
    assert_eq!(
        m.rejected,
        local_rejections.load(Ordering::Relaxed),
        "service rejection counter must agree with the submitters' tally"
    );
    assert!(m.batches >= 1 && m.avg_batch_occupancy >= 1.0);
    assert!(m.max_batch_occupancy <= 4, "scheduler must honour max_batch");
    assert_eq!(m.failed, 0);
    assert_eq!(m.expired, 0);
    assert!(m.latency_p50_us <= m.latency_p95_us && m.latency_p95_us <= m.latency_p99_us);
    service.shutdown();
}

/// Concurrent submitters and live appends: streamed points become
/// queryable and never corrupt concurrent answers.
#[test]
fn concurrent_appends_and_queries_stay_consistent() {
    let id = SeriesId::new(2);
    let base = composite_series(201, 4_000);
    let tail = composite_series(202, 2_000);
    let mut catalog = Catalog::new(MemoryCatalogBackend);
    catalog.create_series_with(id, IndexBuildConfig::new(50), &base).unwrap();
    let service =
        QueryService::builder(catalog).queue_capacity(64).build().expect("valid topology");

    // The probe targets base data only: its answer must be a superset-
    // stable prefix regardless of how much of the tail has landed. Use a
    // query whose matches all live in the base region.
    let probe_spec = QuerySpec::rsm_ed(base[1_000..1_200].to_vec(), 1e-9).with_series(id);

    std::thread::scope(|scope| {
        // One appender streams the tail in chunks.
        let svc = &service;
        let tail_ref = &tail;
        scope.spawn(move || {
            for chunk in tail_ref.chunks(250) {
                svc.append(id, chunk.to_vec(), Duration::from_secs(5))
                    .expect("append admitted")
                    .wait()
                    .expect("append applied");
            }
        });
        // Eight query threads hammer the self-match probe throughout.
        for _ in 0..8 {
            let svc = &service;
            let spec = probe_spec.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    let resp = svc
                        .submit_timeout(QueryRequest::range(spec.clone()), Duration::from_secs(5))
                        .into_result()
                        .expect("submission accepted")
                        .wait()
                        .expect("query served");
                    assert!(
                        resp.results.iter().any(|r| r.offset == 1_000),
                        "self-match lost during concurrent ingestion"
                    );
                }
            });
        }
    });

    // After shutdown the handed-back catalog holds the full stream, and
    // the tail is queryable.
    let mut catalog = service.shutdown();
    assert_eq!(catalog.series_len(id), Some(6_000));
    let tail_probe = QuerySpec::rsm_ed(tail[500..700].to_vec(), 1e-9).with_series(id);
    let batch = catalog.execute_batch(std::slice::from_ref(&tail_probe)).unwrap();
    assert!(
        batch.outputs[0].results.iter().any(|r| r.offset == 4_500),
        "appended tail must be queryable after shutdown"
    );
}
