//! Multi-worker correctness suite.
//!
//! * 8 concurrent submitters against a 4-worker pool must produce, for
//!   every single request, results **bit-identical** to the same request
//!   served by a single-worker pool (and to the sequential matcher).
//! * Appends act as ordering barriers **for their own series only**: a
//!   query behind an append sees its points, while a query on another
//!   series flows through the pool without waiting for ingestion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kvmatch_core::{
    Catalog, IndexAppender, IndexBuildConfig, KvMatcher, MatchResult, MemoryCatalogBackend,
    QuerySpec, SeriesId,
};
use kvmatch_serve::{QueryRequest, QueryService, Submit};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::MemorySeriesStore;
use kvmatch_timeseries::generator::composite_series;

const SUBMITTERS: usize = 8;
const REQUESTS_PER_THREAD: usize = 24;

fn fixture() -> (Vec<SeriesId>, Vec<Vec<f64>>, Vec<QueryRequest>) {
    // Four series so a 4-worker pool can be fully utilized.
    let ids = [SeriesId::new(1), SeriesId::new(3), SeriesId::new(5), SeriesId::new(8)];
    let series: Vec<Vec<f64>> = vec![
        composite_series(301, 6_000),
        composite_series(302, 5_000),
        composite_series(303, 7_000),
        composite_series(304, 4_500),
    ];
    // Mixed pool: every query type, every series, with planted top-k
    // ties so deterministic tie-breaking is exercised across workers.
    let mut pool = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&series).enumerate() {
        for k in 0..4usize {
            let at = 350 + 823 * k + 151 * i;
            let q = xs[at..at + 200].to_vec();
            let req = match k % 4 {
                0 => QueryRequest::range(QuerySpec::rsm_ed(q, 10.0).with_series(*id)),
                1 => QueryRequest::top_k(QuerySpec::rsm_ed(q, 50.0).with_series(*id), 3),
                2 => QueryRequest::range(QuerySpec::rsm_dtw(q, 6.0, 5).with_series(*id)),
                _ => QueryRequest::top_k(QuerySpec::cnsm_ed(q, 3.0, 1.5, 4.0).with_series(*id), 4),
            };
            pool.push(req);
        }
    }
    (ids.to_vec(), series, pool)
}

fn catalog_over(
    ids: &[SeriesId],
    series: &[Vec<f64>],
    workers: usize,
) -> QueryService<MemoryCatalogBackend> {
    let mut catalog = Catalog::new(MemoryCatalogBackend);
    for (id, xs) in ids.iter().zip(series) {
        catalog.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
    }
    QueryService::builder(catalog)
        .queue_capacity(8)
        .max_batch(8)
        .max_batch_delay(Duration::from_millis(1))
        .workers(workers)
        .build()
        .expect("valid topology")
}

/// Drives the whole pool through `service` once per entry, serially, and
/// collects per-entry results — the single-worker reference answers.
fn reference_answers(
    service: &QueryService<MemoryCatalogBackend>,
    pool: &[QueryRequest],
) -> Vec<Vec<MatchResult>> {
    pool.iter()
        .map(|req| {
            let handle = loop {
                match service.submit_timeout(req.clone(), Duration::from_secs(5)) {
                    Submit::Accepted(h) => break h,
                    Submit::Rejected(r) if r.is_retryable() => continue,
                    Submit::Rejected(_) => panic!("service closed"),
                }
            };
            handle.wait().expect("reference request served").results
        })
        .collect()
}

#[test]
fn four_workers_bit_identical_with_single_worker() {
    let (ids, series, pool) = fixture();

    // Reference 1: the sequential matcher over the same appender-built
    // layout the catalog materializes.
    let sequential: Vec<Vec<MatchResult>> = pool
        .iter()
        .map(|req| {
            let i = ids.iter().position(|id| *id == req.spec.series).unwrap();
            let mut app = IndexAppender::new(IndexBuildConfig::new(50));
            app.push_chunk(&series[i]);
            let (idx, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
            let data = MemorySeriesStore::new(series[i].clone());
            let (want, _) = KvMatcher::new(&idx, &data).unwrap().execute(&req.spec).unwrap();
            want
        })
        .collect();

    // Reference 2: the same requests through a single-worker service.
    let single = catalog_over(&ids, &series, 1);
    let single_answers = reference_answers(&single, &pool);
    single.shutdown();
    for (i, (got, want)) in single_answers.iter().zip(&sequential).enumerate() {
        assert_eq!(got, want, "single-worker service diverged from sequential (pool #{i})");
    }

    // Stress: 8 submitters hammer a 4-worker pool with the same pool.
    let service = catalog_over(&ids, &series, 4);
    assert_eq!(service.workers(), 4);
    let local_rejections = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let service = &service;
            let pool = &pool;
            let single_answers = &single_answers;
            let local_rejections = &local_rejections;
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_THREAD {
                    let which = (t * 5 + r) % pool.len();
                    let mut request = pool[which].clone();
                    let handle = loop {
                        match service.submit(request) {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(r) if r.is_retryable() => {
                                local_rejections.fetch_add(1, Ordering::Relaxed);
                                request = r.request;
                            }
                            Submit::Rejected(_) => panic!("service closed mid-test"),
                        }
                        match service.submit_timeout(request, Duration::from_millis(50)) {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(r) if r.is_retryable() => {
                                local_rejections.fetch_add(1, Ordering::Relaxed);
                                request = r.request;
                            }
                            Submit::Rejected(_) => panic!("service closed mid-test"),
                        }
                    };
                    let response = handle.wait().expect("admitted requests are served");
                    assert_eq!(
                        response.results, single_answers[which],
                        "thread {t} request {r} (pool #{which}): 4-worker result diverged \
                         from the single-worker answer"
                    );
                }
            });
        }
    });

    let m = service.metrics();
    let offered = (SUBMITTERS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(m.completed, offered, "every request answered exactly once");
    assert_eq!(m.submitted, offered);
    assert_eq!(
        m.rejected,
        local_rejections.load(Ordering::Relaxed),
        "rejection counter agrees with the submitters' tally"
    );
    assert_eq!(m.failed, 0);
    assert_eq!(m.expired, 0);
    assert_eq!(m.expired_exec, 0);
    // The per-worker split accounts for every dispatched shard/query.
    assert_eq!(m.workers.len(), 4);
    assert_eq!(m.workers.iter().map(|w| w.batches).sum::<u64>(), m.batches);
    assert_eq!(m.workers.iter().map(|w| w.queries).sum::<u64>(), m.batched_queries);
    assert!(m.workers.iter().any(|w| w.busy_us > 0), "somebody must have done the work");
    assert!(m.max_batch_occupancy <= 8, "shards never exceed max_batch");
    service.shutdown();
}

/// Appends barrier their own series; other series' queries flow past.
#[test]
fn appends_barrier_own_series_while_other_series_flow() {
    let a = SeriesId::new(1);
    let b = SeriesId::new(2);
    let base_a = composite_series(401, 4_000);
    let base_b = composite_series(402, 4_000);
    let mut catalog = Catalog::new(MemoryCatalogBackend);
    catalog.create_series_with(a, IndexBuildConfig::new(50), &base_a).unwrap();
    catalog.create_series_with(b, IndexBuildConfig::new(50), &base_b).unwrap();
    // A generous batching window so the append, the query behind it and
    // the other-series query land in one micro-batch.
    let service = QueryService::builder(catalog)
        .max_batch_delay(Duration::from_millis(25))
        .workers(2)
        .build()
        .expect("valid topology");

    // A heavy ingest burst on series a...
    let tail: Vec<Vec<f64>> = (0..8).map(|i| composite_series(410 + i, 10_000)).collect();
    let acks: Vec<_> = tail
        .iter()
        .map(|chunk| service.append(a, chunk.clone(), Duration::from_secs(10)).unwrap())
        .collect();
    // ...then a query on a (must observe every appended point) and a
    // query on b (must not wait for the ingestion).
    let last = tail.last().unwrap();
    let probe_a =
        QueryRequest::range(QuerySpec::rsm_ed(last[9_700..9_950].to_vec(), 1e-9).with_series(a));
    let probe_b =
        QueryRequest::range(QuerySpec::rsm_ed(base_b[700..900].to_vec(), 1e-9).with_series(b));
    let h_a = service
        .submit_timeout(probe_a, Duration::from_secs(10))
        .into_result()
        .expect("submission accepted");
    let h_b = service
        .submit_timeout(probe_b, Duration::from_secs(10))
        .into_result()
        .expect("submission accepted");

    let resp_b = h_b.wait().expect("series-b query served");
    let resp_a = h_a.wait().expect("series-a query served");
    for ack in acks {
        ack.wait().expect("append applied");
    }

    // Barrier: the query behind the appends sees the very last chunk
    // (offset 4_000 + 7·10_000 + 9_700 into the full stream).
    assert!(
        resp_a.results.iter().any(|r| r.offset == 4_000 + 7 * 10_000 + 9_700),
        "query behind the appends must see every appended point: {:?}",
        resp_a.results
    );
    assert!(resp_b.results.iter().any(|r| r.offset == 700), "series-b self-match lost");
    // Flow: b's query — submitted *after* a's — was not held behind a's
    // ingest barrier. Its latency must undercut the barriered query's,
    // which had to wait for all eight appends to land and materialize.
    assert!(
        resp_b.latency < resp_a.latency,
        "other-series query should not wait for the ingest barrier \
         (b: {:?}, a: {:?})",
        resp_b.latency,
        resp_a.latency
    );

    let m = service.metrics();
    assert_eq!(m.appends, 8);
    assert_eq!(m.completed, 2);
    assert!(m.ingest_depth_peak >= 1, "the ingest lane carried the appends");

    // And the handed-back catalog holds the full stream.
    let catalog = service.shutdown();
    assert_eq!(catalog.series_len(a), Some(4_000 + 80_000));
    assert_eq!(catalog.series_len(b), Some(4_000));
}
