//! Shard-per-core scale-out correctness suite.
//!
//! * A mixed-series batch scattered across a 4-shard service must come
//!   back **bit-identical** to the same batch through a 1-shard service
//!   and to dedicated sequential matchers — identity-preserving
//!   fan-back across the router.
//! * The router is total: an unknown series scatters cleanly, fails
//!   inside its shard as `UnknownSeries`, and its batchmates succeed.
//! * Backpressure is per shard: a saturated shard rejects with its own
//!   id while the other shards keep accepting — and a shard whose
//!   catalog write lock is parked mid-seal never slows another shard's
//!   readers (the steady-state query path takes no `RwLock<Catalog>`
//!   at all, and no cross-shard lock exists to contend on).
//! * A failing backend on one shard surfaces on that shard's appends
//!   and metrics only; the rest of the keyspace keeps serving.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use kvmatch_core::catalog::{CatalogBackend, GenerationInput};
use kvmatch_core::{
    Catalog, CoreError, IndexAppender, IndexBuildConfig, KvMatcher, MatchResult,
    MemoryCatalogBackend, QuerySpec, ReadView, SeriesId,
};
use kvmatch_serve::{
    ConfigError, QueryRequest, QueryService, RejectKind, Rejected, Router, ServeError, Submit,
};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::MemorySeriesStore;
use kvmatch_timeseries::generator::composite_series;

const SHARDS: usize = 4;

/// Eight series whose ids cover every residue mod 4, so a 4-shard
/// router puts exactly two series on every shard.
fn fixture() -> (Vec<SeriesId>, Vec<Vec<f64>>, Vec<QueryRequest>) {
    let ids: Vec<SeriesId> = (1..=8).map(SeriesId::new).collect();
    let series: Vec<Vec<f64>> =
        (0..8).map(|i| composite_series(701 + i as u64, 3_000 + 500 * i)).collect();
    let mut pool = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&series).enumerate() {
        for k in 0..3usize {
            let at = 250 + 677 * k + 131 * i;
            let q = xs[at..at + 180].to_vec();
            let req = match k % 3 {
                0 => QueryRequest::range(QuerySpec::rsm_ed(q, 8.0).with_series(*id)),
                1 => QueryRequest::top_k(QuerySpec::rsm_ed(q, 40.0).with_series(*id), 3),
                _ => QueryRequest::range(QuerySpec::rsm_dtw(q, 5.0, 5).with_series(*id)),
            };
            pool.push(req);
        }
    }
    (ids, series, pool)
}

fn service_over(
    ids: &[SeriesId],
    series: &[Vec<f64>],
    shards: usize,
) -> QueryService<MemoryCatalogBackend> {
    let mut catalog = Catalog::new(MemoryCatalogBackend);
    for (id, xs) in ids.iter().zip(series) {
        catalog.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
    }
    QueryService::builder(catalog)
        .shards(shards)
        .workers(2)
        .max_batch_delay(Duration::from_millis(2))
        .build()
        .expect("valid topology")
}

fn sequential_answers(
    ids: &[SeriesId],
    series: &[Vec<f64>],
    pool: &[QueryRequest],
) -> Vec<Vec<MatchResult>> {
    pool.iter()
        .map(|req| {
            let i = ids.iter().position(|id| *id == req.spec.series).unwrap();
            let mut app = IndexAppender::new(IndexBuildConfig::new(50));
            app.push_chunk(&series[i]);
            let (idx, _) = app.finish_into(MemoryKvStoreBuilder::new()).unwrap();
            let data = MemorySeriesStore::new(series[i].clone());
            let (want, _) = KvMatcher::new(&idx, &data).unwrap().execute(&req.spec).unwrap();
            want
        })
        .collect()
}

/// Scatters the whole pool as one mixed-series batch and gathers the
/// input-aligned outcomes (retrying rejected entries individually).
fn batch_answers(
    service: &QueryService<MemoryCatalogBackend>,
    pool: &[QueryRequest],
) -> Vec<Vec<MatchResult>> {
    let handles: Vec<_> = service
        .submit_batch(pool.to_vec())
        .into_iter()
        .map(|submit| match submit {
            Submit::Accepted(h) => h,
            Submit::Rejected(r) => loop {
                match service.submit_timeout(r.request.clone(), Duration::from_secs(5)) {
                    Submit::Accepted(h) => break h,
                    Submit::Rejected(r) if r.is_retryable() => continue,
                    Submit::Rejected(_) => panic!("service closed"),
                }
            },
        })
        .collect();
    handles.into_iter().map(|h| h.wait().expect("batch entry served").results).collect()
}

/// The tentpole acceptance: mixed-series batches through 4 shards,
/// through 1 shard, and through dedicated sequential matchers produce
/// byte-for-byte identical results — and the per-shard metric families
/// account for exactly the traffic the router assigned them.
#[test]
fn four_shard_scatter_gather_is_bit_identical() {
    let (ids, series, pool) = fixture();
    let sequential = sequential_answers(&ids, &series, &pool);

    let single = service_over(&ids, &series, 1);
    assert_eq!(single.shards(), 1);
    let single_answers = batch_answers(&single, &pool);
    single.shutdown();
    for (i, (got, want)) in single_answers.iter().zip(&sequential).enumerate() {
        assert_eq!(got, want, "1-shard service diverged from sequential (pool #{i})");
    }

    let sharded = service_over(&ids, &series, SHARDS);
    assert_eq!(sharded.shards(), SHARDS);
    assert_eq!(sharded.workers(), SHARDS * 2, "2 workers per shard");
    // Three rounds of the full mixed batch, so every shard sees repeat
    // traffic under concurrent scatter.
    for round in 0..3 {
        let sharded_answers = batch_answers(&sharded, &pool);
        for (i, (got, want)) in sharded_answers.iter().zip(&single_answers).enumerate() {
            assert_eq!(
                got, want,
                "round {round}: 4-shard result diverged from the 1-shard answer (pool #{i})"
            );
        }
    }

    // Fan-back preserved identity, and the shard label space accounts
    // for every request: per-shard counters sum to the globals, and
    // each shard's submitted count is exactly the pool share the
    // router assigned it.
    let m = sharded.metrics();
    assert_eq!(m.completed, (pool.len() * 3) as u64);
    assert_eq!(m.shards.len(), SHARDS);
    assert_eq!(m.shards.iter().map(|s| s.submitted).sum::<u64>(), m.submitted);
    assert_eq!(m.shards.iter().map(|s| s.completed).sum::<u64>(), m.completed);
    assert_eq!(m.shards.iter().map(|s| s.batches).sum::<u64>(), m.batches);
    let router = sharded.router();
    for shard in 0..SHARDS {
        let assigned =
            pool.iter().filter(|req| router.route(req.spec.series) == shard).count() as u64;
        assert_eq!(
            m.shards[shard].submitted,
            assigned * 3,
            "shard {shard} must see exactly its routed share"
        );
    }

    // The unified read path: every series resolves to its owning
    // shard's published snapshot, and the `ReadView` trait answers
    // through it without touching the service pipeline.
    for (id, xs) in ids.iter().zip(&series) {
        let view = sharded.read_view(*id).expect("owning shard has published");
        assert!(view.contains_series(*id));
        let spec = QuerySpec::rsm_ed(xs[100..280].to_vec(), 1e-9).with_series(*id);
        let out = view.execute(std::slice::from_ref(&spec)).expect("view executes");
        assert!(
            out.outputs[0].results.iter().any(|r| r.offset == 100),
            "read view lost the planted match"
        );
    }
    assert!(
        sharded.read_view(SeriesId::new(999)).is_none() || {
            // Series 999 routes to some shard; its snapshot exists but must
            // not claim to contain the unknown series.
            !sharded.read_view(SeriesId::new(999)).unwrap().contains_series(SeriesId::new(999))
        }
    );

    // The reassembled catalog holds every series.
    let catalog = sharded.shutdown();
    for (id, xs) in ids.iter().zip(&series) {
        assert_eq!(catalog.series_len(*id), Some(xs.len()));
    }
}

/// The router is total: unknown series scatter to a shard like any
/// other id and fail there as `UnknownSeries`, without disturbing the
/// batchmates sharing the scatter.
#[test]
fn unknown_series_fails_in_its_shard_while_batchmates_succeed() {
    let (ids, series, pool) = fixture();
    let sequential = sequential_answers(&ids, &series, &pool);
    let service = service_over(&ids, &series, SHARDS);

    let ghost = SeriesId::new(42);
    let mut batch = pool.clone();
    batch.insert(
        2,
        QueryRequest::range(QuerySpec::rsm_ed(series[0][50..250].to_vec(), 1.0).with_series(ghost)),
    );
    let handles: Vec<_> = service
        .submit_batch(batch)
        .into_iter()
        .map(|s| s.into_result().expect("scatter admits every entry"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait();
        if i == 2 {
            match outcome {
                Err(ServeError::Query(CoreError::UnknownSeries(id))) => assert_eq!(id, ghost),
                other => panic!("ghost entry must fail as UnknownSeries, got {other:?}"),
            }
        } else {
            let want = &sequential[if i < 2 { i } else { i - 1 }];
            assert_eq!(
                &outcome.expect("batchmate served").results,
                want,
                "batchmate #{i} disturbed by the ghost entry"
            );
        }
    }
    let m = service.metrics();
    assert_eq!(m.failed, 1, "exactly the ghost entry failed");
    assert_eq!(m.completed, pool.len() as u64);
    service.shutdown();
}

/// Once armed for a series, the owning shard's next `seal_generation`
/// parks until released. Cloned per shard (`shard_instance`), sharing
/// the gate — only the shard that ingests the gated series ever parks.
#[derive(Clone)]
struct ShardGatedBackend {
    inner: MemoryCatalogBackend,
    gate: Arc<SealGate>,
    gated: SeriesId,
}

#[derive(Default)]
struct SealGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    armed: bool,
    sealing: bool,
    released: bool,
}

impl SealGate {
    fn arm(&self) {
        self.state.lock().unwrap().armed = true;
    }

    fn wait_until_sealing(&self) {
        let mut s = self.state.lock().unwrap();
        while !s.sealing {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn is_sealing(&self) -> bool {
        self.state.lock().unwrap().sealing
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.released = true;
        s.armed = false;
        self.cv.notify_all();
    }

    fn enter(&self) {
        let mut s = self.state.lock().unwrap();
        if !s.armed {
            return;
        }
        s.sealing = true;
        self.cv.notify_all();
        while !s.released {
            s = self.cv.wait(s).unwrap();
        }
        s.sealing = false;
    }
}

impl CatalogBackend for ShardGatedBackend {
    type Store = <MemoryCatalogBackend as CatalogBackend>::Store;
    type Data = <MemoryCatalogBackend as CatalogBackend>::Data;

    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError> {
        if input.series == self.gated {
            self.gate.enter();
        }
        self.inner.seal_generation(input)
    }

    fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        self.inner.data_store(series, xs)
    }

    fn shard_instance(&self) -> Option<Self> {
        Some(self.clone())
    }
}

/// The no-cross-shard-coupling acceptance, in the snapshot-stall style:
/// one shard's ingest parks mid-seal *holding that shard's catalog
/// write lock*, its query lane backs up behind the per-series epoch
/// barrier until admission rejects — naming the saturated shard — and
/// the other shards' readers flow the whole time. Queries on healthy
/// shards complete while the gated shard's write lock is provably still
/// held, so the steady-state query path cannot be taking any
/// `RwLock<Catalog>` shared across shards.
#[test]
fn saturated_shard_rejects_with_its_id_while_others_serve() {
    // Series 1..=4 cover all four shards; series 1 (shard 1) is gated.
    let ids: Vec<SeriesId> = (1..=4).map(SeriesId::new).collect();
    let series: Vec<Vec<f64>> = (0..4).map(|i| composite_series(801 + i, 4_000)).collect();
    let gated = ids[0];
    let gate = Arc::new(SealGate::default());
    let backend = ShardGatedBackend { inner: MemoryCatalogBackend, gate: Arc::clone(&gate), gated };
    let mut catalog = Catalog::new(backend);
    for (id, xs) in ids.iter().zip(&series) {
        catalog.create_series_with(*id, IndexBuildConfig::new(50), xs).unwrap();
    }
    // Tiny per-shard lanes with one worker each: once the gated shard's
    // worker parks at the epoch barrier, a handful of queued queries
    // saturates its admission.
    let queue_capacity = 4;
    let service = QueryService::builder(catalog)
        .shards(SHARDS)
        .workers(1)
        .queue_capacity(queue_capacity)
        .max_batch(4)
        .max_batch_delay(Duration::ZERO)
        .build()
        .expect("valid topology");
    let router = *service.router();
    let gated_shard = router.route(gated);

    // Park the gated shard's ingest mid-seal.
    gate.arm();
    let tail = composite_series(899, 2_000);
    let ack = service.append(gated, tail.clone(), Duration::from_secs(10)).expect("admitted");
    gate.wait_until_sealing();

    // Fill the gated shard's lane with queries barriered behind the
    // append until admission pushes back. The rejection names the shard.
    let probe = || {
        QueryRequest::range(
            QuerySpec::rsm_ed(series[0][300..500].to_vec(), 1e-9).with_series(gated),
        )
    };
    let mut parked = Vec::new();
    let rejection: Rejected = loop {
        match service.submit(probe()) {
            Submit::Accepted(h) => parked.push(h),
            Submit::Rejected(r) if r.is_retryable() => break r.rejected,
            Submit::Rejected(_) => panic!("service closed mid-test"),
        }
        assert!(
            parked.len() <= 3 * queue_capacity,
            "the gated shard's pipeline must be bounded (queue + one in-flight batch)"
        );
    };
    assert_eq!(rejection.kind, RejectKind::Backpressure);
    assert_eq!(
        rejection.shard, gated_shard,
        "the rejection must name the saturated shard, not the service"
    );
    assert_eq!(rejection.capacity, queue_capacity);

    // Every OTHER shard accepts and serves while the gated shard is
    // still parked — proving per-shard admission and a query path free
    // of cross-shard locking (shard 1's catalog write lock is held by
    // the parked seal the whole time).
    for (i, id) in ids.iter().enumerate().skip(1) {
        let other = QueryRequest::range(
            QuerySpec::rsm_ed(series[i][700..900].to_vec(), 1e-9).with_series(*id),
        );
        let resp = service
            .submit_timeout(other, Duration::from_secs(10))
            .into_result()
            .unwrap_or_else(|r| panic!("healthy shard {} rejected: {r:?}", router.route(*id)))
            .wait_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("healthy-shard query starved behind another shard's stall"))
            .expect("healthy-shard query succeeded");
        assert!(resp.results.iter().any(|r| r.offset == 700));
    }
    assert!(gate.is_sealing(), "seal released early; the independence assertions proved nothing");

    // Release: the ack lands, the parked queries drain with post-append
    // answers, and the whole keyspace is intact on shutdown.
    gate.release();
    ack.wait().expect("append applied");
    for handle in parked {
        let resp = handle.wait().expect("barriered query served after release");
        assert!(resp.results.iter().any(|r| r.offset == 300));
    }

    let m = service.metrics();
    assert!(m.rejected >= 1);
    assert_eq!(
        m.shards[gated_shard].rejected, m.rejected,
        "every rejection came from the gated shard"
    );
    for (i, shard) in m.shards.iter().enumerate() {
        if i != gated_shard {
            assert_eq!(shard.rejected, 0, "healthy shard {i} must not have pushed back");
        }
    }
    let catalog = service.shutdown();
    assert_eq!(catalog.series_len(gated), Some(4_000 + 2_000));
}

/// A backend that fails every seal of one series — cloned per shard, so
/// exactly one shard's ingest goes bad.
#[derive(Clone)]
struct ShardFailingBackend {
    inner: MemoryCatalogBackend,
    poisoned: SeriesId,
}

impl CatalogBackend for ShardFailingBackend {
    type Store = <MemoryCatalogBackend as CatalogBackend>::Store;
    type Data = <MemoryCatalogBackend as CatalogBackend>::Data;

    fn seal_generation(&mut self, input: GenerationInput<'_>) -> Result<Self::Store, CoreError> {
        if input.series == self.poisoned {
            return Err(CoreError::CorruptIndex("injected shard failure".into()));
        }
        self.inner.seal_generation(input)
    }

    fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
        self.inner.data_store(series, xs)
    }

    fn shard_instance(&self) -> Option<Self> {
        Some(self.clone())
    }
}

/// Shard-failure isolation: a backend failure on one shard surfaces on
/// that shard's acks and its labelled metrics; appends and queries on
/// every other shard keep working untouched.
#[test]
fn shard_failure_stays_on_its_shard() {
    let ids: Vec<SeriesId> = (1..=4).map(SeriesId::new).collect();
    let poisoned = ids[1];
    let mut catalog = Catalog::new(ShardFailingBackend { inner: MemoryCatalogBackend, poisoned });
    let series: Vec<Vec<f64>> = (0..4).map(|i| composite_series(901 + i, 3_000)).collect();
    for (i, (id, xs)) in ids.iter().zip(&series).enumerate() {
        catalog.create_series(*id, IndexBuildConfig::new(50)).unwrap();
        catalog.append(*id, xs).unwrap();
        // Seed generations exist for every healthy series; the poisoned
        // one stays unmaterialized (its seals always fail).
        let _ = i;
    }
    let _ = catalog.materialize(); // poisoned series fails; others publish
    let service =
        QueryService::builder(catalog).shards(SHARDS).workers(1).build().expect("valid topology");
    let bad_shard = service.router().route(poisoned);

    // An append to the poisoned series fails its ack with the injected
    // error...
    let err = service
        .append(poisoned, composite_series(950, 500), Duration::from_secs(10))
        .expect("append admitted")
        .wait()
        .expect_err("poisoned seal must fail the ack");
    assert!(
        matches!(&err, ServeError::Materialize(msg) if msg.contains("injected shard failure")),
        "unexpected ack error: {err:?}"
    );

    // ...while appends and queries on every other shard land clean.
    for (i, id) in ids.iter().enumerate() {
        if *id == poisoned {
            continue;
        }
        service
            .append(*id, composite_series(960 + i as u64, 500), Duration::from_secs(10))
            .expect("append admitted")
            .wait()
            .expect("healthy shard's append applied");
        let probe = QueryRequest::range(
            QuerySpec::rsm_ed(series[i][500..700].to_vec(), 1e-9).with_series(*id),
        );
        let resp = service
            .submit_timeout(probe, Duration::from_secs(10))
            .into_result()
            .expect("accepted")
            .wait()
            .expect("healthy shard serves");
        assert!(resp.results.iter().any(|r| r.offset == 500));
    }

    let m = service.metrics();
    assert!(m.materialize_failures >= 1, "the failure must be counted");
    assert_eq!(m.shards.len(), SHARDS);
    assert_eq!(m.shards[bad_shard].appends, 1, "the poisoned shard saw exactly its append");
    let healthy_appends: u64 =
        m.shards.iter().enumerate().filter(|(i, _)| *i != bad_shard).map(|(_, s)| s.appends).sum();
    assert_eq!(healthy_appends, 3, "three healthy appends across the other shards");
    drop(service);
}

/// The validating builder: every invalid topology is rejected before
/// any thread spawns, with a typed, matchable error.
#[test]
fn builder_rejects_invalid_topologies() {
    let make = || {
        let mut c = Catalog::new(MemoryCatalogBackend);
        c.create_series_with(SeriesId::new(1), IndexBuildConfig::new(50), &[0.0; 500]).unwrap();
        c
    };
    assert_eq!(
        QueryService::builder(make()).shards(0).build().err(),
        Some(ConfigError::ZeroShards)
    );
    assert_eq!(
        QueryService::builder(make()).workers(0).build().err(),
        Some(ConfigError::ZeroWorkers)
    );
    assert_eq!(
        QueryService::builder(make()).max_batch(0).build().err(),
        Some(ConfigError::ZeroBatch)
    );
    assert_eq!(
        QueryService::builder(make()).queue_capacity(4).max_batch(8).build().err(),
        Some(ConfigError::QueueSmallerThanBatch { queue_capacity: 4, max_batch: 8 })
    );

    // A backend without `shard_instance` support only serves
    // single-shard: asking for more is a typed error, not a panic.
    struct Unshardable(MemoryCatalogBackend);
    impl CatalogBackend for Unshardable {
        type Store = <MemoryCatalogBackend as CatalogBackend>::Store;
        type Data = <MemoryCatalogBackend as CatalogBackend>::Data;
        fn seal_generation(
            &mut self,
            input: GenerationInput<'_>,
        ) -> Result<Self::Store, CoreError> {
            self.0.seal_generation(input)
        }
        fn data_store(&mut self, series: SeriesId, xs: &[f64]) -> Result<Self::Data, CoreError> {
            self.0.data_store(series, xs)
        }
    }
    let mut catalog = Catalog::new(Unshardable(MemoryCatalogBackend));
    catalog.create_series_with(SeriesId::new(1), IndexBuildConfig::new(50), &[0.0; 500]).unwrap();
    assert_eq!(
        QueryService::builder(catalog).shards(2).build().err(),
        Some(ConfigError::UnshardableBackend { shards: 2 })
    );
    // ...but the same backend at one shard is fine.
    let mut catalog = Catalog::new(Unshardable(MemoryCatalogBackend));
    catalog.create_series_with(SeriesId::new(1), IndexBuildConfig::new(50), &[0.0; 500]).unwrap();
    QueryService::builder(catalog).build().expect("single shard needs no shard_instance");

    // The router itself is pure arithmetic and clamps to ≥ 1 shard.
    let router = Router::new(SHARDS);
    for raw in 0..64u64 {
        assert_eq!(router.route(SeriesId::new(raw)), (raw % SHARDS as u64) as usize);
    }
}
