//! The query service: a [`Router`] scattering submissions across N
//! [`CatalogShard`]s, each running the full
//! micro-batching pipeline — bounded lane, front scheduler,
//! series-partitioned worker dispatch, dedicated ingest lane — over its
//! own catalog slice, with admission control and identity-preserving
//! fan-back.
//!
//! ```text
//!  clients                router                       catalog shards
//!  ───────                ──────                       ──────────────
//!  submit ──► SeriesId → shard hash ──► shard 0: queue ► scheduler ► workers ► pinned
//!    │                │               ► shard 1: queue ► scheduler ► workers   snapshot
//!    │     full? Rejected{shard}      ► shard N: queue ► scheduler ► workers  (lock-free)
//!    │    (per-shard backpressure)                 │
//!    │                                             └─ appends ► shard's ingest lane
//!    ▼                                                (per-series epoch barrier)
//!  ResponseHandle ◄────────── oneshot per request ◄── fan-back (input order)
//! ```
//!
//! Routing happens at submission: the [`Router`] hashes the request's
//! [`SeriesId`] to a shard and the request joins *that shard's* bounded
//! lane. From there the shard's own scheduler drains micro-batches,
//! partitions them by `(series, ingest epoch)` and hands runs to its
//! worker pool, exactly as the single-catalog pipeline did — each worker
//! **pins the shard's latest published
//! [`CatalogSnapshot`]** (one
//! `Arc` clone under a pointer-sized lock) and executes against that
//! immutable generation set with no catalog lock held at all. Because a
//! series lives on exactly one shard, the per-series epoch barriers and
//! the submission-order guarantees of the one-catalog design carry over
//! unchanged, while shards share *nothing*: no lock, no queue, no write
//! guard. An ingest stall, a failing backend or a saturated lane on one
//! shard leaves every other shard serving at full speed.
//!
//! Identity is preserved end-to-end: each request owns a oneshot
//! channel, runs keep their jobs in submission order, and
//! `execute_batch` returns outputs in input order, so the gather side
//! can never cross wires — a mixed-series batch scattered over four
//! shards returns bit-identical answers to the same batch on one shard.
//!
//! Construction goes through the validating [`ServiceBuilder`]
//! (`QueryService::builder(catalog).shards(4).build()?`); reads outside
//! the request path go through [`QueryService::read_view`], which pins a
//! shard's snapshot implementing
//! [`ReadView`](kvmatch_core::catalog::ReadView).

use std::sync::Arc;
use std::time::{Duration, Instant};

use kvmatch_core::catalog::{Catalog, CatalogBackend, CatalogSnapshot};
use kvmatch_core::{CoreError, MatchResult, MatchStats, QuerySpec, SeriesId};
use kvmatch_obs::{ExplainReport, Registry, TraceCtx};

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::shard::{CatalogShard, Command, Job, Router};
use crate::sync::{oneshot, PushError};

/// The resolved, validated tuning of a [`QueryService`] — produced only
/// by [`ServiceBuilder::build`], so every shard pipeline can trust its
/// invariants (non-zero workers/batch, queue ≥ batch).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ServiceConfig {
    /// Per-shard admission-control bound: requests queued on one shard's
    /// lane at once.
    pub(crate) queue_capacity: usize,
    /// Scheduler flush trigger 1: dispatch once this many commands are
    /// drained into the forming batch.
    pub(crate) max_batch: usize,
    /// Scheduler flush trigger 2: dispatch at latest this long after the
    /// batch's first command arrived, full or not.
    pub(crate) max_batch_delay: Duration,
    /// Deadline applied to requests that don't carry their own.
    pub(crate) default_deadline: Option<Duration>,
    /// Executor workers per shard.
    pub(crate) workers: usize,
    /// Catalog shards.
    pub(crate) shards: usize,
}

/// A rejected [`ServiceBuilder`] configuration, naming the violated
/// invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `shards(0)`: at least one catalog shard must exist.
    ZeroShards,
    /// `workers(0)`: every shard needs at least one executor worker.
    ZeroWorkers,
    /// `max_batch(0)`: the scheduler cannot form empty batches.
    ZeroBatch,
    /// The per-shard queue cannot hold even one full batch — the
    /// scheduler would never reach `max_batch` occupancy.
    QueueSmallerThanBatch {
        /// The configured per-shard queue bound.
        queue_capacity: usize,
        /// The configured batch bound it cannot hold.
        max_batch: usize,
    },
    /// More than one shard was requested over a backend that cannot
    /// mint independent per-shard instances
    /// ([`CatalogBackend::shard_instance`] returned `None` — e.g. a
    /// single-directory LSM backend). Such catalogs serve at
    /// `shards(1)`.
    UnshardableBackend {
        /// The requested shard count.
        shards: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroShards => write!(f, "shards must be at least 1"),
            ConfigError::ZeroWorkers => write!(f, "workers per shard must be at least 1"),
            ConfigError::ZeroBatch => write!(f, "max_batch must be at least 1"),
            ConfigError::QueueSmallerThanBatch { queue_capacity, max_batch } => write!(
                f,
                "queue_capacity ({queue_capacity}) must hold at least one full batch (max_batch = {max_batch})"
            ),
            ConfigError::UnshardableBackend { shards } => write!(
                f,
                "backend cannot provide independent shard instances (requested {shards} shards); serve it with shards(1)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating constructor of a [`QueryService`]: typed defaults,
/// chainable setters, and a [`build`](ServiceBuilder::build) that
/// rejects inconsistent topologies instead of spawning them.
///
/// ```no_run
/// # use kvmatch_core::{Catalog, MemoryCatalogBackend};
/// # use kvmatch_serve::QueryService;
/// # let catalog = Catalog::new(MemoryCatalogBackend);
/// let service = QueryService::builder(catalog)
///     .shards(4)
///     .workers(2)
///     .queue_capacity(128)
///     .build()
///     .expect("valid topology");
/// ```
///
/// Defaults: 1 shard, 2 workers per shard, per-shard queue of 256,
/// batches of up to 32 commands flushed within 2 ms, no default
/// deadline, a private metrics [`Registry`].
pub struct ServiceBuilder<B: CatalogBackend> {
    catalog: Catalog<B>,
    shards: usize,
    workers: usize,
    queue_capacity: usize,
    max_batch: usize,
    max_batch_delay: Duration,
    default_deadline: Option<Duration>,
    registry: Option<Arc<Registry>>,
}

impl<B> ServiceBuilder<B>
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    /// A builder over `catalog` with the default topology (see the type
    /// docs). Equivalent to [`QueryService::builder`].
    pub fn new(catalog: Catalog<B>) -> Self {
        Self {
            catalog,
            shards: 1,
            workers: 2,
            queue_capacity: 256,
            max_batch: 32,
            max_batch_delay: Duration::from_millis(2),
            default_deadline: None,
            registry: None,
        }
    }

    /// Catalog shards: independent `Catalog` + scheduler + worker-pool +
    /// ingest-lane pipelines, one per core under load. Series are placed
    /// by the [`Router`]; more than one shard requires a backend whose
    /// [`CatalogBackend::shard_instance`] mints independent instances.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Executor workers *per shard* (the service runs `shards × workers`
    /// workers in total). Runs of one micro-batch — one per `(series,
    /// ingest epoch)` — execute on distinct workers concurrently; a
    /// shard's scheduler hands a run only to an *idle* worker, so
    /// query-side buffering stays bounded at `queue_capacity + max_batch`
    /// per shard regardless of the pool size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Per-shard admission-control bound: requests queued on one shard's
    /// lane at once. A full lane rejects ([`Submit::Rejected`], stamped
    /// with the shard id) — that rejection *is* the backpressure signal,
    /// and it is per shard: one saturated shard does not reject traffic
    /// routed elsewhere.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Scheduler flush trigger 1: dispatch once this many commands are
    /// drained into the forming batch.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Scheduler flush trigger 2: dispatch at latest this long after the
    /// batch's first command arrived, full or not — bounds the latency
    /// cost of waiting for batchmates.
    pub fn max_batch_delay(mut self, delay: Duration) -> Self {
        self.max_batch_delay = delay;
        self
    }

    /// Deadline applied to requests that don't carry their own (none by
    /// default). Expired requests are answered
    /// [`ServeError::DeadlineExceeded`] instead of their results.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Registers the serving metrics on a caller-provided [`Registry`] —
    /// so the server (or a test) can expose its own counters alongside
    /// the serving layer's (including the per-shard
    /// `kvmatch_serve_shard_*` families) in a single text scrape.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Validates the topology, splits the catalog across the shards and
    /// starts every pipeline. The catalog is consumed either way; on
    /// `Err` nothing was spawned.
    pub fn build(self) -> Result<QueryService<B>, ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if self.queue_capacity < self.max_batch {
            return Err(ConfigError::QueueSmallerThanBatch {
                queue_capacity: self.queue_capacity,
                max_batch: self.max_batch,
            });
        }
        if self.shards > 1 && self.catalog.backend().shard_instance().is_none() {
            return Err(ConfigError::UnshardableBackend { shards: self.shards });
        }
        let config = ServiceConfig {
            queue_capacity: self.queue_capacity,
            max_batch: self.max_batch,
            max_batch_delay: self.max_batch_delay,
            default_deadline: self.default_deadline,
            workers: self.workers,
            shards: self.shards,
        };
        let registry = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let metrics = Arc::new(Metrics::on_registry(registry, config.shards, config.workers));
        let router = Router::new(config.shards);
        // Split the catalog along the exact placement the router will
        // apply to every submission — same arithmetic, same totals —
        // so a routed request always lands on the shard owning its
        // series.
        let slices = self
            .catalog
            .split_routed(config.shards, |series| router.route(series))
            .map_err(|_| ConfigError::UnshardableBackend { shards: config.shards })?;
        let shards = slices
            .into_iter()
            .enumerate()
            .map(|(id, slice)| CatalogShard::spawn(id, slice, config, Arc::clone(&metrics)))
            .collect();
        Ok(QueryService { router, shards, metrics, config })
    }
}

/// What a request asks for — derived from
/// [`QuerySpec::limit`](kvmatch_core::QuerySpec) but named explicitly at
/// the serving surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Every subsequence within ε, offset order.
    Range,
    /// The k nearest subsequences within ε, nearest-first.
    TopK(usize),
}

/// One client request: a routed query spec plus an optional per-request
/// deadline (measured from submission; expired requests are answered
/// with [`ServeError::DeadlineExceeded`] instead of their results).
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The query, already routed at a series via
    /// [`QuerySpec::with_series`](kvmatch_core::QuerySpec::with_series).
    pub spec: QuerySpec,
    /// Per-request deadline; `None` falls back to
    /// [`ServiceBuilder::default_deadline`].
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A range request (clears any top-k limit on the spec).
    pub fn range(mut spec: QuerySpec) -> Self {
        spec.limit = None;
        Self { spec, deadline: None }
    }

    /// A top-k request: the `k` nearest subsequences within the spec's ε.
    pub fn top_k(spec: QuerySpec, k: usize) -> Self {
        Self { spec: spec.top_k(k), deadline: None }
    }

    /// The request's kind.
    pub fn kind(&self) -> QueryKind {
        match self.spec.limit {
            Some(k) => QueryKind::TopK(k),
            None => QueryKind::Range,
        }
    }

    /// Attaches a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served answer.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Range: qualified subsequences in offset order. Top-k: the k
    /// nearest, nearest-first (ties by lower offset).
    pub results: Vec<MatchResult>,
    /// The executor's per-query statistics.
    pub stats: MatchStats,
    /// Submit→response latency as measured by the service.
    pub latency: Duration,
    /// The structured trace, present iff the request's spec carried
    /// [`QuerySpec::explain`](kvmatch_core::QuerySpec). Stage timings and
    /// prune counts mirror [`QueryResponse::stats`]; the span list adds
    /// where the request spent its queueing and execution wall time.
    pub explain: Option<Box<ExplainReport>>,
}

/// Why admission control turned a command away. Shared by query and
/// append rejections, and by the wire protocol's rejection payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectKind {
    /// The shard's bounded lane stayed full for the whole wait —
    /// explicit backpressure; retrying after a backoff is expected.
    Backpressure,
    /// The service is shutting down; retrying cannot succeed.
    ShuttingDown,
}

/// One admission rejection, with the lane state that caused it. The
/// same shape covers queries ([`RejectedQuery`]), appends
/// ([`RejectedAppend`]) and the wire protocol's `REJECTED` error
/// payload, so every surface reports backpressure identically —
/// including *which shard* pushed back, since backpressure is per shard:
/// a client seeing rejections from shard 2 can keep its traffic for
/// other shards flowing at full rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// Backpressure or shutdown.
    pub kind: RejectKind,
    /// The configured per-shard lane capacity
    /// ([`ServiceBuilder::queue_capacity`]).
    pub capacity: usize,
    /// The rejecting shard's lane depth observed at rejection time
    /// (≈ `capacity` for backpressure; whatever remained for shutdown).
    pub depth: usize,
    /// The shard whose lane rejected the command — the one the
    /// [`Router`] places the command's series on.
    pub shard: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            RejectKind::Backpressure => {
                write!(
                    f,
                    "shard {} queue full ({}/{} queued)",
                    self.shard, self.depth, self.capacity
                )
            }
            RejectKind::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Serving-layer failures, delivered through the response channel.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control turned the command away (the routed shard's
    /// lane full for the whole wait, or the service is closing).
    Rejected(Rejected),
    /// The request's deadline passed — before dispatch (the queueing
    /// bound) or during execution (checked again before fan-back).
    DeadlineExceeded,
    /// The service shut down before producing a response.
    ShutDown,
    /// The query itself failed.
    Query(CoreError),
    /// The append was applied, but rebuilding the published snapshot
    /// failed afterwards — the points are ingested (and, on durable
    /// backends, persisted) yet queries keep serving the previous
    /// snapshot until a later materialization succeeds. Carries the
    /// underlying error rendered as text.
    Materialize(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected by admission control: {r}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShutDown => write!(f, "service shut down"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::Materialize(e) => {
                write!(f, "append applied but snapshot rebuild failed: {e}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

/// A turned-away query submission: the admission verdict plus the
/// caller's request, handed back untouched so it can be retried or shed.
#[derive(Debug)]
pub struct RejectedQuery {
    /// Why, and in what lane state (including the rejecting shard).
    pub rejected: Rejected,
    /// The request, returned unconsumed.
    pub request: QueryRequest,
}

impl RejectedQuery {
    /// True when retrying after a backoff can succeed (backpressure);
    /// false when the service is shutting down.
    pub fn is_retryable(&self) -> bool {
        self.rejected.kind == RejectKind::Backpressure
    }
}

/// Admission-control outcome of a submission.
#[must_use = "a rejected submission must be handled (retry, shed, or back off)"]
pub enum Submit {
    /// Admitted — await the response on the handle.
    Accepted(ResponseHandle),
    /// Not admitted — backpressure or shutdown, distinguished by
    /// [`RejectedQuery::rejected`]`.kind`. The request rides back inside.
    Rejected(RejectedQuery),
}

impl Submit {
    /// Converts the outcome into a `Result`, the non-panicking
    /// replacement for the `expect_accepted()` pattern: callers either
    /// propagate the rejection or match on
    /// [`RejectedQuery::is_retryable`] to retry.
    // The Err variant is deliberately large: the unconsumed request
    // rides back by value so a retry needs no clone.
    #[allow(clippy::result_large_err)]
    pub fn into_result(self) -> Result<ResponseHandle, RejectedQuery> {
        match self {
            Submit::Accepted(h) => Ok(h),
            Submit::Rejected(r) => Err(r),
        }
    }

    /// True for [`Submit::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }
}

/// The client's future: one response, delivered exactly once.
pub struct ResponseHandle {
    rx: oneshot::Receiver<Result<QueryResponse, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }

    /// Blocks up to `timeout`. Consumes the handle like [`wait`] does —
    /// the two waiting APIs share one ownership story — and hands it
    /// back as the `Err` arm when the response has not arrived yet, so
    /// "not ready" keeps the handle usable without `&self` aliasing:
    ///
    /// ```ignore
    /// handle = match handle.wait_timeout(tick) {
    ///     Ok(response) => break response,
    ///     Err(still_waiting) => still_waiting, // keep polling
    /// };
    /// ```
    ///
    /// [`wait`]: ResponseHandle::wait
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<QueryResponse, ServeError>, ResponseHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(oneshot::RecvTimeoutError::Timeout) => Err(self),
            Err(oneshot::RecvTimeoutError::Disconnected) => Ok(Err(ServeError::ShutDown)),
        }
    }
}

/// Acknowledgement future of an [`QueryService::append`] command.
pub struct AppendHandle {
    rx: oneshot::Receiver<Result<(), ServeError>>,
}

impl AppendHandle {
    /// Blocks until the append was applied (durably, for durable
    /// backends) or failed.
    pub fn wait(self) -> Result<(), ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }
}

/// A turned-away append: the admission verdict plus the caller's points,
/// handed back untouched so they can be retried — the same [`Rejected`]
/// shape as [`RejectedQuery`] carries for queries.
#[derive(Debug)]
pub struct RejectedAppend {
    /// Why, and in what lane state (including the rejecting shard).
    pub rejected: Rejected,
    /// The points, returned unconsumed.
    pub points: Vec<f64>,
}

impl RejectedAppend {
    /// True when retrying after a backoff can succeed (backpressure).
    pub fn is_retryable(&self) -> bool {
        self.rejected.kind == RejectKind::Backpressure
    }
}

/// The serving front door over a [`Catalog`]: build it with
/// [`QueryService::builder`], submit [`QueryRequest`]s from any number
/// of threads, receive [`ResponseHandle`]s. See the
/// [crate docs](crate) for the quick-start and the
/// [`shard` module](crate::shard) for the scale-out topology.
pub struct QueryService<B: CatalogBackend> {
    router: Router,
    shards: Vec<CatalogShard<B>>,
    metrics: Arc<Metrics>,
    config: ServiceConfig,
}

impl<B> QueryService<B>
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    /// A [`ServiceBuilder`] over `catalog` — the only way to construct a
    /// service. `build()` takes ownership of the catalog, splits it
    /// across the configured shards and starts every pipeline;
    /// [`QueryService::shutdown`] reassembles and hands the catalog
    /// back.
    pub fn builder(catalog: Catalog<B>) -> ServiceBuilder<B> {
        ServiceBuilder::new(catalog)
    }

    /// Non-blocking submission: routed to its series' shard, admitted or
    /// immediately [`Submit::Rejected`] when that shard's lane is full.
    pub fn submit(&self, request: QueryRequest) -> Submit {
        self.submit_inner(request, None)
    }

    /// Blocking submission: waits up to `wait` for space on the routed
    /// shard's lane before giving up with [`Submit::Rejected`].
    pub fn submit_timeout(&self, request: QueryRequest, wait: Duration) -> Submit {
        self.submit_inner(request, Some(wait))
    }

    /// Cross-shard scatter: submits a mixed-series batch in order, each
    /// request to its series' shard, and returns the per-request
    /// outcomes input-aligned. The gather side needs no extra API —
    /// every accepted request fans back through its own
    /// [`ResponseHandle`], so waiting on the handles in order yields
    /// responses in submission order regardless of how the batch
    /// scattered.
    pub fn submit_batch(&self, requests: Vec<QueryRequest>) -> Vec<Submit> {
        requests.into_iter().map(|request| self.submit(request)).collect()
    }

    fn submit_inner(&self, request: QueryRequest, wait: Option<Duration>) -> Submit {
        let shard_id = self.router.route(request.spec.series);
        let shard = &self.shards[shard_id].shared;
        let (tx, rx) = oneshot::channel();
        // An explain query opens its trace at admission — `serve.queue`
        // covers everything from here to worker dispatch.
        let trace = request.spec.explain.then(|| {
            let mut trace = Box::new(TraceCtx::new());
            trace.begin("serve.queue");
            trace
        });
        let job = Command::Query(Job {
            spec: request.spec,
            // Keep the request's own deadline (the service default is
            // applied at dispatch) so a rejected submission hands the
            // request back truly untouched.
            deadline: request.deadline,
            submitted: Instant::now(),
            trace,
            tx,
        });
        let pushed = match wait {
            None => shard.queue.try_push(job),
            Some(d) => shard.queue.push_timeout(job, d),
        };
        match pushed {
            Ok(()) => {
                let depth = shard.queue.len() as u64;
                self.metrics.submitted.inc();
                self.metrics.queue_depth_peak.record_max(depth);
                shard.shard_metrics.submitted.inc();
                shard.shard_metrics.queue_depth_peak.record_max(depth);
                Submit::Accepted(ResponseHandle { rx })
            }
            Err(PushError::Full(cmd)) => {
                self.metrics.rejected.inc();
                shard.shard_metrics.rejected.inc();
                Submit::Rejected(RejectedQuery {
                    rejected: self.rejection(RejectKind::Backpressure, shard_id),
                    request: recover_request(cmd),
                })
            }
            Err(PushError::Closed(cmd)) => Submit::Rejected(RejectedQuery {
                rejected: self.rejection(RejectKind::ShuttingDown, shard_id),
                request: recover_request(cmd),
            }),
        }
    }

    /// Stamps a rejection with the routed shard's lane state observed
    /// right now.
    fn rejection(&self, kind: RejectKind, shard: usize) -> Rejected {
        Rejected {
            kind,
            capacity: self.config.queue_capacity,
            depth: self.shards[shard].shared.queue.len(),
            shard,
        }
    }

    /// Enqueues a streaming append, routed to its series' shard. It is
    /// ordered with queries *on its own series*: queries submitted after
    /// the append see its points, while queries on other series keep
    /// flowing through the worker pools during ingestion. Shares the
    /// shard's bounded lane — and therefore the per-shard backpressure —
    /// with queries; a turned-away append hands the points back
    /// ([`RejectedAppend`]) so the caller can retry.
    pub fn append(
        &self,
        series: SeriesId,
        points: Vec<f64>,
        wait: Duration,
    ) -> Result<AppendHandle, RejectedAppend> {
        let shard_id = self.router.route(series);
        let shard = &self.shards[shard_id].shared;
        let (tx, rx) = oneshot::channel();
        match shard.queue.push_timeout(Command::Append { series, points, tx }, wait) {
            Ok(()) => Ok(AppendHandle { rx }),
            Err(PushError::Full(Command::Append { points, .. })) => {
                self.metrics.rejected.inc();
                shard.shard_metrics.rejected.inc();
                Err(RejectedAppend {
                    rejected: self.rejection(RejectKind::Backpressure, shard_id),
                    points,
                })
            }
            Err(PushError::Closed(Command::Append { points, .. })) => Err(RejectedAppend {
                rejected: self.rejection(RejectKind::ShuttingDown, shard_id),
                points,
            }),
            Err(PushError::Full(_) | PushError::Closed(_)) => {
                unreachable!("append pushes come back as appends")
            }
        }
    }

    /// Pins the latest snapshot published by the shard hosting `series`
    /// — the [`ReadView`](kvmatch_core::catalog::ReadView) read path for
    /// callers outside the request pipeline (admin surfaces, tests,
    /// sequential baselines). One `Arc` clone under a pointer-sized
    /// lock; never the shard's catalog lock. `None` before the shard's
    /// first materialization.
    pub fn read_view(&self, series: SeriesId) -> Option<Arc<CatalogSnapshot<B>>> {
        self.shards[self.router.route(series)].read_view()
    }

    /// The series→shard placement this service routes with.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Catalog shards serving this catalog.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// A point-in-time metrics snapshot (service-wide counters plus the
    /// per-shard and per-worker splits).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(&self.live_depths())
    }

    /// The registry every serving metric lives on — callers may register
    /// their own metrics here to join the same exposition.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.registry)
    }

    /// Prometheus-style text exposition of the whole registry plus the
    /// slow-query log — the body of the wire `MetricsText` response.
    pub fn metrics_text(&self) -> String {
        self.metrics.render_text(&self.live_depths())
    }

    /// Executor workers across all shards.
    pub fn workers(&self) -> usize {
        self.metrics.workers.len()
    }

    /// Each shard's live `(queue, ingest)` lane depths, indexed by
    /// shard id.
    fn live_depths(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| (s.shared.queue.len(), s.shared.ingest.len())).collect()
    }

    /// Graceful shutdown: stops admissions on every shard, serves
    /// everything already queued (queries and appends), retires the
    /// worker pools and ingest lanes, then reassembles the shards'
    /// catalog slices and hands the whole catalog back.
    pub fn shutdown(mut self) -> Catalog<B> {
        for shard in &self.shards {
            shard.close();
        }
        for shard in &mut self.shards {
            shard.join();
        }
        dump_slowlog(&self.metrics);
        let mut shards = std::mem::take(&mut self.shards).into_iter();
        let mut catalog =
            shards.next().expect("a built service has at least one shard").into_catalog();
        for shard in shards {
            catalog
                .absorb(shard.into_catalog())
                .expect("shard series sets are disjoint by construction");
        }
        catalog
    }
}

impl<B: CatalogBackend> Drop for QueryService<B> {
    fn drop(&mut self) {
        if self.shards.is_empty() {
            return; // shutdown() already retired everything
        }
        for shard in &self.shards {
            shard.close();
        }
        for shard in &mut self.shards {
            shard.join();
        }
        dump_slowlog(&self.metrics);
    }
}

/// Dumps the slow-query log on the way out — the last chance to see what
/// hurt before the process forgets. Runs once per service, after every
/// shard pipeline has been joined.
fn dump_slowlog(metrics: &Metrics) {
    if metrics.slowlog.depth() > 0 {
        let mut out = String::new();
        metrics.slowlog.render_into(&mut out);
        eprint!("{out}");
    }
}

fn recover_request(cmd: Command) -> QueryRequest {
    match cmd {
        Command::Query(job) => QueryRequest { spec: job.spec, deadline: job.deadline },
        Command::Append { .. } => unreachable!("submissions only enqueue queries"),
    }
}
