//! The query service: submission handles, micro-batching scheduler,
//! admission control and fan-back.
//!
//! ```text
//!  clients                    scheduler thread (owns the Catalog)
//!  ───────                    ──────────────────────────────────
//!  submit ──► BoundedQueue ──► drain (flush on batch-size OR deadline)
//!    │            │                │
//!    │       full? Rejected        ├─ expire jobs past their deadline
//!    │      (backpressure)         ├─ QueryExecutor::execute_batch
//!    │                             │    (shared probes, fanned verify,
//!    ▼                             │     per-query top-k tightening)
//!  ResponseHandle ◄── oneshot ─────┴─ fan results back per request
//! ```
//!
//! Identity is preserved end-to-end: each request owns a oneshot channel,
//! the scheduler forms batches in submission order, and
//! `execute_batch` returns outputs in input order, so the zip back onto
//! the per-request senders can never cross wires.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kvmatch_core::catalog::{Catalog, CatalogBackend};
use kvmatch_core::exec::QueryOutput;
use kvmatch_core::{CoreError, MatchResult, MatchStats, QuerySpec, SeriesId};

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::sync::{oneshot, BoundedQueue, PushError};

/// Tuning knobs of a [`QueryService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Admission-control bound: requests queued at once. A full queue
    /// rejects ([`Submit::Rejected`]) — that rejection *is* the
    /// backpressure signal.
    pub queue_capacity: usize,
    /// Scheduler flush trigger 1: dispatch once this many commands are
    /// drained into the forming batch.
    pub max_batch: usize,
    /// Scheduler flush trigger 2: dispatch at latest this long after the
    /// batch's first command arrived, full or not — bounds the latency
    /// cost of waiting for batchmates.
    pub max_batch_delay: Duration,
    /// Deadline applied to requests that don't carry their own (`None` =
    /// no default deadline).
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 32,
            max_batch_delay: Duration::from_millis(2),
            default_deadline: None,
        }
    }
}

/// What a request asks for — derived from
/// [`QuerySpec::limit`](kvmatch_core::QuerySpec) but named explicitly at
/// the serving surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Every subsequence within ε, offset order.
    Range,
    /// The k nearest subsequences within ε, nearest-first.
    TopK(usize),
}

/// One client request: a routed query spec plus an optional per-request
/// deadline (measured from submission; expired requests are answered
/// with [`ServeError::DeadlineExceeded`] instead of being executed).
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The query, already routed at a series via
    /// [`QuerySpec::with_series`](kvmatch_core::QuerySpec::with_series).
    pub spec: QuerySpec,
    /// Per-request deadline; `None` falls back to
    /// [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A range request (clears any top-k limit on the spec).
    pub fn range(mut spec: QuerySpec) -> Self {
        spec.limit = None;
        Self { spec, deadline: None }
    }

    /// A top-k request: the `k` nearest subsequences within the spec's ε.
    pub fn top_k(spec: QuerySpec, k: usize) -> Self {
        Self { spec: spec.top_k(k), deadline: None }
    }

    /// The request's kind.
    pub fn kind(&self) -> QueryKind {
        match self.spec.limit {
            Some(k) => QueryKind::TopK(k),
            None => QueryKind::Range,
        }
    }

    /// Attaches a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served answer.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Range: qualified subsequences in offset order. Top-k: the k
    /// nearest, nearest-first (ties by lower offset).
    pub results: Vec<MatchResult>,
    /// The executor's per-query statistics.
    pub stats: MatchStats,
    /// Submit→response latency as measured by the service.
    pub latency: Duration,
}

/// Serving-layer failures, delivered through the response channel.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control turned the command away (queue full for the
    /// whole wait).
    Rejected,
    /// The request's deadline passed while it was still queued.
    DeadlineExceeded,
    /// The service shut down before producing a response.
    ShutDown,
    /// The query itself failed.
    Query(CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "rejected by admission control (queue full)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            ServeError::ShutDown => write!(f, "service shut down"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

/// Admission-control outcome of a submission.
#[must_use = "a rejected submission must be handled (retry, shed, or back off)"]
pub enum Submit {
    /// Admitted — await the response on the handle.
    Accepted(ResponseHandle),
    /// Bounded queue full: explicit backpressure. The request is handed
    /// back untouched for retry/shedding.
    Rejected(QueryRequest),
    /// The service is shutting down; the request is handed back.
    Closed(QueryRequest),
}

impl Submit {
    /// Unwraps the accepted handle.
    ///
    /// # Panics
    /// Panics when the submission was rejected or the service closed.
    pub fn expect_accepted(self) -> ResponseHandle {
        match self {
            Submit::Accepted(h) => h,
            Submit::Rejected(_) => panic!("submission rejected (queue full)"),
            Submit::Closed(_) => panic!("service closed"),
        }
    }

    /// True for [`Submit::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }
}

/// The client's future: one response, delivered exactly once.
pub struct ResponseHandle {
    rx: oneshot::Receiver<Result<QueryResponse, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }

    /// Blocks up to `timeout`; `None` means "not ready yet" (the handle
    /// stays usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(oneshot::RecvTimeoutError::Timeout) => None,
            Err(oneshot::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShutDown)),
        }
    }
}

/// Acknowledgement future of an [`QueryService::append`] command.
pub struct AppendHandle {
    rx: oneshot::Receiver<Result<(), ServeError>>,
}

impl AppendHandle {
    /// Blocks until the append was applied (durably, for durable
    /// backends) or failed.
    pub fn wait(self) -> Result<(), ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }
}

/// A turned-away append: the error plus the caller's points, handed back
/// untouched so they can be retried — the same contract as
/// [`Submit::Rejected`] for queries.
#[derive(Debug)]
pub struct RejectedAppend {
    /// Why the append was not admitted ([`ServeError::Rejected`] or
    /// [`ServeError::ShutDown`]).
    pub error: ServeError,
    /// The points, returned unconsumed.
    pub points: Vec<f64>,
}

/// One queued command.
enum Command {
    Query(Job),
    Append { series: SeriesId, points: Vec<f64>, tx: oneshot::Sender<Result<(), ServeError>> },
}

struct Job {
    spec: QuerySpec,
    deadline: Option<Duration>,
    submitted: Instant,
    tx: oneshot::Sender<Result<QueryResponse, ServeError>>,
}

impl Job {
    /// Whether the job's effective deadline — its own, falling back to
    /// the service default — passed before `now`.
    fn expired(&self, now: Instant, default_deadline: Option<Duration>) -> bool {
        self.deadline.or(default_deadline).is_some_and(|d| now.duration_since(self.submitted) > d)
    }
}

struct Shared {
    queue: BoundedQueue<Command>,
    metrics: Metrics,
    config: ServeConfig,
}

/// The serving front door over a [`Catalog`]: spawn it with the catalog,
/// submit [`QueryRequest`]s from any number of threads, receive
/// [`ResponseHandle`]s. See the [crate docs](crate) for the quick-start.
pub struct QueryService<B: CatalogBackend> {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<Catalog<B>>>,
}

impl<B> QueryService<B>
where
    B: CatalogBackend + Send + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    /// Takes ownership of `catalog` and starts the scheduler thread.
    /// [`QueryService::shutdown`] hands the catalog back.
    pub fn spawn(catalog: Catalog<B>, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: Metrics::default(),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("kvmatch-serve-scheduler".into())
            .spawn(move || scheduler(catalog, worker_shared))
            .expect("spawn scheduler thread");
        Self { shared, worker: Some(worker) }
    }

    /// Non-blocking submission: admitted or immediately
    /// [`Submit::Rejected`] when the bounded queue is full.
    pub fn submit(&self, request: QueryRequest) -> Submit {
        self.submit_inner(request, None)
    }

    /// Blocking submission: waits up to `wait` for queue space before
    /// giving up with [`Submit::Rejected`].
    pub fn submit_timeout(&self, request: QueryRequest, wait: Duration) -> Submit {
        self.submit_inner(request, Some(wait))
    }

    fn submit_inner(&self, request: QueryRequest, wait: Option<Duration>) -> Submit {
        let (tx, rx) = oneshot::channel();
        let job = Command::Query(Job {
            spec: request.spec,
            // Keep the request's own deadline (the service default is
            // applied at dispatch) so a rejected submission hands the
            // request back truly untouched.
            deadline: request.deadline,
            submitted: Instant::now(),
            tx,
        });
        let pushed = match wait {
            None => self.shared.queue.try_push(job),
            Some(d) => self.shared.queue.push_timeout(job, d),
        };
        match pushed {
            Ok(()) => {
                let m = &self.shared.metrics;
                m.submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                m.queue_depth_peak.fetch_max(
                    self.shared.queue.len() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                Submit::Accepted(ResponseHandle { rx })
            }
            Err(PushError::Full(cmd)) => {
                self.shared.metrics.rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Submit::Rejected(recover_request(cmd))
            }
            Err(PushError::Closed(cmd)) => Submit::Closed(recover_request(cmd)),
        }
    }

    /// Enqueues a streaming append; it executes in submission order
    /// relative to queries (queries submitted after the append see the
    /// new points). Shares the bounded queue — and therefore the
    /// backpressure — with queries; a turned-away append hands the
    /// points back ([`RejectedAppend`]) so the caller can retry.
    pub fn append(
        &self,
        series: SeriesId,
        points: Vec<f64>,
        wait: Duration,
    ) -> Result<AppendHandle, RejectedAppend> {
        let (tx, rx) = oneshot::channel();
        match self.shared.queue.push_timeout(Command::Append { series, points, tx }, wait) {
            Ok(()) => Ok(AppendHandle { rx }),
            Err(PushError::Full(Command::Append { points, .. })) => {
                self.shared.metrics.rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(RejectedAppend { error: ServeError::Rejected, points })
            }
            Err(PushError::Closed(Command::Append { points, .. })) => {
                Err(RejectedAppend { error: ServeError::ShutDown, points })
            }
            Err(PushError::Full(_) | PushError::Closed(_)) => {
                unreachable!("append pushes come back as appends")
            }
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.queue.len())
    }

    /// Graceful shutdown: stops admissions, serves everything already
    /// queued, joins the scheduler and hands the catalog back.
    pub fn shutdown(mut self) -> Catalog<B> {
        self.shared.queue.close();
        self.worker.take().expect("shutdown runs once").join().expect("scheduler panicked")
    }
}

impl<B: CatalogBackend> Drop for QueryService<B> {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.shared.queue.close();
            let _ = worker.join();
        }
    }
}

fn recover_request(cmd: Command) -> QueryRequest {
    match cmd {
        Command::Query(job) => QueryRequest { spec: job.spec, deadline: job.deadline },
        Command::Append { .. } => unreachable!("submissions only enqueue queries"),
    }
}

/// The scheduler loop: drain → (expire, batch, dispatch) → fan back.
fn scheduler<B>(mut catalog: Catalog<B>, shared: Arc<Shared>) -> Catalog<B>
where
    B: CatalogBackend,
    B::Data: Sync,
{
    while let Some(first) = shared.queue.pop_wait() {
        // Micro-batch formation: the first command opens the batch; keep
        // draining until it is full or its flush deadline passes,
        // whichever comes first.
        let mut commands = vec![first];
        let flush_at = Instant::now() + shared.config.max_batch_delay;
        while commands.len() < shared.config.max_batch {
            match shared.queue.pop_before(flush_at) {
                Some(cmd) => commands.push(cmd),
                None => break,
            }
        }

        // Process in submission order; maximal runs of consecutive
        // queries form one executor batch, appends are barriers (a query
        // submitted after an append must see its points).
        let mut run: Vec<Job> = Vec::new();
        for cmd in commands {
            match cmd {
                Command::Query(job) => run.push(job),
                Command::Append { series, points, tx } => {
                    dispatch(&mut catalog, std::mem::take(&mut run), &shared);
                    let outcome = catalog.append(series, &points).map_err(ServeError::Query);
                    shared.metrics.appends.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let _ = tx.send(outcome);
                }
            }
        }
        dispatch(&mut catalog, run, &shared);
    }
    catalog
}

/// Executes one run of queries as a single batch and fans the results
/// back onto each job's channel.
fn dispatch<B>(catalog: &mut Catalog<B>, run: Vec<Job>, shared: &Shared)
where
    B: CatalogBackend,
    B::Data: Sync,
{
    use std::sync::atomic::Ordering::Relaxed;
    let metrics = &shared.metrics;
    if run.is_empty() {
        return;
    }
    // Per-request deadlines are enforced at dispatch: an expired job is
    // answered without being executed (execution itself is not
    // interruptible — the deadline bounds *queueing*, the dominant delay
    // under load).
    let now = Instant::now();
    let mut live = Vec::with_capacity(run.len());
    for job in run {
        if job.expired(now, shared.config.default_deadline) {
            metrics.expired.fetch_add(1, Relaxed);
            let _ = job.tx.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    metrics.note_batch(live.len());
    // Move the specs out of the jobs instead of deep-cloning every query
    // vector on the (single) scheduler thread — the batch and the jobs
    // stay index-aligned, so the fan-back zips them straight together.
    let (specs, clients): (Vec<QuerySpec>, Vec<JobClient>) = live
        .into_iter()
        .map(|job| (job.spec, JobClient { submitted: job.submitted, tx: job.tx }))
        .unzip();
    match catalog.execute_batch(&specs) {
        Ok(batch) => {
            debug_assert_eq!(batch.outputs.len(), clients.len());
            for (client, out) in clients.into_iter().zip(batch.outputs) {
                respond(client, out, metrics);
            }
        }
        // A batch fails as a unit (e.g. one invalid or misrouted spec).
        // Isolate: re-run each request alone so only the offender fails.
        Err(_) => {
            for (spec, client) in specs.iter().zip(clients) {
                match catalog.execute_batch(std::slice::from_ref(spec)) {
                    Ok(mut batch) => {
                        let out = batch.outputs.pop().expect("one spec yields one output");
                        respond(client, out, metrics);
                    }
                    Err(e) => {
                        metrics.failed.fetch_add(1, Relaxed);
                        let _ = client.tx.send(Err(ServeError::Query(e)));
                    }
                }
            }
        }
    }
}

/// The part of a [`Job`] needed to answer it once its spec has been
/// moved into the executor batch.
struct JobClient {
    submitted: Instant,
    tx: oneshot::Sender<Result<QueryResponse, ServeError>>,
}

fn respond(client: JobClient, out: QueryOutput, metrics: &Metrics) {
    let latency = client.submitted.elapsed();
    metrics.latency.record(latency);
    metrics.completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let _ = client.tx.send(Ok(QueryResponse { results: out.results, stats: out.stats, latency }));
}
