//! The query service: submission handles, micro-batching front
//! scheduler, series-partitioned worker dispatch, a dedicated ingest
//! lane, admission control and fan-back.
//!
//! ```text
//!  clients              front scheduler                 executor workers
//!  ───────              ───────────────                 ────────────────
//!  submit ──► BoundedQueue ──► drain micro-batch        ┌─► worker 0 ─┐
//!    │            │            partition by SeriesId ───┼─► worker 1  ├─► pinned
//!    │       full? Rejected    (rendezvous hand-off:    └─► worker N ─┘  snapshot
//!    │      (backpressure)      waits for an idle           (lock-free)
//!    │                          worker — never buffers)
//!    │                              │
//!    │                              └─ appends ──► ingest lane ──► Catalog
//!    ▼                                 (per-series epoch barrier)  (write side)
//!  ResponseHandle ◄─────── oneshot per request ◄── fan-back (input order)
//! ```
//!
//! The front scheduler drains the bounded submission queue into
//! micro-batches exactly like the single-threaded PR-4 scheduler did,
//! but instead of executing inline it **partitions each batch by
//! [`SeriesId`]** and hands the shards to a pool of executor workers.
//! Each worker **pins the latest published [`CatalogSnapshot`]** — one
//! `Arc` clone under a briefly-held pointer lock — and executes against
//! that immutable generation set with no catalog lock held at all.
//! Index probes and verification for different series are
//! embarrassingly parallel, so shards of one batch (and of consecutive
//! batches) execute concurrently, and the ingest lane's catalog write
//! guard (however long a rebuild or compaction takes) never blocks a
//! reader for longer than the snapshot pointer swap.
//!
//! Appends never touch the worker pool: they are routed to a **dedicated
//! ingest lane** that owns the catalog's write side. An append acts as an
//! ordering barrier *for its own series only* — the scheduler stamps
//! every append with a per-series epoch and every query shard with the
//! epoch it must observe, so a query submitted after an append waits for
//! exactly that append while queries on other series keep flowing.
//!
//! Identity is preserved end-to-end: each request owns a oneshot channel,
//! shards keep their jobs in submission order, and `execute_batch`
//! returns outputs in input order, so the zip back onto the per-request
//! senders can never cross wires.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kvmatch_core::catalog::{Catalog, CatalogBackend, CatalogSnapshot};
use kvmatch_core::exec::QueryOutput;
use kvmatch_core::{CoreError, MatchResult, MatchStats, QuerySpec, SeriesId};
use kvmatch_obs::{ExplainReport, Registry, SlowLogEntry, TraceCtx};
use parking_lot::RwLock;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::sync::{oneshot, BoundedQueue, Handoff, PushError};

/// Tuning knobs of a [`QueryService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Admission-control bound: requests queued at once. A full queue
    /// rejects ([`Submit::Rejected`]) — that rejection *is* the
    /// backpressure signal.
    pub queue_capacity: usize,
    /// Scheduler flush trigger 1: dispatch once this many commands are
    /// drained into the forming batch.
    pub max_batch: usize,
    /// Scheduler flush trigger 2: dispatch at latest this long after the
    /// batch's first command arrived, full or not — bounds the latency
    /// cost of waiting for batchmates.
    pub max_batch_delay: Duration,
    /// Deadline applied to requests that don't carry their own (`None` =
    /// no default deadline).
    pub default_deadline: Option<Duration>,
    /// Executor workers in the dispatch pool (min 1). Shards of one
    /// micro-batch — one per `(series, ingest epoch)` — run on distinct
    /// workers concurrently; the front scheduler hands a shard only to
    /// an *idle* worker, so query-side buffering stays bounded at
    /// `queue_capacity + max_batch` regardless of the pool size (the
    /// ingest lane's own bounded queue adds at most `queue_capacity`
    /// admitted appends on top).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 32,
            max_batch_delay: Duration::from_millis(2),
            default_deadline: None,
            workers: 2,
        }
    }
}

/// What a request asks for — derived from
/// [`QuerySpec::limit`](kvmatch_core::QuerySpec) but named explicitly at
/// the serving surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Every subsequence within ε, offset order.
    Range,
    /// The k nearest subsequences within ε, nearest-first.
    TopK(usize),
}

/// One client request: a routed query spec plus an optional per-request
/// deadline (measured from submission; expired requests are answered
/// with [`ServeError::DeadlineExceeded`] instead of their results).
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The query, already routed at a series via
    /// [`QuerySpec::with_series`](kvmatch_core::QuerySpec::with_series).
    pub spec: QuerySpec,
    /// Per-request deadline; `None` falls back to
    /// [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A range request (clears any top-k limit on the spec).
    pub fn range(mut spec: QuerySpec) -> Self {
        spec.limit = None;
        Self { spec, deadline: None }
    }

    /// A top-k request: the `k` nearest subsequences within the spec's ε.
    pub fn top_k(spec: QuerySpec, k: usize) -> Self {
        Self { spec: spec.top_k(k), deadline: None }
    }

    /// The request's kind.
    pub fn kind(&self) -> QueryKind {
        match self.spec.limit {
            Some(k) => QueryKind::TopK(k),
            None => QueryKind::Range,
        }
    }

    /// Attaches a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served answer.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Range: qualified subsequences in offset order. Top-k: the k
    /// nearest, nearest-first (ties by lower offset).
    pub results: Vec<MatchResult>,
    /// The executor's per-query statistics.
    pub stats: MatchStats,
    /// Submit→response latency as measured by the service.
    pub latency: Duration,
    /// The structured trace, present iff the request's spec carried
    /// [`QuerySpec::explain`](kvmatch_core::QuerySpec). Stage timings and
    /// prune counts mirror [`QueryResponse::stats`]; the span list adds
    /// where the request spent its queueing and execution wall time.
    pub explain: Option<Box<ExplainReport>>,
}

/// Why admission control turned a command away. Shared by query and
/// append rejections, and by the wire protocol's rejection payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectKind {
    /// The bounded submission queue stayed full for the whole wait —
    /// explicit backpressure; retrying after a backoff is expected.
    Backpressure,
    /// The service is shutting down; retrying cannot succeed.
    ShuttingDown,
}

/// One admission rejection, with the queue state that caused it. The
/// same shape covers queries ([`RejectedQuery`]), appends
/// ([`RejectedAppend`]) and the wire protocol's `REJECTED` error
/// payload, so every surface reports backpressure identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// Backpressure or shutdown.
    pub kind: RejectKind,
    /// The configured queue capacity
    /// ([`ServeConfig::queue_capacity`]).
    pub capacity: usize,
    /// Queue depth observed at rejection time (≈ `capacity` for
    /// backpressure; whatever remained for shutdown).
    pub depth: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            RejectKind::Backpressure => {
                write!(f, "queue full ({}/{} queued)", self.depth, self.capacity)
            }
            RejectKind::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Serving-layer failures, delivered through the response channel.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control turned the command away (queue full for the
    /// whole wait, or the service is closing).
    Rejected(Rejected),
    /// The request's deadline passed — before dispatch (the queueing
    /// bound) or during execution (checked again before fan-back).
    DeadlineExceeded,
    /// The service shut down before producing a response.
    ShutDown,
    /// The query itself failed.
    Query(CoreError),
    /// The append was applied, but rebuilding the published snapshot
    /// failed afterwards — the points are ingested (and, on durable
    /// backends, persisted) yet queries keep serving the previous
    /// snapshot until a later materialization succeeds. Carries the
    /// underlying error rendered as text.
    Materialize(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected by admission control: {r}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShutDown => write!(f, "service shut down"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::Materialize(e) => {
                write!(f, "append applied but snapshot rebuild failed: {e}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

/// A turned-away query submission: the admission verdict plus the
/// caller's request, handed back untouched so it can be retried or shed.
#[derive(Debug)]
pub struct RejectedQuery {
    /// Why, and in what queue state.
    pub rejected: Rejected,
    /// The request, returned unconsumed.
    pub request: QueryRequest,
}

impl RejectedQuery {
    /// True when retrying after a backoff can succeed (backpressure);
    /// false when the service is shutting down.
    pub fn is_retryable(&self) -> bool {
        self.rejected.kind == RejectKind::Backpressure
    }
}

/// Admission-control outcome of a submission.
#[must_use = "a rejected submission must be handled (retry, shed, or back off)"]
pub enum Submit {
    /// Admitted — await the response on the handle.
    Accepted(ResponseHandle),
    /// Not admitted — backpressure or shutdown, distinguished by
    /// [`RejectedQuery::rejected`]`.kind`. The request rides back inside.
    Rejected(RejectedQuery),
}

impl Submit {
    /// Converts the outcome into a `Result`, the non-panicking
    /// replacement for the `expect_accepted()` pattern: callers either
    /// propagate the rejection or match on
    /// [`RejectedQuery::is_retryable`] to retry.
    // The Err variant is deliberately large: the unconsumed request
    // rides back by value so a retry needs no clone.
    #[allow(clippy::result_large_err)]
    pub fn into_result(self) -> Result<ResponseHandle, RejectedQuery> {
        match self {
            Submit::Accepted(h) => Ok(h),
            Submit::Rejected(r) => Err(r),
        }
    }

    /// True for [`Submit::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }
}

/// The client's future: one response, delivered exactly once.
pub struct ResponseHandle {
    rx: oneshot::Receiver<Result<QueryResponse, ServeError>>,
}

impl ResponseHandle {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }

    /// Blocks up to `timeout`. Consumes the handle like [`wait`] does —
    /// the two waiting APIs share one ownership story — and hands it
    /// back as the `Err` arm when the response has not arrived yet, so
    /// "not ready" keeps the handle usable without `&self` aliasing:
    ///
    /// ```ignore
    /// handle = match handle.wait_timeout(tick) {
    ///     Ok(response) => break response,
    ///     Err(still_waiting) => still_waiting, // keep polling
    /// };
    /// ```
    ///
    /// [`wait`]: ResponseHandle::wait
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<QueryResponse, ServeError>, ResponseHandle> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(oneshot::RecvTimeoutError::Timeout) => Err(self),
            Err(oneshot::RecvTimeoutError::Disconnected) => Ok(Err(ServeError::ShutDown)),
        }
    }
}

/// Acknowledgement future of an [`QueryService::append`] command.
pub struct AppendHandle {
    rx: oneshot::Receiver<Result<(), ServeError>>,
}

impl AppendHandle {
    /// Blocks until the append was applied (durably, for durable
    /// backends) or failed.
    pub fn wait(self) -> Result<(), ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }
}

/// A turned-away append: the admission verdict plus the caller's points,
/// handed back untouched so they can be retried — the same [`Rejected`]
/// shape as [`RejectedQuery`] carries for queries.
#[derive(Debug)]
pub struct RejectedAppend {
    /// Why, and in what queue state.
    pub rejected: Rejected,
    /// The points, returned unconsumed.
    pub points: Vec<f64>,
}

impl RejectedAppend {
    /// True when retrying after a backoff can succeed (backpressure).
    pub fn is_retryable(&self) -> bool {
        self.rejected.kind == RejectKind::Backpressure
    }
}

/// One queued command.
enum Command {
    Query(Job),
    Append { series: SeriesId, points: Vec<f64>, tx: oneshot::Sender<Result<(), ServeError>> },
}

struct Job {
    spec: QuerySpec,
    deadline: Option<Duration>,
    submitted: Instant,
    /// Live trace, present iff `spec.explain`. Boxed so the common
    /// untraced job stays one pointer wider, not a span stack wider.
    trace: Option<Box<TraceCtx>>,
    tx: oneshot::Sender<Result<QueryResponse, ServeError>>,
}

/// Whether an effective deadline — the job's own, falling back to the
/// service default — passed before `now`.
fn deadline_expired(
    submitted: Instant,
    deadline: Option<Duration>,
    now: Instant,
    default_deadline: Option<Duration>,
) -> bool {
    deadline.or(default_deadline).is_some_and(|d| now.duration_since(submitted) > d)
}

/// One unit of worker dispatch: a maximal run of queries on one series
/// that must observe the same ingest epoch, in submission order.
struct Shard {
    /// Raw id of the series every job in the shard targets.
    series: u64,
    /// Ingest epoch the shard must wait for (0 = no append ordered
    /// before it on this series).
    epoch: u64,
    jobs: Vec<Job>,
}

/// One append travelling down the ingest lane.
struct IngestJob {
    series: SeriesId,
    points: Vec<f64>,
    tx: oneshot::Sender<Result<(), ServeError>>,
    /// This append's position in its series' append order.
    epoch: u64,
}

/// The per-series ordering barrier between the ingest lane and the
/// worker pool: the lane publishes each completed (and materialized)
/// append's epoch; workers wait for the epochs their shards require.
#[derive(Default)]
struct IngestGate {
    completed: std::sync::Mutex<HashMap<u64, u64>>,
    advanced: std::sync::Condvar,
}

impl IngestGate {
    fn publish(&self, series: u64, epoch: u64) {
        let mut completed = self.completed.lock().expect("ingest gate poisoned");
        let e = completed.entry(series).or_insert(0);
        if epoch > *e {
            *e = epoch;
        }
        drop(completed);
        self.advanced.notify_all();
    }

    fn wait_for(&self, series: u64, epoch: u64) {
        let mut completed = self.completed.lock().expect("ingest gate poisoned");
        while completed.get(&series).copied().unwrap_or(0) < epoch {
            completed = self.advanced.wait(completed).expect("ingest gate poisoned");
        }
    }
}

struct Shared {
    /// The bounded submission queue — the admission-control surface.
    queue: BoundedQueue<Command>,
    /// The dedicated ingest lane's own bounded queue; a saturated lane
    /// back-pressures the front scheduler, which in turn fills the
    /// submission queue.
    ingest: BoundedQueue<IngestJob>,
    gate: IngestGate,
    metrics: Metrics,
    config: ServeConfig,
}

/// The serving front door over a [`Catalog`]: spawn it with the catalog,
/// submit [`QueryRequest`]s from any number of threads, receive
/// [`ResponseHandle`]s. See the [crate docs](crate) for the quick-start.
pub struct QueryService<B: CatalogBackend> {
    shared: Arc<Shared>,
    catalog: Option<Arc<RwLock<Catalog<B>>>>,
    scheduler: Option<JoinHandle<()>>,
}

impl<B> QueryService<B>
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    /// Takes ownership of `catalog` and starts the serving pipeline: the
    /// front scheduler, `config.workers` executor workers and the ingest
    /// lane. [`QueryService::shutdown`] hands the catalog back.
    pub fn spawn(catalog: Catalog<B>, config: ServeConfig) -> Self {
        Self::spawn_with_registry(catalog, config, Arc::new(Registry::new()))
    }

    /// Like [`QueryService::spawn`], but registers the serving metrics on
    /// a caller-provided [`Registry`] — so the server (or a test) can
    /// expose its own counters alongside the serving layer's in a single
    /// text scrape.
    pub fn spawn_with_registry(
        catalog: Catalog<B>,
        config: ServeConfig,
        registry: Arc<Registry>,
    ) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            ingest: BoundedQueue::new(config.queue_capacity),
            gate: IngestGate::default(),
            metrics: Metrics::on_registry(registry, workers),
            config,
        });
        let catalog = Arc::new(RwLock::new(catalog));
        let scheduler_shared = Arc::clone(&shared);
        let scheduler_catalog = Arc::clone(&catalog);
        let scheduler = std::thread::Builder::new()
            .name("kvmatch-serve-scheduler".into())
            .spawn(move || scheduler(scheduler_catalog, scheduler_shared))
            .expect("spawn scheduler thread");
        Self { shared, catalog: Some(catalog), scheduler: Some(scheduler) }
    }

    /// Non-blocking submission: admitted or immediately
    /// [`Submit::Rejected`] when the bounded queue is full.
    pub fn submit(&self, request: QueryRequest) -> Submit {
        self.submit_inner(request, None)
    }

    /// Blocking submission: waits up to `wait` for queue space before
    /// giving up with [`Submit::Rejected`].
    pub fn submit_timeout(&self, request: QueryRequest, wait: Duration) -> Submit {
        self.submit_inner(request, Some(wait))
    }

    fn submit_inner(&self, request: QueryRequest, wait: Option<Duration>) -> Submit {
        let (tx, rx) = oneshot::channel();
        // An explain query opens its trace at admission — `serve.queue`
        // covers everything from here to worker dispatch.
        let trace = request.spec.explain.then(|| {
            let mut trace = Box::new(TraceCtx::new());
            trace.begin("serve.queue");
            trace
        });
        let job = Command::Query(Job {
            spec: request.spec,
            // Keep the request's own deadline (the service default is
            // applied at dispatch) so a rejected submission hands the
            // request back truly untouched.
            deadline: request.deadline,
            submitted: Instant::now(),
            trace,
            tx,
        });
        let pushed = match wait {
            None => self.shared.queue.try_push(job),
            Some(d) => self.shared.queue.push_timeout(job, d),
        };
        match pushed {
            Ok(()) => {
                let m = &self.shared.metrics;
                m.submitted.inc();
                m.queue_depth_peak.record_max(self.shared.queue.len() as u64);
                Submit::Accepted(ResponseHandle { rx })
            }
            Err(PushError::Full(cmd)) => {
                self.shared.metrics.rejected.inc();
                Submit::Rejected(RejectedQuery {
                    rejected: self.rejection(RejectKind::Backpressure),
                    request: recover_request(cmd),
                })
            }
            Err(PushError::Closed(cmd)) => Submit::Rejected(RejectedQuery {
                rejected: self.rejection(RejectKind::ShuttingDown),
                request: recover_request(cmd),
            }),
        }
    }

    /// Stamps a rejection with the queue state observed right now.
    fn rejection(&self, kind: RejectKind) -> Rejected {
        Rejected {
            kind,
            capacity: self.shared.config.queue_capacity,
            depth: self.shared.queue.len(),
        }
    }

    /// Enqueues a streaming append. It is ordered with queries *on its
    /// own series*: queries submitted after the append see its points,
    /// while queries on other series keep flowing through the worker
    /// pool during ingestion. Shares the bounded submission queue — and
    /// therefore the backpressure — with queries; a turned-away append
    /// hands the points back ([`RejectedAppend`]) so the caller can
    /// retry.
    pub fn append(
        &self,
        series: SeriesId,
        points: Vec<f64>,
        wait: Duration,
    ) -> Result<AppendHandle, RejectedAppend> {
        let (tx, rx) = oneshot::channel();
        match self.shared.queue.push_timeout(Command::Append { series, points, tx }, wait) {
            Ok(()) => Ok(AppendHandle { rx }),
            Err(PushError::Full(Command::Append { points, .. })) => {
                self.shared.metrics.rejected.inc();
                Err(RejectedAppend { rejected: self.rejection(RejectKind::Backpressure), points })
            }
            Err(PushError::Closed(Command::Append { points, .. })) => {
                Err(RejectedAppend { rejected: self.rejection(RejectKind::ShuttingDown), points })
            }
            Err(PushError::Full(_) | PushError::Closed(_)) => {
                unreachable!("append pushes come back as appends")
            }
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.queue.len(), self.shared.ingest.len())
    }

    /// The registry every serving metric lives on — callers may register
    /// their own metrics here to join the same exposition.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.metrics.registry)
    }

    /// Prometheus-style text exposition of the whole registry plus the
    /// slow-query log — the body of the wire `MetricsText` response.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render_text(self.shared.queue.len(), self.shared.ingest.len())
    }

    /// Executor workers in the dispatch pool.
    pub fn workers(&self) -> usize {
        self.shared.metrics.workers.len()
    }

    /// Graceful shutdown: stops admissions, serves everything already
    /// queued (queries and appends), retires the worker pool and the
    /// ingest lane, and hands the catalog back.
    pub fn shutdown(mut self) -> Catalog<B> {
        self.shared.queue.close();
        self.scheduler.take().expect("shutdown runs once").join().expect("scheduler panicked");
        let catalog = self.catalog.take().expect("shutdown runs once");
        Arc::try_unwrap(catalog)
            .ok()
            .expect("all serving threads joined; no catalog borrow remains")
            .into_inner()
    }
}

impl<B: CatalogBackend> Drop for QueryService<B> {
    fn drop(&mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            self.shared.queue.close();
            let _ = scheduler.join();
        }
    }
}

fn recover_request(cmd: Command) -> QueryRequest {
    match cmd {
        Command::Query(job) => QueryRequest { spec: job.spec, deadline: job.deadline },
        Command::Append { .. } => unreachable!("submissions only enqueue queries"),
    }
}

/// The front scheduler: bring the read path up, spawn the pool and the
/// ingest lane, then loop drain → partition → hand off until the
/// submission queue closes; finally retire the pipeline in dependency
/// order (workers may wait on ingest epochs, so the lane outlives them).
fn scheduler<B>(catalog: Arc<RwLock<Catalog<B>>>, shared: Arc<Shared>)
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    // Bring the read path up: one materialization, then publish the
    // first snapshot into the `latest` slot every worker pins from. A
    // startup failure is *surfaced* — counted, and queries answer
    // `Unmaterialized` until the ingest lane publishes a good snapshot —
    // never silently swallowed.
    let latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>> = Arc::new(RwLock::new(None));
    if catalog.write().materialize().is_err() {
        shared.metrics.materialize_failures.inc();
    }
    *latest.write() = catalog.read().snapshot();

    let workers = shared.config.workers.max(1);
    let handoff: Arc<Handoff<Shard>> = Arc::new(Handoff::new());
    let pool: Vec<JoinHandle<()>> = (0..workers)
        .map(|idx| {
            let latest = Arc::clone(&latest);
            let shared = Arc::clone(&shared);
            let handoff = Arc::clone(&handoff);
            std::thread::Builder::new()
                .name(format!("kvmatch-serve-worker-{idx}"))
                .spawn(move || worker_loop(idx, latest, shared, handoff))
                .expect("spawn executor worker")
        })
        .collect();
    let ingest = {
        let catalog = Arc::clone(&catalog);
        let latest = Arc::clone(&latest);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("kvmatch-serve-ingest".into())
            .spawn(move || ingest_loop(catalog, latest, shared))
            .expect("spawn ingest lane")
    };

    // Per-series count of appends routed down the ingest lane so far —
    // the epoch a later query on that series must observe.
    let mut issued: HashMap<u64, u64> = HashMap::new();

    while let Some(first) = shared.queue.pop_wait() {
        // Micro-batch formation: the first command opens the batch; keep
        // draining until it is full or its flush deadline passes,
        // whichever comes first.
        let mut commands = vec![first];
        let flush_at = Instant::now() + shared.config.max_batch_delay;
        while commands.len() < shared.config.max_batch {
            match shared.queue.pop_before(flush_at) {
                Some(cmd) => commands.push(cmd),
                None => break,
            }
        }

        // Partition in submission order: queries shard by (series,
        // required ingest epoch) — so a query behind an append on its
        // series lands in a *different* shard than one ahead of it —
        // and appends go straight down the ingest lane.
        let mut shards: BTreeMap<(u64, u64), Vec<Job>> = BTreeMap::new();
        for cmd in commands {
            match cmd {
                Command::Query(job) => {
                    let series = job.spec.series.raw();
                    let epoch = issued.get(&series).copied().unwrap_or(0);
                    shards.entry((series, epoch)).or_default().push(job);
                }
                Command::Append { series, points, tx } => {
                    let epoch = issued.entry(series.raw()).or_insert(0);
                    *epoch += 1;
                    let job = IngestJob { series, points, tx, epoch: *epoch };
                    match shared.ingest.push_wait(job) {
                        Ok(()) => {
                            shared.metrics.ingest_depth_peak.record_max(shared.ingest.len() as u64);
                        }
                        Err(PushError::Full(job) | PushError::Closed(job)) => {
                            // Unreachable today (push_wait only fails
                            // Closed, and the lane closes after this
                            // loop) — but an issued epoch that never
                            // reaches the lane MUST still be published,
                            // or every later query on the series would
                            // wait at the gate forever.
                            shared.gate.publish(job.series.raw(), job.epoch);
                            let _ = job.tx.send(Err(ServeError::ShutDown));
                        }
                    }
                }
            }
        }

        // Hand each shard to an idle worker (the rendezvous blocks while
        // the whole pool is busy — that is where upstream backpressure
        // comes from).
        for ((series, epoch), jobs) in shards {
            if let Err(shard) = handoff.send(Shard { series, epoch, jobs }) {
                for job in shard.jobs {
                    let _ = job.tx.send(Err(ServeError::ShutDown));
                }
            }
        }
    }

    // Graceful drain: every admitted command is dispatched by now.
    handoff.close();
    for worker in pool {
        let _ = worker.join();
    }
    shared.ingest.close();
    let _ = ingest.join();

    // Dump the slow-query log on the way out — the last chance to see
    // what hurt before the process forgets.
    if shared.metrics.slowlog.depth() > 0 {
        let mut out = String::new();
        shared.metrics.slowlog.render_into(&mut out);
        eprint!("{out}");
    }
}

/// One executor worker: park at the hand-off, honour the shard's ingest
/// barrier, pin the latest published snapshot, then execute lock-free.
fn worker_loop<B>(
    idx: usize,
    latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>>,
    shared: Arc<Shared>,
    handoff: Arc<Handoff<Shard>>,
) where
    B: CatalogBackend,
    B::Data: Sync,
{
    while let Some(shard) = handoff.recv() {
        // The per-series ordering barrier: wait until the ingest lane
        // has applied (and published a snapshot covering) every append
        // ordered before this shard on its series. Shards of other
        // series pass straight through — an append never stalls the
        // whole pool.
        if shard.epoch > 0 {
            shared.gate.wait_for(shard.series, shard.epoch);
        }
        // Pin: one Arc clone under a pointer-sized lock. From here the
        // shard runs against an immutable generation set — the ingest
        // lane can rebuild, compact and publish freely underneath.
        let snapshot = latest.read().clone();
        execute_shard(idx, snapshot, shard.jobs, &shared);
    }
}

/// Executes one shard as a single batch against a pinned snapshot and
/// fans the results back onto each job's channel.
fn execute_shard<B>(
    idx: usize,
    snapshot: Option<Arc<CatalogSnapshot<B>>>,
    run: Vec<Job>,
    shared: &Shared,
) where
    B: CatalogBackend,
    B::Data: Sync,
{
    let metrics = &shared.metrics;
    if run.is_empty() {
        return;
    }
    // Per-request deadlines are enforced at dispatch: an expired job is
    // answered without being executed. The deadline bounds *queueing* —
    // including time spent behind an ingest barrier — and is re-checked
    // once more after execution before the response is sent.
    let now = Instant::now();
    let default_deadline = shared.config.default_deadline;
    let mut live = Vec::with_capacity(run.len());
    for job in run {
        if deadline_expired(job.submitted, job.deadline, now, default_deadline) {
            metrics.expired.inc();
            let _ = job.tx.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    metrics.note_batch(idx, live.len());
    let busy = Instant::now();
    // Move the specs out of the jobs instead of deep-cloning every query
    // vector — the batch and the jobs stay index-aligned, so the
    // fan-back zips them straight together.
    let (specs, clients): (Vec<QuerySpec>, Vec<JobClient>) = live
        .into_iter()
        .map(|mut job| {
            // Dispatch is the queue/execute span boundary.
            if let Some(trace) = job.trace.as_mut() {
                trace.end();
                trace.begin("serve.execute");
            }
            let series = job.spec.series.raw();
            (
                job.spec,
                JobClient {
                    submitted: job.submitted,
                    deadline: job.deadline,
                    series,
                    trace: job.trace,
                    tx: job.tx,
                },
            )
        })
        .unzip();
    match &snapshot {
        // No snapshot published yet (startup materialization failed and
        // no append has succeeded since): answer loudly per query.
        None => {
            for client in clients {
                metrics.failed.inc();
                let _ = client.tx.send(Err(ServeError::Query(CoreError::Unmaterialized)));
            }
        }
        Some(snap) => match snap.execute_batch(&specs) {
            Ok(batch) => {
                debug_assert_eq!(batch.outputs.len(), clients.len());
                for (client, out) in clients.into_iter().zip(batch.outputs) {
                    respond(client, out, shared);
                }
            }
            // A batch fails as a unit (e.g. one invalid or misrouted
            // spec). Isolate: re-run each request alone so only the
            // offender fails.
            Err(_) => {
                for (spec, client) in specs.iter().zip(clients) {
                    match snap.execute_batch(std::slice::from_ref(spec)) {
                        Ok(mut batch) => {
                            let out = batch.outputs.pop().expect("one spec yields one output");
                            respond(client, out, shared);
                        }
                        Err(e) => {
                            metrics.failed.inc();
                            let _ = client.tx.send(Err(ServeError::Query(e)));
                        }
                    }
                }
            }
        },
    }
    if let Some(w) = metrics.workers.get(idx) {
        w.note_busy(busy.elapsed());
    }
}

/// The ingest lane: drain a burst of appends, apply them under one write
/// guard with a single re-materialization, publish the fresh snapshot,
/// then release their epochs so barrier-waiting shards proceed.
fn ingest_loop<B>(
    catalog: Arc<RwLock<Catalog<B>>>,
    latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>>,
    shared: Arc<Shared>,
) where
    B: CatalogBackend,
{
    /// Appends absorbed into one write-guard scope (one materialization
    /// amortized across the burst).
    const INGEST_DRAIN: usize = 32;
    while let Some(first) = shared.ingest.pop_wait() {
        let mut jobs = vec![first];
        while jobs.len() < INGEST_DRAIN {
            // A deadline already in the past drains whatever is queued
            // right now without waiting.
            match shared.ingest.pop_before(Instant::now()) {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        let mut acks = Vec::with_capacity(jobs.len());
        {
            let mut cat = catalog.write();
            for job in jobs {
                let outcome = cat.append(job.series, &job.points).map_err(ServeError::Query);
                shared.metrics.appends.inc();
                acks.push((job.tx, outcome, job.series.raw(), job.epoch));
            }
            // One generation rebuild for the whole burst — the catalog
            // builds the dirty series' next generations off to the side
            // while workers keep serving pinned snapshots. Publication
            // is the pointer swap below.
            match cat.materialize() {
                Ok(()) => *latest.write() = cat.snapshot(),
                Err(e) => {
                    // Surface, don't swallow: count the failure and turn
                    // every would-be-successful ack of this burst into a
                    // `Materialize` error — the caller's points are
                    // ingested but not yet queryable. Readers keep the
                    // last good snapshot.
                    shared.metrics.materialize_failures.inc();
                    let msg = e.to_string();
                    for (_, outcome, _, _) in &mut acks {
                        if outcome.is_ok() {
                            *outcome = Err(ServeError::Materialize(msg.clone()));
                        }
                    }
                }
            }
        }
        // Epochs are published unconditionally — success or failure, the
        // gate must advance or every later query on these series would
        // wait forever.
        for (tx, outcome, series, epoch) in acks {
            shared.gate.publish(series, epoch);
            let _ = tx.send(outcome);
        }
    }
}

/// The part of a [`Job`] needed to answer it once its spec has been
/// moved into the executor batch.
struct JobClient {
    submitted: Instant,
    deadline: Option<Duration>,
    series: u64,
    trace: Option<Box<TraceCtx>>,
    tx: oneshot::Sender<Result<QueryResponse, ServeError>>,
}

fn respond(client: JobClient, out: QueryOutput, shared: &Shared) {
    let metrics = &shared.metrics;
    let now = Instant::now();
    // The post-execution deadline check: a request whose deadline passed
    // while it was executing is expired, not served — `expired_exec`
    // stays separate from `completed` so operators can see work that was
    // done but delivered too late.
    if deadline_expired(client.submitted, client.deadline, now, shared.config.default_deadline) {
        metrics.expired_exec.inc();
        let _ = client.tx.send(Err(ServeError::DeadlineExceeded));
        return;
    }
    let latency = now.duration_since(client.submitted);
    metrics.latency.record(latency);
    metrics.completed.inc();
    let stats = out.stats;
    // Kernel-level signals feed the registry regardless of tracing.
    if stats.alloc_events > 0 {
        metrics.alloc_events.add(stats.alloc_events);
    }
    if stats.adaptive_skipped_lb_kim > 0 {
        metrics.adaptive_skipped_lb_kim.add(stats.adaptive_skipped_lb_kim);
    }
    if stats.adaptive_skipped_lb_keogh > 0 {
        metrics.adaptive_skipped_lb_keogh.add(stats.adaptive_skipped_lb_keogh);
    }
    let explain = client.trace.map(|trace| Box::new(explain_report(*trace, &stats)));
    // The slow-query log sees every served query; its fast path is one
    // relaxed load for anything quicker than the current K-th slowest.
    let latency_us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
    metrics.slowlog.offer(SlowLogEntry {
        trace_id: explain.as_deref().map_or(0, |e| e.trace_id),
        series: client.series,
        latency_us,
        detail: format!(
            "results={} candidates={} exact={}",
            out.results.len(),
            stats.candidates,
            stats.full_distance_computations
        ),
    });
    let _ = client.tx.send(Ok(QueryResponse { results: out.results, stats, latency, explain }));
}

/// Assembles the wire-facing [`ExplainReport`] from a finished trace and
/// the executor's statistics. Prune counts are copied verbatim from
/// [`MatchStats`], so the report always agrees with the cascade's own
/// accounting.
fn explain_report(mut trace: TraceCtx, stats: &MatchStats) -> ExplainReport {
    trace.end(); // close `serve.execute`
    let trace_id = trace.trace_id();
    let spans = trace.finish();
    let span_nanos = |name: &str| spans.iter().find(|s| s.name == name).map_or(0, |s| s.nanos);
    ExplainReport {
        trace_id,
        queue_nanos: span_nanos("serve.queue"),
        execute_nanos: span_nanos("serve.execute"),
        probe_nanos: stats.phase1_nanos,
        lb_kim_nanos: stats.lb_kim_nanos,
        lb_keogh_nanos: stats.lb_keogh_nanos,
        dtw_nanos: stats.dtw_nanos,
        rows_scanned: stats.rows_scanned,
        rows_from_cache: stats.rows_from_cache,
        probe_cache_hits: stats.probe_cache_hits,
        cache_evictions: stats.cache_evictions,
        pruned_constraint: stats.pruned_constraint,
        pruned_lb_kim: stats.pruned_lb_kim,
        pruned_lb_keogh: stats.pruned_lb_keogh,
        full_distance_computations: stats.full_distance_computations,
        adaptive_skipped_lb_kim: stats.adaptive_skipped_lb_kim,
        adaptive_skipped_lb_keogh: stats.adaptive_skipped_lb_keogh,
        alloc_events: stats.alloc_events,
        spans,
    }
}
