//! Conversions between the serving layer's types and their
//! [`kvmatch_proto`] wire forms.
//!
//! The protocol crate stays transport- *and* service-independent (it only
//! knows `kvmatch-core`), so the mapping between `ServeError` and stable
//! wire codes, between [`Rejected`] and the `REJECTED` payload, and
//! between [`MetricsSnapshot`] and the metrics frame lives here — next to
//! the types whose evolution would break it.

use std::time::Duration;

use kvmatch_proto as proto;

use crate::metrics::MetricsSnapshot;
use crate::service::{QueryRequest, QueryResponse, RejectKind, Rejected, ServeError};

/// Builds the in-process request a wire `Request::Query` asks for.
pub fn query_request(spec: kvmatch_core::QuerySpec, deadline_us: Option<u64>) -> QueryRequest {
    QueryRequest { spec, deadline: deadline_us.map(Duration::from_micros) }
}

/// Maps a rejection to its wire payload.
pub fn wire_rejected(r: &Rejected) -> proto::WireRejected {
    proto::WireRejected {
        kind: match r.kind {
            RejectKind::Backpressure => proto::REJECT_KIND_BACKPRESSURE,
            RejectKind::ShuttingDown => proto::REJECT_KIND_SHUTDOWN,
        },
        capacity: r.capacity as u64,
        depth: r.depth as u64,
        shard: r.shard as u64,
    }
}

/// Maps a serving-layer failure to its wire error (stable code + detail;
/// rejections carry their queue-state payload).
pub fn wire_error(err: &ServeError) -> proto::WireError {
    let (code, rejected) = match err {
        ServeError::Rejected(r) => (proto::code::REJECTED, Some(wire_rejected(r))),
        ServeError::DeadlineExceeded => (proto::code::DEADLINE_EXCEEDED, None),
        ServeError::ShutDown => (proto::code::SHUTTING_DOWN, None),
        ServeError::Query(core) => (proto::core_error_code(core), None),
        ServeError::Materialize(_) => (proto::code::MATERIALIZE_FAILED, None),
    };
    proto::WireError { code, detail: err.to_string(), rejected }
}

/// Maps a served answer to its wire response.
pub fn wire_response(resp: &QueryResponse) -> proto::Response {
    proto::Response::Query {
        results: resp.results.clone(),
        stats: resp.stats,
        latency_us: resp.latency.as_micros() as u64,
        explain: resp.explain.clone(),
    }
}

/// Maps a metrics snapshot to the wire metrics frame. The `net_*` fields
/// are zero here — the serving layer does not know about sockets; the
/// server folds its connection accounting in on top.
pub fn wire_metrics(m: &MetricsSnapshot) -> proto::WireMetrics {
    proto::WireMetrics {
        submitted: m.submitted,
        rejected: m.rejected,
        expired: m.expired,
        expired_exec: m.expired_exec,
        completed: m.completed,
        failed: m.failed,
        appends: m.appends,
        materialize_failures: m.materialize_failures,
        batches: m.batches,
        batched_queries: m.batched_queries,
        avg_batch_occupancy: m.avg_batch_occupancy,
        max_batch_occupancy: m.max_batch_occupancy,
        queue_depth: m.queue_depth as u64,
        queue_depth_peak: m.queue_depth_peak,
        ingest_depth: m.ingest_depth as u64,
        ingest_depth_peak: m.ingest_depth_peak,
        workers: m.workers.len() as u64,
        latency_p50_us: m.latency_p50_us,
        latency_p95_us: m.latency_p95_us,
        latency_p99_us: m.latency_p99_us,
        latency_max_us: m.latency_max_us,
        ..proto::WireMetrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_payload_survives_the_mapping() {
        let r = Rejected { kind: RejectKind::Backpressure, capacity: 256, depth: 256, shard: 2 };
        let err = wire_error(&ServeError::Rejected(r));
        assert_eq!(err.code, proto::code::REJECTED);
        let payload = err.rejected.expect("rejections carry their payload");
        assert_eq!(payload.kind, proto::REJECT_KIND_BACKPRESSURE);
        assert_eq!(payload.capacity, 256);
        assert_eq!(payload.depth, 256);
        assert_eq!(payload.shard, 2, "the rejecting shard rides along");

        let shutdown = Rejected { kind: RejectKind::ShuttingDown, capacity: 8, depth: 3, shard: 0 };
        let err = wire_error(&ServeError::Rejected(shutdown));
        assert_eq!(err.rejected.unwrap().kind, proto::REJECT_KIND_SHUTDOWN);
    }

    #[test]
    fn core_errors_keep_distinct_codes() {
        use kvmatch_core::CoreError;
        let cases = [
            (ServeError::Query(CoreError::InvalidQuery("x".into())), proto::code::INVALID_QUERY),
            (
                ServeError::Query(CoreError::QueryTooShort { query_len: 3, window: 50 }),
                proto::code::QUERY_TOO_SHORT,
            ),
            (ServeError::Query(CoreError::Unmaterialized), proto::code::UNMATERIALIZED),
            (ServeError::DeadlineExceeded, proto::code::DEADLINE_EXCEEDED),
            (ServeError::ShutDown, proto::code::SHUTTING_DOWN),
            (ServeError::Materialize("boom".into()), proto::code::MATERIALIZE_FAILED),
        ];
        for (err, want) in cases {
            assert_eq!(wire_error(&err).code, want, "{err}");
        }
    }
}
