//! Shard-per-core catalog scale-out: N [`CatalogShard`]s, each an owned
//! [`Catalog`] with its own ingest lane and worker set, behind a
//! [`Router`] that hashes `SeriesId → shard`.
//!
//! ```text
//!            Router (series id hash)
//!                 │ scatter
//!   ┌─────────────┼──────────────┐
//!   ▼             ▼              ▼
//! shard 0       shard 1        shard N-1        each shard owns:
//! ┌─────────┐  ┌─────────┐    ┌─────────┐       · a bounded command lane
//! │ queue   │  │ queue   │    │ queue   │       · a micro-batch scheduler
//! │ sched   │  │ sched   │    │ sched   │       · its worker pool
//! │ workers │  │ workers │    │ workers │       · its ingest lane + epoch gate
//! │ ingest  │  │ ingest  │    │ ingest  │       · its own Catalog + snapshot slot
//! └────┬────┘  └────┬────┘    └────┬────┘
//!      └────────────┼──────────────┘
//!                   ▼ gather (per-request oneshot fan-back, input order)
//! ```
//!
//! A series lives on exactly one shard, so nothing here synchronizes
//! across shards: no shared lock, no shared queue, no shared epoch
//! state. The per-series ingest barriers and the identity-preserving
//! fan-back of the single-catalog pipeline carry over verbatim — they
//! were per-series already, and a shard owns whole series. The only
//! cross-shard structure is the [`Router`]'s arithmetic and the shared
//! metrics registry (lock-free atomics).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kvmatch_core::catalog::{Catalog, CatalogBackend, CatalogSnapshot};
use kvmatch_core::exec::QueryOutput;
use kvmatch_core::{CoreError, MatchStats, QuerySpec, SeriesId};
use kvmatch_obs::{ExplainReport, SlowLogEntry, TraceCtx};
use parking_lot::RwLock;

use crate::metrics::{Metrics, ShardMetrics};
use crate::service::{QueryResponse, ServeError, ServiceConfig};
use crate::sync::{oneshot, BoundedQueue, Handoff, PushError};

/// The series→shard placement function, applied identically at catalog
/// split time and on every submission. The raw series id reduces
/// modulo the shard count — the classic hash-table reduction, uniform
/// for the dense sequential id spaces catalogs use in practice and
/// trivially auditable ("series 7 of 4 shards → shard 3") when it
/// matters operationally: a rejection carries its shard id precisely so
/// an operator can reproduce the routing by hand.
#[derive(Clone, Copy, Debug)]
pub struct Router {
    shards: usize,
}

impl Router {
    /// A router over `shards` shards (min 1).
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard hosting `series`. Total: every id — known or not — maps
    /// to a shard, so misrouted and unknown series fail *inside* their
    /// shard (as `UnknownSeries`) instead of at the front door.
    pub fn route(&self, series: SeriesId) -> usize {
        (series.raw() % self.shards as u64) as usize
    }
}

/// One queued command on a shard's lane.
pub(crate) enum Command {
    Query(Job),
    Append { series: SeriesId, points: Vec<f64>, tx: oneshot::Sender<Result<(), ServeError>> },
}

pub(crate) struct Job {
    pub(crate) spec: QuerySpec,
    pub(crate) deadline: Option<Duration>,
    pub(crate) submitted: Instant,
    /// Live trace, present iff `spec.explain`. Boxed so the common
    /// untraced job stays one pointer wider, not a span stack wider.
    pub(crate) trace: Option<Box<TraceCtx>>,
    pub(crate) tx: oneshot::Sender<Result<QueryResponse, ServeError>>,
}

/// Whether an effective deadline — the job's own, falling back to the
/// service default — passed before `now`.
fn deadline_expired(
    submitted: Instant,
    deadline: Option<Duration>,
    now: Instant,
    default_deadline: Option<Duration>,
) -> bool {
    deadline.or(default_deadline).is_some_and(|d| now.duration_since(submitted) > d)
}

/// One unit of worker dispatch: a maximal run of queries on one series
/// that must observe the same ingest epoch, in submission order.
struct SeriesRun {
    /// Raw id of the series every job in the run targets.
    series: u64,
    /// Ingest epoch the run must wait for (0 = no append ordered before
    /// it on this series).
    epoch: u64,
    jobs: Vec<Job>,
}

/// One append travelling down a shard's ingest lane.
pub(crate) struct IngestJob {
    pub(crate) series: SeriesId,
    pub(crate) points: Vec<f64>,
    pub(crate) tx: oneshot::Sender<Result<(), ServeError>>,
    /// This append's position in its series' append order.
    pub(crate) epoch: u64,
}

/// The per-series ordering barrier between a shard's ingest lane and its
/// worker pool: the lane publishes each completed (and materialized)
/// append's epoch; workers wait for the epochs their runs require. A
/// series maps to exactly one shard, so each shard's gate covers its own
/// series completely and no other shard's at all.
#[derive(Default)]
struct IngestGate {
    completed: std::sync::Mutex<HashMap<u64, u64>>,
    advanced: std::sync::Condvar,
}

impl IngestGate {
    fn publish(&self, series: u64, epoch: u64) {
        let mut completed = self.completed.lock().expect("ingest gate poisoned");
        let e = completed.entry(series).or_insert(0);
        if epoch > *e {
            *e = epoch;
        }
        drop(completed);
        self.advanced.notify_all();
    }

    fn wait_for(&self, series: u64, epoch: u64) {
        let mut completed = self.completed.lock().expect("ingest gate poisoned");
        while completed.get(&series).copied().unwrap_or(0) < epoch {
            completed = self.advanced.wait(completed).expect("ingest gate poisoned");
        }
    }
}

/// State one shard's submission side and pipeline threads share.
pub(crate) struct ShardShared {
    /// This shard's bounded command lane — the admission-control
    /// surface for every series routed here.
    pub(crate) queue: BoundedQueue<Command>,
    /// The shard's ingest lane's own bounded queue; a saturated lane
    /// back-pressures the shard's scheduler, which in turn fills the
    /// shard's command lane.
    pub(crate) ingest: BoundedQueue<IngestJob>,
    gate: IngestGate,
    /// Service-wide counters (shared across shards, lock-free atomics).
    pub(crate) metrics: Arc<Metrics>,
    /// This shard's labelled `kvmatch_serve_shard_*` series.
    pub(crate) shard_metrics: ShardMetrics,
    pub(crate) config: ServiceConfig,
    /// First global worker index of this shard's pool (shard `s` owns
    /// worker ids `s*workers .. (s+1)*workers`).
    worker_base: usize,
}

/// One catalog shard: an owned [`Catalog`] behind its own micro-batch
/// scheduler, executor worker pool, ingest lane and snapshot slot — the
/// whole single-catalog serving pipeline, instantiated per shard with
/// nothing shared. Constructed only by the service builder; clients
/// reach it through `QueryService`'s routing surface.
pub struct CatalogShard<B: CatalogBackend> {
    pub(crate) shared: Arc<ShardShared>,
    latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>>,
    catalog: Option<Arc<RwLock<Catalog<B>>>>,
    scheduler: Option<JoinHandle<()>>,
}

impl<B> CatalogShard<B>
where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    /// Takes ownership of this shard's catalog slice and starts its
    /// pipeline: scheduler, `config.workers` executor workers and the
    /// ingest lane.
    pub(crate) fn spawn(
        shard_id: usize,
        catalog: Catalog<B>,
        config: ServiceConfig,
        metrics: Arc<Metrics>,
    ) -> Self {
        let shard_metrics = metrics.shards[shard_id].clone();
        let shared = Arc::new(ShardShared {
            queue: BoundedQueue::new(config.queue_capacity),
            ingest: BoundedQueue::new(config.queue_capacity),
            gate: IngestGate::default(),
            metrics,
            shard_metrics,
            config,
            worker_base: shard_id * config.workers,
        });
        let catalog = Arc::new(RwLock::new(catalog));
        let latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>> = Arc::new(RwLock::new(None));
        let scheduler_shared = Arc::clone(&shared);
        let scheduler_catalog = Arc::clone(&catalog);
        let scheduler_latest = Arc::clone(&latest);
        let scheduler = std::thread::Builder::new()
            .name(format!("kvmatch-serve-{shard_id}-scheduler"))
            .spawn(move || {
                shard_scheduler(shard_id, scheduler_catalog, scheduler_latest, scheduler_shared)
            })
            .expect("spawn shard scheduler thread");
        Self { shared, latest, catalog: Some(catalog), scheduler: Some(scheduler) }
    }
}

impl<B: CatalogBackend> CatalogShard<B> {
    /// The shard-handle read path: pins the latest snapshot this shard
    /// published — an `Arc` clone under a pointer-sized lock, never the
    /// catalog lock. `None` before the shard's first materialization.
    pub(crate) fn read_view(&self) -> Option<Arc<CatalogSnapshot<B>>> {
        self.latest.read().clone()
    }

    /// Stops admissions on this shard's lane.
    pub(crate) fn close(&self) {
        self.shared.queue.close();
    }

    /// Joins the shard's scheduler (which drains and joins the shard's
    /// workers and ingest lane on its way out).
    pub(crate) fn join(&mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            let _ = scheduler.join();
        }
    }

    /// Hands the shard's catalog back after [`close`](Self::close) +
    /// [`join`](Self::join).
    pub(crate) fn into_catalog(mut self) -> Catalog<B> {
        let catalog = self.catalog.take().expect("shard shut down once");
        Arc::try_unwrap(catalog)
            .ok()
            .expect("all shard threads joined; no catalog borrow remains")
            .into_inner()
    }
}

/// One shard's scheduler: bring the read path up, spawn the shard's pool
/// and ingest lane, then loop drain → partition → hand off until the
/// shard's lane closes; finally retire the pipeline in dependency order
/// (workers may wait on ingest epochs, so the lane outlives them).
fn shard_scheduler<B>(
    shard_id: usize,
    catalog: Arc<RwLock<Catalog<B>>>,
    latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>>,
    shared: Arc<ShardShared>,
) where
    B: CatalogBackend + Send + Sync + 'static,
    B::Store: Send + Sync + 'static,
    B::Data: Send + Sync + 'static,
{
    // Bring the read path up: one materialization, then publish the
    // first snapshot into the `latest` slot every worker pins from. A
    // startup failure is *surfaced* — counted, and queries answer
    // `Unmaterialized` until the ingest lane publishes a good snapshot —
    // never silently swallowed. This (and the ingest lane) is the only
    // code that ever takes the catalog's write lock; the steady-state
    // query path below runs entirely on pinned snapshots.
    if catalog.write().materialize().is_err() {
        shared.metrics.materialize_failures.inc();
    }
    *latest.write() = catalog.read().snapshot();

    let workers = shared.config.workers.max(1);
    let handoff: Arc<Handoff<SeriesRun>> = Arc::new(Handoff::new());
    let pool: Vec<JoinHandle<()>> = (0..workers)
        .map(|idx| {
            let latest = Arc::clone(&latest);
            let shared = Arc::clone(&shared);
            let handoff = Arc::clone(&handoff);
            std::thread::Builder::new()
                .name(format!("kvmatch-serve-{shard_id}-worker-{idx}"))
                .spawn(move || worker_loop(idx, latest, shared, handoff))
                .expect("spawn executor worker")
        })
        .collect();
    let ingest = {
        let catalog = Arc::clone(&catalog);
        let latest = Arc::clone(&latest);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("kvmatch-serve-{shard_id}-ingest"))
            .spawn(move || ingest_loop(catalog, latest, shared))
            .expect("spawn ingest lane")
    };

    // Per-series count of appends routed down the ingest lane so far —
    // the epoch a later query on that series must observe. Series are
    // shard-exclusive, so this map needs no cross-shard view.
    let mut issued: HashMap<u64, u64> = HashMap::new();

    while let Some(first) = shared.queue.pop_wait() {
        // Micro-batch formation: the first command opens the batch; keep
        // draining until it is full or its flush deadline passes,
        // whichever comes first.
        let mut commands = vec![first];
        let flush_at = Instant::now() + shared.config.max_batch_delay;
        while commands.len() < shared.config.max_batch {
            match shared.queue.pop_before(flush_at) {
                Some(cmd) => commands.push(cmd),
                None => break,
            }
        }

        // Partition in submission order: queries run by (series,
        // required ingest epoch) — so a query behind an append on its
        // series lands in a *different* run than one ahead of it — and
        // appends go straight down the ingest lane.
        let mut runs: BTreeMap<(u64, u64), Vec<Job>> = BTreeMap::new();
        for cmd in commands {
            match cmd {
                Command::Query(job) => {
                    let series = job.spec.series.raw();
                    let epoch = issued.get(&series).copied().unwrap_or(0);
                    runs.entry((series, epoch)).or_default().push(job);
                }
                Command::Append { series, points, tx } => {
                    let epoch = issued.entry(series.raw()).or_insert(0);
                    *epoch += 1;
                    let job = IngestJob { series, points, tx, epoch: *epoch };
                    match shared.ingest.push_wait(job) {
                        Ok(()) => {
                            shared.metrics.ingest_depth_peak.record_max(shared.ingest.len() as u64);
                        }
                        Err(PushError::Full(job) | PushError::Closed(job)) => {
                            // Unreachable today (push_wait only fails
                            // Closed, and the lane closes after this
                            // loop) — but an issued epoch that never
                            // reaches the lane MUST still be published,
                            // or every later query on the series would
                            // wait at the gate forever.
                            shared.gate.publish(job.series.raw(), job.epoch);
                            let _ = job.tx.send(Err(ServeError::ShutDown));
                        }
                    }
                }
            }
        }

        // Hand each run to an idle worker (the rendezvous blocks while
        // the shard's whole pool is busy — that is where this shard's
        // upstream backpressure comes from; other shards keep accepting).
        for ((series, epoch), jobs) in runs {
            if let Err(run) = handoff.send(SeriesRun { series, epoch, jobs }) {
                for job in run.jobs {
                    let _ = job.tx.send(Err(ServeError::ShutDown));
                }
            }
        }
    }

    // Graceful drain: every admitted command is dispatched by now.
    handoff.close();
    for worker in pool {
        let _ = worker.join();
    }
    shared.ingest.close();
    let _ = ingest.join();
}

/// One executor worker: park at the hand-off, honour the run's ingest
/// barrier, pin the latest published snapshot, then execute lock-free.
fn worker_loop<B>(
    idx: usize,
    latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>>,
    shared: Arc<ShardShared>,
    handoff: Arc<Handoff<SeriesRun>>,
) where
    B: CatalogBackend,
    B::Data: Sync,
{
    while let Some(run) = handoff.recv() {
        // The per-series ordering barrier: wait until the ingest lane
        // has applied (and published a snapshot covering) every append
        // ordered before this run on its series. Runs of other series
        // pass straight through — an append never stalls the whole pool.
        if run.epoch > 0 {
            shared.gate.wait_for(run.series, run.epoch);
        }
        // Pin: one Arc clone under a pointer-sized lock. From here the
        // run executes against an immutable generation set — the ingest
        // lane can rebuild, compact and publish freely underneath.
        let snapshot = latest.read().clone();
        execute_run(idx, snapshot, run.jobs, &shared);
    }
}

/// Executes one series run as a single batch against a pinned snapshot
/// and fans the results back onto each job's channel.
fn execute_run<B>(
    idx: usize,
    snapshot: Option<Arc<CatalogSnapshot<B>>>,
    run: Vec<Job>,
    shared: &ShardShared,
) where
    B: CatalogBackend,
    B::Data: Sync,
{
    let metrics = &shared.metrics;
    if run.is_empty() {
        return;
    }
    // Per-request deadlines are enforced at dispatch: an expired job is
    // answered without being executed. The deadline bounds *queueing* —
    // including time spent behind an ingest barrier — and is re-checked
    // once more after execution before the response is sent.
    let now = Instant::now();
    let default_deadline = shared.config.default_deadline;
    let mut live = Vec::with_capacity(run.len());
    for job in run {
        if deadline_expired(job.submitted, job.deadline, now, default_deadline) {
            metrics.expired.inc();
            let _ = job.tx.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    metrics.note_batch(shared.worker_base + idx, live.len());
    shared.shard_metrics.batches.inc();
    let busy = Instant::now();
    // Move the specs out of the jobs instead of deep-cloning every query
    // vector — the batch and the jobs stay index-aligned, so the
    // fan-back zips them straight together.
    let (specs, clients): (Vec<QuerySpec>, Vec<JobClient>) = live
        .into_iter()
        .map(|mut job| {
            // Dispatch is the queue/execute span boundary.
            if let Some(trace) = job.trace.as_mut() {
                trace.end();
                trace.begin("serve.execute");
            }
            let series = job.spec.series.raw();
            (
                job.spec,
                JobClient {
                    submitted: job.submitted,
                    deadline: job.deadline,
                    series,
                    trace: job.trace,
                    tx: job.tx,
                },
            )
        })
        .unzip();
    match &snapshot {
        // No snapshot published yet (startup materialization failed and
        // no append has succeeded since): answer loudly per query.
        None => {
            for client in clients {
                metrics.failed.inc();
                let _ = client.tx.send(Err(ServeError::Query(CoreError::Unmaterialized)));
            }
        }
        Some(snap) => match snap.execute_batch(&specs) {
            Ok(batch) => {
                debug_assert_eq!(batch.outputs.len(), clients.len());
                for (client, out) in clients.into_iter().zip(batch.outputs) {
                    respond(client, out, shared);
                }
            }
            // A batch fails as a unit (e.g. one invalid or misrouted
            // spec). Isolate: re-run each request alone — on this same
            // worker, against this same pinned snapshot, so the blast
            // radius of a poisoned batch stays inside its shard — and
            // only the offender fails.
            Err(_) => {
                for (spec, client) in specs.iter().zip(clients) {
                    match snap.execute_batch(std::slice::from_ref(spec)) {
                        Ok(mut batch) => {
                            let out = batch.outputs.pop().expect("one spec yields one output");
                            respond(client, out, shared);
                        }
                        Err(e) => {
                            metrics.failed.inc();
                            let _ = client.tx.send(Err(ServeError::Query(e)));
                        }
                    }
                }
            }
        },
    }
    if let Some(w) = metrics.workers.get(shared.worker_base + idx) {
        w.note_busy(busy.elapsed());
    }
}

/// One shard's ingest lane: drain a burst of appends, apply them under
/// one write guard with a single re-materialization, publish the fresh
/// snapshot, then release their epochs so barrier-waiting runs proceed.
/// The write guard is this shard's alone — an ingest stall here cannot
/// touch another shard's lane, workers or catalog.
fn ingest_loop<B>(
    catalog: Arc<RwLock<Catalog<B>>>,
    latest: Arc<RwLock<Option<Arc<CatalogSnapshot<B>>>>>,
    shared: Arc<ShardShared>,
) where
    B: CatalogBackend,
{
    /// Appends absorbed into one write-guard scope (one materialization
    /// amortized across the burst).
    const INGEST_DRAIN: usize = 32;
    while let Some(first) = shared.ingest.pop_wait() {
        let mut jobs = vec![first];
        while jobs.len() < INGEST_DRAIN {
            // A deadline already in the past drains whatever is queued
            // right now without waiting.
            match shared.ingest.pop_before(Instant::now()) {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        let mut acks = Vec::with_capacity(jobs.len());
        {
            let mut cat = catalog.write();
            for job in jobs {
                let outcome = cat.append(job.series, &job.points).map_err(ServeError::Query);
                shared.metrics.appends.inc();
                shared.shard_metrics.appends.inc();
                acks.push((job.tx, outcome, job.series.raw(), job.epoch));
            }
            // One generation rebuild for the whole burst — the catalog
            // builds the dirty series' next generations off to the side
            // while workers keep serving pinned snapshots. Publication
            // is the pointer swap below.
            match cat.materialize() {
                Ok(()) => *latest.write() = cat.snapshot(),
                Err(e) => {
                    // Surface, don't swallow: count the failure and turn
                    // every would-be-successful ack of this burst into a
                    // `Materialize` error — the caller's points are
                    // ingested but not yet queryable. Readers keep the
                    // last good snapshot.
                    shared.metrics.materialize_failures.inc();
                    let msg = e.to_string();
                    for (_, outcome, _, _) in &mut acks {
                        if outcome.is_ok() {
                            *outcome = Err(ServeError::Materialize(msg.clone()));
                        }
                    }
                }
            }
        }
        // Epochs are published unconditionally — success or failure, the
        // gate must advance or every later query on these series would
        // wait forever.
        for (tx, outcome, series, epoch) in acks {
            shared.gate.publish(series, epoch);
            let _ = tx.send(outcome);
        }
    }
}

/// The part of a [`Job`] needed to answer it once its spec has been
/// moved into the executor batch.
struct JobClient {
    submitted: Instant,
    deadline: Option<Duration>,
    series: u64,
    trace: Option<Box<TraceCtx>>,
    tx: oneshot::Sender<Result<QueryResponse, ServeError>>,
}

fn respond(client: JobClient, out: QueryOutput, shared: &ShardShared) {
    let metrics = &shared.metrics;
    let now = Instant::now();
    // The post-execution deadline check: a request whose deadline passed
    // while it was executing is expired, not served — `expired_exec`
    // stays separate from `completed` so operators can see work that was
    // done but delivered too late.
    if deadline_expired(client.submitted, client.deadline, now, shared.config.default_deadline) {
        metrics.expired_exec.inc();
        let _ = client.tx.send(Err(ServeError::DeadlineExceeded));
        return;
    }
    let latency = now.duration_since(client.submitted);
    metrics.latency.record(latency);
    metrics.completed.inc();
    shared.shard_metrics.completed.inc();
    let stats = out.stats;
    // Kernel-level signals feed the registry regardless of tracing.
    if stats.alloc_events > 0 {
        metrics.alloc_events.add(stats.alloc_events);
    }
    if stats.adaptive_skipped_lb_kim > 0 {
        metrics.adaptive_skipped_lb_kim.add(stats.adaptive_skipped_lb_kim);
    }
    if stats.adaptive_skipped_lb_keogh > 0 {
        metrics.adaptive_skipped_lb_keogh.add(stats.adaptive_skipped_lb_keogh);
    }
    let explain = client.trace.map(|trace| Box::new(explain_report(*trace, &stats)));
    // The slow-query log sees every served query; its fast path is one
    // relaxed load for anything quicker than the current K-th slowest.
    let latency_us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
    metrics.slowlog.offer(SlowLogEntry {
        trace_id: explain.as_deref().map_or(0, |e| e.trace_id),
        series: client.series,
        latency_us,
        detail: format!(
            "results={} candidates={} exact={}",
            out.results.len(),
            stats.candidates,
            stats.full_distance_computations
        ),
    });
    let _ = client.tx.send(Ok(QueryResponse { results: out.results, stats, latency, explain }));
}

/// Assembles the wire-facing [`ExplainReport`] from a finished trace and
/// the executor's statistics. Prune counts are copied verbatim from
/// [`MatchStats`], so the report always agrees with the cascade's own
/// accounting.
fn explain_report(mut trace: TraceCtx, stats: &MatchStats) -> ExplainReport {
    trace.end(); // close `serve.execute`
    let trace_id = trace.trace_id();
    let spans = trace.finish();
    let span_nanos = |name: &str| spans.iter().find(|s| s.name == name).map_or(0, |s| s.nanos);
    ExplainReport {
        trace_id,
        queue_nanos: span_nanos("serve.queue"),
        execute_nanos: span_nanos("serve.execute"),
        probe_nanos: stats.phase1_nanos,
        lb_kim_nanos: stats.lb_kim_nanos,
        lb_keogh_nanos: stats.lb_keogh_nanos,
        dtw_nanos: stats.dtw_nanos,
        rows_scanned: stats.rows_scanned,
        rows_from_cache: stats.rows_from_cache,
        probe_cache_hits: stats.probe_cache_hits,
        cache_evictions: stats.cache_evictions,
        pruned_constraint: stats.pruned_constraint,
        pruned_lb_kim: stats.pruned_lb_kim,
        pruned_lb_keogh: stats.pruned_lb_keogh,
        full_distance_computations: stats.full_distance_computations,
        adaptive_skipped_lb_kim: stats.adaptive_skipped_lb_kim,
        adaptive_skipped_lb_keogh: stats.adaptive_skipped_lb_keogh,
        alloc_events: stats.alloc_events,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_total_and_stable() {
        let router = Router::new(4);
        assert_eq!(router.shards(), 4);
        for raw in 0..64u64 {
            let shard = router.route(SeriesId::new(raw));
            assert!(shard < 4);
            assert_eq!(shard, router.route(SeriesId::new(raw)), "routing is deterministic");
        }
        // Dense sequential ids spread perfectly.
        let hits: Vec<usize> = (1..=8u64).map(|raw| router.route(SeriesId::new(raw))).collect();
        for shard in 0..4 {
            assert_eq!(hits.iter().filter(|&&s| s == shard).count(), 2);
        }
        // A single shard routes everything to itself, and shards = 0 is
        // clamped rather than dividing by zero.
        assert_eq!(Router::new(1).route(SeriesId::new(u64::MAX)), 0);
        assert_eq!(Router::new(0).shards(), 1);
    }
}
