//! The serving-side metrics, hosted on the unified
//! [`kvmatch_obs::Registry`].
//!
//! Every counter a production front door needs to be operated: admission
//! outcomes (submitted / rejected / expired), completion outcomes
//! (completed / failed), scheduler behaviour (batches dispatched, batch
//! occupancy), queue pressure (depth gauge + peak), end-to-end latency
//! percentiles (p50/p95/p99/max) and the executor's kernel-level signals
//! (scratch allocation events, adaptive cascade skips).
//!
//! The counters live in a [`Registry`] under `kvmatch_serve_*` names, so
//! one [`Registry::render_text`] scrape exposes the whole serving layer
//! alongside whatever else (server, LSM) registered on the same
//! registry. `Metrics::snapshot` still materializes the typed
//! [`MetricsSnapshot`] the in-process and wire surfaces consume.
//!
//! Latencies land in the registry's fixed 256-bucket quarter-log₂
//! histogram ([`LatencyHistogram`], re-exported from `kvmatch_obs`):
//! constant memory, lock-free recording, ≤ ~19 % relative error on
//! reported percentiles — the HDR-histogram trade-off, sized for a
//! service that must never let metrics grow with uptime.

use std::sync::Arc;

use kvmatch_obs::{Counter, Gauge, Registry, SlowLog};

/// The quarter-log₂ latency histogram, now shared workspace-wide via
/// `kvmatch_obs` (this alias keeps the serving layer's historical name).
pub use kvmatch_obs::Histogram as LatencyHistogram;

/// Traces kept by the slow-query log.
pub(crate) const SLOWLOG_CAPACITY: usize = 8;

/// Live counters of one executor worker in the dispatch pool, as
/// labelled per-worker series on the shared registry.
#[derive(Debug)]
pub struct WorkerMetrics {
    pub(crate) batches: Arc<Counter>,
    pub(crate) queries: Arc<Counter>,
    pub(crate) busy_nanos: Arc<Counter>,
}

impl WorkerMetrics {
    fn on(registry: &Registry, idx: usize) -> Self {
        Self {
            batches: registry.counter(&worker_series("kvmatch_serve_worker_batches_total", idx)),
            queries: registry.counter(&worker_series("kvmatch_serve_worker_queries_total", idx)),
            busy_nanos: registry
                .counter(&worker_series("kvmatch_serve_worker_busy_nanos_total", idx)),
        }
    }

    pub(crate) fn note_shard(&self, occupancy: usize) {
        self.batches.inc();
        self.queries.add(occupancy as u64);
    }

    pub(crate) fn note_busy(&self, busy: std::time::Duration) {
        self.busy_nanos.add(busy.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

fn worker_series(family: &str, idx: usize) -> String {
    format!("{family}{{worker=\"{idx}\"}}")
}

fn shard_series(family: &str, idx: usize) -> String {
    format!("{family}{{shard=\"{idx}\"}}")
}

/// Live counters of one catalog shard, as labelled
/// `kvmatch_serve_shard_*` series on the shared registry. Cloning hands
/// out more `Arc` handles onto the same registry-owned atomics, so the
/// shard runtime can keep its own copy off the service.
#[derive(Clone, Debug)]
pub struct ShardMetrics {
    pub(crate) submitted: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) appends: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) queue_depth_peak: Arc<Gauge>,
}

impl ShardMetrics {
    fn on(registry: &Registry, idx: usize) -> Self {
        Self {
            submitted: registry.counter(&shard_series("kvmatch_serve_shard_submitted_total", idx)),
            completed: registry.counter(&shard_series("kvmatch_serve_shard_completed_total", idx)),
            rejected: registry.counter(&shard_series("kvmatch_serve_shard_rejected_total", idx)),
            appends: registry.counter(&shard_series("kvmatch_serve_shard_appends_total", idx)),
            batches: registry.counter(&shard_series("kvmatch_serve_shard_batches_total", idx)),
            queue_depth: registry.gauge(&shard_series("kvmatch_serve_shard_queue_depth", idx)),
            queue_depth_peak: registry
                .gauge(&shard_series("kvmatch_serve_shard_queue_depth_peak", idx)),
        }
    }
}

/// Live counters of one [`QueryService`](crate::QueryService): `Arc`
/// handles into the shared registry, so the hot paths stay single
/// relaxed atomics while the registry owns naming and exposition.
#[derive(Debug)]
pub struct Metrics {
    pub(crate) registry: Arc<Registry>,
    pub(crate) submitted: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) expired: Arc<Counter>,
    pub(crate) expired_exec: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) appends: Arc<Counter>,
    pub(crate) materialize_failures: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) batched_queries: Arc<Counter>,
    pub(crate) max_batch_occupancy: Arc<Gauge>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) queue_depth_peak: Arc<Gauge>,
    pub(crate) ingest_depth: Arc<Gauge>,
    pub(crate) ingest_depth_peak: Arc<Gauge>,
    pub(crate) alloc_events: Arc<Counter>,
    pub(crate) adaptive_skipped_lb_kim: Arc<Counter>,
    pub(crate) adaptive_skipped_lb_keogh: Arc<Counter>,
    /// Per-shard labelled series, indexed by shard id.
    pub(crate) shards: Vec<ShardMetrics>,
    /// Per-worker labelled series, indexed by *global* worker id
    /// (shard `s`, local worker `w` → `s * workers_per_shard + w`).
    pub(crate) workers: Vec<WorkerMetrics>,
    pub(crate) latency: Arc<LatencyHistogram>,
    pub(crate) slowlog: SlowLog,
}

impl Metrics {
    /// A registry tracking `shards` shards of `workers` executor workers
    /// each, on a private registry.
    #[cfg(test)]
    pub(crate) fn with_shape(shards: usize, workers: usize) -> Self {
        Self::on_registry(Arc::new(Registry::new()), shards, workers)
    }

    /// Registers every serving metric on `registry` (shared with other
    /// subsystems for a single-scrape exposition) for a topology of
    /// `shards` shards running `workers` executor workers each.
    pub(crate) fn on_registry(registry: Arc<Registry>, shards: usize, workers: usize) -> Self {
        let total_workers = shards * workers;
        let r = &registry;
        Self {
            submitted: r.counter("kvmatch_serve_submitted_total"),
            rejected: r.counter("kvmatch_serve_rejected_total"),
            expired: r.counter("kvmatch_serve_expired_total"),
            expired_exec: r.counter("kvmatch_serve_expired_exec_total"),
            completed: r.counter("kvmatch_serve_completed_total"),
            failed: r.counter("kvmatch_serve_failed_total"),
            appends: r.counter("kvmatch_serve_appends_total"),
            materialize_failures: r.counter("kvmatch_serve_materialize_failures_total"),
            batches: r.counter("kvmatch_serve_batches_total"),
            batched_queries: r.counter("kvmatch_serve_batched_queries_total"),
            max_batch_occupancy: r.gauge("kvmatch_serve_max_batch_occupancy"),
            queue_depth: r.gauge("kvmatch_serve_queue_depth"),
            queue_depth_peak: r.gauge("kvmatch_serve_queue_depth_peak"),
            ingest_depth: r.gauge("kvmatch_serve_ingest_depth"),
            ingest_depth_peak: r.gauge("kvmatch_serve_ingest_depth_peak"),
            alloc_events: r.counter("kvmatch_serve_alloc_events_total"),
            adaptive_skipped_lb_kim: r.counter("kvmatch_serve_adaptive_skipped_lb_kim_total"),
            adaptive_skipped_lb_keogh: r.counter("kvmatch_serve_adaptive_skipped_lb_keogh_total"),
            shards: (0..shards).map(|idx| ShardMetrics::on(r, idx)).collect(),
            workers: (0..total_workers).map(|idx| WorkerMetrics::on(r, idx)).collect(),
            latency: r.histogram("kvmatch_serve_latency_us"),
            slowlog: SlowLog::new(SLOWLOG_CAPACITY),
            registry,
        }
    }

    pub(crate) fn note_batch(&self, worker: usize, occupancy: usize) {
        self.batches.inc();
        self.batched_queries.add(occupancy as u64);
        self.max_batch_occupancy.record_max(occupancy as u64);
        if let Some(w) = self.workers.get(worker) {
            w.note_shard(occupancy);
        }
    }

    /// Folds the per-shard live depths (`(queue, ingest)` pairs, indexed
    /// by shard id) into their gauges — per-shard and summed service-wide
    /// — and materializes the typed snapshot.
    pub(crate) fn snapshot(&self, depths: &[(usize, usize)]) -> MetricsSnapshot {
        let (queue_depth, ingest_depth) = self.fold_depths(depths);
        let batches = self.batches.get();
        let batched_queries = self.batched_queries.get();
        MetricsSnapshot {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            expired: self.expired.get(),
            expired_exec: self.expired_exec.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            appends: self.appends.get(),
            materialize_failures: self.materialize_failures.get(),
            batches,
            batched_queries,
            avg_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_queries as f64 / batches as f64
            },
            max_batch_occupancy: self.max_batch_occupancy.get(),
            queue_depth,
            queue_depth_peak: self.queue_depth_peak.get(),
            ingest_depth,
            ingest_depth_peak: self.ingest_depth_peak.get(),
            alloc_events: self.alloc_events.get(),
            adaptive_skipped_lb_kim: self.adaptive_skipped_lb_kim.get(),
            adaptive_skipped_lb_keogh: self.adaptive_skipped_lb_keogh.get(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(idx, sh)| ShardSnapshot {
                    submitted: sh.submitted.get(),
                    completed: sh.completed.get(),
                    rejected: sh.rejected.get(),
                    appends: sh.appends.get(),
                    batches: sh.batches.get(),
                    queue_depth: depths.get(idx).map_or(0, |d| d.0),
                    queue_depth_peak: sh.queue_depth_peak.get(),
                })
                .collect(),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    batches: w.batches.get(),
                    queries: w.queries.get(),
                    busy_us: w.busy_nanos.get() / 1_000,
                })
                .collect(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p95_us: self.latency.quantile_us(0.95),
            latency_p99_us: self.latency.quantile_us(0.99),
            latency_max_us: self.latency.max_us(),
        }
    }

    /// Text exposition of the registry plus the slow-query log, the body
    /// served by the wire `MetricsText` request.
    pub(crate) fn render_text(&self, depths: &[(usize, usize)]) -> String {
        self.fold_depths(depths);
        let mut out = self.registry.render_text();
        self.slowlog.render_into(&mut out);
        out
    }

    /// Writes each shard's live queue depth into its labelled gauge and
    /// the summed depths into the service-wide gauges; returns the sums.
    fn fold_depths(&self, depths: &[(usize, usize)]) -> (usize, usize) {
        let mut queue_depth = 0;
        let mut ingest_depth = 0;
        for (idx, &(queue, ingest)) in depths.iter().enumerate() {
            if let Some(sh) = self.shards.get(idx) {
                sh.queue_depth.set(queue as u64);
            }
            queue_depth += queue;
            ingest_depth += ingest;
        }
        self.queue_depth.set(queue_depth as u64);
        self.ingest_depth.set(ingest_depth as u64);
        (queue_depth, ingest_depth)
    }
}

/// One executor worker's share of the dispatched load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Shard batches this worker executed.
    pub batches: u64,
    /// Queries summed across those shards.
    pub queries: u64,
    /// Microseconds the worker spent executing (not parked idle, not
    /// waiting on an ingest barrier).
    pub busy_us: u64,
}

/// One catalog shard's share of the serving load — the typed face of the
/// `kvmatch_serve_shard_*` labelled families.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Requests the router admitted into this shard's lane.
    pub submitted: u64,
    /// Requests this shard answered successfully.
    pub completed: u64,
    /// Requests turned away by this shard's admission control — a
    /// rejection names its shard (see
    /// [`Rejected::shard`](crate::Rejected::shard)), and this counter is
    /// its aggregate view.
    pub rejected: u64,
    /// Appends applied by this shard's ingest lane.
    pub appends: u64,
    /// Executor batches dispatched to this shard's worker pool.
    pub batches: u64,
    /// Requests waiting on this shard's lane right now.
    pub queue_depth: usize,
    /// Deepest this shard's lane has been.
    pub queue_depth_peak: u64,
}

/// A point-in-time copy of every serving metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests turned away by admission control (queue full).
    pub rejected: u64,
    /// Admitted requests whose deadline passed before dispatch.
    pub expired: u64,
    /// Requests whose deadline passed *during* execution — answered
    /// `DeadlineExceeded`, counted separately from served requests.
    pub expired_exec: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a query error.
    pub failed: u64,
    /// Append commands applied by the ingest lane.
    pub appends: u64,
    /// Failed snapshot rebuilds (startup or post-append). Non-zero means
    /// appends were acknowledged with
    /// [`ServeError::Materialize`](crate::ServeError::Materialize) and
    /// readers are serving the last good snapshot.
    pub materialize_failures: u64,
    /// Executor shard batches dispatched across the worker pool.
    pub batches: u64,
    /// Queries summed across those batches.
    pub batched_queries: u64,
    /// `batched_queries / batches` — micro-batching effectiveness.
    pub avg_batch_occupancy: f64,
    /// Largest batch dispatched.
    pub max_batch_occupancy: u64,
    /// Requests waiting right now.
    pub queue_depth: usize,
    /// Deepest the queue has been.
    pub queue_depth_peak: u64,
    /// Appends waiting in the ingest lane right now.
    pub ingest_depth: usize,
    /// Deepest the ingest lane has been.
    pub ingest_depth_peak: u64,
    /// Kernel scratch buffer growths across served queries (0 = every
    /// verification ran on warm scratch).
    pub alloc_events: u64,
    /// LB_Kim evaluations skipped by adaptive cascade demotion.
    pub adaptive_skipped_lb_kim: u64,
    /// LB_Keogh evaluations skipped by adaptive cascade demotion.
    pub adaptive_skipped_lb_keogh: u64,
    /// Per-shard split of the served load, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// Per-worker split of the dispatched load, indexed by global worker
    /// id (shard-major: shard 0's workers first).
    pub workers: Vec<WorkerSnapshot>,
    /// Median submit→response latency, microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub latency_p99_us: u64,
    /// Worst observed latency, microseconds.
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn snapshot_derives_occupancy_and_worker_split() {
        let m = Metrics::with_shape(1, 2);
        m.note_batch(0, 4);
        m.note_batch(1, 8);
        m.note_batch(1, 2);
        m.workers[1].note_busy(Duration::from_micros(1_500));
        let s = m.snapshot(&[(3, 1)]);
        assert_eq!(s.batches, 3);
        assert_eq!(s.batched_queries, 14);
        assert!((s.avg_batch_occupancy - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_batch_occupancy, 8);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.ingest_depth, 1);
        assert_eq!(s.workers.len(), 2);
        assert_eq!(s.workers[0], WorkerSnapshot { batches: 1, queries: 4, busy_us: 0 });
        assert_eq!(s.workers[1].batches, 2);
        assert_eq!(s.workers[1].queries, 10);
        assert_eq!(s.workers[1].busy_us, 1_500);
        // The per-worker split accounts for every dispatched shard.
        assert_eq!(s.workers.iter().map(|w| w.batches).sum::<u64>(), s.batches);
        assert_eq!(s.workers.iter().map(|w| w.queries).sum::<u64>(), s.batched_queries);
    }

    #[test]
    fn exposition_covers_serving_families_and_live_depths() {
        let m = Metrics::with_shape(1, 2);
        m.submitted.add(5);
        m.note_batch(1, 3);
        m.latency.record(Duration::from_micros(120));
        let text = m.render_text(&[(7, 2)]);
        assert!(text.contains("# TYPE kvmatch_serve_submitted_total counter"));
        assert!(text.contains("kvmatch_serve_submitted_total 5\n"));
        assert!(text.contains("kvmatch_serve_queue_depth 7\n"));
        assert!(text.contains("kvmatch_serve_ingest_depth 2\n"));
        assert!(text.contains("kvmatch_serve_worker_batches_total{worker=\"1\"} 1\n"));
        // Every worker series exists from startup, even before dispatch.
        assert!(text.contains("kvmatch_serve_worker_batches_total{worker=\"0\"} 0\n"));
        assert!(text.contains("kvmatch_serve_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("kvmatch_serve_latency_us_count 1\n"));
    }

    #[test]
    fn shared_registry_hosts_foreign_metrics_in_the_same_scrape() {
        let registry = Arc::new(Registry::new());
        registry.counter("kvmatch_net_connections_total").add(3);
        let m = Metrics::on_registry(Arc::clone(&registry), 1, 1);
        m.completed.inc();
        let text = m.render_text(&[(0, 0)]);
        assert!(text.contains("kvmatch_net_connections_total 3\n"));
        assert!(text.contains("kvmatch_serve_completed_total 1\n"));
    }

    #[test]
    fn shard_families_are_labelled_per_shard_and_summed_into_the_globals() {
        let m = Metrics::with_shape(2, 2);
        assert_eq!(m.workers.len(), 4, "worker ids are global across shards");
        m.shards[0].submitted.add(3);
        m.shards[1].submitted.add(5);
        m.shards[1].rejected.inc();
        m.shards[1].queue_depth_peak.record_max(6);

        let s = m.snapshot(&[(2, 1), (4, 0)]);
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards[0].submitted, 3);
        assert_eq!(s.shards[1].submitted, 5);
        assert_eq!(s.shards[1].rejected, 1);
        assert_eq!(s.shards[0].queue_depth, 2);
        assert_eq!(s.shards[1].queue_depth, 4);
        assert_eq!(s.shards[1].queue_depth_peak, 6);
        // The service-wide depths are the sums of the per-shard lanes.
        assert_eq!(s.queue_depth, 6);
        assert_eq!(s.ingest_depth, 1);

        let text = m.render_text(&[(2, 1), (4, 0)]);
        assert!(text.contains("kvmatch_serve_shard_submitted_total{shard=\"0\"} 3\n"));
        assert!(text.contains("kvmatch_serve_shard_submitted_total{shard=\"1\"} 5\n"));
        assert!(text.contains("kvmatch_serve_shard_rejected_total{shard=\"1\"} 1\n"));
        assert!(text.contains("kvmatch_serve_shard_queue_depth{shard=\"1\"} 4\n"));
        assert!(text.contains("kvmatch_serve_shard_queue_depth_peak{shard=\"1\"} 6\n"));
        // Every shard family exists from startup, even before traffic.
        assert!(text.contains("kvmatch_serve_shard_batches_total{shard=\"0\"} 0\n"));
        assert!(text.contains("kvmatch_serve_queue_depth 6\n"));
    }
}
