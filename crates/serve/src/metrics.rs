//! The serving-side metrics registry.
//!
//! Every counter a production front door needs to be operated: admission
//! outcomes (submitted / rejected / expired), completion outcomes
//! (completed / failed), scheduler behaviour (batches dispatched, batch
//! occupancy), queue pressure (depth gauge + peak) and end-to-end
//! latency percentiles (p50/p95/p99/max).
//!
//! Latencies land in a fixed 256-bucket quarter-log₂ histogram
//! ([`LatencyHistogram`]): constant memory, lock-free recording, ≤ ~19 %
//! relative error on reported percentiles — the HDR-histogram trade-off,
//! sized for a service that must never let metrics grow with uptime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 256;

/// Fixed-size quarter-log₂ histogram over microsecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    max_us: AtomicU64,
}

/// Bucket index of a microsecond value: exact below 4 µs, then four
/// sub-buckets per power of two.
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // ≥ 2
    let sub = (v >> (exp - 2)) & 0b11;
    ((4 * (exp - 1)) + sub).min(BUCKETS as u64 - 1) as usize
}

/// Lower edge of a bucket — the value a percentile query reports.
fn bucket_floor(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let exp = (idx as u64 / 4) + 1;
    let sub = idx as u64 % 4;
    (1 << exp) + (sub << (exp - 2))
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), max_us: AtomicU64::new(0) }
    }
}

impl LatencyHistogram {
    /// Records one latency.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, reported as the
    /// lower edge of the covering bucket; `0` when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Largest recorded latency, microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }
}

/// Live counters of one executor worker in the dispatch pool.
#[derive(Debug, Default)]
pub struct WorkerMetrics {
    pub(crate) batches: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) busy_nanos: AtomicU64,
}

impl WorkerMetrics {
    pub(crate) fn note_shard(&self, occupancy: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(occupancy as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_busy(&self, busy: std::time::Duration) {
        self.busy_nanos
            .fetch_add(busy.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }
}

/// Live counters of one [`QueryService`](crate::QueryService).
#[derive(Debug, Default)]
pub struct Metrics {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) expired_exec: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) appends: AtomicU64,
    pub(crate) materialize_failures: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_queries: AtomicU64,
    pub(crate) max_batch_occupancy: AtomicU64,
    pub(crate) queue_depth_peak: AtomicU64,
    pub(crate) ingest_depth_peak: AtomicU64,
    pub(crate) workers: Vec<WorkerMetrics>,
    pub(crate) latency: LatencyHistogram,
}

impl Metrics {
    /// A registry tracking `workers` executor workers.
    pub(crate) fn with_workers(workers: usize) -> Self {
        Self {
            workers: (0..workers).map(|_| WorkerMetrics::default()).collect(),
            ..Self::default()
        }
    }

    pub(crate) fn note_batch(&self, worker: usize, occupancy: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(occupancy as u64, Ordering::Relaxed);
        self.max_batch_occupancy.fetch_max(occupancy as u64, Ordering::Relaxed);
        if let Some(w) = self.workers.get(worker) {
            w.note_shard(occupancy);
        }
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, ingest_depth: usize) -> MetricsSnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_queries = self.batched_queries.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            expired_exec: self.expired_exec.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            materialize_failures: self.materialize_failures.load(Ordering::Relaxed),
            batches,
            batched_queries,
            avg_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_queries as f64 / batches as f64
            },
            max_batch_occupancy: self.max_batch_occupancy.load(Ordering::Relaxed),
            queue_depth,
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            ingest_depth,
            ingest_depth_peak: self.ingest_depth_peak.load(Ordering::Relaxed),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    batches: w.batches.load(Ordering::Relaxed),
                    queries: w.queries.load(Ordering::Relaxed),
                    busy_us: w.busy_nanos.load(Ordering::Relaxed) / 1_000,
                })
                .collect(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p95_us: self.latency.quantile_us(0.95),
            latency_p99_us: self.latency.quantile_us(0.99),
            latency_max_us: self.latency.max_us(),
        }
    }
}

/// One executor worker's share of the dispatched load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Shard batches this worker executed.
    pub batches: u64,
    /// Queries summed across those shards.
    pub queries: u64,
    /// Microseconds the worker spent executing (not parked idle, not
    /// waiting on an ingest barrier).
    pub busy_us: u64,
}

/// A point-in-time copy of every serving metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests turned away by admission control (queue full).
    pub rejected: u64,
    /// Admitted requests whose deadline passed before dispatch.
    pub expired: u64,
    /// Requests whose deadline passed *during* execution — answered
    /// `DeadlineExceeded`, counted separately from served requests.
    pub expired_exec: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a query error.
    pub failed: u64,
    /// Append commands applied by the ingest lane.
    pub appends: u64,
    /// Failed snapshot rebuilds (startup or post-append). Non-zero means
    /// appends were acknowledged with
    /// [`ServeError::Materialize`](crate::ServeError::Materialize) and
    /// readers are serving the last good snapshot.
    pub materialize_failures: u64,
    /// Executor shard batches dispatched across the worker pool.
    pub batches: u64,
    /// Queries summed across those batches.
    pub batched_queries: u64,
    /// `batched_queries / batches` — micro-batching effectiveness.
    pub avg_batch_occupancy: f64,
    /// Largest batch dispatched.
    pub max_batch_occupancy: u64,
    /// Requests waiting right now.
    pub queue_depth: usize,
    /// Deepest the queue has been.
    pub queue_depth_peak: u64,
    /// Appends waiting in the ingest lane right now.
    pub ingest_depth: usize,
    /// Deepest the ingest lane has been.
    pub ingest_depth_peak: u64,
    /// Per-worker split of the dispatched load, indexed by worker id.
    pub workers: Vec<WorkerSnapshot>,
    /// Median submit→response latency, microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub latency_p99_us: u64,
    /// Worst observed latency, microseconds.
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 12, 100, 1_000, 65_536, 1 << 40] {
            let idx = bucket_of(v);
            assert!(idx >= last, "bucket index not monotone at {v}");
            last = idx;
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // Quarter-log buckets: floor within 25% of the value (exact
            // below 4).
            assert!(v <= floor + floor.max(1) / 4 + 1, "bucket too wide at {v}: floor {floor}");
        }
    }

    #[test]
    fn quantiles_track_recorded_distribution() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram reports 0");
        // 90 fast (≈100 µs) + 10 slow (≈6.4 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(6_400));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        assert!((75..=100).contains(&p50), "p50 = {p50}");
        assert!((4_800..=6_400).contains(&p95), "p95 = {p95}");
        assert!((4_800..=6_400).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert!(h.max_us() >= 6_400);
    }

    #[test]
    fn snapshot_derives_occupancy_and_worker_split() {
        let m = Metrics::with_workers(2);
        m.note_batch(0, 4);
        m.note_batch(1, 8);
        m.note_batch(1, 2);
        m.workers[1].note_busy(Duration::from_micros(1_500));
        let s = m.snapshot(3, 1);
        assert_eq!(s.batches, 3);
        assert_eq!(s.batched_queries, 14);
        assert!((s.avg_batch_occupancy - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_batch_occupancy, 8);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.ingest_depth, 1);
        assert_eq!(s.workers.len(), 2);
        assert_eq!(s.workers[0], WorkerSnapshot { batches: 1, queries: 4, busy_us: 0 });
        assert_eq!(s.workers[1].batches, 2);
        assert_eq!(s.workers[1].queries, 10);
        assert_eq!(s.workers[1].busy_us, 1_500);
        // The per-worker split accounts for every dispatched shard.
        assert_eq!(s.workers.iter().map(|w| w.batches).sum::<u64>(), s.batches);
        assert_eq!(s.workers.iter().map(|w| w.queries).sum::<u64>(), s.batched_queries);
    }
}
