//! # kvmatch-serve — the query-serving front door
//!
//! The paper's deployment target (§VII: data-center / IoT monitoring)
//! has *many clients* firing subsequence-matching queries concurrently
//! against live-ingesting series. The layers below this crate already
//! batch well — [`QueryExecutor`](kvmatch_core::QueryExecutor) amortizes
//! index probes and fans verification out over a thread pool — but they
//! expose a synchronous "hand me a `Vec<QuerySpec>`" interface. This
//! crate turns that into a service:
//!
//! * **Shard-per-core scale-out.** The catalog is split across N
//!   [`CatalogShard`](shard::CatalogShard)s — each an owned
//!   [`Catalog`](kvmatch_core::Catalog) slice with its *own* bounded
//!   lane, micro-batching scheduler, executor worker pool and ingest
//!   lane — behind a [`Router`] hashing `SeriesId →
//!   shard`. Shards share nothing: no lock, no queue, no write guard;
//!   an ingest stall or failure on one shard leaves the others serving
//!   at full speed. Mixed-series batches scatter across shards and
//!   gather bit-identically to single-shard and sequential execution.
//! * **Submission handles.** Clients submit individual
//!   [`QueryRequest`]s (range or top-k, per-series, optional deadline)
//!   to a [`QueryService`] from any number of threads and get a
//!   [`ResponseHandle`] — a one-shot future resolved by the pipeline.
//!   [`QueryService::submit_batch`] scatters a whole mixed-series batch
//!   in one call, outcomes input-aligned.
//! * **Micro-batching scheduler + worker pool, per shard.** Each
//!   shard's scheduler drains its lane into batches, flushing on
//!   **batch size or deadline, whichever first**
//!   ([`ServiceBuilder::max_batch`] /
//!   [`ServiceBuilder::max_batch_delay`]), then **partitions each batch
//!   by series** and hands the runs to the shard's workers. Each worker
//!   pins the shard's latest published snapshot — no catalog lock on
//!   the steady-state query path — so runs of different series execute
//!   concurrently while concurrent requests on one series still share
//!   probe work exactly like a hand-assembled batch; per-request
//!   identity is preserved in the fan-back.
//! * **Dedicated ingest lanes.** Appends bypass the worker pools and
//!   run on their shard's catalog write side in its own lane. An append
//!   is an ordering barrier *for its own series only* (per-series
//!   epochs, scoped to the owning shard): queries submitted after it
//!   see its points, queries on other series keep flowing during
//!   ingestion.
//! * **Per-shard backpressure.** Admission control is a bounded lane
//!   per shard: a full lane answers [`Submit::Rejected`] immediately
//!   (or after a bounded wait via [`QueryService::submit_timeout`])
//!   instead of buffering without limit — and the rejection names its
//!   shard ([`Rejected::shard`]), so clients can reason about *which*
//!   slice of the keyspace is saturated. A shard's scheduler hands runs
//!   only to *idle* workers, so its query pipeline cannot buffer past
//!   `queue_capacity + max_batch` either (its ingest lane's own bounded
//!   queue adds at most `queue_capacity` admitted appends). Per-request
//!   deadlines expire queued work that waited too long (checked at
//!   dispatch and again after execution).
//! * **Metrics.** A registry records lane and ingest depths, batch
//!   occupancy, admission/completion counters (expired-in-queue vs
//!   expired-in-execution kept separate), per-shard
//!   `kvmatch_serve_shard_*` labelled families ([`ShardSnapshot`]),
//!   per-worker dispatch counters ([`WorkerSnapshot`]) and latency
//!   percentiles (p50/p95/p99) — [`QueryService::metrics`].
//!
//! The build environment has no tokio, so the async surface is built on
//! `std::thread` + in-crate channel primitives ([`sync`]), mirroring the
//! workspace's `std::thread::scope` idiom.
//!
//! ## Quick start
//!
//! ```
//! use kvmatch_core::{Catalog, IndexBuildConfig, MemoryCatalogBackend, QuerySpec, SeriesId};
//! use kvmatch_serve::{QueryRequest, QueryService, Submit};
//!
//! // A catalog with one series.
//! let id = SeriesId::new(1);
//! let xs: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.05).sin() * 2.0).collect();
//! let mut catalog = Catalog::new(MemoryCatalogBackend);
//! catalog.create_series_with(id, IndexBuildConfig::new(50), &xs).unwrap();
//!
//! // Serve it. The validating builder splits the catalog across the
//! // shards and spawns each shard's pipeline.
//! let service = QueryService::builder(catalog).shards(2).workers(2).build().unwrap();
//!
//! // Top-3 nearest subsequences to a pattern, plus a plain range query.
//! let topk = QueryRequest::top_k(QuerySpec::rsm_ed(xs[300..500].to_vec(), 5.0).with_series(id), 3);
//! let range = QueryRequest::range(QuerySpec::rsm_ed(xs[900..1100].to_vec(), 1e-6).with_series(id));
//! let topk = service.submit(topk).into_result().expect("queue has room");
//! let range = service.submit(range).into_result().expect("queue has room");
//!
//! let response = topk.wait().unwrap();
//! assert_eq!(response.results[0].offset, 300, "nearest-first: the self-match leads");
//! assert!(response.results.len() <= 3);
//! assert_eq!(range.wait().unwrap().results[0].offset, 900);
//!
//! // Live ingestion goes through the same routed lanes (ordered w.r.t.
//! // queries on the same series).
//! let more: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).cos()).collect();
//! service.append(id, more, std::time::Duration::from_secs(1)).unwrap().wait().unwrap();
//!
//! let m = service.metrics();
//! assert_eq!(m.completed, 2);
//! assert!(m.latency_p99_us >= m.latency_p50_us);
//!
//! // Graceful shutdown reassembles and returns the catalog (with the
//! // appended points).
//! let catalog = service.shutdown();
//! assert_eq!(catalog.series_len(id), Some(3500));
//! ```

pub mod metrics;
pub mod service;
pub mod shard;
pub mod sync;
pub mod wire;

pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot, ShardSnapshot, WorkerSnapshot};
pub use service::{
    AppendHandle, ConfigError, QueryKind, QueryRequest, QueryResponse, QueryService, RejectKind,
    Rejected, RejectedAppend, RejectedQuery, ResponseHandle, ServeError, ServiceBuilder, Submit,
};
pub use shard::Router;
