//! Minimal channel primitives for the serving layer.
//!
//! The build environment has no tokio (or crossbeam), so the async
//! surface of [`QueryService`](crate::QueryService) is built on
//! `std::thread` plus the two primitives here, mirroring the workspace's
//! existing `std::thread::scope` idiom:
//!
//! * [`oneshot`] — a single-value channel carrying one response from the
//!   scheduler back to the submitting client (the "future" a submission
//!   returns);
//! * [`BoundedQueue`] — a multi-producer bounded FIFO with blocking,
//!   timed and non-blocking pushes. Its bounded capacity *is* the
//!   admission-control mechanism: a full queue is backpressure.
//! * [`Handoff`] — a rendezvous channel between the front scheduler and
//!   the executor-worker pool: a send completes only once an *idle*
//!   worker has been reserved for the item, so the scheduler can never
//!   run ahead of the pool and buffering stays bounded end-to-end.
//!
//! All are Mutex + Condvar underneath; no spinning, no unsafe.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One-value, one-use channel: the scheduler's side of a submitted
/// request.
pub mod oneshot {
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    enum Slot<T> {
        /// Nothing sent yet, sender alive.
        Empty,
        /// Value delivered, not yet taken.
        Value(T),
        /// Sender dropped without sending.
        Closed,
        /// Value already consumed by the receiver.
        Taken,
    }

    struct Inner<T> {
        slot: Mutex<Slot<T>>,
        ready: Condvar,
    }

    /// Sending half; consumed by [`Sender::send`]. Dropping it unsent
    /// wakes the receiver with a disconnect.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// The sender was dropped without sending.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a timed receive.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value within the timeout; the sender may still deliver.
        Timeout,
        /// The sender was dropped without sending.
        Disconnected,
    }

    /// A fresh channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner { slot: Mutex::new(Slot::Empty), ready: Condvar::new() });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Delivers the value, waking the receiver. Returns the value
        /// back when the receiver is already gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut slot = self.0.slot.lock().expect("oneshot mutex poisoned");
            match *slot {
                Slot::Empty => {
                    *slot = Slot::Value(value);
                    drop(slot);
                    self.0.ready.notify_one();
                    // The normal Drop sees a non-Empty slot and leaves it.
                    Ok(())
                }
                _ => Err(value),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut slot = self.0.slot.lock().expect("oneshot mutex poisoned");
            if matches!(*slot, Slot::Empty) {
                *slot = Slot::Closed;
                drop(slot);
                self.0.ready.notify_one();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until the value arrives (or the sender is dropped).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut slot = self.0.slot.lock().expect("oneshot mutex poisoned");
            loop {
                match std::mem::replace(&mut *slot, Slot::Taken) {
                    Slot::Value(v) => return Ok(v),
                    Slot::Closed => {
                        *slot = Slot::Closed;
                        return Err(RecvError);
                    }
                    Slot::Taken => return Err(RecvError),
                    Slot::Empty => {
                        *slot = Slot::Empty;
                        slot = self.0.ready.wait(slot).expect("oneshot mutex poisoned");
                    }
                }
            }
        }

        /// Blocks up to `timeout` for the value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut slot = self.0.slot.lock().expect("oneshot mutex poisoned");
            loop {
                match std::mem::replace(&mut *slot, Slot::Taken) {
                    Slot::Value(v) => return Ok(v),
                    Slot::Closed => {
                        *slot = Slot::Closed;
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    Slot::Taken => return Err(RecvTimeoutError::Disconnected),
                    Slot::Empty => {
                        *slot = Slot::Empty;
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        let (guard, _) = self
                            .0
                            .ready
                            .wait_timeout(slot, deadline - now)
                            .expect("oneshot mutex poisoned");
                        slot = guard;
                    }
                }
            }
        }
    }
}

/// Failed push: the item is handed back so the caller can retry or
/// surface the rejection.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (and stayed there for the whole wait).
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A multi-producer bounded FIFO. Producers see explicit backpressure
/// ([`PushError::Full`]); the (single) consumer drains with blocking or
/// deadline-bounded pops. [`BoundedQueue::close`] stops admissions while
/// letting the consumer drain what was already accepted.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (≥ 1) at a time.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; `Full` is the backpressure signal.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push with no give-up: waits for space as long as it
    /// takes (the ingest lane's admission — backpressure propagates to
    /// the front scheduler instead of timing out). Only `Closed` fails.
    pub fn push_wait(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Blocking push: waits up to `timeout` for space, then gives up with
    /// `Full`.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(item));
            }
            let (guard, _) =
                self.not_full.wait_timeout(inner, deadline - now).expect("queue mutex poisoned");
            inner = guard;
        }
    }

    /// Blocks until an item is available. Returns `None` only when the
    /// queue is closed *and* fully drained — the consumer's exit signal.
    pub fn pop_wait(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Blocks until an item is available or `deadline` passes. `None`
    /// means "nothing by the deadline" (or closed-and-drained) — the
    /// micro-batch flush signal.
    pub fn pop_before(&self, deadline: Instant) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) =
                self.not_empty.wait_timeout(inner, deadline - now).expect("queue mutex poisoned");
            inner = guard;
        }
    }

    /// Stops admissions (pushes fail with `Closed`) and wakes everyone.
    /// Already-queued items stay poppable so a graceful shutdown serves
    /// what it admitted.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct HandoffInner<T> {
    /// The item in flight; filled by a send only after an idle consumer
    /// was reserved for it, so it is taken promptly.
    slot: Option<T>,
    /// Consumers parked in [`Handoff::recv`] with no item assigned yet.
    idle: usize,
    closed: bool,
}

/// A rendezvous hand-off between one producer (the front scheduler) and
/// a pool of consumers (the executor workers).
///
/// Unlike a queue, [`Handoff::send`] blocks until a consumer is *idle*
/// and reserved for the item — the producer can never buffer work at a
/// busy pool. That property is what keeps the serving pipeline's
/// query-side buffering bounded at `queue_capacity + max_batch`:
/// commands the scheduler has drained but not handed off are the only
/// in-flight extras (appends buffer separately in the ingest lane's own
/// bounded queue).
pub struct Handoff<T> {
    inner: Mutex<HandoffInner<T>>,
    /// Signalled when the slot is filled (or the hand-off closes).
    item_ready: Condvar,
    /// Signalled when a consumer goes idle or the slot frees up.
    consumer_ready: Condvar,
}

impl<T> Default for Handoff<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Handoff<T> {
    /// A fresh hand-off with no consumers yet.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HandoffInner { slot: None, idle: 0, closed: false }),
            item_ready: Condvar::new(),
            consumer_ready: Condvar::new(),
        }
    }

    /// Blocks until an idle consumer is reserved for `item`, then hands
    /// it over. Fails only when the hand-off was closed.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("handoff mutex poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.slot.is_none() && inner.idle > 0 {
                // Reserve the consumer now: a second send must wait for
                // *another* idle consumer, not double-book this one.
                inner.idle -= 1;
                inner.slot = Some(item);
                drop(inner);
                self.item_ready.notify_all();
                return Ok(());
            }
            inner = self.consumer_ready.wait(inner).expect("handoff mutex poisoned");
        }
    }

    /// Parks the caller as an idle consumer until an item is assigned.
    /// Returns `None` once the hand-off is closed and nothing is in
    /// flight — the worker's exit signal.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("handoff mutex poisoned");
        inner.idle += 1;
        self.consumer_ready.notify_all();
        loop {
            if let Some(item) = inner.slot.take() {
                // The producer already un-counted us when reserving.
                drop(inner);
                self.consumer_ready.notify_all();
                return Some(item);
            }
            if inner.closed {
                inner.idle -= 1;
                return None;
            }
            inner = self.item_ready.wait(inner).expect("handoff mutex poisoned");
        }
    }

    /// Closes the hand-off: parked consumers drain out with `None`,
    /// subsequent sends fail.
    pub fn close(&self) {
        self.inner.lock().expect("handoff mutex poisoned").closed = true;
        self.item_ready.notify_all();
        self.consumer_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_delivers_once() {
        let (tx, rx) = oneshot::channel();
        tx.send(7usize).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(oneshot::RecvError), "second recv is a disconnect");
    }

    #[test]
    fn oneshot_disconnects_on_sender_drop() {
        let (tx, rx) = oneshot::channel::<usize>();
        drop(tx);
        assert_eq!(rx.recv(), Err(oneshot::RecvError));
        let (tx, rx) = oneshot::channel::<usize>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(oneshot::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(oneshot::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn oneshot_crosses_threads() {
        let (tx, rx) = oneshot::channel();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42u64).unwrap();
            });
            assert_eq!(rx.recv(), Ok(42));
        });
    }

    #[test]
    fn queue_backpressure_and_fifo() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))), "capacity enforced");
        assert!(matches!(q.push_timeout(3, Duration::from_millis(5)), Err(PushError::Full(3))));
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_before(Instant::now() + Duration::from_millis(5)), None);
    }

    #[test]
    fn close_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop_wait(), Some(1), "admitted items survive close");
        assert_eq!(q.pop_wait(), None, "drained + closed ends the consumer");
    }

    #[test]
    fn handoff_rendezvous_waits_for_an_idle_consumer() {
        let h = Handoff::new();
        let started = std::time::Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(h.recv(), Some(1));
            });
            // No consumer is idle yet: send must block until one parks.
            h.send(1).unwrap();
            assert!(started.elapsed() >= Duration::from_millis(10), "send returned too early");
        });
    }

    #[test]
    fn handoff_fans_items_across_consumers_and_drains_on_close() {
        let h = Handoff::new();
        let served = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = h.recv() {
                        served.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=10u64 {
                h.send(v).unwrap();
            }
            h.close();
        });
        assert_eq!(served.load(std::sync::atomic::Ordering::Relaxed), 55);
        assert_eq!(h.send(99), Err(99), "closed handoff refuses new work");
        assert_eq!(h.recv(), None);
    }

    #[test]
    fn push_wait_blocks_until_space_and_fails_closed() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                assert_eq!(q.pop_wait(), Some(1));
            });
            q.push_wait(2).unwrap();
        });
        assert_eq!(q.pop_wait(), Some(2));
        q.close();
        assert!(matches!(q.push_wait(3), Err(PushError::Closed(3))));
    }

    #[test]
    fn blocked_push_wakes_when_space_frees() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                assert_eq!(q.pop_wait(), Some(1));
            });
            q.push_timeout(2, Duration::from_secs(5)).unwrap();
        });
        assert_eq!(q.pop_wait(), Some(2));
    }
}
