//! STR bulk loading and range queries.

use crate::mbr::Mbr;

/// R-tree configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (page fanout). A 4 KiB page with
    /// 4-dimensional `f64` MBRs holds ~60 entries; 64 is the default.
    pub fanout: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self { fanout: 64 }
    }
}

/// Statistics of one range query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RangeQueryStats {
    /// Nodes visited (the baselines' "#index accesses").
    pub node_accesses: u64,
    /// Leaf entries tested against the query rectangle.
    pub entries_tested: u64,
}

enum Node {
    Leaf {
        mbr: Mbr,
        /// `(point, id)` — id is the window position in the series.
        entries: Vec<(Vec<f64>, u64)>,
    },
    Inner {
        mbr: Mbr,
        children: Vec<usize>,
    },
}

impl Node {
    fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => mbr,
        }
    }
}

/// A static, STR-packed R-tree over `d`-dimensional points.
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    dims: usize,
    config: RTreeConfig,
    height: usize,
    len: usize,
}

impl std::fmt::Debug for RTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("points", &self.len)
            .field("dims", &self.dims)
            .field("height", &self.height)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl RTree {
    /// Bulk-loads `points` (all of dimension `dims`) with ids.
    ///
    /// # Panics
    /// Panics when `dims == 0`, `fanout < 2`, or a point has the wrong
    /// dimension.
    pub fn bulk_load(points: Vec<(Vec<f64>, u64)>, dims: usize, config: RTreeConfig) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(config.fanout >= 2, "fanout must be ≥ 2");
        assert!(points.iter().all(|(p, _)| p.len() == dims), "point dimension mismatch");
        let len = points.len();
        let mut tree = Self { nodes: Vec::new(), root: None, dims, config, height: 0, len };
        if points.is_empty() {
            return tree;
        }

        // Level 0: tile points into leaves.
        let groups = str_tile(points, dims, config.fanout, |p| p.0.clone());
        let mut level: Vec<usize> = groups
            .into_iter()
            .map(|entries| {
                let mut mbr = Mbr::point(&entries[0].0);
                for (p, _) in &entries[1..] {
                    mbr.expand_point(p);
                }
                tree.nodes.push(Node::Leaf { mbr, entries });
                tree.nodes.len() - 1
            })
            .collect();
        tree.height = 1;

        // Upper levels: tile child MBR centers.
        while level.len() > 1 {
            let items: Vec<(Vec<f64>, usize)> = level
                .iter()
                .map(|&id| {
                    let center: Vec<f64> =
                        (0..dims).map(|d| tree.nodes[id].mbr().center(d)).collect();
                    (center, id)
                })
                .collect();
            let groups = str_tile(items, dims, config.fanout, |it| it.0.clone());
            level = groups
                .into_iter()
                .map(|group| {
                    let children: Vec<usize> = group.into_iter().map(|(_, id)| id).collect();
                    let mut mbr = tree.nodes[children[0]].mbr().clone();
                    for &c in &children[1..] {
                        let child_mbr = tree.nodes[c].mbr().clone();
                        mbr.expand(&child_mbr);
                    }
                    tree.nodes.push(Node::Inner { mbr, children });
                    tree.nodes.len() - 1
                })
                .collect();
            tree.height += 1;
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The build configuration.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate serialized size in bytes: per node one MBR (2·d·8
    /// bytes) plus per leaf entry point+id ((d+1)·8) or per child pointer
    /// 8 — mirrors the cost model used for the index-size experiment.
    pub fn size_bytes(&self) -> u64 {
        let mbr = (2 * self.dims * 8) as u64;
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { entries, .. } => {
                    mbr + entries.len() as u64 * ((self.dims + 1) * 8) as u64
                }
                Node::Inner { children, .. } => mbr + children.len() as u64 * 8,
            })
            .sum()
    }

    /// Returns the ids of all points inside `query` (closed bounds), plus
    /// access statistics.
    pub fn range_query(&self, query: &Mbr) -> (Vec<u64>, RangeQueryStats) {
        assert_eq!(query.dims(), self.dims, "query dimension mismatch");
        let mut out = Vec::new();
        let mut stats = RangeQueryStats::default();
        let Some(root) = self.root else {
            return (out, stats);
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            stats.node_accesses += 1;
            match &self.nodes[id] {
                Node::Leaf { entries, .. } => {
                    for (p, pid) in entries {
                        stats.entries_tested += 1;
                        if query.contains_point(p) {
                            out.push(*pid);
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for &c in children {
                        if self.nodes[c].mbr().intersects(query) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        (out, stats)
    }
}

/// Generalized Sort-Tile-Recursive grouping: partitions `items` into groups
/// of at most `fanout`, tiling one dimension at a time.
fn str_tile<T, F>(items: Vec<T>, dims: usize, fanout: usize, key: F) -> Vec<Vec<T>>
where
    F: Fn(&T) -> Vec<f64> + Copy,
{
    fn recurse<T, F>(
        mut items: Vec<T>,
        dim: usize,
        dims: usize,
        fanout: usize,
        key: F,
        out: &mut Vec<Vec<T>>,
    ) where
        F: Fn(&T) -> Vec<f64> + Copy,
    {
        if items.len() <= fanout {
            if !items.is_empty() {
                out.push(items);
            }
            return;
        }
        let groups_needed = items.len().div_ceil(fanout);
        if dim + 1 >= dims {
            // Last dimension: sort and chunk.
            items.sort_by(|a, b| {
                key(a)[dim].partial_cmp(&key(b)[dim]).expect("non-finite coordinate")
            });
            let per = items.len().div_ceil(groups_needed);
            let mut rest = items;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let tail = rest.split_off(take);
                out.push(rest);
                rest = tail;
            }
            return;
        }
        // Slab count for this dimension: the (dims−dim)-th root of the
        // group count, rounded up.
        let slabs = (groups_needed as f64).powf(1.0 / (dims - dim) as f64).ceil() as usize;
        let slabs = slabs.max(1);
        items.sort_by(|a, b| key(a)[dim].partial_cmp(&key(b)[dim]).expect("non-finite coordinate"));
        let per_slab = items.len().div_ceil(slabs);
        let mut rest = items;
        while !rest.is_empty() {
            let take = per_slab.min(rest.len());
            let tail = rest.split_off(take);
            recurse(rest, dim + 1, dims, fanout, key, out);
            rest = tail;
        }
    }
    let mut out = Vec::new();
    recurse(items, 0, dims, fanout, key, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(nx: usize, ny: usize) -> Vec<(Vec<f64>, u64)> {
        let mut out = Vec::new();
        for x in 0..nx {
            for y in 0..ny {
                out.push((vec![x as f64, y as f64], (x * ny + y) as u64));
            }
        }
        out
    }

    fn naive_range(points: &[(Vec<f64>, u64)], q: &Mbr) -> Vec<u64> {
        let mut v: Vec<u64> =
            points.iter().filter(|(p, _)| q.contains_point(p)).map(|(_, id)| *id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(vec![], 3, RTreeConfig::default());
        assert!(t.is_empty());
        let (ids, stats) = t.range_query(&Mbr::new(vec![0.0; 3], vec![1.0; 3]));
        assert!(ids.is_empty());
        assert_eq!(stats.node_accesses, 0);
    }

    #[test]
    fn single_point() {
        let t = RTree::bulk_load(vec![(vec![1.0, 2.0], 7)], 2, RTreeConfig::default());
        assert_eq!(t.height(), 1);
        let (ids, _) = t.range_query(&Mbr::new(vec![0.0, 0.0], vec![5.0, 5.0]));
        assert_eq!(ids, vec![7]);
        let (ids, _) = t.range_query(&Mbr::new(vec![3.0, 3.0], vec![5.0, 5.0]));
        assert!(ids.is_empty());
    }

    #[test]
    fn range_queries_match_naive_2d() {
        let points = grid_points(40, 40);
        let t = RTree::bulk_load(points.clone(), 2, RTreeConfig { fanout: 16 });
        assert_eq!(t.len(), 1600);
        assert!(t.height() >= 2);
        for q in [
            Mbr::new(vec![0.0, 0.0], vec![39.0, 39.0]),
            Mbr::new(vec![5.5, 5.5], vec![10.5, 7.5]),
            Mbr::new(vec![-10.0, -10.0], vec![-1.0, -1.0]),
            Mbr::new(vec![12.0, 0.0], vec![12.0, 39.0]),
        ] {
            let (mut ids, _) = t.range_query(&q);
            ids.sort_unstable();
            assert_eq!(ids, naive_range(&points, &q));
        }
    }

    #[test]
    fn range_queries_match_naive_4d() {
        // Deterministic pseudo-random 4-d points.
        let mut state = 88172645463325252u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        let points: Vec<(Vec<f64>, u64)> =
            (0..5000).map(|i| ((0..4).map(|_| rnd()).collect(), i as u64)).collect();
        let t = RTree::bulk_load(points.clone(), 4, RTreeConfig { fanout: 32 });
        for lo in [0.0, 2.0, 5.0] {
            let q = Mbr::new(vec![lo; 4], vec![lo + 3.0; 4]);
            let (mut ids, stats) = t.range_query(&q);
            ids.sort_unstable();
            assert_eq!(ids, naive_range(&points, &q));
            assert!(stats.node_accesses > 0);
        }
    }

    #[test]
    fn selective_query_touches_fewer_nodes() {
        let points = grid_points(64, 64);
        let t = RTree::bulk_load(points, 2, RTreeConfig { fanout: 16 });
        let (_, tiny) = t.range_query(&Mbr::new(vec![3.0, 3.0], vec![4.0, 4.0]));
        let (_, huge) = t.range_query(&Mbr::new(vec![0.0, 0.0], vec![63.0, 63.0]));
        assert!(
            tiny.node_accesses * 4 < huge.node_accesses,
            "tiny {} vs huge {}",
            tiny.node_accesses,
            huge.node_accesses
        );
    }

    #[test]
    fn node_utilization_is_high() {
        // STR packing should need close to ceil(N/fanout) leaves.
        let points = grid_points(50, 50);
        let t = RTree::bulk_load(points, 2, RTreeConfig { fanout: 25 });
        let min_leaves = 2500usize.div_ceil(25);
        assert!(t.node_count() <= min_leaves * 2, "too many nodes: {}", t.node_count());
    }

    #[test]
    fn size_bytes_positive_and_monotone() {
        let small = RTree::bulk_load(grid_points(10, 10), 2, RTreeConfig::default());
        let large = RTree::bulk_load(grid_points(40, 40), 2, RTreeConfig::default());
        assert!(small.size_bytes() > 0);
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_dim_mismatch_panics() {
        let t = RTree::bulk_load(vec![(vec![0.0, 0.0], 0)], 2, RTreeConfig::default());
        let _ = t.range_query(&Mbr::new(vec![0.0], vec![1.0]));
    }
}
