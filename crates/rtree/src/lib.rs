//! # kvmatch-rtree — a bulk-loaded R-tree with access accounting
//!
//! Substrate for the tree-based subsequence-matching baselines (FRM,
//! General Match, DMatch). Those methods transform windows into
//! low-dimensional points (PAA/DFT features), store them in an R-tree, and
//! answer range queries; the paper attributes their slowdown to the *many
//! random node accesses* this incurs, so the tree counts every node visit.
//!
//! The tree is static and bulk-loaded with the Sort-Tile-Recursive (STR)
//! packing algorithm (Leutenegger et al.), which yields near-100% node
//! utilization — a *favourable* configuration for the baselines, keeping
//! the comparison honest.

pub mod mbr;
pub mod tree;

pub use mbr::Mbr;
pub use tree::{RTree, RTreeConfig, RangeQueryStats};
