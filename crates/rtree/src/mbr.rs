//! Minimum bounding rectangles.

/// An axis-aligned minimum bounding rectangle in `d` dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    /// Per-dimension lower bounds.
    pub min: Vec<f64>,
    /// Per-dimension upper bounds.
    pub max: Vec<f64>,
}

impl Mbr {
    /// A degenerate MBR covering a single point.
    pub fn point(p: &[f64]) -> Self {
        Self { min: p.to_vec(), max: p.to_vec() }
    }

    /// An MBR from explicit bounds.
    ///
    /// # Panics
    /// Panics if dimensions mismatch or any `min > max`.
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "MBR dimension mismatch");
        assert!(min.iter().zip(&max).all(|(a, b)| a <= b), "MBR with min > max");
        Self { min, max }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// Grows to cover `other`.
    pub fn expand(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dims(), other.dims());
        for d in 0..self.min.len() {
            if other.min[d] < self.min[d] {
                self.min[d] = other.min[d];
            }
            if other.max[d] > self.max[d] {
                self.max[d] = other.max[d];
            }
        }
    }

    /// Grows to cover a point.
    pub fn expand_point(&mut self, p: &[f64]) {
        debug_assert_eq!(self.dims(), p.len());
        for (d, &v) in p.iter().enumerate() {
            if v < self.min[d] {
                self.min[d] = v;
            }
            if v > self.max[d] {
                self.max[d] = v;
            }
        }
    }

    /// True when the rectangles overlap (closed bounds).
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((amin, amax), (bmin, bmax))| amin <= bmax && bmin <= amax)
    }

    /// True when the point lies inside (closed bounds).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        p.iter().zip(self.min.iter().zip(&self.max)).all(|(v, (lo, hi))| lo <= v && v <= hi)
    }

    /// Center coordinate in dimension `d` (used by STR tiling).
    #[inline]
    pub fn center(&self, d: usize) -> f64 {
        (self.min[d] + self.max[d]) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mbr() {
        let m = Mbr::point(&[1.0, 2.0]);
        assert!(m.contains_point(&[1.0, 2.0]));
        assert!(!m.contains_point(&[1.0, 2.1]));
        assert_eq!(m.dims(), 2);
    }

    #[test]
    fn expand_covers_both() {
        let mut a = Mbr::point(&[0.0, 0.0]);
        a.expand(&Mbr::point(&[2.0, -1.0]));
        assert_eq!(a, Mbr::new(vec![0.0, -1.0], vec![2.0, 0.0]));
        a.expand_point(&[-5.0, 5.0]);
        assert!(a.contains_point(&[-5.0, 5.0]));
    }

    #[test]
    fn intersection_cases() {
        let a = Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Mbr::new(vec![1.0, 1.0], vec![3.0, 3.0]);
        let c = Mbr::new(vec![2.0, 2.0], vec![4.0, 4.0]); // touching corner
        let d = Mbr::new(vec![2.1, 0.0], vec![3.0, 1.0]); // disjoint in x
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(a.intersects(&c), "closed bounds touch");
        assert!(!a.intersects(&d));
    }

    #[test]
    #[should_panic(expected = "min > max")]
    fn inverted_bounds_panic() {
        let _ = Mbr::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn center_midpoint() {
        let m = Mbr::new(vec![0.0, 10.0], vec![4.0, 20.0]);
        assert_eq!(m.center(0), 2.0);
        assert_eq!(m.center(1), 15.0);
    }
}
