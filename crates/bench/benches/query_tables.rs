//! Query benchmarks mirroring Tables III–VI at reduced scale: every
//! approach × query type on the same calibrated workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kvmatch_baselines::dmatch::{DualConfig, DualMatcher};
use kvmatch_baselines::frm::{FrmConfig, FrmMatcher};
use kvmatch_baselines::{FastScan, UcrSuite};
use kvmatch_bench::{calibrate_epsilon, make_series, sample_queries, CalibrationTarget};
use kvmatch_core::{DpMatcher, IndexSetConfig, MultiIndex, QuerySpec};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};

const N: usize = 50_000;
const M: usize = 512;

struct Setup {
    xs: Vec<f64>,
    multi: MultiIndex<MemoryKvStore>,
    data: MemorySeriesStore,
    query: Vec<f64>,
    eps_rsm: f64,
    eps_cnsm: f64,
    beta: f64,
}

fn setup() -> Setup {
    let xs = make_series(N, 42);
    let multi = MultiIndex::<MemoryKvStore>::build_with::<MemoryKvStoreBuilder, _>(
        &xs,
        IndexSetConfig::default(),
        |_| MemoryKvStoreBuilder::new(),
    )
    .unwrap();
    let data = MemorySeriesStore::new(xs.clone());
    let query = sample_queries(&xs, M, 1, 0.05, 7).pop().unwrap();
    let target = CalibrationTarget { matches: 20, ..Default::default() };
    let (eps_rsm, _) = calibrate_epsilon(&xs, |e| QuerySpec::rsm_ed(query.clone(), e), target);
    let range = {
        let (lo, hi) = xs.iter().fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
        hi - lo
    };
    let beta = range * 0.05;
    let (eps_cnsm, _) =
        calibrate_epsilon(&xs, |e| QuerySpec::cnsm_ed(query.clone(), e, 1.5, beta), target);
    Setup { xs, multi, data, query, eps_rsm, eps_cnsm, beta }
}

fn bench_rsm_ed(c: &mut Criterion) {
    let s = setup();
    let spec = QuerySpec::rsm_ed(s.query.clone(), s.eps_rsm);
    let gmatch = FrmMatcher::build(&s.xs, FrmConfig::default());
    let mut group = c.benchmark_group("table3_rsm_ed");
    group.sample_size(20);
    group.bench_function("kvm_dp", |b| {
        let m = DpMatcher::new(&s.multi, &s.data).unwrap();
        b.iter(|| m.execute(black_box(&spec)).unwrap())
    });
    group.bench_function("gmatch", |b| b.iter(|| gmatch.search(&s.xs, black_box(&spec)).unwrap()));
    group.bench_function("ucr", |b| {
        let u = UcrSuite::new(&s.xs);
        b.iter(|| u.search(black_box(&spec)).unwrap())
    });
    group.finish();
}

fn bench_rsm_dtw(c: &mut Criterion) {
    let s = setup();
    let spec = QuerySpec::rsm_dtw(s.query.clone(), s.eps_rsm, M / 20);
    let dmatch = DualMatcher::build(&s.xs, DualConfig::default());
    let mut group = c.benchmark_group("table4_rsm_dtw");
    group.sample_size(10);
    group.bench_function("kvm_dp", |b| {
        let m = DpMatcher::new(&s.multi, &s.data).unwrap();
        b.iter(|| m.execute(black_box(&spec)).unwrap())
    });
    group.bench_function("dmatch", |b| b.iter(|| dmatch.search(&s.xs, black_box(&spec)).unwrap()));
    group.finish();
}

fn bench_cnsm_ed(c: &mut Criterion) {
    let s = setup();
    let spec = QuerySpec::cnsm_ed(s.query.clone(), s.eps_cnsm, 1.5, s.beta);
    let mut group = c.benchmark_group("table5_cnsm_ed");
    group.sample_size(20);
    group.bench_function("kvm_dp", |b| {
        let m = DpMatcher::new(&s.multi, &s.data).unwrap();
        b.iter(|| m.execute(black_box(&spec)).unwrap())
    });
    group.bench_function("ucr", |b| {
        let u = UcrSuite::new(&s.xs);
        b.iter(|| u.search(black_box(&spec)).unwrap())
    });
    group.bench_function("fast", |b| {
        let f = FastScan::new(&s.xs);
        b.iter(|| f.search(black_box(&spec)).unwrap())
    });
    group.finish();
}

fn bench_cnsm_dtw(c: &mut Criterion) {
    let s = setup();
    let spec = QuerySpec::cnsm_dtw(s.query.clone(), s.eps_cnsm, M / 20, 1.5, s.beta);
    let mut group = c.benchmark_group("table6_cnsm_dtw");
    group.sample_size(10);
    group.bench_function("kvm_dp", |b| {
        let m = DpMatcher::new(&s.multi, &s.data).unwrap();
        b.iter(|| m.execute(black_box(&spec)).unwrap())
    });
    group.bench_function("ucr", |b| {
        let u = UcrSuite::new(&s.xs);
        b.iter(|| u.search(black_box(&spec)).unwrap())
    });
    group.bench_function("fast", |b| {
        let f = FastScan::new(&s.xs);
        b.iter(|| f.search(black_box(&spec)).unwrap())
    });
    group.finish();
}

fn bench_constraint_tightness(c: &mut Criterion) {
    // Ablation: the cNSM knob — looser (α, β) ⇒ wider ranges ⇒ more work.
    let s = setup();
    let mut group = c.benchmark_group("cnsm_constraint_knob");
    group.sample_size(20);
    for (alpha, bp) in [(1.1, 0.01), (1.5, 0.05), (2.0, 0.10)] {
        let spec = QuerySpec::cnsm_ed(s.query.clone(), s.eps_cnsm, alpha, s.beta / 0.05 * bp);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("a{alpha}_b{bp}")),
            &spec,
            |b, spec| {
                let m = DpMatcher::new(&s.multi, &s.data).unwrap();
                b.iter(|| m.execute(black_box(spec)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rsm_ed,
    bench_rsm_dtw,
    bench_cnsm_ed,
    bench_cnsm_dtw,
    bench_constraint_tightness
);
criterion_main!(benches);
