//! Microbenchmarks of the distance kernels and lower bounds — the
//! verification-phase cost model shared by KV-match and the baselines.
//!
//! Every optimized kernel is benchmarked next to its retained scalar
//! oracle (`*_scalar` ids) so the raw-speed pass stays visible: compare
//! `dtw_banded_5pct` against `dtw_banded_5pct_scalar`, and so on. The
//! optimized DTW runs through one warm [`KernelScratch`], matching how
//! an executor worker actually calls it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kvmatch_bench::make_series;
use kvmatch_distance::dtw::{dtw_banded_early_abandon_scalar, dtw_banded_early_abandon_scratch};
use kvmatch_distance::ed::{ed_early_abandon, ed_early_abandon_scalar, ed_norm_early_abandon};
use kvmatch_distance::envelope::keogh_envelope;
use kvmatch_distance::lower_bounds::{lb_keogh_sq, lb_keogh_sq_scalar, lb_paa_sq};
use kvmatch_distance::normalize::{mean_std, z_normalized};
use kvmatch_distance::scratch::KernelScratch;

fn bench_kernels(c: &mut Criterion) {
    let xs = make_series(20_000, 7);
    let mut group = c.benchmark_group("distance");
    group.sample_size(30);
    for m in [256usize, 1024] {
        let a = &xs[0..m];
        let b = &xs[5_000..5_000 + m];
        let b_norm = z_normalized(b);
        let (mu, sigma) = mean_std(a);
        let rho = m / 20;
        let (lo, hi) = keogh_envelope(b, rho);
        let mut scratch = KernelScratch::with_query_capacity(m, rho);

        group.bench_with_input(BenchmarkId::new("ed_early_abandon", m), &m, |bch, _| {
            bch.iter(|| ed_early_abandon(black_box(a), black_box(b), 1e12))
        });
        group.bench_with_input(BenchmarkId::new("ed_early_abandon_scalar", m), &m, |bch, _| {
            bch.iter(|| ed_early_abandon_scalar(black_box(a), black_box(b), 1e12))
        });
        group.bench_with_input(BenchmarkId::new("ed_norm_early_abandon", m), &m, |bch, _| {
            bch.iter(|| ed_norm_early_abandon(black_box(a), black_box(&b_norm), mu, sigma, 1e12))
        });
        group.bench_with_input(BenchmarkId::new("lb_keogh", m), &m, |bch, _| {
            bch.iter(|| lb_keogh_sq(black_box(a), black_box(&lo), black_box(&hi)))
        });
        group.bench_with_input(BenchmarkId::new("lb_keogh_scalar", m), &m, |bch, _| {
            bch.iter(|| lb_keogh_sq_scalar(black_box(a), black_box(&lo), black_box(&hi)))
        });
        let seg = m / 8;
        let paa = |v: &[f64]| -> Vec<f64> {
            (0..8).map(|k| v[k * seg..(k + 1) * seg].iter().sum::<f64>() / seg as f64).collect()
        };
        let (pa, pl, pu) = (paa(a), paa(&lo), paa(&hi));
        group.bench_with_input(BenchmarkId::new("lb_paa", m), &m, |bch, _| {
            bch.iter(|| lb_paa_sq(black_box(&pa), black_box(&pl), black_box(&pu), seg))
        });
        group.bench_with_input(BenchmarkId::new("dtw_banded_5pct", m), &m, |bch, _| {
            bch.iter(|| {
                dtw_banded_early_abandon_scratch(
                    black_box(a),
                    black_box(b),
                    rho,
                    f64::INFINITY,
                    &mut scratch,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dtw_banded_5pct_scalar", m), &m, |bch, _| {
            bch.iter(|| {
                dtw_banded_early_abandon_scalar(black_box(a), black_box(b), rho, f64::INFINITY)
            })
        });
        group.bench_with_input(BenchmarkId::new("envelope", m), &m, |bch, _| {
            bch.iter(|| keogh_envelope(black_box(b), rho))
        });
        group.bench_with_input(BenchmarkId::new("envelope_scratch", m), &m, |bch, _| {
            bch.iter(|| {
                let (l, u) = scratch.envelope(black_box(b), rho);
                (black_box(l.len()), black_box(u.len()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
