//! Storage-substrate benches: scan throughput of the three KvStore
//! backends and fetch cost of the series stores (Fig. 9's deployment
//! dimension), plus file-store open (meta load) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kvmatch_bench::make_series;
use kvmatch_core::{IndexBuildConfig, KvIndex};
use kvmatch_lsm::{LsmKvStore, LsmKvStoreBuilder, LsmOptions};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::sharded::{ShardedKvStoreBuilder, ShardingConfig};
use kvmatch_storage::{
    encode_f64, BlockSeriesStore, FileKvStore, FileKvStoreBuilder, KvStore, MemoryKvStore,
    MemorySeriesStore, SeriesStore, ShardedKvStore,
};

const N: usize = 100_000;

fn bench_kv_scans(c: &mut Criterion) {
    let xs = make_series(N, 37);
    let cfg = IndexBuildConfig::new(50);

    let (mem_idx, _) =
        KvIndex::<MemoryKvStore>::build_into(&xs, cfg, MemoryKvStoreBuilder::new()).unwrap();
    let dir = tempfile::tempdir().unwrap();
    let (file_idx, _) = KvIndex::<FileKvStore>::build_into(
        &xs,
        cfg,
        FileKvStoreBuilder::create(dir.path().join("kv.idx")).unwrap(),
    )
    .unwrap();
    let (shard_idx, _) = KvIndex::<ShardedKvStore>::build_into(
        &xs,
        cfg,
        ShardedKvStoreBuilder::new(ShardingConfig::default()),
    )
    .unwrap();
    let (lsm_idx, _) = KvIndex::<LsmKvStore>::build_into(
        &xs,
        cfg,
        LsmKvStoreBuilder::create(&dir.path().join("lsm"), LsmOptions::default()).unwrap(),
    )
    .unwrap();

    let lo = encode_f64(-2.0);
    let hi = encode_f64(2.0);
    let mut group = c.benchmark_group("kvstore_scan");
    group.sample_size(30);
    group.bench_function("memory", |b| {
        b.iter(|| mem_idx.store().scan(black_box(&lo), black_box(&hi)).unwrap())
    });
    group.bench_function("file", |b| {
        b.iter(|| file_idx.store().scan(black_box(&lo), black_box(&hi)).unwrap())
    });
    group.bench_function("sharded", |b| {
        b.iter(|| shard_idx.store().scan(black_box(&lo), black_box(&hi)).unwrap())
    });
    group.bench_function("lsm", |b| {
        b.iter(|| lsm_idx.store().scan(black_box(&lo), black_box(&hi)).unwrap())
    });
    group.finish();

    let mut open_group = c.benchmark_group("filestore_open");
    open_group.sample_size(20);
    let path = dir.path().join("kv.idx");
    open_group.bench_function("open_and_load_meta", |b| {
        b.iter(|| {
            let store = FileKvStore::open(black_box(&path)).unwrap();
            KvIndex::open(store).unwrap()
        })
    });
    open_group.finish();
}

fn bench_series_fetch(c: &mut Criterion) {
    let xs = make_series(N, 41);
    let mem = MemorySeriesStore::new(xs.clone());
    let block = BlockSeriesStore::from_series(&xs, BlockSeriesStore::DEFAULT_BLOCK);
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("xs.bin");
    kvmatch_timeseries::io::write_series(&path, &xs).unwrap();
    let file = kvmatch_storage::FileSeriesStore::open(&path).unwrap();

    let mut group = c.benchmark_group("series_fetch_4k");
    group.sample_size(30);
    for (name, store) in [
        ("memory", &mem as &dyn SeriesStore),
        ("block1024", &block as &dyn SeriesStore),
        ("file", &file as &dyn SeriesStore),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| store.fetch(black_box(31_234), 4096).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kv_scans, bench_series_fetch);
criterion_main!(benches);
