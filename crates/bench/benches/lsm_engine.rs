//! LSM-engine microbenches: write path (WAL + memtable + flush),
//! point reads across levels, range scans, and the sorted bulk-ingest
//! path used by index building.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use kvmatch_lsm::{LsmDb, LsmKvStore, LsmKvStoreBuilder, LsmOptions};
use kvmatch_storage::KvStore;

fn key(i: usize) -> Vec<u8> {
    format!("key-{i:010}").into_bytes()
}

fn value(i: usize) -> Vec<u8> {
    format!("value-{:032}", i * 31).into_bytes()
}

fn populated_db(dir: &std::path::Path, n: usize) -> LsmDb {
    let db = LsmDb::open(dir, LsmOptions { memtable_bytes: 256 << 10, ..LsmOptions::default() })
        .unwrap();
    for i in 0..n {
        db.put(&key(i), &value(i)).unwrap();
    }
    db.flush().unwrap();
    db
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_put");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("10k_puts_with_flushes", |b| {
        b.iter_with_setup(
            || tempfile::tempdir().unwrap(),
            |dir| {
                let db = LsmDb::open(
                    dir.path(),
                    LsmOptions { memtable_bytes: 64 << 10, ..LsmOptions::default() },
                )
                .unwrap();
                for i in 0..10_000 {
                    db.put(black_box(&key(i)), black_box(&value(i))).unwrap();
                }
                db.flush().unwrap();
            },
        )
    });
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let n = 50_000;
    let db = populated_db(dir.path(), n);

    let mut group = c.benchmark_group("lsm_read");
    group.sample_size(20);
    group.bench_function("point_get_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 7 + 13) % n;
            db.get(black_box(&key(i))).unwrap().expect("present")
        })
    });
    group.bench_function("point_get_miss_bloom_filtered", |b| {
        b.iter(|| db.get(black_box(b"zzz-absent")).unwrap())
    });
    group.bench_function("range_scan_1k_rows", |b| {
        b.iter(|| {
            let rows = db.scan(black_box(&key(20_000)), black_box(&key(21_000))).unwrap();
            assert_eq!(rows.len(), 1_000);
            rows
        })
    });
    group.finish();
}

fn bench_bulk_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_bulk_ingest");
    group.sample_size(10);
    let n = 50_000;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sorted_50k_rows", |b| {
        b.iter_with_setup(
            || tempfile::tempdir().unwrap(),
            |dir| {
                let mut builder =
                    LsmKvStoreBuilder::create(dir.path(), LsmOptions::default()).unwrap();
                for i in 0..n {
                    kvmatch_storage::KvStoreBuilder::append(&mut builder, &key(i), &value(i))
                        .unwrap();
                }
                let store = kvmatch_storage::KvStoreBuilder::finish(builder).unwrap();
                assert_eq!(store.row_count(), n);
            },
        )
    });
    group.finish();
}

fn bench_reopen(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let _db = populated_db(dir.path(), 50_000);
    drop(_db);
    let mut group = c.benchmark_group("lsm_open");
    group.sample_size(20);
    group.bench_function("reopen_50k_rows", |b| {
        b.iter(|| {
            let store = LsmKvStore::open(dir.path(), LsmOptions::default()).unwrap();
            black_box(store.row_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_write_path, bench_reads, bench_bulk_ingest, bench_reopen);
criterion_main!(benches);
