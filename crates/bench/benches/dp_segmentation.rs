//! Fig. 10 at reduced scale: KV-match_DP vs single-window KV-match across
//! query lengths, plus the DP segmentation overhead itself and the
//! §VI-C probe-order ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kvmatch_bench::{make_series, sample_queries};
use kvmatch_core::{
    DpMatcher, DpOptions, IndexBuildConfig, IndexSetConfig, KvIndex, KvMatcher, MultiIndex,
    PreparedQuery, QuerySpec,
};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::{MemoryKvStore, MemorySeriesStore};

const N: usize = 50_000;

fn bench_dp_vs_single(c: &mut Criterion) {
    let xs = make_series(N, 19);
    let data = MemorySeriesStore::new(xs.clone());
    let multi = MultiIndex::<MemoryKvStore>::build_with::<MemoryKvStoreBuilder, _>(
        &xs,
        IndexSetConfig::default(),
        |_| MemoryKvStoreBuilder::new(),
    )
    .unwrap();
    let singles: Vec<(usize, KvIndex<MemoryKvStore>)> = [25usize, 100, 400]
        .into_iter()
        .map(|w| {
            (
                w,
                KvIndex::<MemoryKvStore>::build_into(
                    &xs,
                    IndexBuildConfig::new(w),
                    MemoryKvStoreBuilder::new(),
                )
                .unwrap()
                .0,
            )
        })
        .collect();

    let mut group = c.benchmark_group("fig10_dp_vs_single");
    group.sample_size(15);
    for m in [128usize, 1024, 4096] {
        let q = sample_queries(&xs, m, 1, 0.05, m as u64).pop().unwrap();
        let spec = QuerySpec::rsm_ed(q, 10.0);
        for (w, idx) in &singles {
            if *w > m {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(format!("kvm_w{w}"), m), &spec, |b, spec| {
                let matcher = KvMatcher::new(idx, &data).unwrap();
                b.iter(|| matcher.execute(black_box(spec)).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("kvm_dp", m), &spec, |b, spec| {
            let matcher = DpMatcher::new(&multi, &data).unwrap();
            b.iter(|| matcher.execute(black_box(spec)).unwrap())
        });
    }
    group.finish();
}

fn bench_segmentation_only(c: &mut Criterion) {
    // The Eq. 9 DP itself (meta-table only, no I/O).
    let xs = make_series(N, 23);
    let multi = MultiIndex::<MemoryKvStore>::build_with::<MemoryKvStoreBuilder, _>(
        &xs,
        IndexSetConfig::default(),
        |_| MemoryKvStoreBuilder::new(),
    )
    .unwrap();
    let mut group = c.benchmark_group("dp_segmentation_eq9");
    group.sample_size(20);
    for m in [512usize, 2048, 8192] {
        let q = sample_queries(&xs, m.min(N / 4), 1, 0.05, m as u64).pop().unwrap();
        let prep = PreparedQuery::new(QuerySpec::rsm_ed(q, 10.0)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &prep, |b, prep| {
            b.iter(|| multi.segment_query(black_box(prep)).unwrap())
        });
    }
    group.finish();
}

fn bench_probe_order_ablation(c: &mut Criterion) {
    // §VI-C optimization 2: ascending-cost probe order vs query order.
    let xs = make_series(N, 29);
    let data = MemorySeriesStore::new(xs.clone());
    let multi = MultiIndex::<MemoryKvStore>::build_with::<MemoryKvStoreBuilder, _>(
        &xs,
        IndexSetConfig::default(),
        |_| MemoryKvStoreBuilder::new(),
    )
    .unwrap();
    let q = sample_queries(&xs, 2048, 1, 0.05, 31).pop().unwrap();
    let spec = QuerySpec::rsm_ed(q, 25.0);
    let mut group = c.benchmark_group("probe_order_ablation");
    group.sample_size(15);
    for (name, opts) in [
        ("reordered", DpOptions { reorder_by_cost: true, max_windows: None }),
        ("query_order", DpOptions { reorder_by_cost: false, max_windows: None }),
        ("first_two_only", DpOptions { reorder_by_cost: true, max_windows: Some(2) }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            let matcher = DpMatcher::new(&multi, &data).unwrap().with_options(opts);
            b.iter(|| matcher.execute(black_box(&spec)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_vs_single, bench_segmentation_only, bench_probe_order_ablation);
criterion_main!(benches);
