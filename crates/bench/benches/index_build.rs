//! Index-construction benches (Table VIII / Fig. 8 at reduced scale) plus
//! the DESIGN.md ablations: window width, merge threshold γ, sequential vs
//! parallel build, KV-index vs the baselines' R-tree builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kvmatch_baselines::dmatch::{DualConfig, DualMatcher};
use kvmatch_baselines::frm::{FrmConfig, FrmMatcher};
use kvmatch_bench::make_series;
use kvmatch_core::build::{build_rows, build_rows_parallel};
use kvmatch_core::{IndexAppender, IndexBuildConfig, KvIndex};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::MemoryKvStore;

fn bench_window_width(c: &mut Criterion) {
    // Table VIII: build time decreases with w.
    let xs = make_series(100_000, 11);
    let mut group = c.benchmark_group("table8_build_vs_w");
    group.sample_size(10);
    group.throughput(Throughput::Elements(xs.len() as u64));
    for w in [25usize, 50, 100, 200, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| build_rows(black_box(&xs), IndexBuildConfig::new(w)))
        });
    }
    group.finish();
}

fn bench_build_vs_n(c: &mut Criterion) {
    // Fig. 8: KV-index vs DMatch R-tree vs FRM R-tree build time.
    let mut group = c.benchmark_group("fig8_build_vs_n");
    group.sample_size(10);
    for n in [10_000usize, 50_000, 100_000] {
        let xs = make_series(n, 13);
        group.bench_with_input(BenchmarkId::new("kvindex_w50", n), &n, |b, _| {
            b.iter(|| build_rows(black_box(&xs), IndexBuildConfig::new(50)))
        });
        group.bench_with_input(BenchmarkId::new("dmatch_rtree", n), &n, |b, _| {
            b.iter(|| DualMatcher::build(black_box(&xs), DualConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("frm_rtree", n), &n, |b, _| {
            b.iter(|| FrmMatcher::build(black_box(&xs), FrmConfig::default()))
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let xs = make_series(200_000, 17);
    let mut group = c.benchmark_group("build_ablations");
    group.sample_size(10);
    // γ ablation: merge disabled vs default vs aggressive.
    for gamma in [0.0f64, 0.8, 1.0] {
        group.bench_with_input(BenchmarkId::new("gamma", format!("{gamma}")), &gamma, |b, &g| {
            b.iter(|| build_rows(black_box(&xs), IndexBuildConfig::new(50).with_gamma(g)))
        });
    }
    // Parallel build ablation.
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| build_rows_parallel(black_box(&xs), IndexBuildConfig::new(50), t))
        });
    }
    group.finish();
}

fn bench_append_vs_rebuild(c: &mut Criterion) {
    // Incremental maintenance ablation: extending an index by a batch vs
    // rebuilding from scratch, as the covered prefix grows.
    let n = 200_000;
    let batch = 20_000;
    let xs = make_series(n + batch, 13);
    let w = 50;
    let cfg = IndexBuildConfig::new(w);
    let (base, _) =
        KvIndex::<MemoryKvStore>::build_into(&xs[..n], cfg, MemoryKvStoreBuilder::new()).unwrap();
    let mut group = c.benchmark_group("append_vs_rebuild_20k_batch");
    group.sample_size(10);
    group.bench_function("incremental_append", |b| {
        b.iter(|| {
            let mut app = IndexAppender::from_index(&base, &xs[n - (w - 1)..n]).unwrap();
            app.push_chunk(black_box(&xs[n..]));
            app.finish_into(MemoryKvStoreBuilder::new()).unwrap()
        })
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            KvIndex::<MemoryKvStore>::build_into(black_box(&xs), cfg, MemoryKvStoreBuilder::new())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_width,
    bench_build_vs_n,
    bench_ablations,
    bench_append_vs_rebuild
);
criterion_main!(benches);
