//! # kvmatch-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VIII).
//! Each experiment is a binary under `src/bin/` printing the same columns
//! the paper reports (plus a JSON line per row for machine consumption);
//! reduced-scale Criterion benches under `benches/` mirror them.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table3_rsm_ed` | Table III — RSM-ED: GMatch vs KV-match_DP |
//! | `table4_rsm_dtw` | Table IV — RSM-DTW: DMatch vs KV-match_DP |
//! | `table5_cnsm_ed` | Table V — cNSM-ED: KVM-DP (α, β′ grid) vs UCR/FAST |
//! | `table6_cnsm_dtw` | Table VI — cNSM-DTW grid |
//! | `table7_window_candidates` | Table VII — per-window vs final candidates, KV-match vs FRM |
//! | `table8_window_size` | Table VIII — index size & build time vs `w` |
//! | `fig8_index_build` | Fig. 8 — size & build time vs data length (DMatch vs KVM-DP) |
//! | `fig9_scalability` | Fig. 9 — cNSM scalability (UCR vs KVM, ED & DTW) |
//! | `fig10_dp_vs_basic` | Fig. 10 — KV-match_DP vs single-`w` KV-match |
//! | `bench_report` | perf trajectory — batched executor vs sequential (`BENCH_exec.json`) |
//!
//! Scale knobs (environment variables): `KVM_N` (series length),
//! `KVM_QUERIES` (queries per point), `KVM_SEED`. The paper's selectivity
//! axis is mapped to equal *match counts* (`sel × n`), see DESIGN.md §5.

pub mod calibrate;
pub mod harness;
pub mod kernels;
pub mod netload;
pub mod report;
pub mod workload;

pub use calibrate::{calibrate_epsilon, CalibrationTarget};
pub use harness::{env_f64, env_usize, geo_mean, ExperimentEnv, Row, Table};
pub use kernels::{run_kernels, KernelReport};
pub use netload::{NetworkReport, NetworkRow, NETWORK_CONNECTION_COUNTS};
pub use report::{run_report, BenchReport, ReportEnv, WorkloadReport};
pub use workload::{make_series, sample_queries};
