//! The socket-measured load generator: drives the serving fixture's
//! query pool through a real `kvmatch-server` over TCP and reports
//! client-observed throughput and latency per connection count.
//!
//! By default the server is spawned in-process on a loopback port over a
//! catalog built from the exact fixture data, so the numbers isolate the
//! wire stack (framing, socket round-trips, per-connection threads)
//! against the in-process serving numbers of the same report. Setting
//! `KVM_SERVER_ADDR` points the generator at an externally started
//! `kvmatch-server` instead — that server must run with the same `KVM_*`
//! scale knobs, because every response is still checked **bit-identical**
//! against the sequential matcher's answer for the same request.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kvmatch_client::{Client, ClientError};
use kvmatch_core::exec::ExecutorConfig;
use kvmatch_core::{Catalog, IndexBuildConfig, MemoryCatalogBackend};
use kvmatch_obs::Histogram;
use kvmatch_proto::{code, Request};
use kvmatch_serve::QueryService;
use kvmatch_server::{Server, ServerOptions};

use crate::report::{ReportEnv, ServingFixture};

/// Connection counts the network table must cover.
pub const NETWORK_CONNECTION_COUNTS: &[usize] = &[1, 2, 4];

/// Requests pipelined per connection before the first collect.
const PIPELINE_WINDOW: usize = 8;

/// One connection-count row of the network section.
#[derive(Clone, Debug)]
pub struct NetworkRow {
    /// Concurrent client connections (one pipelining thread each).
    pub connections: usize,
    /// Requests the generator intended to run end-to-end.
    pub offered_requests: u64,
    /// Requests answered with a bit-validated result.
    pub served_requests: u64,
    /// `REJECTED` error frames observed (admission backpressure crossing
    /// the wire; every one was retried until served).
    pub rejected_requests: u64,
    /// Transport failures (connection drops mid-run; each forced a
    /// reconnect and a replay of its pipeline window).
    pub transport_errors: u64,
    /// Wall milliseconds of the whole row.
    pub wall_ms: f64,
    /// `offered_requests / wall` — offered load, requests/s.
    pub offered_rps: f64,
    /// `served_requests / wall` — socket-measured throughput, requests/s.
    pub served_rps: f64,
    /// Median send→response latency measured at the socket, µs.
    pub latency_p50_us: u64,
    /// 95th-percentile socket latency, µs.
    pub latency_p95_us: u64,
    /// 99th-percentile socket latency, µs.
    pub latency_p99_us: u64,
    /// Worst socket latency, µs.
    pub latency_max_us: u64,
}

/// The `network` section of the report.
#[derive(Clone, Debug)]
pub struct NetworkReport {
    /// Address the load generator connected to.
    pub addr: String,
    /// True when `KVM_SERVER_ADDR` pointed at an external server (the
    /// generator then measured a real process boundary, not loopback to
    /// its own address space).
    pub external_server: bool,
    /// Serving workers behind the front door (the in-process spawn uses
    /// the headline worker count; external servers report their env).
    pub workers: usize,
    /// The in-process serving section's served_rps at the same worker
    /// count — the denominator of the network-overhead gate.
    pub inprocess_served_rps: f64,
    /// One row per connection count.
    pub per_connection: Vec<NetworkRow>,
}

/// Runs the network workload: per connection count, that many client
/// connections each pipeline the fixture's query pool over TCP and
/// validate every answer bit-identically.
pub(crate) fn run_network(
    env: &ReportEnv,
    fx: &ServingFixture,
    inprocess_served_rps: f64,
) -> NetworkReport {
    let workers = env.workers.max(1);
    match std::env::var("KVM_SERVER_ADDR") {
        Ok(addr) => {
            let per_connection = NETWORK_CONNECTION_COUNTS
                .iter()
                .map(|&connections| drive_connections(&addr, fx, connections))
                .collect();
            NetworkReport {
                addr,
                external_server: true,
                workers,
                inprocess_served_rps,
                per_connection,
            }
        }
        Err(_) => {
            // In-process server over the fixture's own data — the same
            // catalog construction as the in-process serving runs.
            let mut catalog = Catalog::with_exec_config(
                MemoryCatalogBackend,
                ExecutorConfig { threads: env.threads, ..ExecutorConfig::default() },
            );
            for (id, xs) in fx.ids.iter().zip(&fx.data) {
                catalog.create_series(*id, IndexBuildConfig::new(env.w)).unwrap();
                catalog.append(*id, xs).unwrap();
            }
            catalog.materialize().expect("materialize network catalog");
            let service = Arc::new(
                QueryService::builder(catalog)
                    .shards(env.shards)
                    .workers(workers)
                    .queue_capacity((env.submitters * 2).max(16))
                    .max_batch(16)
                    .max_batch_delay(Duration::from_millis(1))
                    .build()
                    .expect("network topology is valid by construction"),
            );
            let server =
                Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerOptions::default())
                    .expect("bind loopback for the network workload");
            let addr = server.local_addr().to_string();
            let per_connection = NETWORK_CONNECTION_COUNTS
                .iter()
                .map(|&connections| drive_connections(&addr, fx, connections))
                .collect();
            server.shutdown();
            match Arc::try_unwrap(service) {
                Ok(service) => {
                    service.shutdown();
                }
                // Server::shutdown joins every connection thread, so a
                // surviving clone is a leak worth hearing about.
                Err(_) => eprintln!("service still shared after drain; skipping worker shutdown"),
            }
            NetworkReport {
                addr,
                external_server: false,
                workers,
                inprocess_served_rps,
                per_connection,
            }
        }
    }
}

/// One row: `connections` client threads, each cycling the pool
/// [`ServingFixture::rounds`] times with a [`PIPELINE_WINDOW`]-deep
/// in-flight window.
fn drive_connections(addr: &str, fx: &ServingFixture, connections: usize) -> NetworkRow {
    use std::sync::atomic::{AtomicU64, Ordering};

    let per_conn = fx.pool.len() * fx.rounds;
    let rejected = AtomicU64::new(0);
    let transport = AtomicU64::new(0);
    // One shared quarter-log₂ histogram per row — the same bucketing the
    // serving layer exposes, instead of a private sorted-sample scheme.
    let hist = Histogram::new();
    let t_row = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|t| {
                let rejected = &rejected;
                let transport = &transport;
                let hist = &hist;
                scope.spawn(move || {
                    drive_one_connection(addr, fx, t, per_conn, hist, rejected, transport)
                })
            })
            .collect();
        for h in handles {
            h.join().expect("connection thread");
        }
    });
    let wall_ms = t_row.elapsed().as_secs_f64() * 1e3;

    let offered = (connections * per_conn) as u64;
    let served = hist.count();
    assert_eq!(served, offered, "every offered network request must be served");
    NetworkRow {
        connections,
        offered_requests: offered,
        served_requests: served,
        rejected_requests: rejected.load(Ordering::Relaxed),
        transport_errors: transport.load(Ordering::Relaxed),
        wall_ms,
        offered_rps: offered as f64 / (wall_ms / 1e3).max(1e-9),
        served_rps: served as f64 / (wall_ms / 1e3).max(1e-9),
        latency_p50_us: hist.quantile_us(0.50),
        latency_p95_us: hist.quantile_us(0.95),
        latency_p99_us: hist.quantile_us(0.99),
        latency_max_us: hist.max_us(),
    }
}

fn elapsed_us(t0: Instant) -> u64 {
    t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// One connection's whole run. Records the socket-measured latency of
/// every served request into `hist` — a wave's latencies are flushed only
/// after the whole wave succeeds, so a transport failure (reconnect plus
/// full window replay) never double-counts and served counts stay exact.
fn drive_one_connection(
    addr: &str,
    fx: &ServingFixture,
    t: usize,
    per_conn: usize,
    hist: &Histogram,
    rejected: &std::sync::atomic::AtomicU64,
    transport: &std::sync::atomic::AtomicU64,
) {
    use std::sync::atomic::Ordering;

    let picks: Vec<usize> = (0..per_conn).map(|r| (t * 11 + r) % fx.pool.len()).collect();
    let mut client =
        Client::connect_retry(addr, 40, Duration::from_millis(50)).expect("client connects");
    let mut wave_lat = Vec::with_capacity(PIPELINE_WINDOW);
    let mut at = 0;
    while at < picks.len() {
        let wave = &picks[at..(at + PIPELINE_WINDOW).min(picks.len())];
        wave_lat.clear();
        match drive_wave(&client, fx, wave, &mut wave_lat, rejected) {
            Ok(()) => {
                for &us in &wave_lat {
                    hist.record_us(us);
                }
                at += wave.len();
            }
            Err(_) => {
                // Transport death: drop the partial window, reconnect,
                // replay it in full.
                transport.fetch_add(1, Ordering::Relaxed);
                client = Client::connect_retry(addr, 40, Duration::from_millis(50))
                    .expect("client reconnects");
            }
        }
    }
}

/// Pipelines one window: all sends first, then collects (and validates)
/// every response. `Err` means the connection is unusable.
fn drive_wave(
    client: &Client,
    fx: &ServingFixture,
    wave: &[usize],
    latencies: &mut Vec<u64>,
    rejected: &std::sync::atomic::AtomicU64,
) -> Result<(), ClientError> {
    use std::sync::atomic::Ordering;

    let mut pending = Vec::with_capacity(wave.len());
    for &which in wave {
        let spec = fx.pool[which].spec.clone();
        let t0 = Instant::now();
        pending.push((which, t0, client.send(&Request::Query { spec, deadline_us: None })?));
    }
    for (which, t0, pending) in pending {
        let mut outcome = pending.wait_query();
        // Admission backpressure crosses the wire as a typed REJECTED
        // frame; retry (synchronously) until served, like the in-process
        // submitters do.
        loop {
            match outcome {
                Ok(reply) => {
                    assert_eq!(
                        reply.results, fx.expected[which],
                        "network workload: socket answer diverged from the sequential \
                         matcher (pool #{which})"
                    );
                    latencies.push(elapsed_us(t0));
                    break;
                }
                Err(ClientError::Server(err)) if err.code == code::REJECTED => {
                    rejected.fetch_add(1, Ordering::Relaxed);
                    outcome = client.query(fx.pool[which].spec.clone(), None);
                }
                Err(ClientError::Server(err)) => {
                    panic!("network workload: unexpected server error {err:?}")
                }
                Err(transport) => return Err(transport),
            }
        }
    }
    Ok(())
}
