//! The bench-report pipeline: batched executor vs sequential matcher,
//! across storage backends, plus the multi-series ingest+query workload.
//!
//! [`run_report`] produces the `BENCH_exec.json` trajectory point CI
//! uploads and gates on. Three sections:
//!
//! 1. **Memory backend workloads** — the PR-2 comparison: all four query
//!    types through both the sequential [`KvMatcher`] and the batched
//!    [`QueryExecutor`] over a [`MemoryKvStore`] index, asserting
//!    bit-identical results and reporting wall time, per-cascade-stage
//!    pruning and probe sharing.
//! 2. **Sharded backend workloads** — the same specs over the simulated
//!    HBase deployment: [`ShardedKvStore`] index regions plus 1024-point
//!    [`BlockSeriesStore`] data rows.
//! 3. **Multi-series workload** — a [`Catalog`] ingests several series
//!    through the streaming append path (reporting ingest throughput),
//!    then answers one mixed cross-series batch (reporting per-series
//!    wall time and the cache-hit split), validated per query against a
//!    dedicated single-series matcher.
//! 4. **Serving workload** — concurrent submitter threads drive a mixed
//!    range + top-k request stream through a
//!    [`QueryService`](kvmatch_serve::QueryService) under a bounded
//!    admission queue: offered vs served throughput, rejected/expired
//!    request counts (queue-expired and execution-expired separately),
//!    batch occupancy and p50/p95/p99 latency — every response validated
//!    bit-identically against a dedicated sequential matcher. The
//!    section carries a **scaling table**: the identical workload rerun
//!    at 1, 2 and 4 dispatch workers, whose served_rps rows back the CI
//!    throughput-scaling gate.
//! 5. **Streaming-ingest workload** — a `QueryService` over the durable
//!    [`LsmCatalogBackend`](kvmatch_lsm::LsmCatalogBackend):
//!    `KVM_SUBMITTERS` querier threads measure read latency during a
//!    quiet phase, then again while an acked append burst drives
//!    generation sealing, delta runs and size-tiered compaction on
//!    another series. Reports burst ingest throughput, quiet vs burst
//!    p95/p99, the stall ratio (the CI stall gate's metric) and the
//!    backend's maintenance counters.
//!
//! 6. **Kernel sweep** — [`run_kernels`] isolates the verification
//!    kernels: ns/candidate for optimized vs
//!    scalar-oracle DTW/ED/LB_Keogh (plus the scratch envelope), the
//!    warm-scratch allocation counter, the adaptive-cascade skip
//!    counters and a bit-identity flag — the CI kernel gate's section.
//!
//! 7. **Observability checks** — `run_observability` drives the
//!    serving fixture through a real socket with and without the
//!    `EXPLAIN` flag: results must be bit-identical, the wire-delivered
//!    [`ExplainReport`](kvmatch_obs::ExplainReport) must mirror the
//!    executor stats verbatim, and the text exposition scrape must be
//!    well-formed — the CI `obs-smoke` gate's section. The
//!    disabled-path overhead number is patched in by
//!    `bench_report --compare` (the total workload delta vs the
//!    committed baseline *is* the tracing-disabled overhead, because
//!    no report workload ever sets the explain flag).
//!
//! The JSON schema is versioned ([`SCHEMA`]) and machine-checked:
//! [`validate_schema`] fails when any required field is dropped or
//! renamed, and a bench-crate test enforces it on every `cargo test`
//! run.

use std::time::Instant;

use serde_json::{Map, Value};

use kvmatch_core::catalog::{Catalog, MemoryCatalogBackend};
use kvmatch_core::{
    ExecutorConfig, IndexAppender, IndexBuildConfig, KvIndex, KvMatcher, MatchResult, MatchStats,
    QueryExecutor, QuerySpec, SeriesId,
};
use kvmatch_storage::memory::MemoryKvStoreBuilder;
use kvmatch_storage::{
    BlockSeriesStore, KvStore, MemoryKvStore, MemorySeriesStore, SeriesStore, ShardedKvStore,
    ShardedKvStoreBuilder, ShardingConfig,
};

use crate::kernels::{run_kernels, KernelReport};
use crate::netload::{run_network, NetworkReport, NETWORK_CONNECTION_COUNTS};
use crate::workload::{make_series, sample_queries};

/// Scale knobs of one report run.
#[derive(Clone, Copy, Debug)]
pub struct ReportEnv {
    /// Series length `n` (single-series workloads).
    pub n: usize,
    /// Index window width `w`.
    pub w: usize,
    /// Queries per workload (and per catalog series).
    pub queries: usize,
    /// Data/query seed.
    pub seed: u64,
    /// Verification worker threads (`0` = auto).
    pub threads: usize,
    /// Timing repetitions (best-of).
    pub repeat: usize,
    /// Catalog series in the multi-series workload.
    pub series: usize,
    /// Concurrent submitter threads in the serving workload.
    pub submitters: usize,
    /// Executor workers in the serving workload's dispatch pool (the
    /// headline serving run; the scaling table always covers 1/2/4).
    pub workers: usize,
    /// Catalog shards in the serving workload (the headline serving run
    /// and the network section; the sharding table always covers 1/4).
    pub shards: usize,
}

impl ReportEnv {
    /// Reads `KVM_N`, `KVM_W`, `KVM_QUERIES`, `KVM_SEED`, `KVM_THREADS`,
    /// `KVM_REPEAT`, `KVM_SERIES`, `KVM_SUBMITTERS`, `KVM_WORKERS`,
    /// `KVM_SHARDS` with report defaults.
    pub fn from_env() -> Self {
        Self {
            n: crate::harness::env_usize("KVM_N", 120_000),
            w: crate::harness::env_usize("KVM_W", 50),
            queries: crate::harness::env_usize("KVM_QUERIES", 8),
            seed: crate::harness::env_usize("KVM_SEED", 42) as u64,
            threads: crate::harness::env_usize("KVM_THREADS", 0),
            repeat: crate::harness::env_usize("KVM_REPEAT", 1).max(1),
            series: crate::harness::env_usize("KVM_SERIES", 4).max(1),
            submitters: crate::harness::env_usize("KVM_SUBMITTERS", 8).max(1),
            workers: crate::harness::env_usize("KVM_WORKERS", 2).max(1),
            shards: crate::harness::env_usize("KVM_SHARDS", 1).max(1),
        }
    }
}

/// One workload's comparison row.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Storage backend the workload ran on (`memory` or `sharded`).
    pub backend: String,
    /// Workload name (query type).
    pub name: String,
    /// Query length `m`.
    pub m: usize,
    /// Distance threshold ε.
    pub epsilon: f64,
    /// Queries executed.
    pub queries: usize,
    /// Total matches (identical for both executions).
    pub matches: u64,
    /// Phase-2 candidates verified.
    pub candidates: u64,
    /// Candidates rejected by the cNSM constraint pre-stage.
    pub pruned_constraint: u64,
    /// Candidates rejected by LB_Kim-FL.
    pub pruned_lb_kim: u64,
    /// Candidates rejected by LB_Keogh.
    pub pruned_lb_keogh: u64,
    /// Candidates that reached the full distance kernel.
    pub full_distance_computations: u64,
    /// Store scans issued by the sequential run.
    pub sequential_index_scans: u64,
    /// Store scans issued by the batched run (shared probes removed).
    pub batched_index_scans: u64,
    /// Batched probes served entirely from the row cache.
    pub probe_cache_hits: u64,
    /// Sequential wall time (best of `repeat`), milliseconds.
    pub sequential_ms: f64,
    /// Batched wall time (best of `repeat`), milliseconds.
    pub batched_ms: f64,
    /// `sequential_ms / batched_ms`.
    pub speedup: f64,
}

/// One catalog series' share of the mixed batch.
#[derive(Clone, Copy, Debug)]
pub struct SeriesReport {
    /// Raw series id.
    pub series: u64,
    /// Points this series holds.
    pub points: u64,
    /// Queries routed to it.
    pub queries: u64,
    /// Matches across those queries.
    pub matches: u64,
    /// Phase-1 wall milliseconds attributed to the series.
    pub probe_ms: f64,
    /// Phase-2 worker milliseconds attributed to the series.
    pub verify_ms: f64,
    /// Window probes issued.
    pub probes: u64,
    /// Probes served from the series' row cache.
    pub probe_cache_hits: u64,
    /// Real store scans.
    pub store_scans: u64,
}

/// The multi-series ingest+query section.
#[derive(Clone, Debug)]
pub struct MultiSeriesReport {
    /// Catalog series count.
    pub series: usize,
    /// Points per series.
    pub n_per_series: usize,
    /// Total points ingested through the streaming append path.
    pub ingest_points: u64,
    /// Wall milliseconds spent ingesting (append + first materialize).
    pub ingest_ms: f64,
    /// `ingest_points / (ingest_ms / 1000)`.
    pub ingest_points_per_sec: f64,
    /// Queries in the mixed batch.
    pub queries: usize,
    /// Total matches.
    pub matches: u64,
    /// Cold mixed-batch wall milliseconds.
    pub batch_ms: f64,
    /// Repeat mixed-batch wall milliseconds (warm per-series caches).
    pub warm_batch_ms: f64,
    /// Cold-batch window probes.
    pub probes: u64,
    /// Cold-batch probes served from caches.
    pub probe_cache_hits: u64,
    /// Cold-batch real store scans.
    pub store_scans: u64,
    /// Warm-batch probes served from caches.
    pub warm_probe_cache_hits: u64,
    /// Warm-batch real store scans.
    pub warm_store_scans: u64,
    /// Per-series split of the cold batch.
    pub per_series: Vec<SeriesReport>,
}

/// One row of the serving scaling table: the identical serving workload
/// rerun at a fixed executor-worker count (single-thread verification
/// per worker, so the row isolates dispatch-level parallelism). Each
/// run re-validates every response bit-identically against the
/// sequential matcher, so rows are comparable *and* correct.
#[derive(Clone, Copy, Debug)]
pub struct ServingScalingRow {
    /// Executor workers in the dispatch pool.
    pub workers: usize,
    /// Requests driven end-to-end.
    pub offered_requests: u64,
    /// Requests answered successfully (equal to offered — retry loops
    /// converge).
    pub served_requests: u64,
    /// Wall milliseconds of the run (best of `KVM_REPEAT`).
    pub wall_ms: f64,
    /// `served_requests / wall` — the scaling gate's metric.
    pub served_rps: f64,
    /// Median submit→response latency, microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub latency_p99_us: u64,
}

/// The streaming-ingest section: reader latency while the durable
/// backend seals, compacts and retires index generations under an
/// append burst.
#[derive(Clone, Copy, Debug)]
pub struct StreamingReport {
    /// Catalog series served (series 1 takes the burst; queriers read
    /// the others, so burst latencies measure reader stall rather than
    /// the per-series ordering barrier).
    pub series: usize,
    /// Concurrent querier threads in both phases.
    pub queriers: usize,
    /// Points appended during the burst.
    pub burst_points: u64,
    /// Wall milliseconds of the acked burst (append → snapshot
    /// published, per chunk).
    pub ingest_ms: f64,
    /// `burst_points / (ingest_ms / 1000)`.
    pub points_per_sec: f64,
    /// Reader queries measured in the quiet phase.
    pub quiet_queries: u64,
    /// Reader queries measured during the burst.
    pub burst_queries: u64,
    /// Quiet-phase 95th-percentile read latency, microseconds (exact,
    /// client-side).
    pub quiet_p95_us: u64,
    /// Quiet-phase 99th-percentile read latency, microseconds.
    pub quiet_p99_us: u64,
    /// Burst-phase 95th-percentile read latency, microseconds.
    pub burst_p95_us: u64,
    /// Burst-phase 99th-percentile read latency, microseconds.
    pub burst_p99_us: u64,
    /// `burst_p99_us / quiet_p99_us` — what the CI stall gate bounds.
    pub stall_ratio: f64,
    /// Index runs the backend sealed (initial + burst generations).
    pub runs_sealed: u64,
    /// Runs sealed through the changed-suffix delta path.
    pub delta_runs_sealed: u64,
    /// Size-tiered folds performed while sealing.
    pub compactions: u64,
    /// Superseded generations retired (files deleted) during the run.
    pub generations_retired: u64,
    /// Failed snapshot rebuilds surfaced by the service (must be 0).
    pub materialize_failures: u64,
}

/// The serving workload: offered load vs served throughput under
/// admission control, with latency percentiles and the per-worker-count
/// scaling table.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Catalog series served.
    pub series: usize,
    /// Concurrent submitter threads.
    pub submitters: usize,
    /// Executor workers in the headline run's dispatch pool.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Scheduler batch-size flush trigger.
    pub max_batch: usize,
    /// Requests the submitters ran end-to-end.
    pub offered_requests: u64,
    /// Requests answered successfully (must equal offered — every retry
    /// loop converges).
    pub served_requests: u64,
    /// Top-k requests among them.
    pub topk_requests: u64,
    /// Backpressure events: submissions turned away by the bounded queue
    /// before eventually being admitted on retry.
    pub rejected_requests: u64,
    /// Admitted requests whose deadline expired before dispatch.
    pub expired_requests: u64,
    /// Requests whose deadline expired *during* execution — work done
    /// but delivered too late, reported separately from served.
    pub expired_exec_requests: u64,
    /// Executor shard batches dispatched across the worker pool.
    pub batches: u64,
    /// Mean queries per dispatched batch (micro-batching effectiveness).
    pub avg_batch_occupancy: f64,
    /// Largest dispatched batch.
    pub max_batch_occupancy: u64,
    /// Wall milliseconds of the whole serving run.
    pub wall_ms: f64,
    /// `offered_requests / wall` — offered load, requests/s.
    pub offered_rps: f64,
    /// `served_requests / wall` — served throughput, requests/s.
    pub served_rps: f64,
    /// Median submit→response latency, microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub latency_p99_us: u64,
    /// Worst latency, microseconds.
    pub latency_max_us: u64,
    /// The per-worker-count scaling table (workers = 1, 2, 4).
    pub scaling: Vec<ServingScalingRow>,
}

/// One row of the sharding scale-out table: the identical wide-keyspace
/// workload rerun at a fixed shard count (4 executor workers per shard,
/// single-thread verification per worker). Each run re-validates every
/// response bit-identically against a dedicated sequential matcher, so
/// rows are comparable *and* correct.
#[derive(Clone, Copy, Debug)]
pub struct ShardingRow {
    /// Catalog shards the service was split into.
    pub shards: usize,
    /// Requests driven end-to-end.
    pub offered_requests: u64,
    /// Requests answered successfully (equal to offered — retry loops
    /// converge).
    pub served_requests: u64,
    /// Backpressure events before eventual admission on retry.
    pub rejected_requests: u64,
    /// Wall milliseconds of the run (best of `KVM_REPEAT`).
    pub wall_ms: f64,
    /// `served_requests / wall` — the sharding gate's metric.
    pub served_rps: f64,
    /// Median submit→response latency, microseconds.
    pub latency_p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub latency_p99_us: u64,
}

/// The sharding scale-out section: a wide keyspace (hundreds of short
/// series) served through shard counts 1 and 4 so the report shows —
/// and CI can gate on — whether splitting the catalog into
/// shard-per-core pipelines adds serving capacity.
#[derive(Clone, Debug)]
pub struct ShardingReport {
    /// Series in the wide-keyspace catalog.
    pub series: usize,
    /// Points per series.
    pub n_per_series: usize,
    /// Concurrent submitter threads.
    pub submitters: usize,
    /// Executor workers per shard (fixed at 4 for every row).
    pub workers: usize,
    /// Distinct queries in the request pool.
    pub queries: usize,
    /// True when every response across every shard count matched its
    /// dedicated sequential matcher byte for byte.
    pub bit_identical: bool,
    /// One row per shard count in [`SHARDING_SHARD_COUNTS`].
    pub rows: Vec<ShardingRow>,
}

/// The `observability` section: deterministic contracts of the tracing,
/// EXPLAIN and exposition machinery, checked over a real socket.
#[derive(Clone, Debug)]
pub struct ObservabilityReport {
    /// Percent wall-time delta of this tracing-disabled run against the
    /// committed baseline, patched in by `bench_report --compare`
    /// (0.0 when no baseline was compared). No report workload sets the
    /// explain flag, so the total workload delta *is* the overhead of
    /// carrying the observability hooks while they are off.
    pub disabled_overhead_pct: f64,
    /// True when every probed explain query returned results
    /// bit-identical to the same query without the flag, with a report
    /// whose prune counts and stage timings mirror the executor stats
    /// verbatim.
    pub explain_bit_identical: bool,
    /// True when the text exposition scraped over the wire is
    /// well-formed and covers the serving + network metric families.
    pub exposition_ok: bool,
    /// `# slowlog` entries riding the scrape when it was taken.
    pub slowlog_depth: u64,
    /// Spans on the deepest wire-delivered explain report (serve.queue,
    /// serve.execute and server.request at minimum, so ≥ 3).
    pub explain_spans: u64,
}

/// The full report written to `BENCH_exec.json`.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Report format tag.
    pub schema: String,
    /// Scale knobs of this run.
    pub env: ReportEnv,
    /// Resolved verification thread count.
    pub threads_resolved: usize,
    /// Per-workload rows (memory and sharded backends).
    pub workloads: Vec<WorkloadReport>,
    /// The multi-series ingest+query section.
    pub multi_series: MultiSeriesReport,
    /// The serving workload section.
    pub serving: ServingReport,
    /// The sharding scale-out section.
    pub sharding: ShardingReport,
    /// The socket-measured network workload section.
    pub network: NetworkReport,
    /// The streaming-ingest (LSM backend) section.
    pub streaming: StreamingReport,
    /// The kernel-level sweep (optimized vs scalar-oracle timings,
    /// allocation and adaptive-skip counters, bit-identity flag).
    pub kernels: KernelReport,
    /// The observability checks (explain bit-identity, exposition
    /// well-formedness, slow-log depth, disabled-path overhead).
    pub observability: ObservabilityReport,
    /// Total sequential milliseconds across workloads.
    pub total_sequential_ms: f64,
    /// Total batched milliseconds across workloads.
    pub total_batched_ms: f64,
    /// `total_sequential_ms / total_batched_ms`.
    pub overall_speedup: f64,
}

/// Schema tag of the current report format.
pub const SCHEMA: &str = "kvmatch-bench-exec/v9";

/// Required top-level fields of `BENCH_exec.json`.
pub const ROOT_FIELDS: &[&str] = &[
    "schema",
    "env",
    "threads_resolved",
    "workloads",
    "multi_series",
    "serving",
    "sharding",
    "network",
    "streaming",
    "kernels",
    "observability",
    "total_sequential_ms",
    "total_batched_ms",
    "overall_speedup",
];

/// Required fields of every `env` object.
pub const ENV_FIELDS: &[&str] = &[
    "n",
    "w",
    "queries",
    "seed",
    "threads",
    "repeat",
    "series",
    "submitters",
    "workers",
    "shards",
];

/// Required fields of every workload row.
pub const WORKLOAD_FIELDS: &[&str] = &[
    "backend",
    "name",
    "m",
    "epsilon",
    "queries",
    "matches",
    "candidates",
    "pruned_constraint",
    "pruned_lb_kim",
    "pruned_lb_keogh",
    "full_distance_computations",
    "sequential_index_scans",
    "batched_index_scans",
    "probe_cache_hits",
    "sequential_ms",
    "batched_ms",
    "speedup",
];

/// Required fields of the `multi_series` object.
pub const MULTI_SERIES_FIELDS: &[&str] = &[
    "series",
    "n_per_series",
    "ingest_points",
    "ingest_ms",
    "ingest_points_per_sec",
    "queries",
    "matches",
    "batch_ms",
    "warm_batch_ms",
    "probes",
    "probe_cache_hits",
    "store_scans",
    "warm_probe_cache_hits",
    "warm_store_scans",
    "per_series",
];

/// Required fields of the `serving` object.
pub const SERVING_FIELDS: &[&str] = &[
    "series",
    "submitters",
    "workers",
    "queue_capacity",
    "max_batch",
    "offered_requests",
    "served_requests",
    "topk_requests",
    "rejected_requests",
    "expired_requests",
    "expired_exec_requests",
    "batches",
    "avg_batch_occupancy",
    "max_batch_occupancy",
    "wall_ms",
    "offered_rps",
    "served_rps",
    "latency_p50_us",
    "latency_p95_us",
    "latency_p99_us",
    "latency_max_us",
    "scaling",
];

/// Required fields of every `serving.scaling` row.
pub const SCALING_FIELDS: &[&str] = &[
    "workers",
    "offered_requests",
    "served_requests",
    "wall_ms",
    "served_rps",
    "latency_p50_us",
    "latency_p95_us",
    "latency_p99_us",
];

/// Worker counts the scaling table must cover.
pub const SCALING_WORKER_COUNTS: &[usize] = &[1, 2, 4];

/// Required fields of the `sharding` object.
pub const SHARDING_FIELDS: &[&str] =
    &["series", "n_per_series", "submitters", "workers", "queries", "bit_identical", "rows"];

/// Required fields of every `sharding.rows` row.
pub const SHARDING_ROW_FIELDS: &[&str] = &[
    "shards",
    "offered_requests",
    "served_requests",
    "rejected_requests",
    "wall_ms",
    "served_rps",
    "latency_p50_us",
    "latency_p95_us",
    "latency_p99_us",
];

/// Shard counts the sharding table must cover.
pub const SHARDING_SHARD_COUNTS: &[usize] = &[1, 4];

/// Required fields of the `network` object.
pub const NETWORK_FIELDS: &[&str] =
    &["addr", "external_server", "workers", "inprocess_served_rps", "per_connection"];

/// Required fields of every `network.per_connection` row.
pub const NETWORK_ROW_FIELDS: &[&str] = &[
    "connections",
    "offered_requests",
    "served_requests",
    "rejected_requests",
    "transport_errors",
    "wall_ms",
    "offered_rps",
    "served_rps",
    "latency_p50_us",
    "latency_p95_us",
    "latency_p99_us",
    "latency_max_us",
];

/// Required fields of the `streaming` object.
pub const STREAMING_FIELDS: &[&str] = &[
    "series",
    "queriers",
    "burst_points",
    "ingest_ms",
    "points_per_sec",
    "quiet_queries",
    "burst_queries",
    "quiet_p95_us",
    "quiet_p99_us",
    "burst_p95_us",
    "burst_p99_us",
    "stall_ratio",
    "runs_sealed",
    "delta_runs_sealed",
    "compactions",
    "generations_retired",
    "materialize_failures",
];

/// Required fields of the `kernels` object.
pub const KERNEL_FIELDS: &[&str] = &[
    "m",
    "rho",
    "candidates",
    "dtw_scalar_ns",
    "dtw_opt_ns",
    "dtw_speedup",
    "ed_scalar_ns",
    "ed_opt_ns",
    "lb_keogh_scalar_ns",
    "lb_keogh_opt_ns",
    "envelope_ns",
    "alloc_events_warm",
    "adaptive_skipped_lb_kim",
    "adaptive_skipped_lb_keogh",
    "bit_identical",
];

/// Required fields of the `observability` object.
pub const OBSERVABILITY_FIELDS: &[&str] = &[
    "disabled_overhead_pct",
    "explain_bit_identical",
    "exposition_ok",
    "slowlog_depth",
    "explain_spans",
];

/// Required fields of every `multi_series.per_series` row.
pub const SERIES_FIELDS: &[&str] = &[
    "series",
    "points",
    "queries",
    "matches",
    "probe_ms",
    "verify_ms",
    "probes",
    "probe_cache_hits",
    "store_scans",
];

/// Checks a rendered report against the required field lists above.
/// Returns the first missing field as `Err` — consumers (CI, the
/// bench-crate schema test) fail when a field is dropped or renamed.
pub fn validate_schema(value: &Value) -> Result<(), String> {
    let obj = |v: &Value, what: &str| -> Result<Map, String> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            _ => Err(format!("{what} is not an object")),
        }
    };
    let need = |m: &Map, fields: &[&str], what: &str| -> Result<(), String> {
        for f in fields {
            if m.get(f).is_none() {
                return Err(format!("{what} is missing required field `{f}`"));
            }
        }
        Ok(())
    };
    let root = obj(value, "report")?;
    need(&root, ROOT_FIELDS, "report")?;
    if root.get("schema") != Some(&Value::from(SCHEMA)) {
        return Err(format!("schema tag is not {SCHEMA:?}"));
    }
    need(&obj(root.get("env").expect("checked"), "env")?, ENV_FIELDS, "env")?;
    let Some(Value::Array(rows)) = root.get("workloads") else {
        return Err("workloads is not an array".into());
    };
    if rows.is_empty() {
        return Err("workloads is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        need(&obj(row, "workload row")?, WORKLOAD_FIELDS, &format!("workload[{i}]"))?;
    }
    let ms = obj(root.get("multi_series").expect("checked"), "multi_series")?;
    need(&ms, MULTI_SERIES_FIELDS, "multi_series")?;
    let Some(Value::Array(rows)) = ms.get("per_series") else {
        return Err("multi_series.per_series is not an array".into());
    };
    if rows.is_empty() {
        return Err("multi_series.per_series is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        need(&obj(row, "per-series row")?, SERIES_FIELDS, &format!("per_series[{i}]"))?;
    }
    let streaming = obj(root.get("streaming").expect("checked"), "streaming")?;
    need(&streaming, STREAMING_FIELDS, "streaming")?;
    let serving = obj(root.get("serving").expect("checked"), "serving")?;
    need(&serving, SERVING_FIELDS, "serving")?;
    let Some(Value::Array(rows)) = serving.get("scaling") else {
        return Err("serving.scaling is not an array".into());
    };
    if rows.is_empty() {
        return Err("serving.scaling is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        need(&obj(row, "scaling row")?, SCALING_FIELDS, &format!("scaling[{i}]"))?;
    }
    for want in SCALING_WORKER_COUNTS {
        let covered = rows.iter().any(|row| {
            matches!(row, Value::Object(m)
                if matches!(m.get("workers"), Some(Value::Number(v)) if *v == *want as f64))
        });
        if !covered {
            return Err(format!("serving.scaling is missing the workers={want} row"));
        }
    }
    let sharding = obj(root.get("sharding").expect("checked"), "sharding")?;
    need(&sharding, SHARDING_FIELDS, "sharding")?;
    let Some(Value::Array(rows)) = sharding.get("rows") else {
        return Err("sharding.rows is not an array".into());
    };
    if rows.is_empty() {
        return Err("sharding.rows is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        need(&obj(row, "sharding row")?, SHARDING_ROW_FIELDS, &format!("sharding.rows[{i}]"))?;
    }
    for want in SHARDING_SHARD_COUNTS {
        let covered = rows.iter().any(|row| {
            matches!(row, Value::Object(m)
                if matches!(m.get("shards"), Some(Value::Number(v)) if *v == *want as f64))
        });
        if !covered {
            return Err(format!("sharding.rows is missing the shards={want} row"));
        }
    }
    let network = obj(root.get("network").expect("checked"), "network")?;
    need(&network, NETWORK_FIELDS, "network")?;
    let Some(Value::Array(rows)) = network.get("per_connection") else {
        return Err("network.per_connection is not an array".into());
    };
    if rows.is_empty() {
        return Err("network.per_connection is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        need(&obj(row, "network row")?, NETWORK_ROW_FIELDS, &format!("per_connection[{i}]"))?;
    }
    for want in NETWORK_CONNECTION_COUNTS {
        let covered = rows.iter().any(|row| {
            matches!(row, Value::Object(m)
                if matches!(m.get("connections"), Some(Value::Number(v)) if *v == *want as f64))
        });
        if !covered {
            return Err(format!("network.per_connection is missing the connections={want} row"));
        }
    }
    let kernels = obj(root.get("kernels").expect("checked"), "kernels")?;
    need(&kernels, KERNEL_FIELDS, "kernels")?;
    let obs = obj(root.get("observability").expect("checked"), "observability")?;
    need(&obs, OBSERVABILITY_FIELDS, "observability")?;
    Ok(())
}

impl BenchReport {
    /// True when the batched executor was at least as fast as the
    /// sequential matcher overall — the CI smoke gate.
    pub fn batched_not_slower(&self) -> bool {
        self.total_batched_ms <= self.total_sequential_ms
    }

    /// True when serving throughput scales: served_rps at workers = 4 is
    /// at least served_rps at workers = 1 in the scaling table — the CI
    /// scaling gate (enforced with `KVM_BENCH_ENFORCE=1`; informative on
    /// boxes without enough cores to scale).
    pub fn serving_scaling_ok(&self) -> bool {
        let rps = |w: usize| {
            self.serving.scaling.iter().find(|row| row.workers == w).map(|row| row.served_rps)
        };
        match (rps(1), rps(4)) {
            (Some(one), Some(four)) => four >= one,
            _ => false,
        }
    }

    /// True when catalog sharding scales serving capacity: served_rps
    /// at shards = 4 is at least served_rps at shards = 1 in the
    /// sharding table (both at 4 workers per shard) — the CI sharding
    /// gate (enforced with `KVM_BENCH_ENFORCE=1`; informative on boxes
    /// without enough cores to scale).
    pub fn sharding_scaling_ok(&self) -> bool {
        let rps = |s: usize| {
            self.sharding.rows.iter().find(|row| row.shards == s).map(|row| row.served_rps)
        };
        match (rps(1), rps(4)) {
            (Some(one), Some(four)) => four >= one,
            _ => false,
        }
    }

    /// True when the wire stack's overhead is bounded: the best
    /// socket-measured served_rps across the connection axis reaches at
    /// least 30% of the in-process served_rps at the same worker count —
    /// the CI `net-smoke` gate (enforced with `KVM_BENCH_ENFORCE=1`).
    /// Loopback framing + round-trips cost something; an order of
    /// magnitude means the front door, not the service, is the
    /// bottleneck.
    pub fn network_overhead_ok(&self) -> bool {
        let best = self.network.per_connection.iter().map(|row| row.served_rps).fold(0.0, f64::max);
        best >= 0.30 * self.network.inprocess_served_rps
    }

    /// True when an ingest burst did not stall readers: burst-phase p99
    /// read latency stays within 10× the quiet-phase p99 (with a 5 ms
    /// absolute floor so near-zero quiet latencies on fast boxes don't
    /// turn scheduler noise into failures) — the CI stall gate
    /// (enforced with `KVM_BENCH_ENFORCE=1`).
    pub fn streaming_stall_ok(&self) -> bool {
        let st = &self.streaming;
        st.burst_p99_us <= (10 * st.quiet_p99_us).max(5_000)
    }

    /// True when the kernel sweep holds every contract of the optimized
    /// kernel pass: bit-identical results, a warm scratch that never
    /// allocated, and an optimized DTW no slower than its scalar oracle
    /// — the CI kernel gate (enforced with `KVM_BENCH_ENFORCE=1`;
    /// informative on loaded boxes where timing noise can invert the
    /// speed comparison).
    pub fn kernels_ok(&self) -> bool {
        let k = &self.kernels;
        k.bit_identical && k.alloc_events_warm == 0 && k.dtw_opt_ns <= k.dtw_scalar_ns
    }

    /// True when the observability section's deterministic contracts
    /// hold: explain-flagged queries bit-identical with verbatim stat
    /// mirroring, a well-formed text exposition, and the full span
    /// taxonomy on the wire — the CI `obs-smoke` gate (enforced with
    /// `KVM_BENCH_ENFORCE=1`). The disabled-path overhead *bound* is
    /// `bench_report --compare`'s business (`KVM_OBS_OVERHEAD_MAX_PCT`),
    /// because it needs a committed baseline to diff against.
    pub fn observability_ok(&self) -> bool {
        let o = &self.observability;
        o.explain_bit_identical && o.exposition_ok && o.explain_spans >= 3
    }

    /// The report as a JSON value tree (the `serde_json` shim renders it;
    /// the real crate would too).
    pub fn to_value(&self) -> Value {
        let mut root = Map::new();
        let ins = |m: &mut Map, k: &str, v: Value| {
            m.insert(k.to_string(), v);
        };
        ins(&mut root, "schema", Value::from(self.schema.as_str()));
        let mut env = Map::new();
        ins(&mut env, "n", Value::from(self.env.n));
        ins(&mut env, "w", Value::from(self.env.w));
        ins(&mut env, "queries", Value::from(self.env.queries));
        ins(&mut env, "seed", Value::from(self.env.seed));
        ins(&mut env, "threads", Value::from(self.env.threads));
        ins(&mut env, "repeat", Value::from(self.env.repeat));
        ins(&mut env, "series", Value::from(self.env.series));
        ins(&mut env, "submitters", Value::from(self.env.submitters));
        ins(&mut env, "workers", Value::from(self.env.workers));
        ins(&mut env, "shards", Value::from(self.env.shards));
        ins(&mut root, "env", Value::Object(env));
        ins(&mut root, "threads_resolved", Value::from(self.threads_resolved));
        let workloads = self
            .workloads
            .iter()
            .map(|wl| {
                let mut row = Map::new();
                ins(&mut row, "backend", Value::from(wl.backend.as_str()));
                ins(&mut row, "name", Value::from(wl.name.as_str()));
                ins(&mut row, "m", Value::from(wl.m));
                ins(&mut row, "epsilon", Value::from(wl.epsilon));
                ins(&mut row, "queries", Value::from(wl.queries));
                ins(&mut row, "matches", Value::from(wl.matches));
                ins(&mut row, "candidates", Value::from(wl.candidates));
                ins(&mut row, "pruned_constraint", Value::from(wl.pruned_constraint));
                ins(&mut row, "pruned_lb_kim", Value::from(wl.pruned_lb_kim));
                ins(&mut row, "pruned_lb_keogh", Value::from(wl.pruned_lb_keogh));
                ins(
                    &mut row,
                    "full_distance_computations",
                    Value::from(wl.full_distance_computations),
                );
                ins(&mut row, "sequential_index_scans", Value::from(wl.sequential_index_scans));
                ins(&mut row, "batched_index_scans", Value::from(wl.batched_index_scans));
                ins(&mut row, "probe_cache_hits", Value::from(wl.probe_cache_hits));
                ins(&mut row, "sequential_ms", Value::from(wl.sequential_ms));
                ins(&mut row, "batched_ms", Value::from(wl.batched_ms));
                ins(&mut row, "speedup", Value::from(wl.speedup));
                Value::Object(row)
            })
            .collect();
        ins(&mut root, "workloads", Value::Array(workloads));

        let msr = &self.multi_series;
        let mut msm = Map::new();
        ins(&mut msm, "series", Value::from(msr.series));
        ins(&mut msm, "n_per_series", Value::from(msr.n_per_series));
        ins(&mut msm, "ingest_points", Value::from(msr.ingest_points));
        ins(&mut msm, "ingest_ms", Value::from(msr.ingest_ms));
        ins(&mut msm, "ingest_points_per_sec", Value::from(msr.ingest_points_per_sec));
        ins(&mut msm, "queries", Value::from(msr.queries));
        ins(&mut msm, "matches", Value::from(msr.matches));
        ins(&mut msm, "batch_ms", Value::from(msr.batch_ms));
        ins(&mut msm, "warm_batch_ms", Value::from(msr.warm_batch_ms));
        ins(&mut msm, "probes", Value::from(msr.probes));
        ins(&mut msm, "probe_cache_hits", Value::from(msr.probe_cache_hits));
        ins(&mut msm, "store_scans", Value::from(msr.store_scans));
        ins(&mut msm, "warm_probe_cache_hits", Value::from(msr.warm_probe_cache_hits));
        ins(&mut msm, "warm_store_scans", Value::from(msr.warm_store_scans));
        let series_rows = msr
            .per_series
            .iter()
            .map(|s| {
                let mut row = Map::new();
                ins(&mut row, "series", Value::from(s.series));
                ins(&mut row, "points", Value::from(s.points));
                ins(&mut row, "queries", Value::from(s.queries));
                ins(&mut row, "matches", Value::from(s.matches));
                ins(&mut row, "probe_ms", Value::from(s.probe_ms));
                ins(&mut row, "verify_ms", Value::from(s.verify_ms));
                ins(&mut row, "probes", Value::from(s.probes));
                ins(&mut row, "probe_cache_hits", Value::from(s.probe_cache_hits));
                ins(&mut row, "store_scans", Value::from(s.store_scans));
                Value::Object(row)
            })
            .collect();
        ins(&mut msm, "per_series", Value::Array(series_rows));
        ins(&mut root, "multi_series", Value::Object(msm));

        let sv = &self.serving;
        let mut svm = Map::new();
        ins(&mut svm, "series", Value::from(sv.series));
        ins(&mut svm, "submitters", Value::from(sv.submitters));
        ins(&mut svm, "workers", Value::from(sv.workers));
        ins(&mut svm, "queue_capacity", Value::from(sv.queue_capacity));
        ins(&mut svm, "max_batch", Value::from(sv.max_batch));
        ins(&mut svm, "offered_requests", Value::from(sv.offered_requests));
        ins(&mut svm, "served_requests", Value::from(sv.served_requests));
        ins(&mut svm, "topk_requests", Value::from(sv.topk_requests));
        ins(&mut svm, "rejected_requests", Value::from(sv.rejected_requests));
        ins(&mut svm, "expired_requests", Value::from(sv.expired_requests));
        ins(&mut svm, "expired_exec_requests", Value::from(sv.expired_exec_requests));
        ins(&mut svm, "batches", Value::from(sv.batches));
        ins(&mut svm, "avg_batch_occupancy", Value::from(sv.avg_batch_occupancy));
        ins(&mut svm, "max_batch_occupancy", Value::from(sv.max_batch_occupancy));
        ins(&mut svm, "wall_ms", Value::from(sv.wall_ms));
        ins(&mut svm, "offered_rps", Value::from(sv.offered_rps));
        ins(&mut svm, "served_rps", Value::from(sv.served_rps));
        ins(&mut svm, "latency_p50_us", Value::from(sv.latency_p50_us));
        ins(&mut svm, "latency_p95_us", Value::from(sv.latency_p95_us));
        ins(&mut svm, "latency_p99_us", Value::from(sv.latency_p99_us));
        ins(&mut svm, "latency_max_us", Value::from(sv.latency_max_us));
        let scaling_rows = sv
            .scaling
            .iter()
            .map(|row| {
                let mut r = Map::new();
                ins(&mut r, "workers", Value::from(row.workers));
                ins(&mut r, "offered_requests", Value::from(row.offered_requests));
                ins(&mut r, "served_requests", Value::from(row.served_requests));
                ins(&mut r, "wall_ms", Value::from(row.wall_ms));
                ins(&mut r, "served_rps", Value::from(row.served_rps));
                ins(&mut r, "latency_p50_us", Value::from(row.latency_p50_us));
                ins(&mut r, "latency_p95_us", Value::from(row.latency_p95_us));
                ins(&mut r, "latency_p99_us", Value::from(row.latency_p99_us));
                Value::Object(r)
            })
            .collect();
        ins(&mut svm, "scaling", Value::Array(scaling_rows));
        ins(&mut root, "serving", Value::Object(svm));

        let sh = &self.sharding;
        let mut shm = Map::new();
        ins(&mut shm, "series", Value::from(sh.series));
        ins(&mut shm, "n_per_series", Value::from(sh.n_per_series));
        ins(&mut shm, "submitters", Value::from(sh.submitters));
        ins(&mut shm, "workers", Value::from(sh.workers));
        ins(&mut shm, "queries", Value::from(sh.queries));
        ins(&mut shm, "bit_identical", Value::from(sh.bit_identical));
        let sharding_rows = sh
            .rows
            .iter()
            .map(|row| {
                let mut r = Map::new();
                ins(&mut r, "shards", Value::from(row.shards));
                ins(&mut r, "offered_requests", Value::from(row.offered_requests));
                ins(&mut r, "served_requests", Value::from(row.served_requests));
                ins(&mut r, "rejected_requests", Value::from(row.rejected_requests));
                ins(&mut r, "wall_ms", Value::from(row.wall_ms));
                ins(&mut r, "served_rps", Value::from(row.served_rps));
                ins(&mut r, "latency_p50_us", Value::from(row.latency_p50_us));
                ins(&mut r, "latency_p95_us", Value::from(row.latency_p95_us));
                ins(&mut r, "latency_p99_us", Value::from(row.latency_p99_us));
                Value::Object(r)
            })
            .collect();
        ins(&mut shm, "rows", Value::Array(sharding_rows));
        ins(&mut root, "sharding", Value::Object(shm));

        let nw = &self.network;
        let mut nwm = Map::new();
        ins(&mut nwm, "addr", Value::from(nw.addr.as_str()));
        ins(&mut nwm, "external_server", Value::from(nw.external_server));
        ins(&mut nwm, "workers", Value::from(nw.workers));
        ins(&mut nwm, "inprocess_served_rps", Value::from(nw.inprocess_served_rps));
        let conn_rows = nw
            .per_connection
            .iter()
            .map(|row| {
                let mut r = Map::new();
                ins(&mut r, "connections", Value::from(row.connections));
                ins(&mut r, "offered_requests", Value::from(row.offered_requests));
                ins(&mut r, "served_requests", Value::from(row.served_requests));
                ins(&mut r, "rejected_requests", Value::from(row.rejected_requests));
                ins(&mut r, "transport_errors", Value::from(row.transport_errors));
                ins(&mut r, "wall_ms", Value::from(row.wall_ms));
                ins(&mut r, "offered_rps", Value::from(row.offered_rps));
                ins(&mut r, "served_rps", Value::from(row.served_rps));
                ins(&mut r, "latency_p50_us", Value::from(row.latency_p50_us));
                ins(&mut r, "latency_p95_us", Value::from(row.latency_p95_us));
                ins(&mut r, "latency_p99_us", Value::from(row.latency_p99_us));
                ins(&mut r, "latency_max_us", Value::from(row.latency_max_us));
                Value::Object(r)
            })
            .collect();
        ins(&mut nwm, "per_connection", Value::Array(conn_rows));
        ins(&mut root, "network", Value::Object(nwm));

        let st = &self.streaming;
        let mut stm = Map::new();
        ins(&mut stm, "series", Value::from(st.series));
        ins(&mut stm, "queriers", Value::from(st.queriers));
        ins(&mut stm, "burst_points", Value::from(st.burst_points));
        ins(&mut stm, "ingest_ms", Value::from(st.ingest_ms));
        ins(&mut stm, "points_per_sec", Value::from(st.points_per_sec));
        ins(&mut stm, "quiet_queries", Value::from(st.quiet_queries));
        ins(&mut stm, "burst_queries", Value::from(st.burst_queries));
        ins(&mut stm, "quiet_p95_us", Value::from(st.quiet_p95_us));
        ins(&mut stm, "quiet_p99_us", Value::from(st.quiet_p99_us));
        ins(&mut stm, "burst_p95_us", Value::from(st.burst_p95_us));
        ins(&mut stm, "burst_p99_us", Value::from(st.burst_p99_us));
        ins(&mut stm, "stall_ratio", Value::from(st.stall_ratio));
        ins(&mut stm, "runs_sealed", Value::from(st.runs_sealed));
        ins(&mut stm, "delta_runs_sealed", Value::from(st.delta_runs_sealed));
        ins(&mut stm, "compactions", Value::from(st.compactions));
        ins(&mut stm, "generations_retired", Value::from(st.generations_retired));
        ins(&mut stm, "materialize_failures", Value::from(st.materialize_failures));
        ins(&mut root, "streaming", Value::Object(stm));

        let k = &self.kernels;
        let mut km = Map::new();
        ins(&mut km, "m", Value::from(k.m));
        ins(&mut km, "rho", Value::from(k.rho));
        ins(&mut km, "candidates", Value::from(k.candidates));
        ins(&mut km, "dtw_scalar_ns", Value::from(k.dtw_scalar_ns));
        ins(&mut km, "dtw_opt_ns", Value::from(k.dtw_opt_ns));
        ins(&mut km, "dtw_speedup", Value::from(k.dtw_speedup));
        ins(&mut km, "ed_scalar_ns", Value::from(k.ed_scalar_ns));
        ins(&mut km, "ed_opt_ns", Value::from(k.ed_opt_ns));
        ins(&mut km, "lb_keogh_scalar_ns", Value::from(k.lb_keogh_scalar_ns));
        ins(&mut km, "lb_keogh_opt_ns", Value::from(k.lb_keogh_opt_ns));
        ins(&mut km, "envelope_ns", Value::from(k.envelope_ns));
        ins(&mut km, "alloc_events_warm", Value::from(k.alloc_events_warm));
        ins(&mut km, "adaptive_skipped_lb_kim", Value::from(k.adaptive_skipped_lb_kim));
        ins(&mut km, "adaptive_skipped_lb_keogh", Value::from(k.adaptive_skipped_lb_keogh));
        ins(&mut km, "bit_identical", Value::from(k.bit_identical));
        ins(&mut root, "kernels", Value::Object(km));

        let o = &self.observability;
        let mut om = Map::new();
        ins(&mut om, "disabled_overhead_pct", Value::from(o.disabled_overhead_pct));
        ins(&mut om, "explain_bit_identical", Value::from(o.explain_bit_identical));
        ins(&mut om, "exposition_ok", Value::from(o.exposition_ok));
        ins(&mut om, "slowlog_depth", Value::from(o.slowlog_depth));
        ins(&mut om, "explain_spans", Value::from(o.explain_spans));
        ins(&mut root, "observability", Value::Object(om));

        ins(&mut root, "total_sequential_ms", Value::from(self.total_sequential_ms));
        ins(&mut root, "total_batched_ms", Value::from(self.total_batched_ms));
        ins(&mut root, "overall_speedup", Value::from(self.overall_speedup));
        Value::Object(root)
    }
}

/// One workload's wall-time delta against the committed baseline.
#[derive(Clone, Debug)]
pub struct WorkloadDelta {
    /// Storage backend of the row.
    pub backend: String,
    /// Workload name.
    pub name: String,
    /// Baseline batched wall milliseconds.
    pub baseline_ms: f64,
    /// This run's batched wall milliseconds.
    pub current_ms: f64,
    /// `(current - baseline) / baseline`, percent (negative = faster).
    pub delta_pct: f64,
}

impl WorkloadDelta {
    /// Whether this row breaches `threshold_pct`.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.delta_pct > threshold_pct
    }
}

/// One kernel timing's delta against the committed baseline. Kernel
/// deltas are informational — ns/candidate at smoke scale is too noisy
/// to gate a PR on — so they never count as regressions; the speed
/// *contract* (optimized DTW no slower than scalar) is
/// [`BenchReport::kernels_ok`]'s business.
#[derive(Clone, Debug)]
pub struct KernelDelta {
    /// Kernel metric name (a `KERNEL_FIELDS` timing entry).
    pub name: String,
    /// Baseline ns/candidate.
    pub baseline_ns: f64,
    /// This run's ns/candidate.
    pub current_ns: f64,
    /// `(current - baseline) / baseline`, percent (negative = faster).
    pub delta_pct: f64,
}

/// Kernel metrics `--compare` diffs when the baseline carries a
/// `kernels` section (v7 or later).
pub const KERNEL_DELTA_METRICS: &[&str] = &[
    "dtw_scalar_ns",
    "dtw_opt_ns",
    "ed_scalar_ns",
    "ed_opt_ns",
    "lb_keogh_scalar_ns",
    "lb_keogh_opt_ns",
    "envelope_ns",
];

/// The baseline comparison `bench_report --compare` produces: per-matched
/// workload wall-time deltas plus the total, written to
/// `BENCH_delta.json` and gated at a regression threshold.
#[derive(Clone, Debug)]
pub struct BaselineComparison {
    /// Rows matched by `(backend, name)` between baseline and current.
    pub rows: Vec<WorkloadDelta>,
    /// Per-kernel ns/candidate deltas — informational, never regressions.
    /// Empty when the baseline predates the v7 `kernels` section.
    pub kernel_rows: Vec<KernelDelta>,
    /// Current workloads with no baseline row (new since the trajectory
    /// point was committed — informational, never a regression).
    pub unmatched: Vec<String>,
    /// Scale knobs that differ between the baseline's env and this
    /// run's (e.g. the CI smoke workload vs a full-scale trajectory
    /// point). Non-empty means the deltas mix workload-size effects
    /// with real perf movement — read them as a loose upper bound, not
    /// a measurement.
    pub env_mismatch: Vec<String>,
    /// Baseline `total_batched_ms`.
    pub total_baseline_ms: f64,
    /// Current `total_batched_ms`.
    pub total_current_ms: f64,
    /// Total wall-time delta, percent.
    pub total_delta_pct: f64,
    /// The regression threshold the comparison gates at, percent.
    pub threshold_pct: f64,
}

impl BaselineComparison {
    /// Rows (plus the total) breaching the threshold.
    pub fn regressions(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .rows
            .iter()
            .filter(|row| row.regressed(self.threshold_pct))
            .map(|row| {
                format!(
                    "{}/{}: {:.1} ms -> {:.1} ms (+{:.1}%)",
                    row.backend, row.name, row.baseline_ms, row.current_ms, row.delta_pct
                )
            })
            .collect();
        if self.total_delta_pct > self.threshold_pct {
            out.push(format!(
                "total: {:.1} ms -> {:.1} ms (+{:.1}%)",
                self.total_baseline_ms, self.total_current_ms, self.total_delta_pct
            ));
        }
        out
    }

    /// The delta report as a JSON tree (`kvmatch-bench-delta/v2`; v2
    /// added the informational `kernel_rows` array).
    pub fn to_value(&self, baseline_path: &str) -> Value {
        let mut root = Map::new();
        root.insert("schema".into(), Value::from("kvmatch-bench-delta/v2"));
        root.insert("baseline".into(), Value::from(baseline_path));
        root.insert("threshold_pct".into(), Value::from(self.threshold_pct));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut r = Map::new();
                r.insert("backend".into(), Value::from(row.backend.as_str()));
                r.insert("name".into(), Value::from(row.name.as_str()));
                r.insert("baseline_ms".into(), Value::from(row.baseline_ms));
                r.insert("current_ms".into(), Value::from(row.current_ms));
                r.insert("delta_pct".into(), Value::from(row.delta_pct));
                r.insert("regressed".into(), Value::from(row.regressed(self.threshold_pct)));
                Value::Object(r)
            })
            .collect();
        root.insert("rows".into(), Value::Array(rows));
        let kernel_rows = self
            .kernel_rows
            .iter()
            .map(|row| {
                let mut r = Map::new();
                r.insert("name".into(), Value::from(row.name.as_str()));
                r.insert("baseline_ns".into(), Value::from(row.baseline_ns));
                r.insert("current_ns".into(), Value::from(row.current_ns));
                r.insert("delta_pct".into(), Value::from(row.delta_pct));
                Value::Object(r)
            })
            .collect();
        root.insert("kernel_rows".into(), Value::Array(kernel_rows));
        root.insert(
            "unmatched".into(),
            Value::Array(self.unmatched.iter().map(|s| Value::from(s.as_str())).collect()),
        );
        root.insert(
            "env_mismatch".into(),
            Value::Array(self.env_mismatch.iter().map(|s| Value::from(s.as_str())).collect()),
        );
        root.insert("total_baseline_ms".into(), Value::from(self.total_baseline_ms));
        root.insert("total_current_ms".into(), Value::from(self.total_current_ms));
        root.insert("total_delta_pct".into(), Value::from(self.total_delta_pct));
        root.insert("regressions".into(), Value::from(self.regressions().len()));
        Value::Object(root)
    }
}

fn pct_delta(baseline: f64, current: f64) -> f64 {
    (current - baseline) / baseline.max(1e-9) * 100.0
}

/// Compares this run's per-workload batched wall times against a
/// baseline `BENCH_exec.json` tree (v3 or later — only
/// `workloads[].{backend,name,batched_ms}` and `total_batched_ms` are
/// read, so older trajectory points stay comparable).
pub fn compare_to_baseline(
    current: &BenchReport,
    baseline: &Value,
    threshold_pct: f64,
) -> Result<BaselineComparison, String> {
    let Value::Object(root) = baseline else {
        return Err("baseline report is not a JSON object".into());
    };
    let Some(Value::Array(rows)) = root.get("workloads") else {
        return Err("baseline report has no `workloads` array".into());
    };
    let mut baseline_ms: Vec<(String, String, f64)> = Vec::new();
    for row in rows {
        let Value::Object(m) = row else {
            return Err("baseline workload row is not an object".into());
        };
        match (m.get("backend"), m.get("name"), m.get("batched_ms")) {
            (Some(Value::String(backend)), Some(Value::String(name)), Some(Value::Number(ms))) => {
                baseline_ms.push((backend.clone(), name.clone(), *ms))
            }
            _ => return Err("baseline workload row lacks backend/name/batched_ms".into()),
        }
    }
    let Some(Value::Number(total_baseline_ms)) = root.get("total_batched_ms") else {
        return Err("baseline report has no `total_batched_ms`".into());
    };

    // Scale knobs that change per-workload wall time: when the baseline
    // ran at a different scale (committed full-size trajectory point vs
    // the CI smoke workload), flag every difference so the deltas are
    // read as cross-configuration, not same-workload, movement.
    let mut env_mismatch = Vec::new();
    if let Some(Value::Object(benv)) = root.get("env") {
        let current = [
            ("n", current.env.n as f64),
            ("w", current.env.w as f64),
            ("queries", current.env.queries as f64),
            ("seed", current.env.seed as f64),
            ("repeat", current.env.repeat as f64),
        ];
        for (key, cur) in current {
            if let Some(Value::Number(base)) = benv.get(key) {
                if *base != cur {
                    env_mismatch.push(format!("{key}: baseline {base} vs current {cur}"));
                }
            }
        }
    }

    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for wl in &current.workloads {
        match baseline_ms.iter().find(|(b, n, _)| *b == wl.backend && *n == wl.name) {
            Some((_, _, base)) => deltas.push(WorkloadDelta {
                backend: wl.backend.clone(),
                name: wl.name.clone(),
                baseline_ms: *base,
                current_ms: wl.batched_ms,
                delta_pct: pct_delta(*base, wl.batched_ms),
            }),
            None => unmatched.push(format!("{}/{}", wl.backend, wl.name)),
        }
    }
    if deltas.is_empty() {
        return Err("no workload of this run matches the baseline".into());
    }

    // Kernel timings: diffed when the baseline carries the v7 `kernels`
    // section; older trajectory points simply produce no kernel rows.
    let metric = |k: &KernelReport, name: &str| -> f64 {
        match name {
            "dtw_scalar_ns" => k.dtw_scalar_ns,
            "dtw_opt_ns" => k.dtw_opt_ns,
            "ed_scalar_ns" => k.ed_scalar_ns,
            "ed_opt_ns" => k.ed_opt_ns,
            "lb_keogh_scalar_ns" => k.lb_keogh_scalar_ns,
            "lb_keogh_opt_ns" => k.lb_keogh_opt_ns,
            "envelope_ns" => k.envelope_ns,
            other => unreachable!("unknown kernel metric {other}"),
        }
    };
    let mut kernel_rows = Vec::new();
    if let Some(Value::Object(bk)) = root.get("kernels") {
        for name in KERNEL_DELTA_METRICS {
            if let Some(Value::Number(base)) = bk.get(name) {
                let cur = metric(&current.kernels, name);
                kernel_rows.push(KernelDelta {
                    name: (*name).to_string(),
                    baseline_ns: *base,
                    current_ns: cur,
                    delta_pct: pct_delta(*base, cur),
                });
            }
        }
    }

    Ok(BaselineComparison {
        rows: deltas,
        kernel_rows,
        unmatched,
        env_mismatch,
        total_baseline_ms: *total_baseline_ms,
        total_current_ms: current.total_batched_ms,
        total_delta_pct: pct_delta(*total_baseline_ms, current.total_batched_ms),
        threshold_pct,
    })
}

/// The fixed workload set over `xs`: every query type, verification-heavy
/// ε, a distinct query seed per workload.
fn workload_specs(xs: &[f64], env: &ReportEnv) -> Vec<(String, usize, f64, Vec<QuerySpec>)> {
    let mut out = Vec::new();
    let mut mk = |name: &str, m: usize, eps: f64, f: &dyn Fn(Vec<f64>) -> QuerySpec| {
        let seed = env.seed ^ (out.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let queries = sample_queries(xs, m, env.queries, 0.05, seed);
        out.push((name.to_string(), m, eps, queries.into_iter().map(f).collect::<Vec<_>>()));
    };
    mk("rsm_ed", 256, 20.0, &|q| QuerySpec::rsm_ed(q, 20.0));
    mk("rsm_dtw", 192, 10.0, &|q| QuerySpec::rsm_dtw(q, 10.0, 8));
    mk("cnsm_ed", 256, 3.0, &|q| QuerySpec::cnsm_ed(q, 3.0, 1.5, 5.0));
    mk("cnsm_dtw", 160, 2.5, &|q| QuerySpec::cnsm_dtw(q, 2.5, 5, 1.5, 5.0));
    out
}

fn sum_stats(stats: &[MatchStats]) -> (u64, u64, u64, u64, u64, u64, u64) {
    let mut t = (0, 0, 0, 0, 0, 0, 0);
    for s in stats {
        t.0 += s.matches;
        t.1 += s.candidates;
        t.2 += s.pruned_constraint;
        t.3 += s.pruned_lb_kim;
        t.4 += s.pruned_lb_keogh;
        t.5 += s.full_distance_computations;
        t.6 += s.index_accesses;
    }
    t
}

/// Runs every workload over one backend's (index, data) pair, comparing
/// sequential and batched execution.
///
/// # Panics
/// Panics when batched and sequential results ever disagree — the report
/// must never publish numbers for diverging executions.
fn run_backend_workloads<S, D>(
    backend: &str,
    index: &KvIndex<S>,
    data: &D,
    specs_by_workload: &[(String, usize, f64, Vec<QuerySpec>)],
    env: &ReportEnv,
    threads_resolved: &mut usize,
) -> (Vec<WorkloadReport>, f64, f64)
where
    S: KvStore,
    D: SeriesStore + Sync,
{
    let matcher = KvMatcher::new(index, data).expect("matcher binds");
    let mut workloads = Vec::new();
    let mut total_seq = 0.0;
    let mut total_batch = 0.0;
    for (name, m, epsilon, specs) in specs_by_workload {
        let mut best_seq = f64::INFINITY;
        let mut best_batch = f64::INFINITY;
        let mut seq_out: Vec<(Vec<MatchResult>, MatchStats)> = Vec::new();
        let mut batch_out = None;
        for _ in 0..env.repeat {
            // Sequential: one matcher call per query, no sharing.
            let t = Instant::now();
            let out: Vec<_> =
                specs.iter().map(|s| matcher.execute(s).expect("sequential query")).collect();
            best_seq = best_seq.min(t.elapsed().as_secs_f64() * 1e3);
            seq_out = out;

            // Batched: fresh executor per repetition so each timing pays
            // its own cache warm-up, exactly like the sequential run.
            let exec = QueryExecutor::with_config(
                index,
                data,
                ExecutorConfig { threads: env.threads, ..ExecutorConfig::default() },
            )
            .expect("executor binds");
            *threads_resolved = exec.threads();
            let t = Instant::now();
            let batch = exec.execute_batch(specs).expect("batched query");
            best_batch = best_batch.min(t.elapsed().as_secs_f64() * 1e3);
            batch_out = Some(batch);
        }
        let batch = batch_out.expect("repeat ≥ 1");

        // The report is only valid if both executions agree exactly.
        for (i, ((seq_res, _), out)) in seq_out.iter().zip(&batch.outputs).enumerate() {
            assert_eq!(
                seq_res, &out.results,
                "{backend}/{name} query {i}: batched diverged from sequential"
            );
        }

        let seq_stats: Vec<MatchStats> = seq_out.iter().map(|(_, s)| *s).collect();
        let batch_stats: Vec<MatchStats> = batch.outputs.iter().map(|o| o.stats).collect();
        let (matches, candidates, p_con, p_kim, p_keogh, full, seq_scans) = sum_stats(&seq_stats);
        let (_, _, _, _, _, _, batch_scans) = sum_stats(&batch_stats);
        total_seq += best_seq;
        total_batch += best_batch;
        workloads.push(WorkloadReport {
            backend: backend.to_string(),
            name: name.clone(),
            m: *m,
            epsilon: *epsilon,
            queries: specs.len(),
            matches,
            candidates,
            pruned_constraint: p_con,
            pruned_lb_kim: p_kim,
            pruned_lb_keogh: p_keogh,
            full_distance_computations: full,
            sequential_index_scans: seq_scans,
            batched_index_scans: batch_scans,
            probe_cache_hits: batch.stats.probe_cache_hits,
            sequential_ms: best_seq,
            batched_ms: best_batch,
            speedup: best_seq / best_batch.max(1e-9),
        });
    }
    (workloads, total_seq, total_batch)
}

/// The multi-series ingest+query workload over a memory-backed
/// [`Catalog`]: streaming ingestion, one mixed cold batch, one warm
/// repeat, per-query validation against dedicated single-series matchers.
///
/// # Panics
/// Panics when any catalog answer diverges from its dedicated matcher.
fn run_multi_series(env: &ReportEnv) -> MultiSeriesReport {
    let n_per_series = (env.n / env.series).max(env.w * 20);
    let ids: Vec<SeriesId> = (0..env.series).map(|i| SeriesId::new(i as u64 + 1)).collect();
    let data: Vec<Vec<f64>> = (0..env.series)
        .map(|i| make_series(n_per_series, env.seed.wrapping_add(7_919 * (i as u64 + 1))))
        .collect();

    // Streaming ingestion through the append path, in bursty chunks.
    let mut cat = Catalog::with_exec_config(
        MemoryCatalogBackend,
        ExecutorConfig { threads: env.threads, ..ExecutorConfig::default() },
    );
    for id in &ids {
        cat.create_series(*id, IndexBuildConfig::new(env.w)).unwrap();
    }
    let t_ingest = Instant::now();
    for (id, xs) in ids.iter().zip(&data) {
        for chunk in xs.chunks(4_096) {
            cat.append(*id, chunk).expect("append");
        }
    }
    cat.materialize().expect("materialize");
    let ingest_ms = t_ingest.elapsed().as_secs_f64() * 1e3;
    let ingest_points = cat.stats().points_ingested;

    // One mixed batch: every series contributes `queries` specs of
    // alternating types, interleaved so no series' queries are adjacent.
    let m = 192.min(n_per_series / 2);
    let mut per_series_specs: Vec<Vec<QuerySpec>> = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&data).enumerate() {
        let qs = sample_queries(xs, m, env.queries, 0.05, env.seed ^ (0xC0FFEE + i as u64));
        per_series_specs.push(
            qs.into_iter()
                .enumerate()
                .map(|(k, q)| {
                    if k % 2 == 0 {
                        QuerySpec::rsm_ed(q, 12.0).with_series(*id)
                    } else {
                        QuerySpec::cnsm_ed(q, 3.0, 1.5, 5.0).with_series(*id)
                    }
                })
                .collect(),
        );
    }
    let specs: Vec<QuerySpec> = (0..env.queries)
        .flat_map(|k| per_series_specs.iter().filter_map(move |qs| qs.get(k).cloned()))
        .collect();

    let t_cold = Instant::now();
    let cold = cat.execute_batch(&specs).expect("cold mixed batch");
    let batch_ms = t_cold.elapsed().as_secs_f64() * 1e3;
    let t_warm = Instant::now();
    let warm = cat.execute_batch(&specs).expect("warm mixed batch");
    let warm_batch_ms = t_warm.elapsed().as_secs_f64() * 1e3;

    // Validation: the catalog's answers must be bit-identical to a
    // dedicated single-series pipeline (appender-built index, same data).
    for (i, (id, xs)) in ids.iter().zip(&data).enumerate() {
        let mut app = IndexAppender::new(IndexBuildConfig::new(env.w));
        app.push_chunk(xs);
        let (solo, _) = app.finish_into(MemoryKvStoreBuilder::new()).expect("solo index");
        let store = MemorySeriesStore::new(xs.clone());
        let matcher = KvMatcher::new(&solo, &store).expect("solo matcher");
        for (spec, out) in specs.iter().zip(&cold.outputs) {
            if spec.series != *id {
                continue;
            }
            let (want, _) = matcher.execute(spec).expect("solo query");
            assert_eq!(
                out.results, want,
                "multi-series workload: series {i} diverged from its dedicated matcher"
            );
        }
    }
    for (a, b) in cold.outputs.iter().zip(&warm.outputs) {
        assert_eq!(a.results, b.results, "warm batch diverged from cold batch");
    }

    let per_series = cold
        .per_series
        .iter()
        .map(|s| SeriesReport {
            series: s.series.raw(),
            points: cat.series_len(s.series).unwrap_or(0) as u64,
            queries: s.queries,
            matches: s.matches,
            probe_ms: s.probe_nanos as f64 / 1e6,
            verify_ms: s.verify_nanos as f64 / 1e6,
            probes: s.probes,
            probe_cache_hits: s.probe_cache_hits,
            store_scans: s.store_scans,
        })
        .collect();

    MultiSeriesReport {
        series: env.series,
        n_per_series,
        ingest_points,
        ingest_ms,
        ingest_points_per_sec: ingest_points as f64 / (ingest_ms / 1e3).max(1e-9),
        queries: specs.len(),
        matches: cold.outputs.iter().map(|o| o.stats.matches).sum(),
        batch_ms,
        warm_batch_ms,
        probes: cold.stats.probes,
        probe_cache_hits: cold.stats.probe_cache_hits,
        store_scans: cold.stats.store_scans,
        warm_probe_cache_hits: warm.stats.probe_cache_hits,
        warm_store_scans: warm.stats.store_scans,
        per_series,
    }
}

/// The shared material of every serving run: series data, the request
/// pool, and per-entry ground truth from a dedicated sequential matcher.
pub(crate) struct ServingFixture {
    pub(crate) ids: Vec<SeriesId>,
    pub(crate) data: Vec<Vec<f64>>,
    pub(crate) pool: Vec<kvmatch_serve::QueryRequest>,
    pub(crate) expected: Vec<Vec<MatchResult>>,
    pub(crate) topk_in_pool: u64,
    /// Each submitter cycles the pool this many times per run.
    pub(crate) rounds: usize,
}

pub(crate) fn serving_fixture(env: &ReportEnv) -> ServingFixture {
    use kvmatch_serve::QueryRequest;

    let n_per_series = (env.n / env.series).max(env.w * 20).min(20_000);
    let ids: Vec<SeriesId> = (0..env.series).map(|i| SeriesId::new(i as u64 + 1)).collect();
    let data: Vec<Vec<f64>> = (0..env.series)
        .map(|i| make_series(n_per_series, env.seed.wrapping_add(104_729 * (i as u64 + 1))))
        .collect();

    // The request pool: per series, alternating range / top-k queries.
    let m = 192.min(n_per_series / 2);
    let mut pool: Vec<QueryRequest> = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&data).enumerate() {
        let qs = sample_queries(xs, m, env.queries, 0.05, env.seed ^ (0x5E47E_u64 + i as u64));
        for (k, q) in qs.into_iter().enumerate() {
            let spec = QuerySpec::rsm_ed(q, 12.0).with_series(*id);
            pool.push(if k % 2 == 0 {
                QueryRequest::range(spec)
            } else {
                QueryRequest::top_k(spec, 1 + k % 7)
            });
        }
    }
    let topk_in_pool = pool.iter().filter(|r| r.spec.limit.is_some()).count() as u64;

    // Ground truth per pool entry (appender-built layout, like the
    // catalog's).
    let expected: Vec<Vec<MatchResult>> = pool
        .iter()
        .map(|req| {
            let i = ids.iter().position(|id| *id == req.spec.series).unwrap();
            let mut app = IndexAppender::new(IndexBuildConfig::new(env.w));
            app.push_chunk(&data[i]);
            let (solo, _) = app.finish_into(MemoryKvStoreBuilder::new()).expect("solo index");
            let store = MemorySeriesStore::new(data[i].clone());
            let (want, _) =
                KvMatcher::new(&solo, &store).expect("solo matcher").execute(&req.spec).unwrap();
            want
        })
        .collect();

    ServingFixture { ids, data, pool, expected, topk_in_pool, rounds: 3 }
}

/// One full serving run: a fresh catalog + service at the given worker
/// and verification-thread counts, `env.submitters` submitter threads
/// cycling the pool, every response validated bit-identically.
struct ServingDrive {
    metrics: kvmatch_serve::MetricsSnapshot,
    wall_ms: f64,
    offered: u64,
    queue_capacity: usize,
    max_batch: usize,
}

/// # Panics
/// Panics when any served response diverges from its dedicated
/// sequential matcher — serving numbers are only publishable for correct
/// answers.
fn drive_serving(
    env: &ReportEnv,
    fx: &ServingFixture,
    workers: usize,
    threads: usize,
) -> ServingDrive {
    use kvmatch_serve::{QueryService, Submit};

    let mut catalog = Catalog::with_exec_config(
        MemoryCatalogBackend,
        ExecutorConfig { threads, ..ExecutorConfig::default() },
    );
    for (id, xs) in fx.ids.iter().zip(&fx.data) {
        catalog.create_series(*id, IndexBuildConfig::new(env.w)).unwrap();
        catalog.append(*id, xs).unwrap();
    }
    catalog.materialize().expect("materialize");

    let queue_capacity = (env.submitters * 2).max(16);
    let max_batch = 16;
    let service = QueryService::builder(catalog)
        .shards(env.shards)
        .workers(workers)
        .queue_capacity(queue_capacity)
        .max_batch(max_batch)
        .max_batch_delay(std::time::Duration::from_millis(1))
        .build()
        .expect("serving topology is valid by construction");
    let per_thread = fx.pool.len() * fx.rounds;

    let t_serve = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..env.submitters {
            let service = &service;
            let pool = &fx.pool;
            let expected = &fx.expected;
            scope.spawn(move || {
                for r in 0..per_thread {
                    let which = (t * 11 + r) % pool.len();
                    let mut request = pool[which].clone();
                    // Non-blocking first (counts backpressure), then
                    // bounded-wait retries until admitted.
                    let handle = loop {
                        match service.submit(request) {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(back) => request = back.request,
                        }
                        match service.submit_timeout(request, std::time::Duration::from_millis(20))
                        {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(back) => request = back.request,
                        }
                    };
                    let response = handle.wait().expect("admitted request served");
                    assert_eq!(
                        response.results, expected[which],
                        "serving workload (workers={workers}): response diverged from the \
                         sequential matcher"
                    );
                }
            });
        }
    });
    let wall_ms = t_serve.elapsed().as_secs_f64() * 1e3;
    let metrics = service.metrics();
    service.shutdown();

    let offered = (env.submitters * per_thread) as u64;
    assert_eq!(metrics.completed, offered, "every offered request must be served");
    ServingDrive { metrics, wall_ms, offered, queue_capacity, max_batch }
}

/// The serving workload: `env.submitters` threads drive a mixed range +
/// top-k request stream over an `env.series`-series catalog through a
/// [`QueryService`](kvmatch_serve::QueryService) with a deliberately
/// small admission queue, so the report captures backpressure behaviour
/// alongside throughput and latency percentiles. The headline run uses
/// `env.workers` dispatch workers; the scaling table then reruns the
/// identical workload at workers = 1, 2, 4 (single-thread verification
/// per worker, best of `env.repeat`), so the report shows — and CI can
/// gate on — how served throughput scales with the pool. Every run
/// validates every response bit-identically, so the scaling rows double
/// as a cross-worker-count equivalence proof.
fn run_serving(env: &ReportEnv, fx: &ServingFixture) -> ServingReport {
    let head = drive_serving(env, fx, env.workers.max(1), env.threads);
    let scaling = SCALING_WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let mut best: Option<ServingScalingRow> = None;
            for _ in 0..env.repeat {
                let run = drive_serving(env, fx, workers, 1);
                let row = ServingScalingRow {
                    workers,
                    offered_requests: run.offered,
                    served_requests: run.metrics.completed,
                    wall_ms: run.wall_ms,
                    served_rps: run.metrics.completed as f64 / (run.wall_ms / 1e3).max(1e-9),
                    latency_p50_us: run.metrics.latency_p50_us,
                    latency_p95_us: run.metrics.latency_p95_us,
                    latency_p99_us: run.metrics.latency_p99_us,
                };
                if best.as_ref().is_none_or(|b| row.served_rps > b.served_rps) {
                    best = Some(row);
                }
            }
            best.expect("repeat ≥ 1")
        })
        .collect();

    let metrics = head.metrics;
    ServingReport {
        series: env.series,
        submitters: env.submitters,
        workers: env.workers.max(1),
        queue_capacity: head.queue_capacity,
        max_batch: head.max_batch,
        offered_requests: head.offered,
        served_requests: metrics.completed,
        // Each submitter cycles the whole pool `rounds` times.
        topk_requests: fx.topk_in_pool * fx.rounds as u64 * env.submitters as u64,
        rejected_requests: metrics.rejected,
        expired_requests: metrics.expired,
        expired_exec_requests: metrics.expired_exec,
        batches: metrics.batches,
        avg_batch_occupancy: metrics.avg_batch_occupancy,
        max_batch_occupancy: metrics.max_batch_occupancy,
        wall_ms: head.wall_ms,
        offered_rps: head.offered as f64 / (head.wall_ms / 1e3).max(1e-9),
        served_rps: metrics.completed as f64 / (head.wall_ms / 1e3).max(1e-9),
        latency_p50_us: metrics.latency_p50_us,
        latency_p95_us: metrics.latency_p95_us,
        latency_p99_us: metrics.latency_p99_us,
        latency_max_us: metrics.latency_max_us,
        scaling,
    }
}

/// The wide-keyspace fixture the sharding table runs over: hundreds of
/// short series (so 4 shards each own a meaningful slice of the
/// keyspace), a mixed range + top-k pool sampling every 16th series,
/// and solo-matcher ground truth per pool entry.
struct ShardingFixture {
    ids: Vec<SeriesId>,
    data: Vec<Vec<f64>>,
    pool: Vec<kvmatch_serve::QueryRequest>,
    expected: Vec<Vec<MatchResult>>,
}

fn sharding_fixture(env: &ReportEnv) -> ShardingFixture {
    use kvmatch_serve::QueryRequest;

    let series_count = (env.series * 64).clamp(128, 256);
    let n_per_series = (env.n / series_count).max(env.w * 4);
    let ids: Vec<SeriesId> = (0..series_count).map(|i| SeriesId::new(i as u64 + 1)).collect();
    let data: Vec<Vec<f64>> = (0..series_count)
        .map(|i| make_series(n_per_series, env.seed.wrapping_add(7_919 * (i as u64 + 1))))
        .collect();

    let m = (env.w * 2).min(n_per_series / 2);
    let mut pool: Vec<QueryRequest> = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&data).enumerate().step_by(16) {
        let q = sample_queries(xs, m, 1, 0.05, env.seed ^ (0xA11CE_u64 + i as u64))
            .pop()
            .expect("one query per sampled series");
        let spec = QuerySpec::rsm_ed(q, 10.0).with_series(*id);
        pool.push(if (i / 16) % 2 == 0 {
            QueryRequest::range(spec)
        } else {
            QueryRequest::top_k(spec, 3)
        });
    }

    let expected: Vec<Vec<MatchResult>> = pool
        .iter()
        .map(|req| {
            let i = ids.iter().position(|id| *id == req.spec.series).unwrap();
            let mut app = IndexAppender::new(IndexBuildConfig::new(env.w));
            app.push_chunk(&data[i]);
            let (solo, _) = app.finish_into(MemoryKvStoreBuilder::new()).expect("solo index");
            let store = MemorySeriesStore::new(data[i].clone());
            let (want, _) =
                KvMatcher::new(&solo, &store).expect("solo matcher").execute(&req.spec).unwrap();
            want
        })
        .collect();

    ShardingFixture { ids, data, pool, expected }
}

/// One sharding run: a fresh catalog split into `shards`, 4 workers per
/// shard, single-thread verification, submitters cycling the pool with
/// bounded-wait retries past backpressure. Returns the offered count,
/// wall time and the service's final metrics snapshot.
///
/// # Panics
/// Panics when any served response diverges from its solo matcher.
fn drive_sharding(
    env: &ReportEnv,
    fx: &ShardingFixture,
    shards: usize,
    submitters: usize,
    rounds: usize,
) -> (kvmatch_serve::MetricsSnapshot, f64, u64) {
    use kvmatch_serve::{QueryService, Submit};

    let mut catalog = Catalog::with_exec_config(
        MemoryCatalogBackend,
        ExecutorConfig { threads: 1, ..ExecutorConfig::default() },
    );
    for (id, xs) in fx.ids.iter().zip(&fx.data) {
        catalog.create_series(*id, IndexBuildConfig::new(env.w)).unwrap();
        catalog.append(*id, xs).unwrap();
    }
    catalog.materialize().expect("materialize sharding catalog");

    let service = QueryService::builder(catalog)
        .shards(shards)
        .workers(4)
        .queue_capacity((submitters * 2).max(16))
        .max_batch(16)
        .max_batch_delay(std::time::Duration::from_millis(1))
        .build()
        .expect("sharding topology is valid by construction");

    let per_thread = fx.pool.len() * rounds;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..submitters {
            let service = &service;
            let pool = &fx.pool;
            let expected = &fx.expected;
            scope.spawn(move || {
                for r in 0..per_thread {
                    let which = (t * 13 + r) % pool.len();
                    let mut request = pool[which].clone();
                    let handle = loop {
                        match service.submit(request) {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(back) => request = back.request,
                        }
                        match service.submit_timeout(request, std::time::Duration::from_millis(20))
                        {
                            Submit::Accepted(h) => break h,
                            Submit::Rejected(back) => request = back.request,
                        }
                    };
                    let response = handle.wait().expect("admitted request served");
                    assert_eq!(
                        response.results, expected[which],
                        "sharding workload (shards={shards}): response diverged from the \
                         sequential matcher"
                    );
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let metrics = service.metrics();
    service.shutdown();

    let offered = (submitters * per_thread) as u64;
    assert_eq!(metrics.completed, offered, "every offered request must be served");
    (metrics, wall_ms, offered)
}

/// The sharding scale-out workload: the wide-keyspace fixture served
/// through every shard count in [`SHARDING_SHARD_COUNTS`] (4 workers
/// per shard, best of `env.repeat`, at least 8 submitters). Every run
/// validates every response bit-identically against a dedicated
/// sequential matcher, so the table doubles as a cross-shard-count
/// equivalence proof — and [`BenchReport::sharding_scaling_ok`] gates
/// on the shards=4 row out-serving the shards=1 row.
fn run_sharding(env: &ReportEnv) -> ShardingReport {
    let fx = sharding_fixture(env);
    let submitters = env.submitters.max(8);
    let rounds = 4;

    let rows = SHARDING_SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let mut best: Option<ShardingRow> = None;
            for _ in 0..env.repeat {
                let (metrics, wall_ms, offered) =
                    drive_sharding(env, &fx, shards, submitters, rounds);
                let row = ShardingRow {
                    shards,
                    offered_requests: offered,
                    served_requests: metrics.completed,
                    rejected_requests: metrics.rejected,
                    wall_ms,
                    served_rps: metrics.completed as f64 / (wall_ms / 1e3).max(1e-9),
                    latency_p50_us: metrics.latency_p50_us,
                    latency_p95_us: metrics.latency_p95_us,
                    latency_p99_us: metrics.latency_p99_us,
                };
                if best.as_ref().is_none_or(|b| row.served_rps > b.served_rps) {
                    best = Some(row);
                }
            }
            best.expect("repeat ≥ 1")
        })
        .collect();

    ShardingReport {
        series: fx.ids.len(),
        n_per_series: fx.data[0].len(),
        submitters,
        workers: 4,
        queries: fx.pool.len(),
        // drive_sharding panics on any divergence, so reaching here
        // means every response across every shard count matched.
        bit_identical: true,
        rows,
    }
}

/// Exact percentile (nearest-rank) of a sorted microsecond sample.
pub(crate) fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Submits one request (retrying past backpressure), waits for the
/// response, and returns the service-measured latency in microseconds.
fn streaming_query(
    service: &kvmatch_serve::QueryService<kvmatch_lsm::LsmCatalogBackend>,
    mut request: kvmatch_serve::QueryRequest,
) -> u64 {
    use kvmatch_serve::Submit;
    let handle = loop {
        match service.submit_timeout(request, std::time::Duration::from_secs(30)) {
            Submit::Accepted(h) => break h,
            Submit::Rejected(back) => request = back.request,
        }
    };
    let response = handle.wait().expect("streaming query served");
    assert!(!response.results.is_empty(), "streaming workload lost a planted match");
    response.latency.as_micros().min(u128::from(u64::MAX)) as u64
}

/// The streaming-ingest workload: a `QueryService` over the durable
/// [`LsmCatalogBackend`](kvmatch_lsm::LsmCatalogBackend) in a tempdir.
/// `env.submitters` querier threads measure read latency twice — a quiet
/// phase with no writes, then a burst phase while sequential acked
/// appends to series 1 force a sealed delta generation per chunk (and
/// with them size-tiered compaction folds and generation retirements).
/// Queriers only read the *other* series, so the burst-phase latencies
/// measure reader stall against the publish machinery rather than the
/// per-series ordering barrier. The quiet-vs-burst p99 ratio is what the
/// CI stall gate ([`BenchReport::streaming_stall_ok`]) bounds.
fn run_streaming(env: &ReportEnv) -> StreamingReport {
    use std::sync::atomic::{AtomicBool, Ordering};

    use kvmatch_core::catalog::CatalogBackend;
    use kvmatch_lsm::{LsmCatalogBackend, LsmOptions};
    use kvmatch_serve::{QueryRequest, QueryService};

    let series_count = env.series.max(2);
    let n_per_series = (env.n / series_count).max(env.w * 20).min(16_000);
    let ids: Vec<SeriesId> = (0..series_count).map(|i| SeriesId::new(i as u64 + 1)).collect();
    let data: Vec<Vec<f64>> = (0..series_count)
        .map(|i| make_series(n_per_series, env.seed.wrapping_add(52_361 * (i as u64 + 1))))
        .collect();

    let dir = tempfile::tempdir().expect("streaming tempdir");
    let backend =
        LsmCatalogBackend::open(dir.path(), LsmOptions::default()).expect("open LSM backend");
    // The durability engine's maintenance counters join the service's
    // registry, so one scrape covers serving and storage.
    let registry = std::sync::Arc::new(kvmatch_obs::Registry::new());
    backend.points_db().publish_metrics(&registry);
    let mut catalog = Catalog::with_exec_config(
        backend,
        ExecutorConfig { threads: env.threads, ..ExecutorConfig::default() },
    );
    for (id, xs) in ids.iter().zip(&data) {
        catalog.create_series(*id, IndexBuildConfig::new(env.w)).expect("create series");
        catalog.append(*id, xs).expect("seed series");
    }
    catalog.materialize().expect("materialize");
    // The LSM backend is durable and unshardable (a single on-disk
    // store), so the streaming section always serves through one shard.
    let service = QueryService::builder(catalog)
        .workers(env.workers.max(1))
        .registry(registry)
        .build()
        .expect("single-shard streaming topology is valid");

    // The reader pool queries every series EXCEPT the burst target.
    let m = 128.min(n_per_series / 2);
    let mut pool: Vec<QueryRequest> = Vec::new();
    for (i, (id, xs)) in ids.iter().zip(&data).enumerate().skip(1) {
        let qs =
            sample_queries(xs, m, env.queries.max(2), 0.05, env.seed ^ (0xB4157_u64 + i as u64));
        for (k, q) in qs.into_iter().enumerate() {
            let spec = QuerySpec::rsm_ed(q, 10.0).with_series(*id);
            pool.push(if k % 2 == 0 {
                QueryRequest::range(spec)
            } else {
                QueryRequest::top_k(spec, 3)
            });
        }
    }

    // Quiet phase: fixed rounds, no concurrent writes.
    let mut quiet_lat: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..env.submitters)
            .map(|t| {
                let service = &service;
                let pool = &pool;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for r in 0..pool.len() * 3 {
                        lat.push(streaming_query(service, pool[(t * 7 + r) % pool.len()].clone()));
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            quiet_lat.extend(h.join().expect("quiet querier"));
        }
    });

    // Burst phase: identical-length chunks (identical-length appends seal
    // near-identical-size delta runs, which keeps them in one size tier
    // and guarantees the compaction fanout trips) appended one acked
    // write at a time while the queriers keep hammering the other series.
    let burst_chunks: Vec<Vec<f64>> = (0..10)
        .map(|i| make_series((n_per_series / 4).max(env.w * 4), env.seed.wrapping_add(900 + i)))
        .collect();
    let burst_points: u64 = burst_chunks.iter().map(|c| c.len() as u64).sum();
    let stop = AtomicBool::new(false);
    let mut burst_lat: Vec<u64> = Vec::new();
    let mut ingest_ms = 0.0;
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..env.submitters)
            .map(|t| {
                let service = &service;
                let pool = &pool;
                let stop = &stop;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut r = 0usize;
                    // At least one sample per reader even if the burst
                    // outruns the first query.
                    loop {
                        lat.push(streaming_query(service, pool[(t * 7 + r) % pool.len()].clone()));
                        r += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    lat
                })
            })
            .collect();
        let t0 = Instant::now();
        for chunk in &burst_chunks {
            service
                .append(ids[0], chunk.clone(), std::time::Duration::from_secs(60))
                .expect("burst append admitted")
                .wait()
                .expect("burst append applied and snapshot published");
        }
        ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            burst_lat.extend(h.join().expect("burst querier"));
        }
    });

    quiet_lat.sort_unstable();
    burst_lat.sort_unstable();
    let quiet_p99 = percentile_us(&quiet_lat, 0.99);
    let burst_p99 = percentile_us(&burst_lat, 0.99);
    let metrics = service.metrics();
    let catalog = service.shutdown();
    let maint = catalog.backend().maintenance_stats();

    StreamingReport {
        series: series_count,
        queriers: env.submitters,
        burst_points,
        ingest_ms,
        points_per_sec: burst_points as f64 / (ingest_ms / 1e3).max(1e-9),
        quiet_queries: quiet_lat.len() as u64,
        burst_queries: burst_lat.len() as u64,
        quiet_p95_us: percentile_us(&quiet_lat, 0.95),
        quiet_p99_us: quiet_p99,
        burst_p95_us: percentile_us(&burst_lat, 0.95),
        burst_p99_us: burst_p99,
        stall_ratio: burst_p99 as f64 / quiet_p99.max(1) as f64,
        runs_sealed: maint.runs_sealed,
        delta_runs_sealed: maint.delta_runs_sealed,
        compactions: maint.compactions,
        generations_retired: maint.generations_retired,
        materialize_failures: metrics.materialize_failures,
    }
}

/// True when every sample line of a text exposition parses as
/// `name[{labels}] value` with a numeric value, and the payload covers
/// the serving and network metric families the scrape contract promises.
fn exposition_well_formed(text: &str) -> bool {
    let families = [
        "# TYPE kvmatch_serve_submitted_total counter",
        "# TYPE kvmatch_serve_completed_total counter",
        "# TYPE kvmatch_serve_queue_depth gauge",
        "# TYPE kvmatch_serve_latency_us summary",
        "# TYPE kvmatch_net_frames_in_total counter",
        "# TYPE kvmatch_net_connections_active gauge",
    ];
    if !families.iter().all(|f| text.contains(f)) {
        return false;
    }
    text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).all(|line| {
        match line.rsplit_once(' ') {
            Some((name, value)) => !name.is_empty() && value.parse::<f64>().is_ok(),
            None => false,
        }
    })
}

/// The observability checks: an in-process server over the serving
/// fixture's catalog, probed through a real socket. Every probe runs
/// twice — plain, then explain-flagged — and the results must be
/// bit-identical (and equal to the fixture's sequential ground truth)
/// with the wire-delivered report mirroring the executor stats verbatim.
/// The text exposition is scraped once at the end, after the probes have
/// populated the slow log.
fn run_observability(env: &ReportEnv, fx: &ServingFixture) -> ObservabilityReport {
    use std::sync::Arc;
    use std::time::Duration;

    use kvmatch_client::Client;
    use kvmatch_serve::QueryService;
    use kvmatch_server::{Server, ServerOptions};

    let mut catalog = Catalog::with_exec_config(
        MemoryCatalogBackend,
        ExecutorConfig { threads: env.threads, ..ExecutorConfig::default() },
    );
    for (id, xs) in fx.ids.iter().zip(&fx.data) {
        catalog.create_series(*id, IndexBuildConfig::new(env.w)).unwrap();
        catalog.append(*id, xs).unwrap();
    }
    catalog.materialize().expect("materialize observability catalog");
    let service = Arc::new(
        QueryService::builder(catalog)
            .shards(env.shards)
            .workers(env.workers.max(1))
            .build()
            .expect("observability topology is valid by construction"),
    );
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerOptions::default())
        .expect("bind loopback for the observability checks");
    let addr = server.local_addr().to_string();
    let client =
        Client::connect_retry(&addr, 40, Duration::from_millis(50)).expect("client connects");

    let mut explain_bit_identical = true;
    let mut explain_spans = 0u64;
    for (which, req) in fx.pool.iter().enumerate() {
        let plain = client.query(req.spec.clone(), None).expect("plain probe served");
        let explained =
            client.query(req.spec.clone().with_explain(true), None).expect("explain probe served");
        if plain.explain.is_some()
            || plain.results != fx.expected[which]
            || explained.results != plain.results
        {
            explain_bit_identical = false;
        }
        match explained.explain.as_deref() {
            Some(report) => {
                let s = &explained.stats;
                let mirrored = report.trace_id != 0
                    && report.pruned_constraint == s.pruned_constraint
                    && report.pruned_lb_kim == s.pruned_lb_kim
                    && report.pruned_lb_keogh == s.pruned_lb_keogh
                    && report.full_distance_computations == s.full_distance_computations
                    && report.probe_nanos == s.phase1_nanos
                    && report.alloc_events == s.alloc_events;
                if !mirrored {
                    explain_bit_identical = false;
                }
                explain_spans = explain_spans.max(report.spans.len() as u64);
            }
            None => explain_bit_identical = false,
        }
    }

    let text = client.metrics_text().expect("metrics text scraped");
    let exposition_ok = exposition_well_formed(&text);
    let slowlog_depth = text.lines().filter(|l| l.starts_with("# slowlog rank=")).count() as u64;

    drop(client);
    server.shutdown();
    match Arc::try_unwrap(service) {
        Ok(service) => {
            service.shutdown();
        }
        Err(_) => eprintln!("service still shared after drain; skipping worker shutdown"),
    }

    ObservabilityReport {
        disabled_overhead_pct: 0.0,
        explain_bit_identical,
        exposition_ok,
        slowlog_depth,
        explain_spans,
    }
}

/// Runs the comparison across backends plus the multi-series workload
/// and assembles the report.
///
/// # Panics
/// Panics when batched and sequential results ever disagree — the report
/// must never publish numbers for diverging executions.
pub fn run_report(env: ReportEnv) -> BenchReport {
    let xs = make_series(env.n, env.seed);
    let specs_by_workload = workload_specs(&xs, &env);
    let mut threads_resolved = 0;
    let mut workloads = Vec::new();
    let mut total_seq = 0.0;
    let mut total_batch = 0.0;

    // Backend 1: memory index + memory data.
    let (mem_index, _) = KvIndex::<MemoryKvStore>::build_into(
        &xs,
        IndexBuildConfig::new(env.w),
        MemoryKvStoreBuilder::new(),
    )
    .expect("index build");
    let mem_data = MemorySeriesStore::new(xs.clone());
    let (rows, seq, batch) = run_backend_workloads(
        "memory",
        &mem_index,
        &mem_data,
        &specs_by_workload,
        &env,
        &mut threads_resolved,
    );
    workloads.extend(rows);
    total_seq += seq;
    total_batch += batch;

    // Backend 2: simulated-HBase sharded index + 1024-point block data.
    let (sharded_index, _) = KvIndex::<ShardedKvStore>::build_into(
        &xs,
        IndexBuildConfig::new(env.w),
        ShardedKvStoreBuilder::new(ShardingConfig::default()),
    )
    .expect("sharded index build");
    let block_data = BlockSeriesStore::from_series(&xs, BlockSeriesStore::DEFAULT_BLOCK);
    let (rows, seq, batch) = run_backend_workloads(
        "sharded",
        &sharded_index,
        &block_data,
        &specs_by_workload,
        &env,
        &mut threads_resolved,
    );
    workloads.extend(rows);
    total_seq += seq;
    total_batch += batch;

    let multi_series = run_multi_series(&env);
    let fx = serving_fixture(&env);
    let serving = run_serving(&env, &fx);
    let sharding = run_sharding(&env);
    let network = run_network(&env, &fx, serving.served_rps);
    let observability = run_observability(&env, &fx);
    let streaming = run_streaming(&env);
    let kernels = run_kernels(&env);

    BenchReport {
        schema: SCHEMA.to_string(),
        env,
        threads_resolved,
        workloads,
        multi_series,
        serving,
        sharding,
        network,
        streaming,
        kernels,
        observability,
        total_sequential_ms: total_seq,
        total_batched_ms: total_batch,
        overall_speedup: total_seq / total_batch.max(1e-9),
    }
}

/// Serializes a report to JSON (one trailing newline).
pub fn to_json(report: &BenchReport) -> String {
    format!("{}\n", report.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> ReportEnv {
        ReportEnv {
            n: 8_000,
            w: 50,
            queries: 2,
            seed: 7,
            threads: 2,
            repeat: 1,
            series: 3,
            submitters: 4,
            workers: 2,
            shards: 1,
        }
    }

    #[test]
    fn report_runs_and_serializes() {
        let report = run_report(tiny_env());
        assert_eq!(report.workloads.len(), 8, "4 workloads × 2 backends");
        for wl in &report.workloads {
            assert_eq!(wl.queries, 2);
            assert!(wl.sequential_ms > 0.0 && wl.batched_ms > 0.0);
            assert!(wl.speedup > 0.0);
            assert!(wl.batched_index_scans <= wl.sequential_index_scans);
        }
        // Memory and sharded backends agree on what the answers are.
        for (mem, sh) in report.workloads.iter().zip(&report.workloads[4..]) {
            assert_eq!(mem.name, sh.name);
            assert_eq!(mem.backend, "memory");
            assert_eq!(sh.backend, "sharded");
            assert_eq!(mem.matches, sh.matches, "{}: backends disagree", mem.name);
        }
        assert!(report.total_sequential_ms > 0.0);
        let value = report.to_value();
        let Value::Object(root) = &value else { panic!("report is an object") };
        assert_eq!(root.get("schema"), Some(&Value::from(SCHEMA)));
        let Some(Value::Array(rows)) = root.get("workloads") else { panic!("workloads array") };
        assert_eq!(rows.len(), 8);
        let Value::Object(first) = &rows[0] else { panic!("workload row is an object") };
        assert!(matches!(first.get("speedup"), Some(Value::Number(v)) if *v > 0.0));
        // The kernel sweep holds its two hard contracts; speed is the CI
        // gate's business (a loaded test box must not flake on timing).
        assert!(report.kernels.bit_identical);
        assert_eq!(report.kernels.alloc_events_warm, 0);
        let json = to_json(&report);
        assert!(json.contains("\"total_batched_ms\""));
        assert!(json.contains("\"multi_series\""));
        assert!(json.contains("\"kernels\""));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn workloads_produce_matches() {
        // Queries are near-copies of data subsequences; each workload must
        // find at least its own originals.
        let report = run_report(tiny_env());
        for wl in &report.workloads {
            assert!(wl.matches > 0, "{}/{} found no matches", wl.backend, wl.name);
            assert!(wl.candidates >= wl.matches);
        }
    }

    #[test]
    fn multi_series_section_reports_ingest_and_split() {
        let report = run_report(tiny_env());
        let ms = &report.multi_series;
        assert_eq!(ms.series, 3);
        assert_eq!(ms.per_series.len(), 3);
        assert_eq!(ms.ingest_points, (ms.n_per_series * 3) as u64);
        assert!(ms.ingest_points_per_sec > 0.0);
        assert!(ms.queries > 0 && ms.matches > 0);
        assert_eq!(ms.per_series.iter().map(|s| s.queries).sum::<u64>(), ms.queries as u64);
        assert_eq!(ms.per_series.iter().map(|s| s.matches).sum::<u64>(), ms.matches);
        // Warm repeat is fully cache-served: the split must show it.
        assert_eq!(ms.warm_store_scans, 0);
        assert!(ms.warm_probe_cache_hits >= ms.probe_cache_hits);
    }

    #[test]
    fn serving_section_reports_load_and_latency() {
        let report = run_report(tiny_env());
        let sv = &report.serving;
        assert_eq!(sv.series, 3);
        assert_eq!(sv.submitters, 4);
        assert_eq!(sv.workers, 2);
        // 4 submitters × 3 rounds × (3 series × 2 queries) = 72 requests.
        assert_eq!(sv.offered_requests, 72);
        assert_eq!(sv.served_requests, 72, "every offered request is served");
        assert_eq!(sv.topk_requests, 36);
        assert_eq!(sv.expired_requests, 0);
        assert_eq!(sv.expired_exec_requests, 0);
        assert!(sv.batches >= 1);
        assert!(sv.avg_batch_occupancy >= 1.0);
        assert!(sv.max_batch_occupancy as usize <= sv.max_batch);
        assert!(sv.wall_ms > 0.0 && sv.served_rps > 0.0);
        assert!(sv.offered_rps >= sv.served_rps * 0.99, "offered ≥ served");
        assert!(sv.latency_p50_us <= sv.latency_p95_us);
        assert!(sv.latency_p95_us <= sv.latency_p99_us);
        assert!(sv.latency_p99_us <= sv.latency_max_us.max(sv.latency_p99_us));
    }

    /// The network section drove real sockets: the connection axis is
    /// covered, every offered request was served with a bit-validated
    /// answer, and the socket-side latency percentiles are ordered. The
    /// overhead *ratio* is the CI gate's business, not a test assertion —
    /// a loaded test box must not flake on a throughput bound.
    #[test]
    fn network_section_reports_socket_load() {
        let report = run_report(tiny_env());
        let nw = &report.network;
        assert!(!nw.external_server, "tests never set KVM_SERVER_ADDR");
        assert!(nw.addr.starts_with("127.0.0.1:"), "in-process server binds loopback");
        assert_eq!(nw.workers, 2);
        assert!(nw.inprocess_served_rps > 0.0);
        assert_eq!(nw.per_connection.len(), NETWORK_CONNECTION_COUNTS.len());
        for (row, want) in nw.per_connection.iter().zip(NETWORK_CONNECTION_COUNTS) {
            assert_eq!(row.connections, *want);
            // Each connection cycles the pool 3 times: 3 series × 2
            // queries × 3 rounds = 18 requests per connection.
            assert_eq!(row.offered_requests, 18 * *want as u64);
            assert_eq!(row.served_requests, row.offered_requests, "all served");
            assert_eq!(row.transport_errors, 0, "loopback must not drop connections");
            assert!(row.wall_ms > 0.0 && row.served_rps > 0.0);
            assert!(row.offered_rps >= row.served_rps * 0.99);
            assert!(row.latency_p50_us <= row.latency_p95_us);
            assert!(row.latency_p95_us <= row.latency_p99_us);
            assert!(row.latency_p99_us <= row.latency_max_us.max(row.latency_p99_us));
        }
        // The gate helper reads the section (whether it passes depends on
        // machine load; here only exercise the plumbing).
        let _ = report.network_overhead_ok();
    }

    /// The streaming section exercised the real generational machinery:
    /// the burst sealed delta runs, compaction folded them, superseded
    /// generations were retired, and no snapshot rebuild failed. The
    /// stall *ratio* is the CI gate's business, not a test assertion —
    /// a loaded test box must not flake on a latency bound.
    #[test]
    fn streaming_section_reports_burst_behaviour() {
        let report = run_report(tiny_env());
        let st = &report.streaming;
        assert_eq!(st.series, 3);
        assert_eq!(st.queriers, 4);
        assert!(st.burst_points > 0);
        assert!(st.ingest_ms > 0.0 && st.points_per_sec > 0.0);
        assert!(st.quiet_queries > 0 && st.burst_queries > 0);
        assert!(st.quiet_p95_us <= st.quiet_p99_us);
        assert!(st.burst_p95_us <= st.burst_p99_us);
        assert!(st.stall_ratio > 0.0);
        assert!(st.runs_sealed > st.delta_runs_sealed, "initial seeds seal full runs");
        assert!(st.delta_runs_sealed > 0, "the burst must take the delta-run path");
        assert!(st.compactions > 0, "same-tier burst runs must trip size-tiered folds");
        assert!(st.generations_retired > 0, "superseded generations must be reclaimed");
        assert_eq!(st.materialize_failures, 0);
        // The gate helper reads the section (whether it passes depends on
        // machine load; here only exercise the plumbing).
        let _ = report.streaming_stall_ok();
    }

    /// The scaling table covers workers = 1/2/4 and every row served its
    /// whole (identical, bit-validated) workload. The rps inequality
    /// itself is the CI gate, not a test assertion — a single-core test
    /// box cannot scale and must not flake.
    #[test]
    fn serving_scaling_table_covers_worker_counts() {
        let report = run_report(tiny_env());
        let scaling = &report.serving.scaling;
        assert_eq!(scaling.len(), SCALING_WORKER_COUNTS.len());
        for (row, want) in scaling.iter().zip(SCALING_WORKER_COUNTS) {
            assert_eq!(row.workers, *want);
            assert_eq!(row.offered_requests, 72);
            assert_eq!(row.served_requests, 72, "workers={}: all served", row.workers);
            assert!(row.wall_ms > 0.0 && row.served_rps > 0.0);
            assert!(row.latency_p50_us <= row.latency_p95_us);
            assert!(row.latency_p95_us <= row.latency_p99_us);
        }
        // The gate helper reads the table (whether it passes depends on
        // the machine's parallelism; here only exercise the plumbing).
        let _ = report.serving_scaling_ok();
    }

    /// The sharding table covers shards = 1/4 over a wide keyspace and
    /// every row served its whole (identical, bit-validated) workload.
    /// The rps inequality itself is the CI gate, not a test assertion —
    /// a single-core test box cannot scale and must not flake.
    #[test]
    fn sharding_table_covers_shard_counts() {
        let report = run_report(tiny_env());
        let sh = &report.sharding;
        assert!(sh.series >= 128, "the sharding fixture must be a wide keyspace: {}", sh.series);
        assert!(sh.queries >= 8, "every 16th series is queried: {}", sh.queries);
        assert_eq!(sh.submitters, 8, "at least 8 submitters even at smoke scale");
        assert_eq!(sh.workers, 4);
        assert!(sh.bit_identical, "every shard count must answer bit-identically");
        assert_eq!(sh.rows.len(), SHARDING_SHARD_COUNTS.len());
        for (row, want) in sh.rows.iter().zip(SHARDING_SHARD_COUNTS) {
            assert_eq!(row.shards, *want);
            assert_eq!(row.offered_requests, (sh.submitters * sh.queries * 4) as u64);
            assert_eq!(row.served_requests, row.offered_requests, "shards={}: all served", want);
            assert!(row.wall_ms > 0.0 && row.served_rps > 0.0);
            assert!(row.latency_p50_us <= row.latency_p95_us);
            assert!(row.latency_p95_us <= row.latency_p99_us);
        }
        // The gate helper reads the table (whether it passes depends on
        // the machine's parallelism; here only exercise the plumbing).
        let _ = report.sharding_scaling_ok();
    }

    /// `--compare` semantics: self-comparison is clean, a slowdown past
    /// the threshold is a regression, and added workloads are reported
    /// as unmatched rather than failing the comparison.
    #[test]
    fn baseline_comparison_flags_regressions_only() {
        let report = run_report(tiny_env());
        let baseline = report.to_value();

        // Against itself: zero deltas, nothing regresses, same env, and
        // every kernel timing diffed at zero delta.
        let cmp = compare_to_baseline(&report, &baseline, 25.0).unwrap();
        assert_eq!(cmp.rows.len(), report.workloads.len());
        assert!(cmp.unmatched.is_empty());
        assert!(cmp.env_mismatch.is_empty());
        assert!(cmp.rows.iter().all(|row| row.delta_pct.abs() < 1e-9));
        assert!(cmp.regressions().is_empty());
        assert_eq!(cmp.kernel_rows.len(), KERNEL_DELTA_METRICS.len());
        assert!(cmp.kernel_rows.iter().all(|row| row.delta_pct.abs() < 1e-9));

        // A pre-v7 baseline (no kernels section) yields no kernel rows —
        // informational absence, never an error.
        let Value::Object(mut pre_v7) = baseline.clone() else { panic!() };
        pre_v7.remove("kernels");
        let cmp = compare_to_baseline(&report, &Value::Object(pre_v7), 25.0).unwrap();
        assert!(cmp.kernel_rows.is_empty());
        assert!(cmp.regressions().is_empty());

        // Kernel slowdowns never regress the comparison: ns/candidate at
        // smoke scale is informational; the speed contract is kernels_ok.
        let Value::Object(mut fast_kernels) = baseline.clone() else { panic!() };
        let Some(Value::Object(bk)) = fast_kernels.get("kernels") else { panic!() };
        let mut bk = bk.clone();
        bk.insert("dtw_opt_ns".into(), Value::from(1e-3));
        fast_kernels.insert("kernels".into(), Value::Object(bk));
        let cmp = compare_to_baseline(&report, &Value::Object(fast_kernels), 25.0).unwrap();
        let dtw = cmp.kernel_rows.iter().find(|row| row.name == "dtw_opt_ns").unwrap();
        assert!(dtw.delta_pct > 25.0, "the synthetic baseline is far faster");
        assert!(cmp.regressions().is_empty(), "kernel rows are report-only");

        // A baseline from a different scale gets its knobs flagged.
        let Value::Object(mut scaled) = baseline.clone() else { panic!() };
        let Some(Value::Object(benv)) = scaled.get("env") else { panic!() };
        let mut benv = benv.clone();
        benv.insert("n".into(), Value::from(16_000u64));
        benv.insert("repeat".into(), Value::from(5u64));
        scaled.insert("env".into(), Value::Object(benv));
        let cmp = compare_to_baseline(&report, &Value::Object(scaled), 25.0).unwrap();
        assert_eq!(cmp.env_mismatch.len(), 2, "{:?}", cmp.env_mismatch);
        assert!(cmp.env_mismatch[0].contains("n: baseline 16000 vs current 8000"));

        // A baseline that was 10x faster everywhere: every row (and the
        // total) breaches 25%.
        let mut fast = report.clone();
        for wl in &mut fast.workloads {
            wl.batched_ms /= 10.0;
        }
        fast.total_batched_ms /= 10.0;
        let cmp = compare_to_baseline(&report, &fast.to_value(), 25.0).unwrap();
        assert_eq!(cmp.regressions().len(), report.workloads.len() + 1, "rows + total");
        assert!(cmp.rows.iter().all(|row| row.regressed(25.0)));
        assert!(cmp.total_delta_pct > 25.0);

        // A baseline missing one workload: unmatched, not a failure.
        let Value::Object(mut root) = baseline.clone() else { panic!() };
        let Some(Value::Array(rows)) = root.get("workloads") else { panic!() };
        let mut rows = rows.clone();
        rows.pop();
        root.insert("workloads".into(), Value::Array(rows));
        let cmp = compare_to_baseline(&report, &Value::Object(root), 25.0).unwrap();
        assert_eq!(cmp.unmatched.len(), 1);
        assert_eq!(cmp.rows.len(), report.workloads.len() - 1);
        assert!(cmp.regressions().is_empty());

        // The delta report round-trips through the JSON parser.
        let delta = cmp.to_value("BENCH_exec.json");
        let reparsed = serde_json::from_str(&delta.to_string()).unwrap();
        assert_eq!(reparsed, delta);

        // Garbage baselines fail loudly.
        assert!(compare_to_baseline(&report, &Value::from(3u8), 25.0).is_err());
        assert!(compare_to_baseline(&report, &Value::Object(Map::new()), 25.0).is_err());
    }

    /// The satellite gate: dropping or renaming any reported field fails.
    #[test]
    fn schema_validation_catches_dropped_fields() {
        let report = run_report(tiny_env());
        let value = report.to_value();
        validate_schema(&value).expect("current report satisfies its schema");

        // Remove one required field at every level; each must fail.
        let Value::Object(root) = &value else { panic!() };
        let mut broken = root.clone();
        broken.remove("multi_series");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Array(rows)) = broken.get("workloads") else { panic!() };
        let mut rows = rows.clone();
        let Value::Object(first) = &rows[0] else { panic!() };
        let mut first = first.clone();
        first.remove("backend");
        rows[0] = Value::Object(first);
        broken.insert("workloads".into(), Value::Array(rows));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(ms)) = broken.get("multi_series") else { panic!() };
        let mut ms = ms.clone();
        ms.remove("ingest_points_per_sec");
        broken.insert("multi_series".into(), Value::Object(ms));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A dropped serving field fails (the serving section is
        // load-bearing).
        let mut broken = root.clone();
        let Some(Value::Object(sv)) = broken.get("serving") else { panic!() };
        let mut sv = sv.clone();
        sv.remove("latency_p99_us");
        broken.insert("serving".into(), Value::Object(sv));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        broken.remove("serving");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A missing scaling table — or one without the workers=4 row —
        // fails: the CI scaling gate depends on both.
        let mut broken = root.clone();
        let Some(Value::Object(sv)) = broken.get("serving") else { panic!() };
        let mut sv = sv.clone();
        sv.remove("scaling");
        broken.insert("serving".into(), Value::Object(sv));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(sv)) = broken.get("serving") else { panic!() };
        let mut sv = sv.clone();
        let Some(Value::Array(rows)) = sv.get("scaling") else { panic!() };
        let trimmed: Vec<Value> = rows
            .iter()
            .filter(|row| {
                !matches!(row, Value::Object(m)
                    if matches!(m.get("workers"), Some(Value::Number(v)) if *v == 4.0))
            })
            .cloned()
            .collect();
        sv.insert("scaling".into(), Value::Array(trimmed));
        broken.insert("serving".into(), Value::Object(sv));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A dropped network field — or the whole section, or a missing
        // connection-count row — fails: the CI net-smoke gate reads it.
        let mut broken = root.clone();
        broken.remove("network");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(nw)) = broken.get("network") else { panic!() };
        let mut nw = nw.clone();
        nw.remove("inprocess_served_rps");
        broken.insert("network".into(), Value::Object(nw));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(nw)) = broken.get("network") else { panic!() };
        let mut nw = nw.clone();
        let Some(Value::Array(rows)) = nw.get("per_connection") else { panic!() };
        let mut rows = rows.clone();
        let Value::Object(first) = &rows[0] else { panic!() };
        let mut first = first.clone();
        first.remove("transport_errors");
        rows[0] = Value::Object(first);
        nw.insert("per_connection".into(), Value::Array(rows));
        broken.insert("network".into(), Value::Object(nw));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(nw)) = broken.get("network") else { panic!() };
        let mut nw = nw.clone();
        let Some(Value::Array(rows)) = nw.get("per_connection") else { panic!() };
        let trimmed: Vec<Value> = rows
            .iter()
            .filter(|row| {
                !matches!(row, Value::Object(m)
                    if matches!(m.get("connections"), Some(Value::Number(v)) if *v == 4.0))
            })
            .cloned()
            .collect();
        nw.insert("per_connection".into(), Value::Array(trimmed));
        broken.insert("network".into(), Value::Object(nw));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A dropped streaming field — or the whole section — fails (the
        // CI stall gate reads it).
        let mut broken = root.clone();
        let Some(Value::Object(st)) = broken.get("streaming") else { panic!() };
        let mut st = st.clone();
        st.remove("stall_ratio");
        broken.insert("streaming".into(), Value::Object(st));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        broken.remove("streaming");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A dropped kernel field — or the whole section — fails (the CI
        // kernel gate reads it).
        let mut broken = root.clone();
        let Some(Value::Object(k)) = broken.get("kernels") else { panic!() };
        let mut k = k.clone();
        k.remove("alloc_events_warm");
        broken.insert("kernels".into(), Value::Object(k));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        broken.remove("kernels");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A dropped observability field — or the whole section — fails
        // (the CI obs-smoke gate reads it).
        let mut broken = root.clone();
        let Some(Value::Object(o)) = broken.get("observability") else { panic!() };
        let mut o = o.clone();
        o.remove("explain_bit_identical");
        broken.insert("observability".into(), Value::Object(o));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        broken.remove("observability");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A dropped sharding field — or the whole section, or a missing
        // shard-count row — fails: the CI sharding gate reads it.
        let mut broken = root.clone();
        broken.remove("sharding");
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(sh)) = broken.get("sharding") else { panic!() };
        let mut sh = sh.clone();
        sh.remove("bit_identical");
        broken.insert("sharding".into(), Value::Object(sh));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        let mut broken = root.clone();
        let Some(Value::Object(sh)) = broken.get("sharding") else { panic!() };
        let mut sh = sh.clone();
        let Some(Value::Array(rows)) = sh.get("rows") else { panic!() };
        let trimmed: Vec<Value> = rows
            .iter()
            .filter(|row| {
                !matches!(row, Value::Object(m)
                    if matches!(m.get("shards"), Some(Value::Number(v)) if *v == 4.0))
            })
            .cloned()
            .collect();
        sh.insert("rows".into(), Value::Array(trimmed));
        broken.insert("sharding".into(), Value::Object(sh));
        assert!(validate_schema(&Value::Object(broken)).is_err());

        // A renamed schema tag fails too (v8 reports are not v9 reports).
        let mut broken = root.clone();
        broken.insert("schema".into(), Value::from("kvmatch-bench-exec/v8"));
        assert!(validate_schema(&Value::Object(broken)).is_err());
    }

    /// The observability section's contracts hold at smoke scale: these
    /// are deterministic (no timing bounds), so the test asserts them
    /// outright rather than deferring to the CI gate.
    #[test]
    fn observability_section_holds_its_contracts() {
        let report = run_report(tiny_env());
        let o = &report.observability;
        assert!(o.explain_bit_identical, "explain must not perturb results or mis-mirror stats");
        assert!(o.exposition_ok, "the scraped exposition must be well-formed");
        assert!(o.explain_spans >= 3, "queue + execute + server spans at minimum: {o:?}");
        assert!(o.slowlog_depth >= 1, "the probes must have populated the slow log");
        assert_eq!(o.disabled_overhead_pct, 0.0, "no baseline compared inside run_report");
        assert!(report.observability_ok());
    }
}
